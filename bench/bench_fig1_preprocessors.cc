/// Figure 1: the worked example of all seven preprocessors applied to the
/// single feature column [-1.5, 1, 1.5, 2.5, 3, 4, 5].

#include <cstdio>

#include "bench/bench_util.h"
#include "preprocess/power_transformer.h"

int main() {
  using namespace autofp;
  bench::PrintHeader("bench_fig1_preprocessors", "Figure 1",
                     "Each column: the example feature transformed by one "
                     "preprocessor (paper values in brackets).");

  Matrix column = {{-1.5}, {1.0}, {1.5}, {2.5}, {3.0}, {4.0}, {5.0}};
  struct Column {
    const char* label;
    PreprocessorKind kind;
  };
  const Column columns[] = {
      {"(b) StandardScaler", PreprocessorKind::kStandardScaler},
      {"(c) MaxAbsScaler", PreprocessorKind::kMaxAbsScaler},
      {"(d) MinMaxScaler", PreprocessorKind::kMinMaxScaler},
      {"(e) Normalizer", PreprocessorKind::kNormalizer},
      {"(f) PowerTransformer", PreprocessorKind::kPowerTransformer},
      {"(g) QuantileTransformer", PreprocessorKind::kQuantileTransformer},
      {"(h) Binarizer", PreprocessorKind::kBinarizer},
  };

  std::printf("%-8s", "(a) Num");
  for (const Column& c : columns) std::printf("  %-24s", c.label);
  std::printf("\n");

  std::vector<Matrix> outputs;
  for (const Column& c : columns) {
    outputs.push_back(MakePreprocessor(c.kind)->FitTransform(column));
  }
  // Paper's Figure 1 values for cross-checking by eye.
  const double paper[7][7] = {
      {-1.87, -0.3, 0.0, -1, -1.72, 0.0, 0},
      {-0.61, 0.2, 0.38, 1, -0.71, 0.17, 1},
      {-0.36, 0.3, 0.46, 1, -0.46, 0.33, 1},
      {0.15, 0.5, 0.61, 1, 0.07, 0.5, 1},
      {0.40, 0.6, 0.69, 1, 0.35, 0.67, 1},
      {0.90, 0.8, 0.85, 1, 0.93, 0.83, 1},
      {1.41, 1.0, 1.0, 1, 1.53, 1.0, 1},
  };
  for (size_t r = 0; r < 7; ++r) {
    std::printf("%-8.2f", column(r, 0));
    for (size_t c = 0; c < outputs.size(); ++c) {
      std::printf("  %6.2f [paper %6.2f]", outputs[c](r, 0), paper[r][c]);
    }
    std::printf("\n");
  }

  PreprocessorConfig no_standardize =
      PreprocessorConfig::Defaults(PreprocessorKind::kPowerTransformer);
  no_standardize.standardize = false;
  PowerTransformer power(no_standardize);
  power.Fit(column);
  std::printf("\nPowerTransformer lambda (MLE): %.3f [paper 1.22]\n",
              power.lambdas()[0]);
  return 0;
}
