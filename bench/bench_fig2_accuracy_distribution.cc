/// Figure 2: distribution of LR validation accuracy over *all* 2800
/// pipelines of length <= 4 on the four motivation datasets, versus the
/// no-FP baseline. The paper's finding: accuracies spread widely; good
/// pipelines beat no-FP and bad pipelines fall far below it.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace autofp;

/// All pipelines of length 1..max_length over the default 7 operators.
void EnumeratePipelines(const SearchSpace& space, size_t max_length,
                        std::vector<PipelineSpec>* out) {
  std::vector<int> stack;
  // Iterative depth-first enumeration.
  struct Frame {
    std::vector<int> prefix;
  };
  std::vector<Frame> work = {{{}}};
  while (!work.empty()) {
    Frame frame = std::move(work.back());
    work.pop_back();
    if (!frame.prefix.empty()) out->push_back(space.Decode(frame.prefix));
    if (frame.prefix.size() >= max_length) continue;
    for (size_t op = 0; op < space.num_operators(); ++op) {
      Frame child = frame;
      child.prefix.push_back(static_cast<int>(op));
      work.push_back(std::move(child));
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "bench_fig2_accuracy_distribution", "Figure 2",
      "All 2800 pipelines (length <= 4) with LR on the 4 motivation "
      "datasets; histogram of validation accuracy vs the no-FP line.");

  SearchSpace space = SearchSpace::Default(4);
  std::vector<PipelineSpec> pipelines;
  EnumeratePipelines(space, 4, &pipelines);
  std::printf("enumerated pipelines: %zu (paper: 2800)\n\n",
              pipelines.size());

  for (const SyntheticSpec& spec : MotivationSuiteSpecs()) {
    TrainValidSplit split = bench::PrepareScenario(spec.name, 2, 350);
    PipelineEvaluator evaluator(
        split.train, split.valid,
        bench::BenchModel(ModelKind::kLogisticRegression));
    double baseline = evaluator.BaselineAccuracy();
    std::vector<double> accuracies;
    accuracies.reserve(pipelines.size());
    PipelineSpec best_pipeline, worst_pipeline;
    double best = -1.0, worst = 2.0;
    for (const PipelineSpec& pipeline : pipelines) {
      EvalRequest request;
      request.pipeline = pipeline;
      double accuracy = evaluator.Evaluate(request).accuracy;
      accuracies.push_back(accuracy);
      if (accuracy > best) {
        best = accuracy;
        best_pipeline = pipeline;
      }
      if (accuracy < worst) {
        worst = accuracy;
        worst_pipeline = pipeline;
      }
    }
    std::sort(accuracies.begin(), accuracies.end());
    std::printf("--- %s (LR) ---\n", spec.name.c_str());
    std::printf("no-FP baseline: %.4f | min %.4f  median %.4f  max %.4f\n",
                baseline, accuracies.front(),
                accuracies[accuracies.size() / 2], accuracies.back());
    std::printf("best pipeline : %s (%.4f)\n",
                best_pipeline.ToString().c_str(), best);
    std::printf("worst pipeline: %s (%.4f)\n",
                worst_pipeline.ToString().c_str(), worst);
    // ASCII histogram over 20 bins spanning [min, max].
    const int bins = 20;
    std::vector<int> histogram(bins, 0);
    double lo = accuracies.front(), hi = accuracies.back();
    double width = hi > lo ? (hi - lo) / bins : 1.0;
    for (double accuracy : accuracies) {
      int bin = std::min(bins - 1,
                         static_cast<int>((accuracy - lo) / width));
      histogram[bin]++;
    }
    int peak = *std::max_element(histogram.begin(), histogram.end());
    for (int b = 0; b < bins; ++b) {
      double left = lo + b * width;
      bool has_baseline = baseline >= left && baseline < left + width;
      int bars = peak > 0 ? histogram[b] * 50 / peak : 0;
      std::printf("  %.3f |%-50.*s| %4d %s\n", left, bars,
                  "##################################################",
                  histogram[b], has_baseline ? "<- no-FP" : "");
    }
    size_t above = 0, below = 0;
    for (double accuracy : accuracies) {
      if (accuracy > baseline) ++above;
      if (accuracy < baseline) ++below;
    }
    std::printf("pipelines above no-FP: %zu, below: %zu (of %zu)\n\n", above,
                below, accuracies.size());
  }
  return 0;
}
