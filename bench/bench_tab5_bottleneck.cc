/// Table 5: dominant performance bottleneck by scenario — dataset
/// dimensionality (high/low) x size (small/medium/large) x downstream
/// model, for RS / PBT / TEVO_H / TEVO_Y. The paper's finding: "Train"
/// dominates almost everywhere; LR on low-dimensional data shifts toward
/// "Prep" (or mixed Prep/Train).

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/run_journal.h"
#include "util/timer.h"
#include "search/random_search.h"
#include "search/registry.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_tab5_bottleneck", "Table 5",
      "Dominant cost component per (dimensionality x size x model), "
      "averaged over RS/PBT/TEVO_H/TEVO_Y under a wall-clock budget.");

  struct Bucket {
    const char* dimensions;
    const char* size;
    const char* dataset;
    size_t max_rows;
  };
  // Representative of the paper's buckets: high-dim; low-dim small /
  // medium / large (size grows with retained rows).
  const Bucket buckets[] = {
      {"High", "All", "jasmine_syn", 600},
      {"Low", "Small", "blood_syn", 400},
      {"Low", "Medium", "electricity_syn", 2000},
      {"Low", "Large", "higgs_syn", 6000},
  };
  const std::vector<std::string> algorithms = {"RS", "PBT", "TEVO_H",
                                               "TEVO_Y"};
  SearchSpace space = SearchSpace::Default();

  std::printf("%-6s %-8s %-16s %-6s %6s %6s %6s  %s\n", "Dims", "Size",
              "dataset", "model", "pick%", "prep%", "train%", "bottleneck");
  for (const Bucket& bucket : buckets) {
    TrainValidSplit split =
        bench::PrepareScenario(bucket.dataset, 8, bucket.max_rows);
    for (ModelKind model_kind : bench::BenchModels()) {
      double pick = 0.0, prep = 0.0, train = 0.0;
      for (const std::string& name : algorithms) {
        PipelineEvaluator evaluator(split.train, split.valid,
                                    bench::HeavyModel(model_kind));
        auto algorithm = MakeSearchAlgorithm(name);
        SearchResult result =
            RunSearch(algorithm.value().get(), &evaluator, space, {Budget::Seconds(0.35), 44});
        pick += result.pick_seconds;
        prep += result.prep_seconds;
        train += result.train_seconds;
      }
      double total = pick + prep + train;
      if (total <= 0.0) total = 1.0;
      const char* bottleneck;
      double prep_pct = prep / total, train_pct = train / total;
      if (prep_pct > 0.55) {
        bottleneck = "Prep";
      } else if (train_pct > 0.55) {
        bottleneck = "Train";
      } else {
        bottleneck = prep_pct > train_pct ? "Prep/Train" : "Train/Prep";
      }
      std::printf("%-6s %-8s %-16s %-6s %6.1f %6.1f %6.1f  %s\n",
                  bucket.dimensions, bucket.size, bucket.dataset,
                  ModelKindName(model_kind).c_str(), 100.0 * pick / total,
                  100.0 * prep / total, 100.0 * train / total, bottleneck);
    }
  }
  std::printf("\nPaper shape: Train dominates for XGB/MLP in every bucket; "
              "LR on low-dimensional data leans to Prep.\n");

  // -------------------------------------------------------------------------
  // Evaluation-engine scaling: the same RS search at 1/2/4/8 worker
  // threads with the prefix-transform + result caches enabled. A fixed
  // evaluation budget keeps the work constant, so elapsed-time ratios are
  // parallel speedup (only meaningful on a multi-core machine).
  std::printf("\n--- batch engine scaling (RS, fixed 160-evaluation budget) "
              "---\n");
  std::printf("%-8s %10s %9s %12s %12s\n", "threads", "elapsed_s", "speedup",
              "xform-hit%", "result-hit%");
  {
    TrainValidSplit split = bench::PrepareScenario("electricity_syn", 8, 2000);
    double baseline_seconds = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      PipelineEvaluator evaluator(
          split.train, split.valid,
          bench::HeavyModel(ModelKind::kLogisticRegression));
      RandomSearch rs(/*batch_size=*/16);
      SearchOptions options{Budget::Evaluations(160), 44};
      options.num_threads = threads;
      options.cache_bytes = 64u << 20;
      SearchResult result = RunSearch(&rs, &evaluator, space, options);
      if (threads == 1) baseline_seconds = result.elapsed_seconds;
      long xform_lookups =
          result.transform_cache_hits + result.transform_cache_misses;
      long result_lookups =
          result.result_cache_hits + result.result_cache_misses;
      std::printf("%-8d %10.3f %8.2fx %11.1f%% %11.1f%%\n", threads,
                  result.elapsed_seconds,
                  result.elapsed_seconds > 0.0
                      ? baseline_seconds / result.elapsed_seconds
                      : 0.0,
                  xform_lookups > 0
                      ? 100.0 * static_cast<double>(result.transform_cache_hits) /
                            static_cast<double>(xform_lookups)
                      : 0.0,
                  result_lookups > 0
                      ? 100.0 * static_cast<double>(result.result_cache_hits) /
                            static_cast<double>(result_lookups)
                      : 0.0);
    }
  }
  std::printf("\nExpected shape on a multi-core machine: near-linear speedup "
              "to the physical core count (>= 2.5x at 4 threads for RS, "
              "whose batches keep every worker busy); the transform cache "
              "hit rate climbs as the search re-visits shared prefixes.\n");

  // -------------------------------------------------------------------------
  // Write-ahead journal overhead: the same RS search with and without an
  // fsync'd run journal attached. The per-evaluation cost is one small
  // record build + write + fsync; it should be dwarfed by model training.
  std::printf("\n--- run journal overhead (RS, fixed 160-evaluation budget) "
              "---\n");
  std::printf("%-12s %10s %16s\n", "journal", "elapsed_s", "us/evaluation");
  {
    TrainValidSplit split = bench::PrepareScenario("electricity_syn", 8, 2000);
    double plain_seconds = 0.0;
    for (bool journaled : {false, true}) {
      PipelineEvaluator evaluator(
          split.train, split.valid,
          bench::HeavyModel(ModelKind::kLogisticRegression));
      RandomSearch rs(/*batch_size=*/16);
      SearchOptions options{Budget::Evaluations(160), 44};
      std::unique_ptr<RunJournalWriter> writer;
      std::string journal_path = "/tmp/bench_journal_overhead.journal";
      if (journaled) {
        auto created = RunJournalWriter::Create(journal_path, 1, 2);
        if (!created.ok()) {
          std::printf("journal create failed: %s\n",
                      created.status().ToString().c_str());
          break;
        }
        writer = std::move(created.value());
        options.journal = writer.get();
      }
      SearchResult result = RunSearch(&rs, &evaluator, space, options);
      if (!journaled) plain_seconds = result.elapsed_seconds;
      double overhead_us =
          journaled && result.num_evaluations > 0
              ? 1e6 * (result.elapsed_seconds - plain_seconds) /
                    static_cast<double>(result.num_evaluations)
              : 0.0;
      std::printf("%-12s %10.3f %16.1f\n", journaled ? "fsync" : "off",
                  result.elapsed_seconds, overhead_us);
      writer.reset();
      if (journaled) std::remove(journal_path.c_str());
    }
  }
  std::printf("\nExpected shape: journal overhead is tens of microseconds "
              "per evaluation (one ~100-byte append + fsync), i.e. noise "
              "next to even the cheapest LR training step.\n");

  // -------------------------------------------------------------------------
  // Data plane: the same evaluation stream with fresh buffers per
  // evaluation (scratch = nullptr: every result is an owned allocation)
  // vs a persistent per-caller TransformScratch (the worker-loop
  // configuration: transforms run in place through one reused arena).
  std::printf("\n--- data plane: fresh buffers vs reused scratch (LR, "
              "uncached) ---\n");
  std::printf("%-14s %10s %10s\n", "buffers", "elapsed_s", "evals/s");
  {
    TrainValidSplit split = bench::PrepareScenario("electricity_syn", 8, 2000);
    PipelineEvaluator evaluator(
        split.train, split.valid,
        bench::HeavyModel(ModelKind::kLogisticRegression));
    Rng rng(44);
    std::vector<EvalRequest> requests;
    for (int i = 0; i < 120; ++i) {
      EvalRequest request;
      request.pipeline = space.SampleUniform(&rng);
      request.seed = EvalRequest::DeriveSeed(44, request.pipeline, 1.0, i);
      requests.push_back(std::move(request));
    }
    double fresh_rate = 0.0;
    for (bool reuse_scratch : {false, true}) {
      TransformScratch scratch;
      Stopwatch watch;
      for (const EvalRequest& request : requests) {
        evaluator.Evaluate(request, reuse_scratch ? &scratch : nullptr);
      }
      double elapsed = watch.ElapsedSeconds();
      double rate = elapsed > 0.0
                        ? static_cast<double>(requests.size()) / elapsed
                        : 0.0;
      if (!reuse_scratch) fresh_rate = rate;
      std::printf("%-14s %10.3f %10.1f",
                  reuse_scratch ? "reused-scratch" : "fresh", elapsed, rate);
      if (reuse_scratch && fresh_rate > 0.0) {
        std::printf("  (%.2fx)", rate / fresh_rate);
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape: scratch reuse wins most on preprocessing-"
              "bound configurations (LR + wide pipelines), where the copy-"
              "and-allocate traffic this PR removes was a visible slice of "
              "each evaluation.\n");
  return 0;
}
