/// Figure 7 (and Figures 20-22): Pick/Prep/Train overhead percentages per
/// algorithm on representative datasets for each downstream model, under a
/// wall-clock budget. The paper's finding: "Train" dominates in most
/// cases, then "Prep"; "Pick" is small except for surrogate-heavy
/// algorithms (SMAC/TPE/PLNE/PLE).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/registry.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig7_overhead", "Figure 7 / Figures 20-22",
      "Overhead decomposition per algorithm (percent of elapsed time). "
      "HYPERBAND/BOHB are excluded as in the paper (their pick and "
      "evaluation phases interleave).");

  // The 13 algorithms the paper decomposes.
  std::vector<std::string> algorithms;
  for (const std::string& name : AllSearchAlgorithmNames()) {
    if (name != "HYPERBAND" && name != "BOHB") algorithms.push_back(name);
  }
  const std::vector<std::string> datasets = {"blood_syn", "jasmine_syn",
                                             "electricity_syn"};
  const double kSecondsPerRun = 0.4;

  SearchSpace space = SearchSpace::Default();
  for (const std::string& dataset : datasets) {
    for (ModelKind model_kind : bench::BenchModels()) {
      std::printf("--- %s, %s ---\n", dataset.c_str(),
                  ModelKindName(model_kind).c_str());
      std::printf("%-10s %6s %6s %6s   %s\n", "algorithm", "pick%", "prep%",
                  "train%", "evals");
      TrainValidSplit split = bench::PrepareScenario(dataset, 7, 600);
      for (const std::string& name : algorithms) {
        PipelineEvaluator evaluator(split.train, split.valid,
                                    bench::HeavyModel(model_kind));
        auto algorithm = MakeSearchAlgorithm(name);
        SearchResult result =
            RunSearch(algorithm.value().get(), &evaluator, space, {Budget::Seconds(kSecondsPerRun), 66});
        double total = result.pick_seconds + result.prep_seconds +
                       result.train_seconds;
        if (total <= 0.0) total = 1.0;
        std::printf("%-10s %6.1f %6.1f %6.1f   %ld\n", name.c_str(),
                    100.0 * result.pick_seconds / total,
                    100.0 * result.prep_seconds / total,
                    100.0 * result.train_seconds / total,
                    result.num_evaluations);
      }
      std::printf("\n");
    }
  }
  std::printf("Paper shape: Train dominates for XGB/MLP everywhere and for "
              "LR on larger data; Prep matters for LR on small data; Pick "
              "is large only for LSTM-surrogate algorithms (PLNE/PLE) and "
              "SMAC.\n");
  return 0;
}
