/// Micro-benchmarks (google-benchmark): training throughput of the three
/// downstream models — the "Train" component of the paper's Section 5.3
/// decomposition, which the paper identifies as the dominant bottleneck.

#include <benchmark/benchmark.h>

#include "core/auto_fp.h"
#include "data/synthetic.h"

namespace {

using namespace autofp;

Dataset MakeDataset(size_t rows, int classes) {
  SyntheticSpec spec;
  spec.name = "micro";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = rows;
  spec.cols = 16;
  spec.num_classes = classes;
  spec.seed = 11;
  return GenerateSynthetic(spec);
}

void BM_ModelTrain(benchmark::State& state) {
  auto kind = static_cast<ModelKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  int classes = static_cast<int>(state.range(2));
  Dataset data = MakeDataset(rows, classes);
  ModelConfig config = ModelConfig::Defaults(kind);
  for (auto _ : state) {
    auto model = MakeClassifier(config);
    model->Train(data.features, data.labels, classes);
    benchmark::DoNotOptimize(model);
  }
  state.SetLabel(ModelKindName(kind) + "/" + std::to_string(classes) +
                 "cls");
}

void ModelArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t kind : {0, 1, 2}) {
    for (int64_t rows : {256, 1024}) {
      for (int64_t classes : {2, 5}) {
        bench->Args({kind, rows, classes});
      }
    }
  }
}
BENCHMARK(BM_ModelTrain)->Apply(ModelArgs)->Unit(benchmark::kMillisecond);

void BM_ModelPredictBatch(benchmark::State& state) {
  // Inference throughput: the base-class per-row loop
  // (`Classifier::PredictBatch`, called non-virtually) vs the real batch
  // override GBDT/MLP provide — the path the serving runtime
  // (src/serve/) rides.
  auto kind = static_cast<ModelKind>(state.range(0));
  const bool batch_path = state.range(1) != 0;
  Dataset data = MakeDataset(2048, 2);
  auto model = MakeClassifier(ModelConfig::Defaults(kind));
  model->Train(data.features, data.labels, 2);
  for (auto _ : state) {
    std::vector<int> predictions =
        batch_path ? model->PredictBatch(data.features)
                   : model->Classifier::PredictBatch(data.features);
    benchmark::DoNotOptimize(predictions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.features.rows()));
  state.SetLabel(ModelKindName(kind) + (batch_path ? "/batch" : "/per-row"));
}
BENCHMARK(BM_ModelPredictBatch)
    ->Args({1, 0})->Args({1, 1})->Args({2, 0})->Args({2, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_FullEvaluation(benchmark::State& state) {
  // One complete pipeline evaluation: prep + train + score, the unit the
  // search budgets count.
  Dataset data = MakeDataset(512, 2);
  Rng rng(12);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  auto kind = static_cast<ModelKind>(state.range(0));
  PipelineEvaluator evaluator(split.train, split.valid,
                              ModelConfig::Defaults(kind));
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer, PreprocessorKind::kMinMaxScaler});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(request));
  }
  state.SetLabel(ModelKindName(kind));
}
BENCHMARK(BM_FullEvaluation)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
