/// Micro-benchmarks (google-benchmark): training throughput of the three
/// downstream models — the "Train" component of the paper's Section 5.3
/// decomposition, which the paper identifies as the dominant bottleneck.
///
/// `--json [path]` switches to the model-kernel roofline report instead:
/// the SIMD primitives the model inner loops ride (Dot, Axpy, the
/// branchless histogram binning, streaming moments accumulation) timed
/// scalar vs vectorized, with element throughput and speedups.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/auto_fp.h"
#include "data/synthetic.h"
#include "stream/moments.h"
#include "util/simd.h"

namespace {

using namespace autofp;

Dataset MakeDataset(size_t rows, int classes) {
  SyntheticSpec spec;
  spec.name = "micro";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = rows;
  spec.cols = 16;
  spec.num_classes = classes;
  spec.seed = 11;
  return GenerateSynthetic(spec);
}

void BM_ModelTrain(benchmark::State& state) {
  auto kind = static_cast<ModelKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  int classes = static_cast<int>(state.range(2));
  Dataset data = MakeDataset(rows, classes);
  ModelConfig config = ModelConfig::Defaults(kind);
  for (auto _ : state) {
    auto model = MakeClassifier(config);
    model->Train(data.features, data.labels, classes);
    benchmark::DoNotOptimize(model);
  }
  state.SetLabel(ModelKindName(kind) + "/" + std::to_string(classes) +
                 "cls");
}

void ModelArgs(benchmark::internal::Benchmark* bench) {
  for (int64_t kind : {0, 1, 2}) {
    for (int64_t rows : {256, 1024}) {
      for (int64_t classes : {2, 5}) {
        bench->Args({kind, rows, classes});
      }
    }
  }
}
BENCHMARK(BM_ModelTrain)->Apply(ModelArgs)->Unit(benchmark::kMillisecond);

void BM_ModelPredictBatch(benchmark::State& state) {
  // Inference throughput: the base-class per-row loop
  // (`Classifier::PredictBatch`, called non-virtually) vs the real batch
  // override GBDT/MLP provide — the path the serving runtime
  // (src/serve/) rides.
  auto kind = static_cast<ModelKind>(state.range(0));
  const bool batch_path = state.range(1) != 0;
  Dataset data = MakeDataset(2048, 2);
  auto model = MakeClassifier(ModelConfig::Defaults(kind));
  model->Train(data.features, data.labels, 2);
  for (auto _ : state) {
    std::vector<int> predictions =
        batch_path ? model->PredictBatch(data.features)
                   : model->Classifier::PredictBatch(data.features);
    benchmark::DoNotOptimize(predictions);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.features.rows()));
  state.SetLabel(ModelKindName(kind) + (batch_path ? "/batch" : "/per-row"));
}
BENCHMARK(BM_ModelPredictBatch)
    ->Args({1, 0})->Args({1, 1})->Args({2, 0})->Args({2, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_FullEvaluation(benchmark::State& state) {
  // One complete pipeline evaluation: prep + train + score, the unit the
  // search budgets count.
  Dataset data = MakeDataset(512, 2);
  Rng rng(12);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  auto kind = static_cast<ModelKind>(state.range(0));
  PipelineEvaluator evaluator(split.train, split.valid,
                              ModelConfig::Defaults(kind));
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer, PreprocessorKind::kMinMaxScaler});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(request));
  }
  state.SetLabel(ModelKindName(kind));
}
BENCHMARK(BM_FullEvaluation)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// --- Model-kernel roofline report (--json) ----------------------------------

/// Best-of-N nanoseconds for `body()` run over the same inputs.
template <typename Fn>
double BestOfNs(Fn body) {
  constexpr int kReps = 9;  // 1 warmup + best of 8
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    if (rep == 0) continue;
    if (best == 0.0 || ns < best) best = ns;
  }
  return best;
}

void PrintKernelLine(std::FILE* out, const char* name, double scalar_ns,
                     double simd_ns, double elements, bool last) {
  std::fprintf(out,
               "    {\"kernel\": \"%s\", \"scalar_ns\": %.0f, "
               "\"simd_ns\": %.0f, \"elements_per_s\": %.0f, "
               "\"speedup\": %.2f}%s\n",
               name, scalar_ns, simd_ns, elements * 1e9 / simd_ns,
               scalar_ns / simd_ns, last ? "" : ",");
}

int RunModelRooflineReport(const char* path) {
  constexpr size_t kN = 1024;        // one GEMM row / LR feature vector
  constexpr size_t kBatch = 4096;    // rows per pass
  Rng rng(23);
  std::vector<double> a(kN), b(kN);
  for (size_t i = 0; i < kN; ++i) {
    a[i] = rng.Uniform(-1.0, 1.0);
    b[i] = rng.Uniform(-1.0, 1.0);
  }

  std::FILE* out = path != nullptr ? std::fopen(path, "w") : stdout;
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n", simd::kBackendName);
  std::fprintf(out, "  \"double_lanes\": %zu,\n", simd::kDoubleLanes);
  std::fprintf(out, "  \"kernels\": [\n");

  // Dot: the MLP/LSTM GEMM and LR logit primitive. kBatch dots of kN.
  double acc = 0.0;
  const double dot_scalar = BestOfNs([&] {
    for (size_t i = 0; i < kBatch; ++i) {
      acc += simd::DotScalar(a.data(), b.data(), kN);
    }
  });
  const double dot_simd = BestOfNs([&] {
    for (size_t i = 0; i < kBatch; ++i) {
      acc += simd::Dot(a.data(), b.data(), kN);
    }
  });
  benchmark::DoNotOptimize(acc);
  PrintKernelLine(out, "dot_1024", dot_scalar, dot_simd,
                  static_cast<double>(kBatch * kN), false);

  // Axpy: the backward-pass gradient accumulation primitive.
  std::vector<double> y(kN, 0.0);
  const double axpy_scalar = BestOfNs([&] {
    simd::ScopedForceScalar forced(true);
    for (size_t i = 0; i < kBatch; ++i) {
      simd::Axpy(1e-9, a.data(), y.data(), kN);
    }
  });
  const double axpy_simd = BestOfNs([&] {
    for (size_t i = 0; i < kBatch; ++i) {
      simd::Axpy(1e-9, a.data(), y.data(), kN);
    }
  });
  benchmark::DoNotOptimize(y);
  PrintKernelLine(out, "axpy_1024", axpy_scalar, axpy_simd,
                  static_cast<double>(kBatch * kN), false);

  // GBDT histogram binning: branchless lower-bound vs std::lower_bound
  // over a 256-edge table (the tree builder's per-row hot path).
  std::vector<double> edges(256);
  for (double& e : edges) e = rng.Uniform(-3.0, 3.0);
  std::sort(edges.begin(), edges.end());
  std::vector<double> values(kBatch);
  for (double& v : values) v = rng.Uniform(-4.0, 4.0);
  size_t bins = 0;
  const double bin_scalar = BestOfNs([&] {
    for (double v : values) {
      bins += static_cast<size_t>(
          std::lower_bound(edges.begin(), edges.end(), v) - edges.begin());
    }
  });
  const double bin_branchless = BestOfNs([&] {
    for (double v : values) {
      bins += simd::LowerBoundIndex(edges.data(), edges.size(), v);
    }
  });
  benchmark::DoNotOptimize(bins);
  PrintKernelLine(out, "histogram_binning_256", bin_scalar, bin_branchless,
                  static_cast<double>(kBatch), false);

  // Streaming moments: Welford accumulate across 16 columns per row.
  Dataset stream_data = MakeDataset(kBatch, 2);
  const double moments_scalar = BestOfNs([&] {
    simd::ScopedForceScalar forced(true);
    RunningMoments moments(stream_data.features.cols());
    moments.Observe(stream_data.features);
    benchmark::DoNotOptimize(moments);
  });
  const double moments_simd = BestOfNs([&] {
    RunningMoments moments(stream_data.features.cols());
    moments.Observe(stream_data.features);
    benchmark::DoNotOptimize(moments);
  });
  PrintKernelLine(out, "running_moments_16col", moments_scalar, moments_simd,
                  static_cast<double>(stream_data.features.size()), true);

  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--json") {
    return RunModelRooflineReport(argc >= 3 ? argv[2] : nullptr);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
