/// Figure 9 (Figures 26-28): One-step vs Two-step on the extended
/// *high-cardinality* parameter space (Table 7), PBT, varying budget.
/// The paper's finding: Two-step wins in most cases — One-step's flattened
/// alphabet is ~99.3% QuantileTransformer variants, so its pipelines are
/// dominated by duplicated QuantileTransformers.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/two_step.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig9_high_cardinality", "Figure 9",
      "One-step vs Two-step (PBT) on the Table 7 high-cardinality space "
      "(~4012 flattened operators, 99.2% QuantileTransformer).");

  const std::vector<std::string> datasets = {"australian_syn", "madeline_syn",
                                             "vehicle_syn"};
  const std::vector<long> budgets = {40, 80, 160};
  const std::vector<uint64_t> seeds = {1, 2, 3};
  ParameterSpace parameters = ParameterSpace::HighCardinality();

  int one_step_wins = 0, two_step_wins = 0;
  size_t one_step_quantile_steps = 0, one_step_total_steps = 0;
  for (const std::string& dataset : datasets) {
    TrainValidSplit split = bench::PrepareScenario(dataset, 10, 500);
    ModelConfig model = bench::BenchModel(ModelKind::kLogisticRegression);
    std::printf("--- %s (LR) ---\n", dataset.c_str());
    std::printf("%-8s %-10s %-10s %s\n", "budget", "One-step", "Two-step",
                "winner");
    for (long budget : budgets) {
      double one_total = 0.0, two_total = 0.0;
      for (uint64_t seed : seeds) {
        PipelineEvaluator one_eval(split.train, split.valid, model);
        SearchResult one = RunOneStep("PBT", &one_eval, parameters, {Budget::Evaluations(budget), seed});
        one_total += one.best_accuracy;
        for (const PreprocessorConfig& step : one.best_pipeline.steps) {
          ++one_step_total_steps;
          if (step.kind == PreprocessorKind::kQuantileTransformer) {
            ++one_step_quantile_steps;
          }
        }
        TwoStepConfig config;
        config.algorithm = "PBT";
            // One assignment per 40 evaluations, mirroring the paper's "at most
        // one parameter group per 60s round".
        config.inner_budget = Budget::Evaluations(40);
        PipelineEvaluator two_eval(split.train, split.valid, model);
        two_total += RunTwoStep(config, &two_eval, parameters, {Budget::Evaluations(budget), seed})
                         .best_accuracy;
      }
      double one = one_total / seeds.size();
      double two = two_total / seeds.size();
      (one >= two ? one_step_wins : two_step_wins) += 1;
      std::printf("%-8ld %-10.4f %-10.4f %s\n", budget, one, two,
                  one >= two ? "One-step" : "Two-step");
    }
  }
  std::printf("\nTwo-step wins %d / %d cells (paper: Two-step wins in most "
              "high-cardinality cases).\n",
              two_step_wins, one_step_wins + two_step_wins);
  std::printf("QuantileTransformer fraction in One-step winners: %.1f%% "
              "(the duplicated-preprocessor failure mode).\n",
              one_step_total_steps > 0
                  ? 100.0 * static_cast<double>(one_step_quantile_steps) /
                        static_cast<double>(one_step_total_steps)
                  : 0.0);
  return 0;
}
