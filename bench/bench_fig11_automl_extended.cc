/// Figure 11 (Figure 30): the AutoML-context comparison repeated on the
/// *extended* low-cardinality search space (Table 6): Auto-FP runs
/// One-step PBT over the 31-operator alphabet. The paper's finding: the
/// Figure 10 conclusions generalize to the wider space.

#include <cstdio>
#include <vector>

#include "automl/hpo.h"
#include "automl/tpot_fp.h"
#include "bench/bench_util.h"
#include "search/two_step.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig11_automl_extended", "Figure 11",
      "Auto-FP (One-step PBT over the Table 6 extended space) vs TPOT-FP "
      "vs HPO, equal budgets.");

  const std::vector<std::string> datasets = {"blood_syn",  "vehicle_syn",
                                             "phoneme_syn", "heart_syn",
                                             "kc1_syn",     "ionosphere_syn"};
  const long kBudget = 60;
  ParameterSpace parameters = ParameterSpace::LowCardinality();

  for (ModelKind model_kind : bench::BenchModels()) {
    std::printf("--- downstream model %s ---\n",
                ModelKindName(model_kind).c_str());
    std::printf("%-16s %-8s %-9s %-9s %-9s %s\n", "dataset", "no-FP",
                "Auto-FP", "TPOT-FP", "HPO", "Auto-FP wins vs");
    int beats_tpot = 0, beats_hpo = 0;
    for (const std::string& dataset : datasets) {
      TrainValidSplit split = bench::PrepareScenario(dataset, 13, 500);
      // Full default model configs: the HPO search space is centered on
      // these defaults, so all three methods tune the same model family.
      ModelConfig model = ModelConfig::Defaults(model_kind);

      PipelineEvaluator autofp_eval(split.train, split.valid, model);
      SearchResult auto_fp = RunOneStep("PBT", &autofp_eval, parameters, {Budget::Evaluations(kBudget), 14});

      PipelineEvaluator tpot_eval(split.train, split.valid, model);
      SearchResult tpot = RunTpotFp(TpotFpConfig{}, &tpot_eval,
                                    Budget::Evaluations(kBudget), 14);

      HpoResult hpo = RunHpoSearch(model_kind, split.train, split.valid,
                                   Budget::Evaluations(kBudget), 14);

      bool wins_tpot = auto_fp.best_accuracy >= tpot.best_accuracy;
      bool wins_hpo = auto_fp.best_accuracy >= hpo.best_accuracy;
      beats_tpot += wins_tpot;
      beats_hpo += wins_hpo;
      std::printf("%-16s %-8.4f %-9.4f %-9.4f %-9.4f %s%s\n",
                  dataset.c_str(), auto_fp.baseline_accuracy,
                  auto_fp.best_accuracy, tpot.best_accuracy,
                  hpo.best_accuracy, wins_tpot ? "TPOT " : "",
                  wins_hpo ? "HPO" : "");
    }
    std::printf("Auto-FP >= TPOT-FP on %d/%zu, >= HPO on %d/%zu datasets\n\n",
                beats_tpot, datasets.size(), beats_hpo, datasets.size());
  }
  std::printf("Paper shape: same as Figure 10 — the Auto-FP advantage "
              "persists in the extended search space.\n");
  return 0;
}
