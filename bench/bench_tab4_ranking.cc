/// Table 4 (+ Tables 12-15 / Figures 12-19): the headline comparison.
/// All 15 search algorithms on a suite of datasets x 3 downstream models x
/// 2 budgets; per-scenario validation-accuracy improvements over no-FP and
/// the average ranking over scenarios where FP matters (>= 1.5%
/// improvement). The paper's finding: evolution-based algorithms (PBT,
/// TEVO_*) lead; RS is a strong baseline; RL- and bandit-based algorithms
/// trail; PMNE/PME are the only competitive surrogate algorithms.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/registry.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_tab4_ranking", "Table 4 (and Tables 12-15)",
      "Average ranking of the 15 algorithms over dataset x model x budget "
      "scenarios. Budgets are wall-clock (0.2s / 0.5s instead of the "
      "paper's 60-3600s) so that expensive surrogate fitting costs search "
      "time, exactly as in the paper.");

  const std::vector<std::string> datasets = {
      "blood_syn",      "vehicle_syn", "phoneme_syn",
      "ionosphere_syn", "heart_syn",   "kc1_syn"};
  const std::vector<double> budgets = {0.2, 0.5};
  const std::vector<std::string>& algorithms = AllSearchAlgorithmNames();

  std::vector<ScenarioScores> all_scenarios;
  std::vector<std::vector<ScenarioScores>> by_model(bench::BenchModels().size());

  SearchSpace space = SearchSpace::Default();
  for (size_t m = 0; m < bench::BenchModels().size(); ++m) {
    ModelKind model_kind = bench::BenchModels()[m];
    for (const std::string& dataset : datasets) {
      TrainValidSplit split = bench::PrepareScenario(dataset, 5, 400);
      for (double budget : budgets) {
        char label[80];
        std::snprintf(label, sizeof(label), "%s/%s/%.1fs", dataset.c_str(),
                      ModelKindName(model_kind).c_str(), budget);
        ScenarioScores scenario;
        scenario.scenario = label;
        for (const std::string& name : algorithms) {
          PipelineEvaluator evaluator(split.train, split.valid,
                                      bench::BenchModel(model_kind));
          auto algorithm = MakeSearchAlgorithm(name);
          SearchResult result =
              RunSearch(algorithm.value().get(), &evaluator, space, {Budget::Seconds(budget), 77});
          scenario.baseline = result.baseline_accuracy;
          scenario.accuracies.push_back(result.best_accuracy);
        }
        all_scenarios.push_back(scenario);
        by_model[m].push_back(scenario);
        std::printf(".");
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n\n");

  // Per-scenario improvements (the Tables 12-15 view).
  std::printf("Validation-accuracy improvement over no-FP (x100), per "
              "scenario:\n%-28s", "scenario");
  for (const std::string& name : algorithms) {
    std::printf(" %9s", name.c_str());
  }
  std::printf("\n");
  for (const ScenarioScores& scenario : all_scenarios) {
    std::printf("%-28s", scenario.scenario.c_str());
    for (double accuracy : scenario.accuracies) {
      std::printf(" %9.2f", 100.0 * (accuracy - scenario.baseline));
    }
    std::printf("\n");
  }

  // Table 4: average rank per model and overall.
  auto print_ranks = [&](const char* label,
                         const std::vector<ScenarioScores>& scenarios) {
    size_t qualified = 0;
    std::vector<double> ranks = AverageRanks(scenarios, 0.015, &qualified);
    std::printf("\n%s average ranking (%zu qualified scenarios):\n", label,
                qualified);
    std::vector<size_t> order(algorithms.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return ranks[a] < ranks[b]; });
    for (size_t i : order) {
      std::printf("  %-10s %6.2f\n", algorithms[i].c_str(), ranks[i]);
    }
  };
  for (size_t m = 0; m < bench::BenchModels().size(); ++m) {
    print_ranks(ModelKindName(bench::BenchModels()[m]).c_str(), by_model[m]);
  }
  print_ranks("OVERALL", all_scenarios);
  std::printf("\nPaper shape: PBT/TEVO on top, RS mid-pack, PMNE/PME the "
              "best surrogates, REINFORCE/ENAS/HYPERBAND/BOHB at the "
              "bottom.\n");
  return 0;
}
