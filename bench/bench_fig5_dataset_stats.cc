/// Figure 5 / Table 9: statistics of the benchmark datasets. Our suite is
/// the synthetic analogue of the paper's 45 datasets (see DESIGN.md); this
/// bench prints the per-dataset shapes and the distribution summaries shown
/// in Figure 5 (size, rows, columns, class counts, binary vs multi-class).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace autofp;
  bench::PrintHeader("bench_fig5_dataset_stats", "Figure 5 / Table 9",
                     "Shapes of the synthetic benchmark suite (analogue of "
                     "the paper's 45 real datasets).");

  std::vector<SyntheticSpec> specs = BenchmarkSuiteSpecs();
  std::printf("%-18s %-16s %9s %7s %8s %9s\n", "dataset", "family",
              "rows", "cols", "classes", "size(MB)");
  std::vector<double> sizes, rows, cols;
  int binary = 0, multi = 0;
  for (const SyntheticSpec& spec : specs) {
    double size_mb =
        static_cast<double>(spec.rows * spec.cols * 8) / 1e6;
    std::printf("%-18s %-16s %9zu %7zu %8d %9.2f\n", spec.name.c_str(),
                FamilyName(spec.family).c_str(), spec.rows, spec.cols,
                spec.num_classes, size_mb);
    sizes.push_back(size_mb);
    rows.push_back(static_cast<double>(spec.rows));
    cols.push_back(static_cast<double>(spec.cols));
    (spec.num_classes == 2 ? binary : multi) += 1;
  }
  auto summary = [](const char* label, std::vector<double> values) {
    std::sort(values.begin(), values.end());
    std::printf("%-10s min %-10.2f median %-10.2f max %-10.2f\n", label,
                values.front(), values[values.size() / 2], values.back());
  };
  std::printf("\ntotal datasets: %zu (paper: 45)\n", specs.size());
  summary("size(MB)", sizes);
  summary("rows", rows);
  summary("cols", cols);
  std::printf("binary: %d, multi-class: %d (paper: 28 binary, 17 multi)\n",
              binary, multi);
  return 0;
}
