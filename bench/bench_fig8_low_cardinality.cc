/// Figure 8 (Figures 23-25): One-step vs Two-step on the extended
/// *low-cardinality* parameter space (Table 6), PBT, varying budget.
/// The paper's finding: One-step wins in most cases (Two-step explores too
/// few parameter assignments per unit budget).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/two_step.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig8_low_cardinality", "Figure 8",
      "One-step vs Two-step (PBT) on the Table 6 low-cardinality space "
      "(31 flattened operators), increasing budgets, averaged over seeds.");

  const std::vector<std::string> datasets = {"australian_syn", "madeline_syn",
                                             "vehicle_syn"};
  const std::vector<long> budgets = {40, 80, 160};
  const std::vector<uint64_t> seeds = {1, 2, 3};
  ParameterSpace parameters = ParameterSpace::LowCardinality();

  int one_step_wins = 0, two_step_wins = 0;
  for (const std::string& dataset : datasets) {
    TrainValidSplit split = bench::PrepareScenario(dataset, 9, 500);
    ModelConfig model = bench::BenchModel(ModelKind::kLogisticRegression);
    std::printf("--- %s (LR) ---\n", dataset.c_str());
    std::printf("%-8s %-10s %-10s %s\n", "budget", "One-step", "Two-step",
                "winner");
    for (long budget : budgets) {
      double one_total = 0.0, two_total = 0.0;
      for (uint64_t seed : seeds) {
        PipelineEvaluator one_eval(split.train, split.valid, model);
        one_total += RunOneStep("PBT", &one_eval, parameters, {Budget::Evaluations(budget), seed})
                         .best_accuracy;
        TwoStepConfig config;
        config.algorithm = "PBT";
            // One assignment per 40 evaluations, mirroring the paper's "at most
        // one parameter group per 60s round".
        config.inner_budget = Budget::Evaluations(40);
        PipelineEvaluator two_eval(split.train, split.valid, model);
        two_total += RunTwoStep(config, &two_eval, parameters, {Budget::Evaluations(budget), seed})
                         .best_accuracy;
      }
      double one = one_total / seeds.size();
      double two = two_total / seeds.size();
      (one >= two ? one_step_wins : two_step_wins) += 1;
      std::printf("%-8ld %-10.4f %-10.4f %s\n", budget, one, two,
                  one >= two ? "One-step" : "Two-step");
    }
  }
  std::printf("\nOne-step wins %d / %d cells (paper: One-step wins in most "
              "low-cardinality cases).\n",
              one_step_wins, one_step_wins + two_step_wins);
  return 0;
}
