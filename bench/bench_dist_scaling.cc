/// Distributed-evaluation scaling: evaluations/sec of one fixed request
/// batch under the two concurrency engines — in-process threads
/// (ParallelEvaluator) and forked worker processes (DistributedEvaluator
/// over InProcessWorkerSpawner, the same lease/wire machinery as
/// `autofp --workers N` minus exec) — at 1/2/4/8 ways.
///
/// What to look for: threads win on this scale of dataset (no
/// serialization, shared transform cache possible), and the gap is the
/// price of the process boundary — framing, journal-grade result
/// encoding, no shared scratch. Workers only pay off when evaluation
/// cost dominates (bigger data, heavier models) or when crash isolation
/// is the point (a worker segfault costs a lease, not the run). Run
/// after touching src/dist/ or the parallel evaluator; `--json FILE`
/// writes the committed BENCH_dist.json snapshot
/// (scripts/bench_snapshot.sh).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/parallel_evaluator.h"
#include "core/run_journal.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "util/timer.h"

namespace {

using namespace autofp;
using bench::PrintHeader;

/// A deterministic batch covering depths 1-3 over a small kind set —
/// the shape of one evolutionary generation.
std::vector<EvalRequest> MakeBatch(size_t count) {
  const PreprocessorKind kinds[] = {
      PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
      PreprocessorKind::kMaxAbsScaler,   PreprocessorKind::kNormalizer,
      PreprocessorKind::kBinarizer,      PreprocessorKind::kPowerTransformer};
  constexpr size_t kNumKinds = sizeof(kinds) / sizeof(kinds[0]);
  std::vector<EvalRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    std::vector<PreprocessorKind> steps;
    for (size_t depth = 0; depth <= i % 3; ++depth) {
      steps.push_back(kinds[(i * 5 + depth * 7) % kNumKinds]);
    }
    EvalRequest request;
    request.pipeline = PipelineSpec::FromKinds(steps);
    request.seed = EvalRequest::DeriveSeed(17, request.pipeline,
                                           request.budget_fraction, 0);
    requests.push_back(std::move(request));
  }
  return requests;
}

struct Cell {
  const char* mode = "";
  int ways = 0;
  double evals_per_sec = 0.0;
  double speedup = 0.0;
};

double TimeBatch(EvaluatorInterface* engine,
                 const std::vector<EvalRequest>& batch, int repeats) {
  Stopwatch wall;
  size_t completed = 0;
  for (int r = 0; r < repeats; ++r) {
    std::vector<Evaluation> results = engine->EvaluateAll(batch);
    AUTOFP_CHECK_EQ(results.size(), batch.size());
    completed += results.size();
  }
  return static_cast<double>(completed) / wall.ElapsedSeconds();
}

void WriteJson(const std::string& path, const std::vector<Cell>& cells,
               size_t batch_size) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"dist_scaling\",\n  \"batch_size\": " << batch_size
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"mode\": \"" << cell.mode << "\", \"ways\": " << cell.ways
        << ", \"evals_per_sec\": " << static_cast<long>(cell.evals_per_sec)
        << ", \"speedup\": " << cell.speedup << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  PrintHeader("Distributed scaling", "distributed search (DESIGN.md)",
              "evaluations/sec of one fixed batch: in-process threads "
              "(ParallelEvaluator) vs forked worker processes "
              "(DistributedEvaluator) at 1/2/4/8 ways");

  TrainValidSplit split = bench::PrepareScenario("sylvine_syn", 8, 1500);
  PipelineEvaluator local(split.train, split.valid,
                          bench::BenchModel(ModelKind::kLogisticRegression));
  const uint64_t fingerprint = DatasetFingerprint(split.train);
  const std::vector<EvalRequest> batch = MakeBatch(48);
  constexpr int kRepeats = 4;

  std::printf("\n%zu requests/batch x %d batches | %zu train rows x %zu "
              "cols | LR\n\n",
              batch.size(), kRepeats, split.train.num_rows(),
              split.train.num_cols());
  std::printf("%10s %6s %14s %10s\n", "mode", "ways", "evals/s", "speedup");

  std::vector<Cell> cells;
  double thread_base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    ParallelEvaluator engine(&local, threads);
    Cell cell;
    cell.mode = "threads";
    cell.ways = threads;
    cell.evals_per_sec = TimeBatch(&engine, batch, kRepeats);
    if (threads == 1) thread_base = cell.evals_per_sec;
    cell.speedup = cell.evals_per_sec / thread_base;
    std::printf("%10s %6d %14.1f %9.2fx\n", cell.mode, cell.ways,
                cell.evals_per_sec, cell.speedup);
    cells.push_back(cell);
  }

  double worker_base = 0.0;
  for (int num_workers : {1, 2, 4, 8}) {
    DistOptions options;
    options.num_workers = num_workers;
    options.lease_size = 4;
    options.expected_dataset_fingerprint = fingerprint;
    // Workers are forked, not exec'd: they inherit the fitted local
    // evaluator by copy-on-write, exactly what `autofp --workers N`
    // reconstructs from the shared-dataset file.
    DistributedEvaluator engine(
        &local, InProcessWorkerSpawner([&local, fingerprint](
                                           int fd, int worker_index) {
          return RunDistWorker(fd, worker_index, fingerprint, &local,
                               WorkerHooks{});
        }),
        options);
    Cell cell;
    cell.mode = "workers";
    cell.ways = num_workers;
    cell.evals_per_sec = TimeBatch(&engine, batch, kRepeats);
    if (num_workers == 1) worker_base = cell.evals_per_sec;
    cell.speedup = cell.evals_per_sec / worker_base;
    std::printf("%10s %6d %14.1f %9.2fx\n", cell.mode, cell.ways,
                cell.evals_per_sec, cell.speedup);
    engine.Shutdown();
    cells.push_back(cell);
  }

  if (!json_path.empty()) {
    WriteJson(json_path, cells, batch.size());
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
