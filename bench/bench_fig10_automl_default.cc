/// Figure 10 (Figure 29): Auto-FP in an AutoML context, default search
/// space. Auto-FP (PBT, 7 preprocessors) vs TPOT-FP (GP, 5 preprocessors)
/// vs HPO (hyperparameter search, no FP) under the same budget, per
/// dataset per model. The paper's finding: Auto-FP beats TPOT-FP on most
/// datasets and matches/beats HPO for LR and MLP.

#include <cstdio>
#include <vector>

#include "automl/hpo.h"
#include "automl/tpot_fp.h"
#include "bench/bench_util.h"
#include "search/registry.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig10_automl_default", "Figure 10",
      "Auto-FP (PBT) vs TPOT-FP vs HPO, default space, equal budgets.");

  const std::vector<std::string> datasets = {"blood_syn",  "vehicle_syn",
                                             "phoneme_syn", "heart_syn",
                                             "kc1_syn",     "ionosphere_syn"};
  const long kBudget = 60;

  for (ModelKind model_kind : bench::BenchModels()) {
    std::printf("--- downstream model %s ---\n",
                ModelKindName(model_kind).c_str());
    std::printf("%-16s %-8s %-9s %-9s %-9s %s\n", "dataset", "no-FP",
                "Auto-FP", "TPOT-FP", "HPO", "Auto-FP wins vs");
    int beats_tpot = 0, beats_hpo = 0;
    for (const std::string& dataset : datasets) {
      TrainValidSplit split = bench::PrepareScenario(dataset, 11, 500);
      // Full default model configs: the HPO search space is centered on
      // these defaults, so all three methods tune the same model family.
      ModelConfig model = ModelConfig::Defaults(model_kind);

      PipelineEvaluator autofp_eval(split.train, split.valid, model);
      auto pbt = MakeSearchAlgorithm("PBT");
      SearchResult auto_fp =
          RunSearch(pbt.value().get(), &autofp_eval, SearchSpace::Default(), {Budget::Evaluations(kBudget), 12});

      PipelineEvaluator tpot_eval(split.train, split.valid, model);
      SearchResult tpot = RunTpotFp(TpotFpConfig{}, &tpot_eval,
                                    Budget::Evaluations(kBudget), 12);

      HpoResult hpo = RunHpoSearch(model_kind, split.train, split.valid,
                                   Budget::Evaluations(kBudget), 12);

      bool wins_tpot = auto_fp.best_accuracy >= tpot.best_accuracy;
      bool wins_hpo = auto_fp.best_accuracy >= hpo.best_accuracy;
      beats_tpot += wins_tpot;
      beats_hpo += wins_hpo;
      std::printf("%-16s %-8.4f %-9.4f %-9.4f %-9.4f %s%s\n",
                  dataset.c_str(), auto_fp.baseline_accuracy,
                  auto_fp.best_accuracy, tpot.best_accuracy,
                  hpo.best_accuracy, wins_tpot ? "TPOT " : "",
                  wins_hpo ? "HPO" : "");
    }
    std::printf("Auto-FP >= TPOT-FP on %d/%zu, >= HPO on %d/%zu datasets\n\n",
                beats_tpot, datasets.size(), beats_hpo, datasets.size());
  }
  std::printf("Paper shape: Auto-FP beats TPOT-FP on most datasets for all "
              "three models, and beats HPO on nearly all datasets for LR "
              "and MLP (XGB is closer).\n");
  return 0;
}
