/// Streaming-observer overhead: rows/sec through each component that sits
/// on (or next to) the serving batch thread — Welford running moments,
/// the P² quantile sketch, the reservoir sampler, and the combined
/// drift-monitor path (moments window + per-window comparison against
/// the reference stats).
///
/// What to look for: every component should sustain rows/sec orders of
/// magnitude above the socket front end's throughput (BENCH_serve.json),
/// i.e. the drift loop is effectively free in the batch path. Run after
/// touching src/stream/; `--json FILE` writes the committed
/// BENCH_stream.json snapshot (scripts/bench_snapshot.sh).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stream/drift.h"
#include "stream/moments.h"
#include "stream/quantile_sketch.h"
#include "stream/reservoir.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace autofp;

constexpr size_t kRows = 200000;
constexpr size_t kCols = 8;
constexpr size_t kWindow = 512;

struct Cell {
  const char* path = "";
  double rows_per_sec = 0.0;
  double ns_per_row = 0.0;
};

Matrix MakeRows(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      data(r, c) = rng.Gaussian(static_cast<double>(c), 1.0 + 0.25 * c);
    }
  }
  return data;
}

Cell Measure(const char* path, size_t rows, double seconds) {
  Cell cell;
  cell.path = path;
  cell.rows_per_sec = static_cast<double>(rows) / seconds;
  cell.ns_per_row = seconds * 1e9 / static_cast<double>(rows);
  return cell;
}

void WriteJson(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"stream_overhead\",\n  \"rows\": " << kRows
      << ",\n  \"cols\": " << kCols << ",\n  \"window\": " << kWindow
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"path\": \"" << cell.path << "\", \"rows_per_sec\": "
        << static_cast<long>(cell.rows_per_sec) << ", \"ns_per_row\": "
        << static_cast<long>(cell.ns_per_row) << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  bench::PrintHeader("Streaming observer overhead", "serving extension",
                     "rows/sec per component; all should dwarf the socket "
                     "front end's throughput");

  const Matrix data = MakeRows(kRows, kCols, /*seed=*/17);
  std::vector<Cell> cells;
  double checksum = 0.0;  // defeats dead-code elimination.

  {
    RunningMoments moments(kCols);
    Stopwatch wall;
    moments.Observe(data);
    const double seconds = wall.ElapsedSeconds();
    checksum += moments.Mean(0);
    cells.push_back(Measure("moments", kRows, seconds));
  }

  {
    // One sketch per column, fed row-major like the refit path would.
    std::vector<P2QuantileSketch> sketches(kCols);
    Stopwatch wall;
    for (size_t r = 0; r < kRows; ++r) {
      const double* row = data.RowPtr(r);
      for (size_t c = 0; c < kCols; ++c) sketches[c].Observe(row[c]);
    }
    const double seconds = wall.ElapsedSeconds();
    checksum += sketches[0].Quantile(0.5);
    cells.push_back(Measure("quantile_sketch_x8", kRows, seconds));
  }

  {
    ReservoirSampler reservoir(/*capacity=*/2048, kCols, /*seed=*/3);
    Stopwatch wall;
    for (size_t r = 0; r < kRows; ++r) {
      reservoir.ObserveRow(data.RowPtr(r), kCols, 0);
    }
    const double seconds = wall.ElapsedSeconds();
    checksum += static_cast<double>(reservoir.size());
    cells.push_back(Measure("reservoir", kRows, seconds));
  }

  {
    DriftConfig config;
    config.window_rows = kWindow;
    DriftMonitor monitor(ComputeReferenceStats(data), config);
    Stopwatch wall;
    std::optional<DriftReport> last = monitor.ObserveBatch(data);
    const double seconds = wall.ElapsedSeconds();
    checksum += last.has_value() ? last->max_statistic : 0.0;
    cells.push_back(Measure("drift_monitor", kRows, seconds));
  }

  std::printf("%-20s %14s %12s\n", "path", "rows/sec", "ns/row");
  for (const Cell& cell : cells) {
    std::printf("%-20s %14ld %12ld\n", cell.path,
                static_cast<long>(cell.rows_per_sec),
                static_cast<long>(cell.ns_per_row));
  }
  std::printf("(checksum %.3f)\n", checksum);

  if (!json_path.empty()) {
    WriteJson(json_path, cells);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
