/// Serving-runtime throughput: rows/sec and tail latency of
/// Predictor::PredictSharded across thread counts and shard sizes.
///
/// The serving runtime (src/serve/) reuses the parallel-evaluator worker
/// pool to shard a batch of rows over threads; this bench shows where
/// that pays off: shards must be large enough to amortize the queue
/// round-trip, and scaling tops out once per-shard transform+predict
/// work no longer dominates. Run after changing the predictor's
/// threading or the model PredictBatch overrides.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "preprocess/pipeline_parse.h"
#include "serve/artifact.h"
#include "serve/predictor.h"
#include "util/timer.h"

namespace {

using namespace autofp;
using bench::PrintHeader;

struct Scenario {
  ModelKind kind;
  const char* pipeline;
};

void RunScenario(const Dataset& data, const Scenario& scenario,
                 const std::string& artifact_path) {
  Result<PipelineSpec> spec = ParsePipelineSpec(scenario.pipeline);
  AUTOFP_CHECK(spec.ok()) << spec.status().ToString();
  Result<ArtifactSchema> exported =
      ExportArtifact(artifact_path, data, spec.value(),
                     bench::BenchModel(scenario.kind));
  AUTOFP_CHECK(exported.ok()) << exported.status().ToString();

  // One big serving batch, re-scored under every (threads, shard) cell.
  const Matrix& rows = data.features;
  std::printf("\nmodel %s | pipeline [%s] | %zu rows x %zu cols\n",
              ModelKindName(scenario.kind).c_str(),
              spec.value().ToString().c_str(), rows.rows(), rows.cols());
  std::printf("%8s %8s %12s %10s %10s %10s\n", "threads", "shard",
              "rows/s", "p50 ms", "p95 ms", "p99 ms");
  for (int threads : {1, 2, 4, 8}) {
    Predictor::Options options;
    options.num_threads = threads;
    Predictor::LoadResult loaded = Predictor::Load(artifact_path, options);
    AUTOFP_CHECK(loaded.ok()) << loaded.status.ToString();
    const Predictor& predictor = *loaded.predictor;
    for (size_t shard : {size_t{32}, size_t{256}, size_t{2048}}) {
      // Repeat until ~0.3 s of scoring so the histogram has support.
      Stopwatch wall;
      long passes = 0;
      while (wall.ElapsedSeconds() < 0.3) {
        Result<std::vector<int>> predictions =
            predictor.PredictSharded(rows, shard);
        AUTOFP_CHECK(predictions.ok()) << predictions.status().ToString();
        ++passes;
      }
      const double wall_seconds = wall.ElapsedSeconds();
      ServeStats stats = predictor.stats();
      std::printf("%8d %8zu %12.0f %10.3f %10.3f %10.3f\n", threads, shard,
                  static_cast<double>(passes) *
                      static_cast<double>(rows.rows()) / wall_seconds,
                  stats.p50_ms, stats.p95_ms, stats.p99_ms);
    }
  }
}

}  // namespace

int main() {
  PrintHeader("Serving throughput", "the serving runtime (DESIGN.md)",
              "rows/sec and per-shard tail latency of PredictSharded vs "
              "threads x shard size; percentiles are cumulative per "
              "thread-count row group");
  Result<Dataset> dataset = GetSuiteDataset("sylvine_syn");
  AUTOFP_CHECK(dataset.ok()) << dataset.status().ToString();
  const std::string artifact_path = "/tmp/autofp_bench_serve.afpa";
  const Scenario scenarios[] = {
      {ModelKind::kLogisticRegression,
       "StandardScaler -> PowerTransformer"},
      {ModelKind::kXgboost, "QuantileTransformer -> MinMaxScaler"},
      {ModelKind::kMlp, "Normalizer -> StandardScaler"},
  };
  for (const Scenario& scenario : scenarios) {
    RunScenario(dataset.value(), scenario, artifact_path);
  }
  std::remove(artifact_path.c_str());
  return 0;
}
