/// Serving-runtime throughput: rows/sec and tail latency of
/// Predictor::PredictSharded across thread counts and shard sizes, plus
/// the network serving path (`autofp_serve listen`) end to end.
///
/// The serving runtime (src/serve/) reuses the parallel-evaluator worker
/// pool to shard a batch of rows over threads; this bench shows where
/// that pays off: shards must be large enough to amortize the queue
/// round-trip, and scaling tops out once per-shard transform+predict
/// work no longer dominates. Run after changing the predictor's
/// threading or the model PredictBatch overrides.
///
/// The network section runs an in-process ServeSocketServer and
/// closed-loop BlockingFrameClient connections (the same stack as
/// autofp_serve listen + autofp_loadgen) at 1/4/16 connections; run it
/// after touching the epoll front end or the micro-batcher. `--json
/// FILE` writes the network numbers for the committed BENCH_serve.json
/// snapshot (scripts/bench_snapshot.sh); `--net-only` skips the
/// in-process scan.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "preprocess/pipeline_parse.h"
#include "serve/artifact.h"
#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace autofp;
using bench::PrintHeader;

struct Scenario {
  ModelKind kind;
  const char* pipeline;
};

void RunScenario(const Dataset& data, const Scenario& scenario,
                 const std::string& artifact_path) {
  Result<PipelineSpec> spec = ParsePipelineSpec(scenario.pipeline);
  AUTOFP_CHECK(spec.ok()) << spec.status().ToString();
  Result<ArtifactSchema> exported =
      ExportArtifact(artifact_path, data, spec.value(),
                     bench::BenchModel(scenario.kind));
  AUTOFP_CHECK(exported.ok()) << exported.status().ToString();

  // One big serving batch, re-scored under every (threads, shard) cell.
  const Matrix& rows = data.features;
  std::printf("\nmodel %s | pipeline [%s] | %zu rows x %zu cols\n",
              ModelKindName(scenario.kind).c_str(),
              spec.value().ToString().c_str(), rows.rows(), rows.cols());
  std::printf("%8s %8s %12s %10s %10s %10s\n", "threads", "shard",
              "rows/s", "p50 ms", "p95 ms", "p99 ms");
  for (int threads : {1, 2, 4, 8}) {
    Predictor::Options options;
    options.num_threads = threads;
    Predictor::LoadResult loaded = Predictor::Load(artifact_path, options);
    AUTOFP_CHECK(loaded.ok()) << loaded.status().ToString();
    const Predictor& predictor = loaded.predictor();
    for (size_t shard : {size_t{32}, size_t{256}, size_t{2048}}) {
      // Repeat until ~0.3 s of scoring so the histogram has support.
      Stopwatch wall;
      long passes = 0;
      while (wall.ElapsedSeconds() < 0.3) {
        Result<std::vector<int>> predictions =
            predictor.PredictSharded(rows, shard);
        AUTOFP_CHECK(predictions.ok()) << predictions.status().ToString();
        ++passes;
      }
      const double wall_seconds = wall.ElapsedSeconds();
      ServeStats stats = predictor.stats();
      std::printf("%8d %8zu %12.0f %10.3f %10.3f %10.3f\n", threads, shard,
                  static_cast<double>(passes) *
                      static_cast<double>(rows.rows()) / wall_seconds,
                  stats.p50_ms, stats.p95_ms, stats.p99_ms);
    }
  }
}

// --- Network serving section ------------------------------------------------

struct NetCell {
  int connections = 0;
  long requests = 0;
  long rows = 0;
  double rows_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// Closed-loop clients against an in-process socket server: the same
/// stack `autofp_serve listen` + `autofp_loadgen` exercise across
/// processes, minus the process boundary.
NetCell RunNetCell(const std::string& artifact_path, const Matrix& probe,
                   int connections, double seconds) {
  ArtifactRegistry registry;
  Status swapped = registry.Swap(artifact_path);
  AUTOFP_CHECK(swapped.ok()) << swapped.ToString();
  ServerOptions options;
  options.max_delay_us = 100;
  ServeSocketServer server(&registry, options);
  Status started = server.Start();
  AUTOFP_CHECK(started.ok()) << started.ToString();
  const int port = server.port();

  std::string request;
  EncodePredictDense(probe, &request);
  std::mutex merge_mutex;
  NetCell cell;
  cell.connections = connections;
  std::vector<double> latencies;
  std::vector<std::thread> workers;
  for (int w = 0; w < connections; ++w) {
    workers.emplace_back([&] {
      BlockingFrameClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      std::vector<double> local;
      long local_rows = 0;
      Stopwatch wall;
      while (wall.ElapsedSeconds() < seconds) {
        ServeResponse response;
        Stopwatch trip;
        if (!client.RoundTrip(request, &response).ok() || !response.ok()) {
          return;
        }
        local.push_back(trip.ElapsedSeconds() * 1e3);
        local_rows += static_cast<long>(response.predictions.size());
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
      cell.requests += static_cast<long>(local.size());
      cell.rows += local_rows;
    });
  }
  Stopwatch wall;
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();
  server.Stop();
  std::sort(latencies.begin(), latencies.end());
  cell.rows_per_sec =
      elapsed > 0.0 ? static_cast<double>(cell.rows) / elapsed : 0.0;
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p95_ms = Percentile(latencies, 0.95);
  cell.p99_ms = Percentile(latencies, 0.99);
  return cell;
}

std::vector<NetCell> RunNetworkSection(const Dataset& data,
                                       const std::string& artifact_path) {
  Result<PipelineSpec> spec =
      ParsePipelineSpec("StandardScaler -> PowerTransformer");
  AUTOFP_CHECK(spec.ok());
  Result<ArtifactSchema> exported =
      ExportArtifact(artifact_path, data, spec.value(),
                     bench::BenchModel(ModelKind::kLogisticRegression));
  AUTOFP_CHECK(exported.ok()) << exported.status().ToString();

  const Matrix probe = [&] {
    const size_t rows = std::min<size_t>(16, data.features.rows());
    Matrix window(rows, data.features.cols());
    for (size_t r = 0; r < rows; ++r) {
      const double* src = data.features.RowPtr(r);
      std::copy(src, src + data.features.cols(), window.RowPtr(r));
    }
    return window;
  }();

  std::printf("\nnetwork serving (socket round trip, %zu rows/request)\n",
              probe.rows());
  std::printf("%8s %10s %12s %10s %10s %10s\n", "conns", "requests",
              "rows/s", "p50 ms", "p95 ms", "p99 ms");
  std::vector<NetCell> cells;
  for (int connections : {1, 4, 16}) {
    NetCell cell = RunNetCell(artifact_path, probe, connections, 0.8);
    std::printf("%8d %10ld %12.0f %10.3f %10.3f %10.3f\n", cell.connections,
                cell.requests, cell.rows_per_sec, cell.p50_ms, cell.p95_ms,
                cell.p99_ms);
    cells.push_back(cell);
  }
  return cells;
}

void WriteJson(const std::string& path, const std::vector<NetCell>& cells,
               size_t rows_per_request) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"serve_network\",\n  \"rows_per_request\": "
      << rows_per_request << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const NetCell& cell = cells[i];
    out << "    {\"connections\": " << cell.connections
        << ", \"requests\": " << cell.requests
        << ", \"rows_per_sec\": " << static_cast<long>(cell.rows_per_sec)
        << ", \"p50_ms\": " << cell.p50_ms << ", \"p95_ms\": " << cell.p95_ms
        << ", \"p99_ms\": " << cell.p99_ms << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool net_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--net-only") == 0) {
      net_only = true;
    }
  }
  PrintHeader("Serving throughput", "the serving runtime (DESIGN.md)",
              "rows/sec and per-shard tail latency of PredictSharded vs "
              "threads x shard size, plus the socket front end vs "
              "connection count; percentiles are cumulative per "
              "thread-count row group");
  Result<Dataset> dataset = GetSuiteDataset("sylvine_syn");
  AUTOFP_CHECK(dataset.ok()) << dataset.status().ToString();
  const std::string artifact_path = "/tmp/autofp_bench_serve.afpa";
  if (!net_only) {
    const Scenario scenarios[] = {
        {ModelKind::kLogisticRegression,
         "StandardScaler -> PowerTransformer"},
        {ModelKind::kXgboost, "QuantileTransformer -> MinMaxScaler"},
        {ModelKind::kMlp, "Normalizer -> StandardScaler"},
    };
    for (const Scenario& scenario : scenarios) {
      RunScenario(dataset.value(), scenario, artifact_path);
    }
  }
  std::vector<NetCell> cells =
      RunNetworkSection(dataset.value(), artifact_path);
  if (!json_path.empty()) WriteJson(json_path, cells, 16);
  std::remove(artifact_path.c_str());
  return 0;
}
