/// Figure 6: parameter adjustment for Hyperband and BOHB on the jasmine
/// analogue with LR — varying eta with min_budget fixed, then varying
/// min_budget with eta fixed — against the RS baseline at increasing time
/// limits. The paper's finding: no setting makes the bandits beat RS.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "search/bohb.h"
#include "search/hyperband.h"
#include "search/random_search.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig6_bandit_params", "Figure 6",
      "Hyperband/BOHB eta and min_budget sweeps vs RS on wine_syn (LR), averaged over 3 seeds. "
      "min_budget maps to the minimum training-row fraction.");

  TrainValidSplit split = bench::PrepareScenario("wine_syn", 6, 500);
  ModelConfig model = bench::BenchModel(ModelKind::kLogisticRegression);
  SearchSpace space = SearchSpace::Default();
  const std::vector<double> budgets = {0.1, 0.25, 0.6};  // seconds.

  // Averaging over seeds: each lambda call builds a fresh algorithm via
  // the factory so no state leaks between seeds.
  auto run_avg = [&](const std::function<std::unique_ptr<SearchAlgorithm>()>&
                         make_algorithm,
                     double budget) {
    double total = 0.0;
    for (uint64_t seed : {55u, 56u, 57u}) {
      PipelineEvaluator evaluator(split.train, split.valid, model);
      std::unique_ptr<SearchAlgorithm> algorithm = make_algorithm();
      total += RunSearch(algorithm.get(), &evaluator, space, {Budget::Seconds(budget), seed})
                   .best_accuracy;
    }
    return total / 3.0;
  };

  std::printf("%-36s", "configuration");
  for (double budget : budgets) std::printf("  budget=%.2fs", budget);
  std::printf("\n");

  // RS baseline row.
  {
    std::printf("%-36s", "RS");
    for (double budget : budgets) {
      std::printf("  %.4f     ",
                  run_avg([] { return std::make_unique<RandomSearch>(); },
                          budget));
    }
    std::printf("\n");
  }
  // Vary eta at fixed min_budget.
  for (double eta : {3.0, 5.0, 7.0}) {
    for (bool bohb : {false, true}) {
      Hyperband::Config config;
      config.eta = eta;
      config.min_fraction = 0.1;
      char label[64];
      std::snprintf(label, sizeof(label), "%s eta=%.0f min_budget=0.10",
                    bohb ? "BOHB" : "HYPERBAND", eta);
      std::printf("%-36s", label);
      for (double budget : budgets) {
        double accuracy = bohb ? run_avg(
                                     [&config] {
                                       Bohb::Config bohb_config;
                                       bohb_config.hyperband = config;
                                       return std::make_unique<Bohb>(
                                           bohb_config);
                                     },
                                     budget)
                               : run_avg(
                                     [&config] {
                                       return std::make_unique<Hyperband>(
                                           config);
                                     },
                                     budget);
        std::printf("  %.4f     ", accuracy);
      }
      std::printf("\n");
    }
  }
  // Vary min_budget at fixed eta.
  for (double min_fraction : {0.02, 0.1, 0.3}) {
    for (bool bohb : {false, true}) {
      Hyperband::Config config;
      config.eta = 3.0;
      config.min_fraction = min_fraction;
      char label[64];
      std::snprintf(label, sizeof(label), "%s eta=3 min_budget=%.2f",
                    bohb ? "BOHB" : "HYPERBAND", min_fraction);
      std::printf("%-36s", label);
      for (double budget : budgets) {
        double accuracy = bohb ? run_avg(
                                     [&config] {
                                       Bohb::Config bohb_config;
                                       bohb_config.hyperband = config;
                                       return std::make_unique<Bohb>(
                                           bohb_config);
                                     },
                                     budget)
                               : run_avg(
                                     [&config] {
                                       return std::make_unique<Hyperband>(
                                           config);
                                     },
                                     budget);
        std::printf("  %.4f     ", accuracy);
      }
      std::printf("\n");
    }
  }
  std::printf("\nPaper shape: across all settings the bandit algorithms do "
              "not clearly beat the RS row.\n");
  return 0;
}
