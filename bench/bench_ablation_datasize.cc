/// Ablation for the paper's research opportunity 2 (Section 8): reduce data
/// size to mitigate the Train/Prep bottleneck. PBT searches under a fixed
/// wall-clock budget with the evaluator training on 100% / 50% / 25% of the
/// training rows; the returned pipeline is then re-scored on the full data.
/// Smaller fractions evaluate more pipelines per second but with noisier
/// guidance — the trade-off the paper highlights.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/pbt.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_ablation_datasize", "Section 8, research opportunity 2",
      "PBT under a 0.4s budget with subsampled evaluation data; final "
      "pipeline re-scored on full data.");

  const std::vector<std::string> datasets = {"electricity_syn", "higgs_syn",
                                             "jannis_syn"};
  const std::vector<double> fractions = {1.0, 0.5, 0.25};

  std::printf("%-18s %-9s %-10s %-12s %s\n", "dataset", "fraction",
              "evals/run", "search acc", "full-data acc");
  for (const std::string& dataset : datasets) {
    TrainValidSplit split = bench::PrepareScenario(dataset, 23, 4000);
    ModelConfig model = bench::HeavyModel(ModelKind::kXgboost);
    for (double fraction : fractions) {
      PipelineEvaluator evaluator(split.train, split.valid, model);
      evaluator.set_global_train_fraction(fraction);
      Pbt pbt;
      SearchResult result = RunSearch(&pbt, &evaluator, SearchSpace::Default(), {Budget::Seconds(0.4), 29});
      // Re-score the winner with full training data.
      PipelineEvaluator full(split.train, split.valid, model);
      EvalRequest rescore;
      rescore.pipeline = result.best_pipeline;
      double full_accuracy = full.Evaluate(rescore).accuracy;
      std::printf("%-18s %-9.2f %-10ld %-12.4f %.4f\n", dataset.c_str(),
                  fraction, result.num_evaluations, result.best_accuracy,
                  full_accuracy);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: smaller fractions multiply the evaluation "
              "count; full-data accuracy of the found pipeline stays "
              "competitive until the fraction gets too small — supporting "
              "the paper's data-reduction research direction.\n");
  return 0;
}
