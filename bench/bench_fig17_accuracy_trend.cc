/// Figures 17-19: the trend of best-found validation accuracy as the
/// search budget grows, per dataset, for representative algorithms from
/// each category. The paper's shape: curves are monotone non-decreasing,
/// rise steeply at small budgets and flatten; evolution-based algorithms
/// reach the plateau earlier than RS, bandits later.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/registry.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fig17_accuracy_trend", "Figures 17-19",
      "Best validation accuracy vs increasing budget (evaluation units "
      "standing in for the paper's 1-60 min time limits).");

  const std::vector<std::string> datasets = {"heart_syn", "vehicle_syn",
                                             "kc1_syn", "wine_syn"};
  const std::vector<std::string> algorithms = {"RS", "PBT", "TEVO_H", "SMAC",
                                               "HYPERBAND"};
  const std::vector<long> budgets = {10, 20, 40, 80, 160};

  for (const std::string& dataset : datasets) {
    TrainValidSplit split = bench::PrepareScenario(dataset, 18, 400);
    ModelConfig model = bench::BenchModel(ModelKind::kLogisticRegression);
    PipelineEvaluator probe(split.train, split.valid, model);
    std::printf("--- %s (LR), no-FP baseline %.4f ---\n", dataset.c_str(),
                probe.BaselineAccuracy());
    std::printf("%-10s", "algorithm");
    for (long budget : budgets) std::printf("  @%-6ld", budget);
    std::printf("\n");
    for (const std::string& name : algorithms) {
      std::printf("%-10s", name.c_str());
      double previous = 0.0;
      for (long budget : budgets) {
        PipelineEvaluator evaluator(split.train, split.valid, model);
        auto algorithm = MakeSearchAlgorithm(name).value();
        double accuracy =
            RunSearch(algorithm.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(budget), 93})
                .best_accuracy;
        // Same seed + larger budget explores a superset for deterministic
        // prefix-stable algorithms; print regardless and let the reader
        // see the trend.
        std::printf("  %.4f ", accuracy);
        previous = accuracy;
      }
      (void)previous;
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Paper shape: monotone rising curves that flatten; "
              "evolution-based algorithms plateau earliest.\n");
  return 0;
}
