/// Table 11: accuracy of 200-iteration random search vs no preprocessing,
/// for every suite dataset and every downstream model. The paper's
/// finding: even plain RS with 200 evaluations improves (often
/// substantially) over no-FP on most dataset/model pairs.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/random_search.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_tab11_rs200", "Table 11",
      "200-iteration RS accuracy vs no-FP across the suite (rows capped at "
      "500 per dataset for runtime).");

  // Small/medium datasets (the full suite's largest entries are skipped to
  // keep this binary around a minute).
  std::vector<std::string> names;
  for (const SyntheticSpec& spec : BenchmarkSuiteSpecs()) {
    if (spec.cols <= 150) names.push_back(spec.name);
  }
  SearchSpace space = SearchSpace::Default();

  std::printf("%-18s", "dataset");
  for (ModelKind kind : bench::BenchModels()) {
    std::printf(" | %s no-prep  %s RS200", ModelKindName(kind).c_str(),
                ModelKindName(kind).c_str());
  }
  std::printf("\n");
  int improved = 0, total = 0;
  for (const std::string& name : names) {
    std::printf("%-18s", name.c_str());
    TrainValidSplit split = bench::PrepareScenario(name, 15, 500);
    for (ModelKind kind : bench::BenchModels()) {
      PipelineEvaluator evaluator(split.train, split.valid,
                                  bench::BenchModel(kind));
      RandomSearch rs;
      SearchResult result = RunSearch(&rs, &evaluator, space, {Budget::Evaluations(200), 88});
      std::printf(" |    %.4f     %.4f", result.baseline_accuracy,
                  result.best_accuracy);
      ++total;
      if (result.best_accuracy >= result.baseline_accuracy) ++improved;
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nRS200 >= no-FP on %d/%d dataset-model pairs "
              "(paper: nearly all pairs improve).\n",
              improved, total);
  return 0;
}
