/// Section 5.2 ("Are there frequent excellent feature preprocessor
/// patterns?"): mine the best pipelines PBT finds per dataset with
/// FP-growth. The paper's finding: no pattern has high support — there is
/// no universally good preprocessor combination.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/fp_growth.h"
#include "search/registry.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_fpgrowth_patterns", "Section 5.2 frequent-pattern analysis",
      "FP-growth over the per-dataset best pipelines found by PBT (LR "
      "downstream). Items are preprocessor kinds.");

  std::vector<std::string> names;
  for (const SyntheticSpec& spec : BenchmarkSuiteSpecs()) {
    if (spec.cols <= 150 && spec.rows <= 20000) names.push_back(spec.name);
  }
  SearchSpace space = SearchSpace::Default();
  std::vector<std::vector<int>> transactions;
  std::printf("%-18s %s\n", "dataset", "best pipeline (PBT, 80 evals)");
  for (size_t i = 0; i < names.size(); ++i) {
    TrainValidSplit split = bench::PrepareScenario(names[i], 16, 400);
    PipelineEvaluator evaluator(
        split.train, split.valid,
        bench::BenchModel(ModelKind::kLogisticRegression));
    auto pbt = MakeSearchAlgorithm("PBT");
    SearchResult result = RunSearch(pbt.value().get(), &evaluator, space, {Budget::Evaluations(80), 17 + i});
    std::printf("%-18s %s\n", names[i].c_str(),
                result.best_pipeline.ToString().c_str());
    std::vector<int> transaction;
    for (const PreprocessorConfig& step : result.best_pipeline.steps) {
      transaction.push_back(static_cast<int>(step.kind));
    }
    transactions.push_back(transaction);
  }

  std::printf("\nFrequent itemsets (support >= 25%% of %zu datasets):\n",
              transactions.size());
  size_t min_support =
      std::max<size_t>(2, transactions.size() / 4);
  std::vector<FrequentItemset> itemsets =
      FpGrowth(transactions, min_support);
  size_t multi_item = 0;
  for (const FrequentItemset& itemset : itemsets) {
    std::printf("  support %2zu/%zu : {", itemset.support,
                transactions.size());
    for (size_t i = 0; i < itemset.items.size(); ++i) {
      if (i > 0) std::printf(", ");
      std::printf("%s",
                  KindName(static_cast<PreprocessorKind>(itemset.items[i]))
                      .c_str());
    }
    std::printf("}\n");
    if (itemset.items.size() > 1) ++multi_item;
  }
  std::printf("\nMulti-preprocessor patterns above threshold: %zu. Paper "
              "shape: supports stay low — no dominant recurring pattern.\n",
              multi_item);
  return 0;
}
