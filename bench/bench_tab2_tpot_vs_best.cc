/// Table 2: TPOT's FP pipeline vs the best pipeline among all length <= 4
/// pipelines, on the four motivation datasets. The paper's finding: the
/// exhaustive-best pipeline beats the TPOT FP pipeline on every dataset,
/// motivating the larger Auto-FP search space.

#include <cstdio>
#include <vector>

#include "automl/tpot_fp.h"
#include "bench/bench_util.h"

namespace {

using namespace autofp;

void Enumerate(const SearchSpace& space, std::vector<int>* prefix,
               size_t max_length, PipelineEvaluator* evaluator, double* best,
               PipelineSpec* best_pipeline) {
  if (!prefix->empty()) {
    EvalRequest request;
    request.pipeline = space.Decode(*prefix);
    const PipelineSpec& pipeline = request.pipeline;
    double accuracy = evaluator->Evaluate(request).accuracy;
    if (accuracy > *best) {
      *best = accuracy;
      *best_pipeline = pipeline;
    }
  }
  if (prefix->size() >= max_length) return;
  for (size_t op = 0; op < space.num_operators(); ++op) {
    prefix->push_back(static_cast<int>(op));
    Enumerate(space, prefix, max_length, evaluator, best, best_pipeline);
    prefix->pop_back();
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "bench_tab2_tpot_vs_best", "Table 2",
      "TPOT-FP (GP over 5 preprocessors) vs the best of all length<=4 "
      "pipelines (2800), LR downstream. Paper: the enumerated best wins "
      "on all four datasets.");

  SearchSpace space = SearchSpace::Default(4);
  std::printf("%-12s | %-55s | %-55s | %s\n", "dataset",
              "TPOT FP pipeline / accuracy", "best length<=4 pipeline / acc",
              "winner");
  for (const SyntheticSpec& spec : MotivationSuiteSpecs()) {
    TrainValidSplit split = bench::PrepareScenario(spec.name, 4, 400);
    ModelConfig model = bench::BenchModel(ModelKind::kLogisticRegression);

    // TPOT-FP under a realistic budget.
    PipelineEvaluator tpot_eval(split.train, split.valid, model);
    SearchResult tpot =
        RunTpotFp(TpotFpConfig{}, &tpot_eval, Budget::Evaluations(150), 31);

    // Exhaustive best of the 2800.
    PipelineEvaluator enum_eval(split.train, split.valid, model);
    std::vector<int> prefix;
    double best = -1.0;
    PipelineSpec best_pipeline;
    Enumerate(space, &prefix, 4, &enum_eval, &best, &best_pipeline);

    char tpot_cell[128], best_cell[128];
    std::snprintf(tpot_cell, sizeof(tpot_cell), "%s / %.4f",
                  tpot.best_pipeline.ToString().c_str(), tpot.best_accuracy);
    std::snprintf(best_cell, sizeof(best_cell), "%s / %.4f",
                  best_pipeline.ToString().c_str(), best);
    std::printf("%-12s | %-55s | %-55s | %s\n", spec.name.c_str(), tpot_cell,
                best_cell,
                best >= tpot.best_accuracy ? "enumerated best" : "TPOT");
  }
  return 0;
}
