#ifndef AUTOFP_BENCH_BENCH_UTIL_H_
#define AUTOFP_BENCH_BENCH_UTIL_H_

/// Shared helpers for the table/figure reproduction binaries.
///
/// The paper's experiments run 60-3600 s wall-clock per (dataset, model,
/// algorithm) on a 110-vCPU server; these benches reproduce the *shape* of
/// every table and figure at laptop scale by (a) capping training rows,
/// (b) using lighter model training configurations, and (c) using
/// evaluation-count budgets (machine-independent). See DESIGN.md.

#include <cstdio>
#include <string>
#include <vector>

#include "core/auto_fp.h"

namespace autofp {
namespace bench {

/// Row cap applied to every bench dataset (keeps each binary ~a minute).
inline constexpr size_t kMaxRows = 600;

/// Lighter-than-default model configurations used by all benches.
inline ModelConfig BenchModel(ModelKind kind) {
  ModelConfig config = ModelConfig::Defaults(kind);
  switch (kind) {
    case ModelKind::kLogisticRegression:
      config.lr_epochs = 40;
      break;
    case ModelKind::kXgboost:
      config.xgb_rounds = 15;
      config.xgb_max_depth = 3;
      break;
    case ModelKind::kMlp:
      config.mlp_hidden = 16;
      config.mlp_epochs = 10;
      break;
  }
  return config;
}

/// Paper-faithful heavy model configurations (sklearn/XGBoost-like
/// training effort) used by the *timing* benches (Figure 7 / Table 5),
/// where the Prep-vs-Train balance depends on realistic training cost.
inline ModelConfig HeavyModel(ModelKind kind) {
  ModelConfig config = ModelConfig::Defaults(kind);
  switch (kind) {
    case ModelKind::kLogisticRegression:
      config.lr_epochs = 100;
      break;
    case ModelKind::kXgboost:
      config.xgb_rounds = 100;
      config.xgb_max_depth = 6;
      break;
    case ModelKind::kMlp:
      config.mlp_hidden = 100;
      config.mlp_epochs = 50;
      break;
  }
  return config;
}

/// Loads a suite dataset, caps its rows, and splits 80:20.
inline TrainValidSplit PrepareScenario(const std::string& dataset_name,
                                       uint64_t seed = 1,
                                       size_t max_rows = kMaxRows) {
  Result<Dataset> dataset = GetSuiteDataset(dataset_name);
  AUTOFP_CHECK(dataset.ok()) << dataset.status().ToString();
  Rng rng(seed);
  Dataset capped = dataset.value();
  if (capped.num_rows() > max_rows) {
    capped = SubsampleRows(
        capped,
        static_cast<double>(max_rows) / static_cast<double>(capped.num_rows()),
        &rng);
    capped.name = dataset.value().name;
  }
  return SplitTrainValid(capped, 0.8, &rng);
}

/// The three downstream models in paper order.
inline const std::vector<ModelKind>& BenchModels() {
  static const std::vector<ModelKind>* kinds = new std::vector<ModelKind>{
      ModelKind::kLogisticRegression, ModelKind::kXgboost, ModelKind::kMlp};
  return *kinds;
}

/// Section-header printer so every bench output is self-describing.
inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* note) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s)\n", experiment, paper_ref);
  std::printf("%s\n", note);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace autofp

#endif  // AUTOFP_BENCH_BENCH_UTIL_H_
