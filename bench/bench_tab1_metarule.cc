/// Table 1: can data-characteristic rules predict whether FP helps?
/// For every suite dataset we (1) compute the 40 Auto-Sklearn meta-features
/// of Table 10, (2) label the dataset 1 if the best of N random pipelines
/// improves validation accuracy by >= 1.5% over no-FP, else 0, and
/// (3) train decision trees of depth 1, 2, 3 and unlimited on
/// (meta-features -> label), reporting 3-fold CV scores per downstream
/// model. The paper's finding: scores hover around chance (~0.5-0.7),
/// i.e. no reliable rule exists.

#include <cstdio>

#include "bench/bench_util.h"
#include "metafeatures/metafeatures.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_tab1_metarule", "Table 1",
      "3-fold CV score of decision trees predicting 'FP helps >= 1.5%' "
      "from 40 meta-features (paper: ~0.5-0.7, no reliable rule). "
      "Scaled down: 60 random pipelines per dataset instead of 200.");

  const int kRandomPipelines = 60;
  SearchSpace space = SearchSpace::Default();

  std::vector<SyntheticSpec> specs = BenchmarkSuiteSpecs();
  // Drop the largest/high-dimensional datasets to keep runtime bounded.
  std::vector<std::string> names;
  for (const SyntheticSpec& spec : specs) {
    if (spec.cols <= 150 && spec.rows <= 20000) names.push_back(spec.name);
  }
  std::printf("datasets: %zu, random pipelines per dataset: %d\n\n",
              names.size(), kRandomPipelines);

  // Meta-feature table (shared across models).
  Matrix meta(names.size(), 40);
  for (size_t i = 0; i < names.size(); ++i) {
    Result<Dataset> dataset = GetSuiteDataset(names[i]);
    MetaFeatureOptions options;
    options.max_rows = 500;
    std::vector<double> row =
        ComputeMetaFeatures(dataset.value(), options).ToVector();
    for (size_t j = 0; j < 40; ++j) meta(i, j) = row[j];
  }

  for (ModelKind model_kind : bench::BenchModels()) {
    // Labels per dataset.
    std::vector<int> labels(names.size());
    int positives = 0;
    for (size_t i = 0; i < names.size(); ++i) {
      TrainValidSplit split = bench::PrepareScenario(names[i], 3, 500);
      PipelineEvaluator evaluator(split.train, split.valid,
                                  bench::BenchModel(model_kind));
      double baseline = evaluator.BaselineAccuracy();
      Rng rng(1000 + i);
      double best = 0.0;
      for (int p = 0; p < kRandomPipelines; ++p) {
        EvalRequest request;
        request.pipeline = space.SampleUniform(&rng);
        double accuracy = evaluator.Evaluate(request).accuracy;
        if (accuracy > best) best = accuracy;
      }
      labels[i] = best - baseline >= 0.015 ? 1 : 0;
      positives += labels[i];
    }

    Dataset training;
    training.name = "metarule";
    training.features = meta;
    training.labels = labels;
    training.num_classes = 2;

    std::printf("--- downstream model %s (label=1 on %d/%zu datasets) ---\n",
                ModelKindName(model_kind).c_str(), positives, names.size());
    std::printf("%-10s %s\n", "TreeDepth", "3-CV Score");
    const int depths[] = {1, 2, 3, -1};
    for (int depth : depths) {
      TreeConfig config;
      config.max_depth = depth;
      double score =
          CrossValidationAccuracy(DecisionTreeClassifier(config), training,
                                  /*folds=*/3, /*seed=*/9);
      if (depth < 0) {
        std::printf("%-10s %.2f\n", "No Limit", score);
      } else {
        std::printf("%-10d %.2f\n", depth, score);
      }
    }
    std::printf("\n");
  }
  std::printf("Interpretation: scores near the majority-class rate mean no "
              "meta-feature rule reliably predicts when FP helps, matching "
              "the paper's conclusion.\n");
  return 0;
}
