/// Robustness under injected faults: runs all 15 search algorithms with a
/// deterministic FaultInjector at fault rates {0, 0.05, 0.2} and reports
/// best-accuracy degradation versus the fault-free run, plus the fault
/// bookkeeping (failed attempts / retries / quarantined pipelines) from
/// SearchResult. A production search service must survive degenerate
/// transforms, NaN propagation and slow evaluations; this bench shows the
/// retry + penalty-score + quarantine layer keeps every algorithm's
/// answer close to fault-free quality while never crashing and never
/// reporting a non-finite best accuracy.

#include <cmath>
#include <map>

#include "bench/bench_util.h"
#include "search/registry.h"

namespace autofp {
namespace {

constexpr double kFaultRates[] = {0.0, 0.05, 0.2};
constexpr long kBudget = 80;
constexpr uint64_t kSeed = 7;

SearchResult RunAtRate(const std::string& algorithm_name, double fault_rate,
                       const TrainValidSplit& split) {
  PipelineEvaluator evaluator(split.train, split.valid,
                              bench::BenchModel(ModelKind::kLogisticRegression));
  if (fault_rate > 0.0) {
    FaultInjectorConfig injector;
    injector.fault_rate = fault_rate;
    injector.slowdown_rate = fault_rate / 2.0;
    injector.slowdown_seconds = 10.0;  // guaranteed to trip the deadline.
    injector.seed = kSeed;
    evaluator.AttachFaultInjector(injector);
  }
  // The 5 s per-evaluation deadline is generous for real evaluations on
  // this dataset; only injected slowdowns exceed it.
  Budget budget = Budget::Evaluations(kBudget).WithEvalDeadline(5.0);
  FaultPolicy policy;
  policy.max_retries = 2;
  auto algorithm = MakeSearchAlgorithm(algorithm_name).value();
  return RunSearch(algorithm.get(), &evaluator, SearchSpace::Default(), {budget, kSeed, policy});
}

}  // namespace
}  // namespace autofp

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "Robustness under injected faults",
      "fault-tolerance subsystem (no paper analogue)",
      "all 15 algorithms, LR downstream, fault rates 0/0.05/0.2, "
      "80-evaluation budget, 2 retries, 5 s eval deadline");

  TrainValidSplit split = bench::PrepareScenario("wine_syn", kSeed, 400);
  std::printf("%-10s %8s %14s %14s %26s\n", "algorithm", "acc@0",
              "acc@0.05", "acc@0.2", "fail/retry/quar @0.2");

  bool all_finite = true;
  long total_failures_005 = 0;
  long total_failures_02 = 0;
  double rs_delta_005 = 0.0;
  for (const std::string& name : AllSearchAlgorithmNames()) {
    std::map<double, SearchResult> by_rate;
    for (double rate : kFaultRates) {
      by_rate[rate] = RunAtRate(name, rate, split);
      if (!std::isfinite(by_rate[rate].best_accuracy)) all_finite = false;
    }
    const SearchResult& clean = by_rate[0.0];
    const SearchResult& light = by_rate[0.05];
    const SearchResult& heavy = by_rate[0.2];
    total_failures_005 += light.num_failures;
    total_failures_02 += heavy.num_failures;
    if (name == "RS") {
      rs_delta_005 = light.best_accuracy - clean.best_accuracy;
    }
    std::printf("%-10s %8.4f %8.4f (%+.3f) %8.4f (%+.3f) %10ld/%ld/%ld\n",
                name.c_str(), clean.best_accuracy, light.best_accuracy,
                light.best_accuracy - clean.best_accuracy,
                heavy.best_accuracy,
                heavy.best_accuracy - clean.best_accuracy,
                heavy.num_failures, heavy.num_retries,
                heavy.num_quarantined);
  }

  std::printf("\nsummary: failed attempts @0.05 = %ld, @0.2 = %ld; "
              "RS best-accuracy delta @0.05 = %+.4f\n",
              total_failures_005, total_failures_02, rs_delta_005);
  AUTOFP_CHECK(all_finite) << "non-finite best accuracy under faults";
  AUTOFP_CHECK_GT(total_failures_005, 0)
      << "fault injection at rate 0.05 produced no failures";
  AUTOFP_CHECK_GT(total_failures_02, 0)
      << "fault injection at rate 0.2 produced no failures";
  AUTOFP_CHECK_LE(std::fabs(rs_delta_005), 0.02)
      << "random search degraded more than 2 accuracy points at rate 0.05";
  std::printf("OK: all algorithms completed at every fault rate\n");
  return 0;
}
