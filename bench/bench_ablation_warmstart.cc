/// Ablation for the paper's research opportunity 1 (Section 8): does
/// warm-starting the evolution-based search beat random initialization?
/// Warm start here = seeding PBT's population with the 7 singleton
/// pipelines plus a few scaling-heavy patterns that are cheap priors,
/// instead of uniform random pipelines.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "search/pbt.h"

int main() {
  using namespace autofp;
  bench::PrintHeader(
      "bench_ablation_warmstart", "Section 8, research opportunity 1",
      "PBT with random vs warm-started initial population, small budgets "
      "(averaged over 3 seeds).");

  std::vector<PipelineSpec> warm;
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    warm.push_back(PipelineSpec::FromKinds({kind}));
  }
  warm.push_back(PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer, PreprocessorKind::kStandardScaler}));
  warm.push_back(PipelineSpec::FromKinds(
      {PreprocessorKind::kQuantileTransformer, PreprocessorKind::kMinMaxScaler}));
  warm.push_back(PipelineSpec::FromKinds(
      {PreprocessorKind::kNormalizer, PreprocessorKind::kStandardScaler}));

  const std::vector<std::string> datasets = {
      "heart_syn", "blood_syn", "vehicle_syn", "kc1_syn", "ionosphere_syn"};
  const std::vector<long> budgets = {15, 30, 60};

  std::printf("%-16s", "dataset");
  for (long budget : budgets) {
    std::printf("  cold@%-3ld warm@%-3ld", budget, budget);
  }
  std::printf("\n");
  int warm_wins = 0, cells = 0;
  for (const std::string& dataset : datasets) {
    TrainValidSplit split = bench::PrepareScenario(dataset, 19, 400);
    ModelConfig model = bench::BenchModel(ModelKind::kLogisticRegression);
    std::printf("%-16s", dataset.c_str());
    for (long budget : budgets) {
      double cold_total = 0.0, warm_total = 0.0;
      for (uint64_t seed : {1u, 2u, 3u}) {
        {
          PipelineEvaluator evaluator(split.train, split.valid, model);
          Pbt cold;
          cold_total += RunSearch(&cold, &evaluator, SearchSpace::Default(), {Budget::Evaluations(budget), seed})
                            .best_accuracy;
        }
        {
          PipelineEvaluator evaluator(split.train, split.valid, model);
          Pbt::Config config;
          config.initial_population = warm;
          Pbt warm_pbt(config);
          warm_total +=
              RunSearch(&warm_pbt, &evaluator, SearchSpace::Default(), {Budget::Evaluations(budget), seed})
                  .best_accuracy;
        }
      }
      double cold = cold_total / 3.0, warm_avg = warm_total / 3.0;
      std::printf("  %.4f   %.4f  ", cold, warm_avg);
      ++cells;
      if (warm_avg >= cold) ++warm_wins;
    }
    std::printf("\n");
  }
  std::printf("\nWarm start >= cold start in %d / %d cells. Expected: the "
              "advantage concentrates at the smallest budgets, supporting "
              "the paper's warm-start research direction.\n",
              warm_wins, cells);
  return 0;
}
