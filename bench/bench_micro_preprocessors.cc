/// Micro-benchmarks (google-benchmark): fit+transform throughput of each
/// preprocessor and of representative pipelines, across data sizes.
/// These quantify the "Prep" component of the paper's Section 5.3
/// decomposition.

#include <benchmark/benchmark.h>

#include "core/auto_fp.h"

namespace {

using namespace autofp;

Matrix MakeData(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      data(r, c) = rng.Gaussian(0.0, 1.0 + static_cast<double>(c));
    }
  }
  return data;
}

void BM_Preprocessor(benchmark::State& state) {
  auto kind = static_cast<PreprocessorKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Matrix data = MakeData(rows, 16, 3);
  for (auto _ : state) {
    auto preprocessor = MakePreprocessor(kind);
    benchmark::DoNotOptimize(preprocessor->FitTransform(data));
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}

void PreprocessorArgs(benchmark::internal::Benchmark* bench) {
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    for (int64_t rows : {256, 2048}) {
      bench->Args({static_cast<int64_t>(kind), rows});
    }
  }
}
BENCHMARK(BM_Preprocessor)->Apply(PreprocessorArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_FullPipeline(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Matrix train = MakeData(rows, 16, 5);
  Matrix valid = MakeData(rows / 4 + 1, 16, 6);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer,
       PreprocessorKind::kQuantileTransformer,
       PreprocessorKind::kStandardScaler, PreprocessorKind::kNormalizer});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitTransformPair(spec, train, valid));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

/// Copying transform path: one fresh matrix allocated + filled per
/// application. Baseline for the in-place comparison below.
void BM_TransformCopy(benchmark::State& state) {
  auto kind = static_cast<PreprocessorKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Matrix data = MakeData(rows, 16, 3);
  auto preprocessor = MakePreprocessor(kind);
  preprocessor->Fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocessor->Transform(data));
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}

/// In-place transform path: the same kernel applied to an already-
/// resident buffer — the configuration every pipeline stage after the
/// first runs in (and every serving shard after its one copy-in). The
/// buffer is refreshed from the source between iterations outside the
/// timed region, so the delta vs BM_TransformCopy is exactly the
/// allocate + copy cost the zero-copy data plane removes per stage.
void BM_TransformInPlace(benchmark::State& state) {
  auto kind = static_cast<PreprocessorKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Matrix data = MakeData(rows, 16, 3);
  auto preprocessor = MakePreprocessor(kind);
  preprocessor->Fit(data);
  Matrix scratch;
  for (auto _ : state) {
    state.PauseTiming();
    scratch = data;  // reuses scratch's capacity after iteration 1
    state.ResumeTiming();
    preprocessor->TransformInPlace(scratch);
    benchmark::DoNotOptimize(scratch);
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}

void TransformArgs(benchmark::internal::Benchmark* bench) {
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    for (int64_t rows : {2048, 40000}) {
      bench->Args({static_cast<int64_t>(kind), rows});
    }
  }
}
BENCHMARK(BM_TransformCopy)->Apply(TransformArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TransformInPlace)->Apply(TransformArgs)
    ->Unit(benchmark::kMicrosecond);

/// Whole-chain comparison: FittedPipeline::Transform (a fresh matrix per
/// stage before this PR, one fresh matrix total after) vs TransformInto
/// with a persistent scratch (zero steady-state allocations).
void BM_PipelineTransformCopy(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Matrix train = MakeData(rows, 16, 5);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
       PreprocessorKind::kNormalizer});
  FittedPipeline pipeline = FittedPipeline::Fit(spec, train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Transform(train));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}
BENCHMARK(BM_PipelineTransformCopy)->Arg(2048)->Arg(40000)
    ->Unit(benchmark::kMicrosecond);

void BM_PipelineTransformInto(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Matrix train = MakeData(rows, 16, 5);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
       PreprocessorKind::kNormalizer});
  FittedPipeline pipeline = FittedPipeline::Fit(spec, train);
  Matrix scratch;
  for (auto _ : state) {
    pipeline.TransformInto(train, &scratch);
    benchmark::DoNotOptimize(scratch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}
BENCHMARK(BM_PipelineTransformInto)->Arg(2048)->Arg(40000)
    ->Unit(benchmark::kMicrosecond);

void BM_SpaceSampling(benchmark::State& state) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.SampleUniform(&rng));
  }
}
BENCHMARK(BM_SpaceSampling);

void BM_SpaceMutation(benchmark::State& state) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(8);
  PipelineSpec pipeline = space.SampleUniform(&rng);
  for (auto _ : state) {
    pipeline = space.Mutate(pipeline, &rng);
    benchmark::DoNotOptimize(pipeline);
  }
}
BENCHMARK(BM_SpaceMutation);

}  // namespace

BENCHMARK_MAIN();
