/// Micro-benchmarks (google-benchmark): fit+transform throughput of each
/// preprocessor and of representative pipelines, across data sizes.
/// These quantify the "Prep" component of the paper's Section 5.3
/// decomposition.
///
/// `--json [path]` switches to the kernel roofline report instead: each
/// preprocessor's TransformInPlace timed as scalar row-major (the
/// pre-kernel-layer reference), SIMD row-major, and SIMD col-major, with
/// rows/s, GB/s and speedups. scripts/bench_snapshot.sh commits it as
/// BENCH_kernels.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "core/auto_fp.h"
#include "util/simd.h"

namespace {

using namespace autofp;

Matrix MakeData(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      data(r, c) = rng.Gaussian(0.0, 1.0 + static_cast<double>(c));
    }
  }
  return data;
}

void BM_Preprocessor(benchmark::State& state) {
  auto kind = static_cast<PreprocessorKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Matrix data = MakeData(rows, 16, 3);
  for (auto _ : state) {
    auto preprocessor = MakePreprocessor(kind);
    benchmark::DoNotOptimize(preprocessor->FitTransform(data));
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}

void PreprocessorArgs(benchmark::internal::Benchmark* bench) {
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    for (int64_t rows : {256, 2048}) {
      bench->Args({static_cast<int64_t>(kind), rows});
    }
  }
}
BENCHMARK(BM_Preprocessor)->Apply(PreprocessorArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_FullPipeline(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Matrix train = MakeData(rows, 16, 5);
  Matrix valid = MakeData(rows / 4 + 1, 16, 6);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer,
       PreprocessorKind::kQuantileTransformer,
       PreprocessorKind::kStandardScaler, PreprocessorKind::kNormalizer});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitTransformPair(spec, train, valid));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

/// Copying transform path: one fresh matrix allocated + filled per
/// application. Baseline for the in-place comparison below.
void BM_TransformCopy(benchmark::State& state) {
  auto kind = static_cast<PreprocessorKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Matrix data = MakeData(rows, 16, 3);
  auto preprocessor = MakePreprocessor(kind);
  preprocessor->Fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocessor->Transform(data));
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}

/// In-place transform path: the same kernel applied to an already-
/// resident buffer — the configuration every pipeline stage after the
/// first runs in (and every serving shard after its one copy-in). The
/// buffer is refreshed from the source between iterations outside the
/// timed region, so the delta vs BM_TransformCopy is exactly the
/// allocate + copy cost the zero-copy data plane removes per stage.
void BM_TransformInPlace(benchmark::State& state) {
  auto kind = static_cast<PreprocessorKind>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Matrix data = MakeData(rows, 16, 3);
  auto preprocessor = MakePreprocessor(kind);
  preprocessor->Fit(data);
  Matrix scratch;
  for (auto _ : state) {
    state.PauseTiming();
    scratch = data;  // reuses scratch's capacity after iteration 1
    state.ResumeTiming();
    preprocessor->TransformInPlace(scratch);
    benchmark::DoNotOptimize(scratch);
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}

void TransformArgs(benchmark::internal::Benchmark* bench) {
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    for (int64_t rows : {2048, 40000}) {
      bench->Args({static_cast<int64_t>(kind), rows});
    }
  }
}
BENCHMARK(BM_TransformCopy)->Apply(TransformArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TransformInPlace)->Apply(TransformArgs)
    ->Unit(benchmark::kMicrosecond);

/// Whole-chain comparison: FittedPipeline::Transform (a fresh matrix per
/// stage before this PR, one fresh matrix total after) vs TransformInto
/// with a persistent scratch (zero steady-state allocations).
void BM_PipelineTransformCopy(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Matrix train = MakeData(rows, 16, 5);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
       PreprocessorKind::kNormalizer});
  FittedPipeline pipeline = FittedPipeline::Fit(spec, train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Transform(train));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}
BENCHMARK(BM_PipelineTransformCopy)->Arg(2048)->Arg(40000)
    ->Unit(benchmark::kMicrosecond);

void BM_PipelineTransformInto(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Matrix train = MakeData(rows, 16, 5);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
       PreprocessorKind::kNormalizer});
  FittedPipeline pipeline = FittedPipeline::Fit(spec, train);
  Matrix scratch;
  for (auto _ : state) {
    pipeline.TransformInto(train, &scratch);
    benchmark::DoNotOptimize(scratch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * 16));
}
BENCHMARK(BM_PipelineTransformInto)->Arg(2048)->Arg(40000)
    ->Unit(benchmark::kMicrosecond);

void BM_SpaceSampling(benchmark::State& state) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.SampleUniform(&rng));
  }
}
BENCHMARK(BM_SpaceSampling);

void BM_SpaceMutation(benchmark::State& state) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(8);
  PipelineSpec pipeline = space.SampleUniform(&rng);
  for (auto _ : state) {
    pipeline = space.Mutate(pipeline, &rng);
    benchmark::DoNotOptimize(pipeline);
  }
}
BENCHMARK(BM_SpaceMutation);

// --- Kernel roofline report (--json) ----------------------------------------

/// Best-of-N wall time of one TransformInPlace over `source` staged in
/// `layout`, in nanoseconds. The refresh copy is outside the timed
/// region, so the number is the kernel alone.
double TimeTransformNs(const Preprocessor& step, const Matrix& source,
                       Matrix::Layout layout, bool force_scalar) {
  constexpr int kReps = 9;  // 1 warmup + best of 8
  Matrix staged;
  staged.AssignWithLayout(source, layout);
  Matrix buffer;
  simd::ScopedForceScalar forced(force_scalar);
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    buffer = staged;
    const auto start = std::chrono::steady_clock::now();
    step.TransformInPlace(buffer);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    benchmark::DoNotOptimize(buffer);
    if (rep == 0) continue;
    if (best == 0.0 || ns < best) best = ns;
  }
  return best;
}

int RunRooflineReport(const char* path) {
  constexpr size_t kRooflineRows = 8192;
  constexpr size_t kRooflineCols = 16;
  const Matrix data = MakeData(kRooflineRows, kRooflineCols, 17);

  std::FILE* out = path != nullptr ? std::fopen(path, "w") : stdout;
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n", simd::kBackendName);
  std::fprintf(out, "  \"double_lanes\": %zu,\n", simd::kDoubleLanes);
  std::fprintf(out, "  \"rows\": %zu,\n", kRooflineRows);
  std::fprintf(out, "  \"cols\": %zu,\n", kRooflineCols);
  std::fprintf(out, "  \"kernels\": [\n");

  const auto kinds = AllPreprocessorKinds();
  // Read + write of the whole buffer per pass: the elementwise kernels'
  // minimum traffic, making gb_per_s comparable across kernels.
  const double bytes_per_pass =
      2.0 * static_cast<double>(kRooflineRows * kRooflineCols) *
      sizeof(double);
  for (size_t i = 0; i < kinds.size(); ++i) {
    const PreprocessorKind kind = kinds[i];
    auto step = MakePreprocessor(kind);
    step->Fit(data);
    const double scalar_ns =
        TimeTransformNs(*step, data, Matrix::Layout::kRowMajor, true);
    const double simd_row_ns =
        TimeTransformNs(*step, data, Matrix::Layout::kRowMajor, false);
    const double simd_col_ns =
        TimeTransformNs(*step, data, Matrix::Layout::kColMajor, false);
    const double best_ns = std::min(simd_row_ns, simd_col_ns);
    std::fprintf(
        out,
        "    {\"kernel\": \"%s\", \"scalar_row_major_ns\": %.0f, "
        "\"simd_row_major_ns\": %.0f, \"simd_col_major_ns\": %.0f, "
        "\"rows_per_s\": %.0f, \"gb_per_s\": %.2f, "
        "\"speedup_simd_row\": %.2f, \"speedup_simd_col\": %.2f}%s\n",
        KindName(kind).c_str(), scalar_ns, simd_row_ns, simd_col_ns,
        static_cast<double>(kRooflineRows) * 1e9 / best_ns,
        bytes_per_pass / best_ns,  // bytes/ns == GB/s
        scalar_ns / simd_row_ns, scalar_ns / simd_col_ns,
        i + 1 < kinds.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--json") {
    return RunRooflineReport(argc >= 3 ? argv[2] : nullptr);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
