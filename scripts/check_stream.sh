#!/usr/bin/env bash
# End-to-end streaming drift loop check (registered as `ctest -L stream`):
#
#   1. export artifacts A and B from a suite dataset, build an
#      in-distribution probe CSV and a drifted copy (every feature shifted
#      far outside A's export stats)
#   2. quiet leg: with the drift loop armed, in-distribution traffic never
#      triggers (SIGUSR1 stats line shows rows observed, zero drift
#      triggers, generation 1)
#   3. drift leg (fresh listener, so the re-search snapshot is purely
#      drifted rows): drifted traffic trips the monitor, the background
#      re-search exports a candidate and hot-swaps it (generation 2), and
#      post-swap responses match the candidate artifact scored in-process
#      bit for bit
#   4. torn-swap leg (threshold set unreachably high so only the observer
#      runs): an explicit A -> B swap under full load with
#      --expect/--expect-alt has zero torn responses while the streaming
#      observer sits in the batch path
#   5. failure leg: with the candidate path in a nonexistent directory,
#      drifted traffic triggers but the export fails — the stats line
#      counts research_failed, generation stays 1, and serving still
#      matches artifact A
#
# Usage: scripts/check_stream.sh --cli <autofp> --serve <autofp_serve>
#                                --loadgen <autofp_loadgen>
set -euo pipefail

cli=""
serve=""
loadgen=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --cli) cli="$2"; shift 2 ;;
    --serve) serve="$2"; shift 2 ;;
    --loadgen) loadgen="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
[[ -n "${cli}" && -n "${serve}" && -n "${loadgen}" ]] || {
  echo "usage: $0 --cli <autofp> --serve <autofp_serve>" \
       "--loadgen <autofp_loadgen>" >&2
  exit 2
}

workdir="$(mktemp -d "${TMPDIR:-/tmp}/autofp_stream.XXXXXX")"
server=""
cleanup() {
  [[ -n "${server}" ]] && kill "${server}" 2> /dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

# Starts a listener on an ephemeral port with the given extra flags and
# waits for it to come up. Sets globals `server` and `port`; logs to $1.
start_listener() {
  local log="$1"; shift
  "${serve}" listen --artifact "${artifact_a}" --port 0 "$@" \
    2> "${log}" &
  server=$!
  port=""
  for _ in $(seq 100); do
    port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "${log}" \
            | head -n 1)"
    [[ -n "${port}" ]] && break
    kill -0 "${server}" 2> /dev/null || break
    sleep 0.1
  done
  [[ -n "${port}" ]] || { cat "${log}" >&2; exit 1; }
}

stop_listener() {
  kill -TERM "${server}" 2> /dev/null || true
  wait "${server}" 2> /dev/null || true
  server=""
}

# Sends SIGUSR1 and echoes the newest "stats: {...}" line from log $1.
dump_stats() {
  local log="$1"
  local before
  before="$(grep -c '^stats: ' "${log}" || true)"
  kill -USR1 "${server}"
  for _ in $(seq 50); do
    if [[ "$(grep -c '^stats: ' "${log}" || true)" -gt "${before}" ]]; then
      break
    fi
    sleep 0.1
  done
  grep '^stats: ' "${log}" | tail -n 1
}

# Polls the stats line until it contains $2 (want=yes) or until it no
# longer contains $2 (want=no). Leaves the last line in `stats`.
wait_for_stat() {
  local log="$1" pattern="$2" want="${3:-yes}"
  for _ in $(seq 100); do
    stats="$(dump_stats "${log}")"
    if [[ "${want}" == yes && "${stats}" == *"${pattern}"* ]]; then
      return 0
    fi
    if [[ "${want}" == no && "${stats}" != *"${pattern}"* ]]; then
      return 0
    fi
    sleep 0.2
  done
  echo "timed out waiting for '${pattern}' (${want}): ${stats}" >&2
  return 1
}

dataset="suite:blood_syn"
artifact_a="${workdir}/model_a.afpa"
artifact_b="${workdir}/model_b.afpa"
rows="${workdir}/rows.csv"
drift_rows="${workdir}/rows_drift.csv"

echo "--- export artifacts, build probe + drifted CSVs"
"${cli}" --data "${dataset}" --algorithm RS --budget 20 --seed 7 \
  --export-artifact "${artifact_a}" > /dev/null
"${cli}" --data "${dataset}" --algorithm RS --budget 20 --seed 1234 \
  --export-artifact "${artifact_b}" > /dev/null
"${cli}" --data "${dataset}" --apply "<no-FP>" --out "${rows}" > /dev/null
# Shift every feature by +1000: many reference stddevs on every column.
awk 'BEGIN { FS = OFS = "," }
     NR == 1 { print; next }
     { for (i = 1; i <= NF; i++) $i += 1000; print }' \
  "${rows}" > "${drift_rows}"
"${serve}" score --artifact "${artifact_a}" --in "${rows}" \
  --out "${workdir}/expect_a.csv" --has-header 2> /dev/null
"${serve}" score --artifact "${artifact_b}" --in "${rows}" \
  --out "${workdir}/expect_b.csv" --has-header 2> /dev/null

echo "--- quiet leg: in-distribution traffic never triggers"
log1="${workdir}/server_quiet.log"
start_listener "${log1}" \
  --candidate "${workdir}/quiet_candidate.afpa" \
  --drift-window 256 --drift-threshold 0.5 \
  --reservoir-rows 512 --research-budget 8 --research-min-rows 64
grep -q "^drift: window 256 rows" "${log1}"
"${loadgen}" --port "${port}" --connections 2 --duration 1 \
  --in "${rows}" --expect "${workdir}/expect_a.csv" \
  > "${workdir}/leg_quiet.out"
grep -q "mismatches=0" "${workdir}/leg_quiet.out"
stats="$(dump_stats "${log1}")"
[[ "${stats}" == *'"generation":1'* ]]
[[ "${stats}" == *'"drift_triggers":0'* ]]
[[ "${stats}" != *'"stream_rows_observed":0,'* ]]
stop_listener

echo "--- drift leg: drifted traffic triggers re-search and hot-swap"
candidate="${workdir}/candidate.afpa"
log2="${workdir}/server_drift.log"
start_listener "${log2}" \
  --candidate "${candidate}" --drift-window 256 --drift-threshold 0.5 \
  --reservoir-rows 512 --research-budget 8 --research-min-rows 64 \
  --research-seed 11
"${loadgen}" --port "${port}" --connections 1 --duration 1 \
  --in "${drift_rows}" > /dev/null
wait_for_stat "${log2}" '"research_succeeded":0' no
stats="$(dump_stats "${log2}")"
[[ "${stats}" == *'"generation":2'* ]]
[[ "${stats}" != *'"drift_triggers":0'* ]]
[[ -s "${candidate}" ]]

echo "--- post-swap responses match the candidate artifact bit for bit"
"${serve}" score --artifact "${candidate}" --in "${drift_rows}" \
  --out "${workdir}/expect_cand.csv" --has-header 2> /dev/null
"${loadgen}" --port "${port}" --connections 2 --duration 0.5 \
  --in "${drift_rows}" --expect "${workdir}/expect_cand.csv" \
  > "${workdir}/leg_post.out"
grep -q "mismatches=0" "${workdir}/leg_post.out"
stop_listener

echo "--- torn-swap leg: swap under load with the observer in the path"
log3="${workdir}/server_torn.log"
start_listener "${log3}" \
  --candidate "${workdir}/unused_candidate.afpa" \
  --drift-window 256 --drift-threshold 1000000 --research-min-rows 64
"${loadgen}" --port "${port}" --connections 4 --duration 1.5 \
  --in "${rows}" --expect "${workdir}/expect_a.csv" \
  --expect-alt "${workdir}/expect_b.csv" \
  --swap "${artifact_b}" --swap-after 0.4 \
  > "${workdir}/leg_torn.out"
grep -q "mismatches=0" "${workdir}/leg_torn.out"
stats="$(dump_stats "${log3}")"
[[ "${stats}" == *'"generation":2'* ]]
[[ "${stats}" == *'"drift_triggers":0'* ]]
[[ "${stats}" != *'"stream_windows_compared":0,'* ]]
stop_listener

echo "--- failure leg: failed candidate export keeps the old generation"
log4="${workdir}/server_fail.log"
start_listener "${log4}" \
  --candidate "${workdir}/no_such_dir/candidate.afpa" \
  --drift-window 256 --drift-threshold 0.5 \
  --reservoir-rows 512 --research-budget 8 --research-min-rows 64
"${loadgen}" --port "${port}" --connections 1 --duration 1 \
  --in "${drift_rows}" > /dev/null
wait_for_stat "${log4}" '"research_failed":0' no
stats="$(dump_stats "${log4}")"
[[ "${stats}" == *'"generation":1'* ]]
[[ "${stats}" == *'"research_succeeded":0'* ]]
# Old artifact still serves, bit for bit.
"${loadgen}" --port "${port}" --connections 1 --duration 0.3 \
  --in "${rows}" --expect "${workdir}/expect_a.csv" \
  > "${workdir}/leg_fail.out"
grep -q "mismatches=0" "${workdir}/leg_fail.out"
stop_listener

echo "stream drift check passed."
