#!/usr/bin/env bash
# Builds with -fsanitize=thread and runs the concurrency-sensitive tests:
# the parallel evaluation engine (ParallelEvaluator, TransformCache,
# CachingEvaluator, EvaluateBatch), the fault-injection suite that
# shares its retry/quarantine paths, the serving runtime's worker
# pool (Predictor sharded scoring + latency histogram), the
# zero-copy data plane (shared cache entries read while evicting,
# per-worker scratch reuse, in-place kernel equivalence), and the
# network serving stack (socket server I/O + batch threads, hot-swap
# registry, swap-under-concurrent-load tear check).
#
# Usage: scripts/check_tsan.sh [ctest-regex]
#   ctest-regex  optional test-name filter; defaults to the concurrency
#                suites. Pass '.' to run everything under TSan.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-tsan"
filter="${1:-TransformCache|PrefixCache|CachingEvaluator|ParallelEvaluator|EvaluateBatch|ThreadInvariance|ParallelFaults|FaultInjector|Quarantine|Retry|Predictor|ScratchEval|InPlace|Protocol|ServeNet|Registry|HotSwap}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAUTOFP_SANITIZE=thread
cmake --build "${build_dir}" -j \
  --target test_parallel_eval test_fault_injection test_predictor \
  test_inplace test_protocol test_serve_net autofp autofp_serve_bin \
  autofp_loadgen

cd "${build_dir}"
TSAN_OPTIONS="halt_on_error=1" ctest --output-on-failure -R "${filter}"
echo "TSan check passed."
