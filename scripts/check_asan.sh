#!/usr/bin/env bash
# Builds with -fsanitize=address and runs the data-plane-heavy suites:
# the in-place kernel / scratch-buffer property tests, the matrix
# storage primitives they rest on, the pipeline fit/transform paths,
# and the parallel + serving consumers of shared cache entries. ASan
# is the check that the zero-copy refactor's aliasing rules (in-place
# kernels, non-owning views, adopted move storage) never read or write
# freed or out-of-bounds memory.
#
# Usage: scripts/check_asan.sh [ctest-regex]
#   ctest-regex  optional test-name filter; defaults to the data-plane
#                suites. Pass '.' to run everything under ASan.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-asan"
filter="${1:-Matrix|InPlace|Pipeline|TransformCache|ScratchEval|ParallelEvaluator|EvaluateBatch|Predictor}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAUTOFP_SANITIZE=address
cmake --build "${build_dir}" -j \
  --target test_matrix test_inplace test_pipeline test_parallel_eval \
  test_predictor

cd "${build_dir}"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  ctest --output-on-failure -R "${filter}"
echo "ASan check passed."
