#!/usr/bin/env bash
# End-to-end network serving check (registered as `ctest -L serve`):
#
#   1. search two suite datasets' pipelines and export artifacts A and B,
#      then score the probe CSV in-process to get reference predictions
#   2. start `autofp_serve listen` on an ephemeral port
#   3. drive it with autofp_loadgen and assert every response matches
#      the in-process reference bit for bit
#   4. hot-swap A -> B mid-load (every response must match A's or B's
#      reference, never a mix) and confirm the swap stuck
#   5. malformed-frame probe: garbage gets a typed error then a close,
#      and the server keeps serving new connections
#   6. SIGHUP reloads the current artifact (generation bump in stderr)
#   7. SIGTERM drains and exits with the signal exit code (3)
#
# Usage: scripts/check_serve_net.sh --cli <autofp> --serve <autofp_serve>
#                                   --loadgen <autofp_loadgen>
set -euo pipefail

cli=""
serve=""
loadgen=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --cli) cli="$2"; shift 2 ;;
    --serve) serve="$2"; shift 2 ;;
    --loadgen) loadgen="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
[[ -n "${cli}" && -n "${serve}" && -n "${loadgen}" ]] || {
  echo "usage: $0 --cli <autofp> --serve <autofp_serve>" \
       "--loadgen <autofp_loadgen>" >&2
  exit 2
}

workdir="$(mktemp -d "${TMPDIR:-/tmp}/autofp_serve_net.XXXXXX")"
server=""
cleanup() {
  [[ -n "${server}" ]] && kill "${server}" 2> /dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

dataset="suite:blood_syn"
artifact_a="${workdir}/model_a.afpa"
artifact_b="${workdir}/model_b.afpa"
rows="${workdir}/rows.csv"

echo "--- export artifacts A and B, score the probe in-process"
"${cli}" --data "${dataset}" --algorithm RS --budget 20 --seed 7 \
  --export-artifact "${artifact_a}" > /dev/null
"${cli}" --data "${dataset}" --algorithm RS --budget 20 --seed 1234 \
  --export-artifact "${artifact_b}" > /dev/null
"${cli}" --data "${dataset}" --apply "<no-FP>" --out "${rows}" > /dev/null
"${serve}" score --artifact "${artifact_a}" --in "${rows}" \
  --out "${workdir}/expect_a.csv" --has-header 2> /dev/null
"${serve}" score --artifact "${artifact_b}" --in "${rows}" \
  --out "${workdir}/expect_b.csv" --has-header 2> /dev/null

echo "--- start the listener on an ephemeral port"
"${serve}" listen --artifact "${artifact_a}" --port 0 \
  2> "${workdir}/server.log" &
server=$!
port=""
for _ in $(seq 100); do
  port="$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' \
          "${workdir}/server.log" | head -n 1)"
  [[ -n "${port}" ]] && break
  kill -0 "${server}" 2> /dev/null || break
  sleep 0.1
done
[[ -n "${port}" ]] || { cat "${workdir}/server.log" >&2; exit 1; }

echo "--- socket responses match the in-process reference"
"${loadgen}" --port "${port}" --connections 4 --duration 1 \
  --in "${rows}" --expect "${workdir}/expect_a.csv" \
  > "${workdir}/leg1.out"
grep -q "mismatches=0" "${workdir}/leg1.out"

echo "--- CSV frames agree with dense frames"
"${loadgen}" --port "${port}" --connections 2 --duration 0.5 \
  --format csv --in "${rows}" --expect "${workdir}/expect_a.csv" \
  > "${workdir}/leg_csv.out"
grep -q "mismatches=0" "${workdir}/leg_csv.out"

echo "--- hot-swap A -> B under load: no torn responses"
"${loadgen}" --port "${port}" --connections 4 --duration 1.5 \
  --in "${rows}" --expect "${workdir}/expect_a.csv" \
  --expect-alt "${workdir}/expect_b.csv" \
  --swap "${artifact_b}" --swap-after 0.4 \
  > "${workdir}/leg2.out"
grep -q "mismatches=0" "${workdir}/leg2.out"
# The swap stuck: a fresh run must now match B only.
"${loadgen}" --port "${port}" --connections 1 --duration 0.3 \
  --in "${rows}" --expect "${workdir}/expect_b.csv" \
  > "${workdir}/leg3.out"
grep -q "mismatches=0" "${workdir}/leg3.out"

echo "--- malformed frames get a typed error, then the connection closes"
"${loadgen}" --port "${port}" --probe-malformed
# Server must still answer after the garbage connection.
"${loadgen}" --port "${port}" --connections 1 --duration 0.2 \
  --in "${rows}" --expect "${workdir}/expect_b.csv" > /dev/null

echo "--- SIGHUP reloads the current artifact"
kill -HUP "${server}"
for _ in $(seq 50); do
  grep -q "^reload: " "${workdir}/server.log" && break
  sleep 0.1
done
grep -q "^reload: swapped generation=" "${workdir}/server.log"

echo "--- SIGTERM drains and exits 3"
kill -TERM "${server}"
rc=0
wait "${server}" || rc=$?
server=""
[[ "${rc}" -eq 3 ]]
grep -q "latency" "${workdir}/server.log"

echo "serve net check passed."
