#!/usr/bin/env bash
# One-shot CI entry point: tier-1 build + ctest, the ThreadSanitizer
# concurrency suites, the AddressSanitizer data-plane suites, the
# UndefinedBehaviorSanitizer kernel-layer suites, a full forced-scalar
# run (AUTOFP_DISABLE_SIMD=ON — the kernel layer's portable fallback
# must pass everything the SIMD build does), the artifact/serving round
# trip, the network serving end-to-end leg (hot swap under load,
# malformed frames, signal handling), the streaming drift loop
# (drift-triggered background re-search and hot swap), and the
# kill-point crash-injection matrix.
#
# Usage: scripts/ci.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "=== tier-1: build + ctest ==="
cmake -B "${repo_root}/build" -S "${repo_root}"
cmake --build "${repo_root}/build" -j
(cd "${repo_root}/build" && ctest --output-on-failure -j)

echo "=== tsan: concurrency suites ==="
"${repo_root}/scripts/check_tsan.sh"

echo "=== asan: data-plane suites ==="
"${repo_root}/scripts/check_asan.sh"

echo "=== ubsan: kernel-layer suites ==="
"${repo_root}/scripts/check_ubsan.sh"

echo "=== forced-scalar: full ctest with SIMD disabled ==="
cmake -B "${repo_root}/build-scalar" -S "${repo_root}" \
  -DAUTOFP_DISABLE_SIMD=ON
cmake --build "${repo_root}/build-scalar" -j
(cd "${repo_root}/build-scalar" && ctest --output-on-failure -j)

echo "=== serve: export -> score round trip ==="
"${repo_root}/scripts/check_serve.sh" \
  --cli "${repo_root}/build/tools/autofp" \
  --serve "${repo_root}/build/tools/autofp_serve"

echo "=== serve: network round trip, hot swap, drain ==="
"${repo_root}/scripts/check_serve_net.sh" \
  --cli "${repo_root}/build/tools/autofp" \
  --serve "${repo_root}/build/tools/autofp_serve" \
  --loadgen "${repo_root}/build/tools/autofp_loadgen"

echo "=== stream: drift loop, background re-search, hot swap ==="
"${repo_root}/scripts/check_stream.sh" \
  --cli "${repo_root}/build/tools/autofp" \
  --serve "${repo_root}/build/tools/autofp_serve" \
  --loadgen "${repo_root}/build/tools/autofp_loadgen"

echo "=== crash: kill-and-resume determinism ==="
"${repo_root}/scripts/check_crash.sh" --binary "${repo_root}/build/tools/autofp"

echo "=== dist: multi-process chaos (crashes, stragglers, orphans) ==="
"${repo_root}/scripts/check_dist.sh" --binary "${repo_root}/build/tools/autofp"

echo "=== dist: chaos quick pass under the TSan build ==="
"${repo_root}/scripts/check_dist.sh" \
  --binary "${repo_root}/build-tsan/tools/autofp" --quick

echo "CI passed."
