#!/usr/bin/env bash
# End-to-end artifact/serving smoke test (registered as `ctest -L serve`):
#
#   1. search a suite dataset and --export-artifact the winner
#   2. dump the raw dataset to CSV (--apply "<no-FP>")
#   3. score it with autofp_serve at --threads 1 and --threads 4
#   4. assert the two prediction files are byte-identical
#   5. assert malformed rows are skipped (and only they), and that a
#      corrupted artifact is rejected with a typed error, not a crash
#
# Usage: scripts/check_serve.sh --cli <autofp-binary> --serve <serve-binary>
set -euo pipefail

cli=""
serve=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --cli) cli="$2"; shift 2 ;;
    --serve) serve="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
[[ -n "${cli}" && -n "${serve}" ]] || {
  echo "usage: $0 --cli <autofp> --serve <autofp_serve>" >&2; exit 2;
}

workdir="$(mktemp -d "${TMPDIR:-/tmp}/autofp_serve_check.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

dataset="suite:blood_syn"
artifact="${workdir}/model.afpa"
rows="${workdir}/rows.csv"

echo "--- search + export"
"${cli}" --data "${dataset}" --algorithm RS --budget 20 \
  --export-artifact "${artifact}" > "${workdir}/search.log"
grep -q "artifact" "${workdir}/search.log"
[[ -s "${artifact}" ]]

echo "--- dump the raw dataset"
"${cli}" --data "${dataset}" --apply "<no-FP>" --out "${rows}" > /dev/null

echo "--- score at two thread counts, diff predictions"
"${serve}" score --artifact "${artifact}" --in "${rows}" \
  --out "${workdir}/preds_t1.csv" --has-header --threads 1 2> /dev/null
"${serve}" score --artifact "${artifact}" --in "${rows}" \
  --out "${workdir}/preds_t4.csv" --has-header --threads 4 --batch 32 \
  2> /dev/null
cmp "${workdir}/preds_t1.csv" "${workdir}/preds_t4.csv"
# One prediction per data row (plus the header line each side).
[[ "$(wc -l < "${workdir}/preds_t1.csv")" -eq "$(wc -l < "${rows}")" ]]

echo "--- malformed rows are skipped, counted, and non-fatal"
{
  head -n 3 "${rows}"            # header + 2 good rows
  echo "1.0,not_a_number,3.0,4.0,0"
  echo "1.0,2.0"
} > "${workdir}/mixed.csv"
"${serve}" score --artifact "${artifact}" --in "${workdir}/mixed.csv" \
  --out "${workdir}/preds_mixed.csv" --has-header \
  2> "${workdir}/mixed.log"
grep -q "2 skipped" "${workdir}/mixed.log"
[[ "$(wc -l < "${workdir}/preds_mixed.csv")" -eq 3 ]]  # header + 2 rows

echo "--- all rows malformed => exit 4"
printf 'bad,row\nworse\n' > "${workdir}/all_bad.csv"
rc=0
"${serve}" score --artifact "${artifact}" --in "${workdir}/all_bad.csv" \
  --out "${workdir}/preds_bad.csv" 2> /dev/null || rc=$?
[[ "${rc}" -eq 4 ]]

echo "--- corrupted artifact => typed error, exit 1"
cp "${artifact}" "${workdir}/corrupt.afpa"
# Flip one byte in the middle of the file.
size=$(stat -c %s "${workdir}/corrupt.afpa" 2>/dev/null \
       || stat -f %z "${workdir}/corrupt.afpa")
printf '\xff' | dd of="${workdir}/corrupt.afpa" bs=1 seek=$((size / 2)) \
  count=1 conv=notrunc status=none
rc=0
"${serve}" score --artifact "${workdir}/corrupt.afpa" --in "${rows}" \
  --out "${workdir}/preds_corrupt.csv" --has-header \
  2> "${workdir}/corrupt.log" || rc=$?
[[ "${rc}" -eq 1 ]]
grep -Eq "CorruptSection|Truncated|MalformedSection|BadState" \
  "${workdir}/corrupt.log"

echo "--- serve mode answers requests and drains on SIGTERM"
# Feed two requests, then keep the pipe open until the server is killed.
request="$(head -n 2 "${rows}" | tail -n 1)"
fifo="${workdir}/requests.fifo"
mkfifo "${fifo}"
"${serve}" serve --artifact "${artifact}" < "${fifo}" \
  > "${workdir}/serve.out" 2> "${workdir}/serve.log" &
server=$!
exec 3> "${fifo}"
printf '%s\n%s\n' "${request}" "${request}" >&3
for _ in $(seq 50); do
  [[ "$(wc -l < "${workdir}/serve.out")" -ge 2 ]] && break
  sleep 0.1
done
kill -TERM "${server}"
exec 3>&-
rc=0
wait "${server}" || rc=$?
[[ "${rc}" -eq 3 || "${rc}" -eq 0 ]]
[[ "$(wc -l < "${workdir}/serve.out")" -eq 2 ]]
grep -q "latency" "${workdir}/serve.log"

echo "serve check passed."
