#!/usr/bin/env bash
# Chaos harness for the distributed search runtime (src/dist/).
#
# The contract under test: worker count and worker failures may cost
# wall-clock, never results. For one fixed configuration this script
# asserts that the merged run journal of a 4-worker run is byte-identical
# (canonical --dump-journal listing) to a single-process run — unharmed,
# under injected worker crashes (AUTOFP_WORKER_CRASH_AFTER_EVALS), under
# forced stragglers revoked at the lease deadline
# (AUTOFP_WORKER_STALL_AFTER_EVALS), and under external SIGKILL of live
# workers mid-run. It also kills the *coordinator* at a journal append
# (AUTOFP_CRASH_AFTER_APPENDS), requires every orphaned worker to exit
# promptly, and requires the resumed 4-worker run to converge to the
# same bytes.
#
# Usage: scripts/check_dist.sh [--binary PATH] [--quick]
#   --binary PATH   autofp binary (default: build/tools/autofp, built if
#                   missing)
#   --quick         the identity + crash scenarios only (the sanitizer
#                   leg: forked workers under a short time budget)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin="${repo_root}/build/tools/autofp"
quick=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --binary) bin="$2"; shift 2 ;;
    --quick) quick=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${bin}" ]]; then
  echo "building autofp..."
  cmake -B "${repo_root}/build" -S "${repo_root}" > /dev/null
  cmake --build "${repo_root}/build" --target autofp -j > /dev/null
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
# Shared-dataset hand-off files land under TMPDIR: point it at the
# workdir so anything a killed coordinator leaves behind is cleaned up.
export TMPDIR="${workdir}"

common_args=(--data suite:blood_syn --budget 40 --seed 7 --algorithm RS)
coordinator_crash_exit=86  # kCrashPointExitCode
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

best_line() { grep '^best pipeline' "$1"; }

# Orphaned workers carry "--worker-dataset ${workdir}/..." on their
# command line; the workdir path makes the pattern unique to this run
# (and never matches this script or a concurrent ctest job).
live_workers() { pgrep -f -c "worker-dataset ${workdir}" || true; }

# --- Reference: the single-process run every scenario must reproduce. ---
ref_journal="${workdir}/ref.journal"
ref_out="${workdir}/ref.out"
timeout 120 "${bin}" "${common_args[@]}" --journal "${ref_journal}" \
    > "${ref_out}"
"${bin}" --dump-journal "${ref_journal}" > "${workdir}/ref.dump"

# One scenario: run with the given env + extra args, require success and
# a journal byte-identical to the reference. Env assignments ("K=V")
# come first, then "--", then extra CLI flags.
run_scenario() {
  local tag="$1"; shift
  local env_vars=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do
    env_vars+=("$1"); shift
  done
  [[ $# -gt 0 ]] && shift  # the "--"
  local out="${workdir}/${tag}.out"
  local journal="${workdir}/${tag}.journal"
  if ! env "${env_vars[@]}" timeout 120 "${bin}" "${common_args[@]}" "$@" \
      --journal "${journal}" > "${out}"; then
    fail "${tag}: run did not complete"
    return
  fi
  "${bin}" --dump-journal "${journal}" > "${workdir}/${tag}.dump"
  if ! cmp -s "${workdir}/ref.dump" "${workdir}/${tag}.dump"; then
    fail "${tag}: merged journal differs from the single-process run"
    diff "${workdir}/ref.dump" "${workdir}/${tag}.dump" | head -5 >&2
    return
  fi
  if [[ "$(best_line "${ref_out}")" != "$(best_line "${out}")" ]]; then
    fail "${tag}: best pipeline differs"
    return
  fi
  echo "ok: ${tag}"
}

# 1. Worker-count invariance: 4 workers merge to the same bytes.
run_scenario "workers4" -- --workers 4

# 2. Worker crashes at injected kill points: every worker hard-exits
#    after N results, repeatedly, including a batch that exhausts its
#    lease attempts into local fallback.
run_scenario "crash-every-5" AUTOFP_WORKER_CRASH_AFTER_EVALS=5 \
    -- --workers 4
run_scenario "crash-staggered" AUTOFP_WORKER_CRASH_AFTER_EVALS="0=3,2=7" \
    -- --workers 4

if [[ ${quick} -eq 0 ]]; then
  # 3. Forced straggler: worker 0 stalls far past the lease deadline and
  #    is revoked; its lease is re-leased and the run converges.
  run_scenario "straggler" AUTOFP_WORKER_STALL_AFTER_EVALS="0=2" \
      AUTOFP_WORKER_STALL_SECONDS=60 -- --workers 4 --lease-deadline 2

  # 4. External SIGKILL of live workers mid-run (the ungraceful version
  #    of scenario 2: no exit hook, just a dead pipe). A longer run with
  #    its own reference so the kills land while leases are in flight.
  long_args=(--data suite:blood_syn --budget 300 --seed 7 --algorithm RS)
  long_journal="${workdir}/long-ref.journal"
  timeout 120 "${bin}" "${long_args[@]}" --journal "${long_journal}" \
      > /dev/null
  "${bin}" --dump-journal "${long_journal}" > "${workdir}/long-ref.dump"
  sigkill_journal="${workdir}/sigkill.journal"
  sigkill_out="${workdir}/sigkill.out"
  timeout 120 "${bin}" "${long_args[@]}" --workers 4 \
      --journal "${sigkill_journal}" > "${sigkill_out}" &
  coordinator=$!
  for _ in 1 2 3; do
    sleep 0.1
    pkill -KILL -f "worker-dataset ${workdir}" 2> /dev/null || true
  done
  if ! wait "${coordinator}"; then
    fail "sigkill: coordinator did not survive its workers being killed"
  else
    "${bin}" --dump-journal "${sigkill_journal}" > "${workdir}/sigkill.dump"
    cmp -s "${workdir}/long-ref.dump" "${workdir}/sigkill.dump" \
        || fail "sigkill: merged journal differs from the single-process run"
    echo "ok: sigkill"
  fi

  # 5. Coordinator crash: kill the coordinator at a journal append while
  #    4 workers hold leases. Orphans must notice the dead pipe and exit
  #    promptly; the resumed run must converge to the reference bytes.
  crash_journal="${workdir}/coord-crash.journal"
  set +e
  AUTOFP_CRASH_AFTER_APPENDS=10 timeout 120 "${bin}" "${common_args[@]}" \
      --workers 4 --journal "${crash_journal}" > /dev/null 2>&1
  status=$?
  set -e
  if [[ ${status} -ne ${coordinator_crash_exit} ]]; then
    fail "coord-crash: expected injected-crash exit ${coordinator_crash_exit}, got ${status}"
  else
    for _ in $(seq 50); do
      [[ "$(live_workers)" -eq 0 ]] && break
      sleep 0.1
    done
    if [[ "$(live_workers)" -ne 0 ]]; then
      fail "coord-crash: orphaned workers still alive 5s after coordinator death"
      pkill -KILL -f "worker-dataset ${workdir}" 2> /dev/null || true
    fi
    resume_out="${workdir}/coord-crash.resume.out"
    if ! timeout 120 "${bin}" "${common_args[@]}" --workers 4 \
        --journal "${crash_journal}" --resume > "${resume_out}"; then
      fail "coord-crash: resume did not complete"
    else
      grep -q "journal        : 10 replayed" "${resume_out}" \
          || fail "coord-crash: resume did not replay exactly 10 evaluations"
      "${bin}" --dump-journal "${crash_journal}" > "${workdir}/coord-crash.dump"
      cmp -s "${workdir}/ref.dump" "${workdir}/coord-crash.dump" \
          || fail "coord-crash: resumed journal differs from the single-process run"
      [[ "$(best_line "${ref_out}")" == "$(best_line "${resume_out}")" ]] \
          || fail "coord-crash: best pipeline differs after resume"
      echo "ok: coord-crash + orphan exit + resume"
    fi
  fi
fi

if [[ ${failures} -gt 0 ]]; then
  echo "check_dist: ${failures} failure(s)" >&2
  exit 1
fi
echo "Distributed chaos check passed (journals byte-identical across" \
     "worker counts, crashes, stragglers and coordinator death)."
