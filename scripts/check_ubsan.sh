#!/usr/bin/env bash
# Builds with -fsanitize=undefined and runs the kernel-layer suites:
# the SIMD wrapper primitives, the layout-aware preprocessor kernels,
# the matrix layout/view machinery, and the pipeline data plane built
# on them. UBSan is the check that the vectorized remainder handling,
# the branchless table lookups (index arithmetic, gathers) and the
# borrowed-view aliasing never rely on undefined behavior — misaligned
# casts, signed overflow, out-of-range shifts.
#
# Usage: scripts/check_ubsan.sh [ctest-regex]
#   ctest-regex  optional test-name filter; defaults to the kernel
#                suites. Pass '.' to run everything under UBSan.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-ubsan"
filter="${1:-Simd|Kernels|Matrix|InPlace|Pipeline|Preprocessor}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAUTOFP_SANITIZE=undefined
cmake --build "${build_dir}" -j \
  --target test_simd test_kernels test_matrix test_inplace test_pipeline \
  test_preprocessors

cd "${build_dir}"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --output-on-failure -R "${filter}"
echo "UBSan check passed."
