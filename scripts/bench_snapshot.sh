#!/usr/bin/env bash
# Regenerates the committed serving-perf baseline (BENCH_serve.json):
# socket round-trip rows/sec and p50/p95/p99 latency at 1/4/16
# connections, measured by bench_serve_throughput's network section
# (in-process ServeSocketServer + closed-loop BlockingFrameClient
# workers — the same stack as `autofp_serve listen` + autofp_loadgen).
#
# Numbers are machine-dependent; the committed file is a reference
# point for spotting order-of-magnitude regressions after touching the
# epoll front end or the micro-batcher, not a CI gate.
#
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake --build "${build_dir}" -j --target bench_serve_throughput

"${build_dir}/bench/bench_serve_throughput" --net-only \
  --json "${repo_root}/BENCH_serve.json"
echo "wrote ${repo_root}/BENCH_serve.json"
