#!/usr/bin/env bash
# Regenerates the committed perf baselines:
#   BENCH_serve.json — socket round-trip rows/sec and p50/p95/p99
#     latency at 1/4/16 connections, measured by
#     bench_serve_throughput's network section (in-process
#     ServeSocketServer + closed-loop BlockingFrameClient workers — the
#     same stack as `autofp_serve listen` + autofp_loadgen).
#   BENCH_dist.json — evaluations/sec of one fixed batch under
#     in-process threads vs forked worker processes at 1/2/4/8 ways
#     (bench_dist_scaling).
#   BENCH_stream.json — rows/sec through each streaming-observer
#     component (running moments, P2 quantile sketches, reservoir,
#     drift monitor); all should dwarf the socket front end's
#     throughput (bench_stream_overhead).
#   BENCH_kernels.json — preprocessor-kernel roofline: each
#     TransformInPlace timed scalar row-major vs SIMD row-major vs
#     SIMD col-major, with rows/s, GB/s and speedups
#     (bench_micro_preprocessors --json).
#   BENCH_model_kernels.json — the model-side SIMD primitives (Dot,
#     Axpy, histogram binning, running moments), scalar vs vectorized
#     (bench_micro_models --json).
#
# Numbers are machine-dependent; the committed files are reference
# points for spotting order-of-magnitude regressions after touching
# the epoll front end, the micro-batcher, the parallel evaluator or
# the distributed runtime — not a CI gate.
#
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake --build "${build_dir}" -j \
  --target bench_serve_throughput bench_dist_scaling bench_stream_overhead \
  bench_micro_preprocessors bench_micro_models

"${build_dir}/bench/bench_serve_throughput" --net-only \
  --json "${repo_root}/BENCH_serve.json"
echo "wrote ${repo_root}/BENCH_serve.json"

"${build_dir}/bench/bench_dist_scaling" \
  --json "${repo_root}/BENCH_dist.json"
echo "wrote ${repo_root}/BENCH_dist.json"

"${build_dir}/bench/bench_stream_overhead" \
  --json "${repo_root}/BENCH_stream.json"
echo "wrote ${repo_root}/BENCH_stream.json"

"${build_dir}/bench/bench_micro_preprocessors" \
  --json "${repo_root}/BENCH_kernels.json"
echo "wrote ${repo_root}/BENCH_kernels.json"

"${build_dir}/bench/bench_micro_models" \
  --json "${repo_root}/BENCH_model_kernels.json"
echo "wrote ${repo_root}/BENCH_model_kernels.json"
