#!/usr/bin/env bash
# Kill-point crash-injection harness for the durable-run subsystem.
#
# For a matrix of (search algorithm x kill point), runs the CLI with a
# write-ahead journal and the deterministic crash point armed
# (AUTOFP_CRASH_AFTER_APPENDS=N hard-exits the process right after journal
# append N hits the disk), resumes the killed run with --resume, and
# asserts that the resumed run's evaluation history (canonical
# --dump-journal listing) and best pipeline are byte-identical to an
# uninterrupted run of the same configuration. Also exercises torn-tail
# recovery: a journal truncated mid-record must resume losing only the
# torn record and still converge to the identical history.
#
# Usage: scripts/check_crash.sh [--binary PATH] [--algorithms "A B C"]
#                               [--kill-points "N1 N2 N3"]
#   --binary PATH   autofp binary (default: build/tools/autofp, built if
#                   missing)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
bin="${repo_root}/build/tools/autofp"
algorithms=(RS TEVO_H HYPERBAND)
kill_points=(3 10 25)

while [[ $# -gt 0 ]]; do
  case "$1" in
    --binary) bin="$2"; shift 2 ;;
    --algorithms) read -r -a algorithms <<< "$2"; shift 2 ;;
    --kill-points) read -r -a kill_points <<< "$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${bin}" ]]; then
  echo "building autofp..."
  cmake -B "${repo_root}/build" -S "${repo_root}" > /dev/null
  cmake --build "${repo_root}/build" --target autofp -j > /dev/null
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

common_args=(--data suite:blood_syn --budget 40 --seed 7)
crash_exit=86  # kCrashPointExitCode
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

best_line() { grep '^best pipeline' "$1"; }

for algorithm in "${algorithms[@]}"; do
  ref_journal="${workdir}/${algorithm}.ref.journal"
  ref_out="${workdir}/${algorithm}.ref.out"
  "${bin}" "${common_args[@]}" --algorithm "${algorithm}" \
      --journal "${ref_journal}" > "${ref_out}"
  "${bin}" --dump-journal "${ref_journal}" > "${workdir}/${algorithm}.ref.dump"

  for kill_point in "${kill_points[@]}"; do
    tag="${algorithm}@${kill_point}"
    journal="${workdir}/${tag}.journal"
    # 1. Kill the run after ${kill_point} durable appends.
    set +e
    AUTOFP_CRASH_AFTER_APPENDS="${kill_point}" \
        "${bin}" "${common_args[@]}" --algorithm "${algorithm}" \
        --journal "${journal}" > /dev/null 2>&1
    status=$?
    set -e
    if [[ ${status} -ne ${crash_exit} ]]; then
      fail "${tag}: expected injected-crash exit ${crash_exit}, got ${status}"
      continue
    fi
    [[ -s "${journal}" ]] || { fail "${tag}: crashed run left no journal"; continue; }

    # 2. Resume and require completion.
    resume_out="${workdir}/${tag}.resume.out"
    if ! "${bin}" "${common_args[@]}" --algorithm "${algorithm}" \
        --journal "${journal}" --resume > "${resume_out}"; then
      fail "${tag}: resume did not complete"
      continue
    fi
    if ! grep -q "journal        : ${kill_point} replayed" "${resume_out}"; then
      fail "${tag}: resume did not replay exactly ${kill_point} evaluations"
    fi

    # 3. Resumed history and best pipeline must match the uninterrupted run.
    "${bin}" --dump-journal "${journal}" > "${workdir}/${tag}.dump"
    if ! cmp -s "${workdir}/${algorithm}.ref.dump" "${workdir}/${tag}.dump"; then
      fail "${tag}: resumed journal differs from uninterrupted run"
      diff "${workdir}/${algorithm}.ref.dump" "${workdir}/${tag}.dump" | head -5 >&2
    fi
    if [[ "$(best_line "${ref_out}")" != "$(best_line "${resume_out}")" ]]; then
      fail "${tag}: best pipeline differs after resume"
    fi
    echo "ok: ${tag}"
  done
done

# Torn-tail recovery: truncate a crashed journal mid-record; the resume
# must drop only the torn record, re-evaluate it, and still converge.
torn="${workdir}/torn.journal"
set +e
AUTOFP_CRASH_AFTER_APPENDS=10 "${bin}" "${common_args[@]}" --algorithm RS \
    --journal "${torn}" > /dev/null 2>&1
set -e
truncate -s -5 "${torn}"
torn_out="${workdir}/torn.out"
"${bin}" "${common_args[@]}" --algorithm RS --journal "${torn}" --resume \
    > "${torn_out}" || fail "torn-tail: resume did not complete"
grep -q 'torn-tail bytes dropped' "${torn_out}" \
    || fail "torn-tail: tail drop not reported"
"${bin}" --dump-journal "${torn}" > "${workdir}/torn.dump"
cmp -s "${workdir}/RS.ref.dump" "${workdir}/torn.dump" \
    || fail "torn-tail: resumed journal differs from uninterrupted run"
echo "ok: torn-tail recovery"

if [[ ${failures} -gt 0 ]]; then
  echo "check_crash: ${failures} failure(s)" >&2
  exit 1
fi
echo "Crash-resume determinism check passed" \
     "(${#algorithms[@]} algorithms x ${#kill_points[@]} kill points)."
