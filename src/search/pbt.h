#ifndef AUTOFP_SEARCH_PBT_H_
#define AUTOFP_SEARCH_PBT_H_

#include <string>
#include <vector>

#include "core/search_framework.h"
#include "preprocess/pipeline.h"

namespace autofp {

/// Population-based training (Jaderberg et al., 2017) adapted to pipeline
/// search as in the paper: each round ranks the population, replaces the
/// bottom fraction by *exploit* (copy a top member) + *explore* (mutate the
/// copy), and injects extra exploration by occasionally replacing with an
/// entirely random pipeline. The paper's overall top-ranked algorithm.
class Pbt : public SearchAlgorithm {
 public:
  struct Config {
    size_t population_size = 10;
    double replace_fraction = 0.3;   ///< bottom fraction replaced per round.
    double random_probability = 0.15;  ///< fresh-random instead of mutate.
    /// Warm start (the paper's research opportunity 1): if non-empty,
    /// these pipelines seed the initial population instead of random
    /// samples (padded with random samples if fewer than population_size).
    std::vector<PipelineSpec> initial_population;
  };

  explicit Pbt(const Config& config) : config_(config) {
    AUTOFP_CHECK_GE(config.population_size, 2u);
  }
  Pbt() : Pbt(Config{}) {}

  std::string name() const override { return "PBT"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  struct Member {
    PipelineSpec pipeline;
    double accuracy = 0.0;
  };

  Config config_;
  std::vector<Member> population_;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_PBT_H_
