#ifndef AUTOFP_SEARCH_REGISTRY_H_
#define AUTOFP_SEARCH_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/search_framework.h"
#include "util/status.h"

namespace autofp {

/// The 15 algorithm names of the paper's Table 3, in its category order:
/// RS, Anneal (traditional); SMAC, TPE, PMNE, PME, PLNE, PLE
/// (surrogate-model-based); PBT, TEVO_H, TEVO_Y (evolution-based);
/// REINFORCE, ENAS (RL-based); HYPERBAND, BOHB (bandit-based).
const std::vector<std::string>& AllSearchAlgorithmNames();

/// Instantiates a search algorithm by its Table 3 name with the default
/// configuration used throughout the benchmarks. Returns NotFound for
/// unknown names.
Result<std::unique_ptr<SearchAlgorithm>> MakeSearchAlgorithm(
    const std::string& name);

}  // namespace autofp

#endif  // AUTOFP_SEARCH_REGISTRY_H_
