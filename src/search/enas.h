#ifndef AUTOFP_SEARCH_ENAS_H_
#define AUTOFP_SEARCH_ENAS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/search_framework.h"
#include "nn/lstm.h"

namespace autofp {

/// ENAS (Pham et al., 2018) adapted to pipeline search: an LSTM controller
/// autoregressively emits operator tokens (or STOP) to build a chain
/// architecture; the sampled pipeline is evaluated and the controller is
/// updated with the REINFORCE gradient against a moving-average baseline.
class Enas : public SearchAlgorithm {
 public:
  struct Config {
    size_t embed_dim = 8;
    size_t hidden_dim = 24;
    double learning_rate = 5e-3;
    double baseline_decay = 0.8;
    uint64_t controller_seed = 31;
    /// Children sampled (from the same controller state) and evaluated as
    /// one batch per Iterate. 1 reproduces classic ENAS exactly; larger
    /// values trade per-child controller updates for parallel evaluation
    /// throughput (updates are then applied child-by-child after the
    /// batch returns).
    int child_batch = 1;
  };

  explicit Enas(const Config& config) : config_(config) {}
  Enas() : Enas(Config{}) {}

  std::string name() const override { return "ENAS"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  /// Autoregressively samples one child from the current controller.
  std::vector<size_t> SampleDecisions(SearchContext* context);
  /// Baseline update + one REINFORCE step for an evaluated child.
  void UpdateController(const std::vector<size_t>& decisions,
                        double accuracy);

  Config config_;
  std::unique_ptr<LstmNet> controller_;
  size_t num_operators_ = 0;
  double baseline_ = 0.0;
  bool baseline_set_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_ENAS_H_
