#include "search/hyperband.h"

#include <algorithm>
#include <cmath>

namespace autofp {

Hyperband::Hyperband(const Config& config) : config_(config) {
  AUTOFP_CHECK_GT(config.eta, 1.0);
  AUTOFP_CHECK_GT(config.min_fraction, 0.0);
  AUTOFP_CHECK_LE(config.min_fraction, 1.0);
}

void Hyperband::Initialize(SearchContext* context) {
  (void)context;
  s_max_ = static_cast<int>(
      std::floor(std::log(1.0 / config_.min_fraction) /
                 std::log(config_.eta)));
  s_max_ = std::max(s_max_, 0);
  current_s_ = s_max_;
}

PipelineSpec Hyperband::SampleConfiguration(SearchContext* context) {
  return context->space().SampleUniform(context->rng());
}

void Hyperband::Iterate(SearchContext* context) {
  // One Successive-Halving bracket at aggressiveness s.
  const int s = current_s_;
  current_s_ = current_s_ > 0 ? current_s_ - 1 : s_max_;
  const double eta = config_.eta;
  // n = ceil((s_max+1)/(s+1) * eta^s) configurations at initial resource
  // r = eta^{-s} (full budget R = 1).
  int n = static_cast<int>(std::ceil(
      static_cast<double>(s_max_ + 1) / static_cast<double>(s + 1) *
      std::pow(eta, s)));
  double r = std::pow(eta, -s);

  struct Entry {
    PipelineSpec pipeline;
    double accuracy = 0.0;
  };
  std::vector<Entry> rung;
  for (int i = 0; i < n; ++i) {
    rung.push_back({SampleConfiguration(context), 0.0});
  }
  for (int round = 0; round <= s; ++round) {
    double fraction =
        std::clamp(r * std::pow(eta, round), config_.min_fraction, 1.0);
    // A rung's evaluations are independent of each other: submit the
    // whole rung as one batch so the parallel engine fills its workers.
    std::vector<PipelineSpec> pipelines;
    pipelines.reserve(rung.size());
    for (const Entry& entry : rung) pipelines.push_back(entry.pipeline);
    std::vector<std::optional<double>> accuracies =
        context->EvaluateBatch(pipelines, fraction);
    for (size_t i = 0; i < rung.size(); ++i) {
      if (!accuracies[i].has_value()) return;
      rung[i].accuracy = *accuracies[i];
    }
    // Keep the top 1/eta for the next rung.
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::floor(
               static_cast<double>(rung.size()) / eta)));
    if (round == s) break;
    std::sort(rung.begin(), rung.end(), [](const Entry& a, const Entry& b) {
      return a.accuracy > b.accuracy;
    });
    rung.resize(keep);
  }
}

}  // namespace autofp
