#ifndef AUTOFP_SEARCH_ANNEAL_H_
#define AUTOFP_SEARCH_ANNEAL_H_

#include <string>

#include "core/search_framework.h"
#include "preprocess/pipeline.h"

namespace autofp {

/// Simulated annealing (Kirkpatrick et al., 1983; the HyperOpt "anneal"
/// strategy): proposes a neighbour of the current state by mutating one
/// pipeline position, accepts improvements always and regressions with a
/// temperature-controlled probability that decays geometrically.
class Anneal : public SearchAlgorithm {
 public:
  struct Config {
    double initial_temperature = 0.05;
    double cooling = 0.97;       ///< T <- cooling * T per iteration.
    double min_temperature = 1e-4;
  };

  explicit Anneal(const Config& config) : config_(config) {}
  Anneal() : Anneal(Config{}) {}

  std::string name() const override { return "Anneal"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  Config config_;
  PipelineSpec current_;
  double current_accuracy_ = -1.0;
  double temperature_ = 0.0;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_ANNEAL_H_
