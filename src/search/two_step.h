#ifndef AUTOFP_SEARCH_TWO_STEP_H_
#define AUTOFP_SEARCH_TWO_STEP_H_

#include <string>

#include "core/budget.h"
#include "core/evaluator.h"
#include "core/search_framework.h"
#include "core/search_space.h"

namespace autofp {

/// The Two-step extension of Section 6.2: repeatedly (1) sample one
/// concrete parameter value per preprocessor, (2) run a pipeline search
/// over that fixed 7-operator alphabet for a short inner budget; the best
/// pipeline over all rounds wins. Composes with any registered algorithm
/// (the paper uses PBT).
struct TwoStepConfig {
  std::string algorithm = "PBT";
  /// Budget per inner pipeline search (the paper uses 60 s rounds).
  Budget inner_budget = Budget::Evaluations(30);
  size_t max_pipeline_length = 7;
};

/// `options.budget` is the total budget across all rounds; the remaining
/// fields (threads, caches, fault policy) apply to every inner search.
SearchResult RunTwoStep(const TwoStepConfig& config,
                        EvaluatorInterface* evaluator,
                        const ParameterSpace& parameters,
                        const SearchOptions& options);

/// The One-step extension: a single search over the flattened
/// (preprocessor x parameter) alphabet.
SearchResult RunOneStep(const std::string& algorithm,
                        EvaluatorInterface* evaluator,
                        const ParameterSpace& parameters,
                        const SearchOptions& options,
                        size_t max_pipeline_length = 7);

}  // namespace autofp

#endif  // AUTOFP_SEARCH_TWO_STEP_H_
