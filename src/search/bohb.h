#ifndef AUTOFP_SEARCH_BOHB_H_
#define AUTOFP_SEARCH_BOHB_H_

#include <string>

#include "search/hyperband.h"

namespace autofp {

/// BOHB (Falkner et al., 2018): Hyperband's bracket schedule, but new
/// configurations are drawn from a TPE-style good/bad density fitted on
/// the observations at the highest budget level with enough data; a fixed
/// fraction stays uniformly random to preserve exploration.
class Bohb : public Hyperband {
 public:
  struct Config {
    Hyperband::Config hyperband;
    double random_fraction = 1.0 / 3.0;
    size_t min_observations = 8;
    double gamma = 0.25;
    size_t num_candidates = 24;
  };

  explicit Bohb(const Config& config)
      : Hyperband(config.hyperband), config_(config) {}
  Bohb() : Bohb(Config{}) {}

  std::string name() const override { return "BOHB"; }

 protected:
  PipelineSpec SampleConfiguration(SearchContext* context) override;

 private:
  Config config_;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_BOHB_H_
