#include "search/smac.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace autofp {

namespace {

/// Expected improvement for minimization of error, given incumbent error.
double ExpectedImprovement(double mean, double stddev, double best_error) {
  double improvement = best_error - mean;
  if (stddev <= 1e-12) return std::max(improvement, 0.0);
  double z = improvement / stddev;
  double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  return improvement * NormalCdf(z) + stddev * pdf;
}

}  // namespace

void Smac::Initialize(SearchContext* context) {
  for (size_t i = 0; i < config_.num_initial; ++i) {
    if (!context
             ->Evaluate(context->space().SampleUniform(context->rng()))
             .has_value()) {
      return;
    }
  }
}

void Smac::Iterate(SearchContext* context) {
  const SearchSpace& space = context->space();
  // Gather full-budget observations.
  std::vector<const Evaluation*> observations;
  for (const Evaluation& evaluation : context->history()) {
    if (evaluation.budget_fraction >= 1.0 && !evaluation.pipeline.empty()) {
      observations.push_back(&evaluation);
    }
  }
  if (observations.size() < 4) {
    context->Evaluate(space.SampleUniform(context->rng()));
    return;
  }

  // Step 2: refit the random forest on (padded encoding -> error).
  const size_t dim = space.max_pipeline_length();
  Matrix inputs(observations.size(), dim);
  std::vector<double> errors(observations.size());
  double best_error = 1.0;
  const Evaluation* incumbent = observations[0];
  for (size_t i = 0; i < observations.size(); ++i) {
    std::vector<double> encoding =
        space.EncodePadded(observations[i]->pipeline);
    for (size_t j = 0; j < dim; ++j) inputs(i, j) = encoding[j];
    errors[i] = 1.0 - observations[i]->accuracy;
    if (errors[i] < best_error) {
      best_error = errors[i];
      incumbent = observations[i];
    }
  }
  RandomForestRegressor forest(config_.forest);
  forest.Train(inputs, errors);

  // Step 3: candidate pool = random pipelines + incumbent neighbours.
  std::vector<PipelineSpec> candidates;
  candidates.reserve(config_.num_random_candidates +
                     config_.num_local_candidates);
  for (size_t i = 0; i < config_.num_random_candidates; ++i) {
    candidates.push_back(space.SampleUniform(context->rng()));
  }
  for (size_t i = 0; i < config_.num_local_candidates; ++i) {
    candidates.push_back(space.Mutate(incumbent->pipeline, context->rng()));
  }
  double best_ei = -1.0;
  const PipelineSpec* chosen = &candidates[0];
  std::vector<double> row(dim);
  for (const PipelineSpec& candidate : candidates) {
    std::vector<double> encoding = space.EncodePadded(candidate);
    RandomForestRegressor::Prediction prediction =
        forest.PredictWithUncertainty(encoding.data(), dim);
    double ei = ExpectedImprovement(prediction.mean, prediction.stddev,
                                    best_error);
    if (ei > best_ei) {
      best_ei = ei;
      chosen = &candidate;
    }
  }
  context->Evaluate(*chosen);
}

}  // namespace autofp
