#include "search/pbt.h"

#include <algorithm>
#include <cmath>

namespace autofp {

void Pbt::Initialize(SearchContext* context) {
  population_.clear();
  std::vector<PipelineSpec> initial;
  initial.reserve(config_.population_size);
  for (size_t i = 0; i < config_.population_size; ++i) {
    initial.push_back(i < config_.initial_population.size()
                          ? config_.initial_population[i]
                          : context->space().SampleUniform(context->rng()));
  }
  std::vector<std::optional<double>> accuracies =
      context->EvaluateBatch(initial);
  for (size_t i = 0; i < initial.size(); ++i) {
    if (!accuracies[i].has_value()) return;
    population_.push_back({initial[i], *accuracies[i]});
  }
}

void Pbt::Iterate(SearchContext* context) {
  if (population_.empty()) {
    Initialize(context);
    if (population_.empty()) return;
  }
  // Rank descending by accuracy.
  std::vector<size_t> order(population_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return population_[a].accuracy > population_[b].accuracy;
  });
  size_t replace_count = std::max<size_t>(
      1, static_cast<size_t>(std::floor(config_.replace_fraction *
                                        static_cast<double>(order.size()))));
  size_t top_count = std::max<size_t>(1, order.size() - replace_count);
  size_t exploit_pool =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(
                              0.25 * static_cast<double>(order.size()))));
  exploit_pool = std::min(exploit_pool, top_count);

  // Candidate generation only reads top-ranked members, and victims come
  // from the disjoint bottom segment — so the whole replacement wave can
  // be generated first and evaluated as one batch without changing any
  // decision the sequential loop would have made.
  std::vector<size_t> victims(replace_count);
  std::vector<PipelineSpec> candidates;
  candidates.reserve(replace_count);
  for (size_t i = 0; i < replace_count; ++i) {
    victims[i] = order[order.size() - 1 - i];
    PipelineSpec candidate;
    if (context->rng()->Bernoulli(config_.random_probability)) {
      // Pure exploration: fresh random pipeline.
      candidate = context->space().SampleUniform(context->rng());
    } else {
      // Exploit a top member, then explore by mutation.
      size_t parent = order[context->rng()->UniformIndex(exploit_pool)];
      candidate = context->space().Mutate(population_[parent].pipeline,
                                          context->rng());
    }
    candidates.push_back(std::move(candidate));
  }
  std::vector<std::optional<double>> accuracies =
      context->EvaluateBatch(candidates);
  for (size_t i = 0; i < replace_count; ++i) {
    if (!accuracies[i].has_value()) return;
    population_[victims[i]] = {candidates[i], *accuracies[i]};
  }
}

}  // namespace autofp
