#include "search/pbt.h"

#include <algorithm>
#include <cmath>

namespace autofp {

void Pbt::Initialize(SearchContext* context) {
  population_.clear();
  for (size_t i = 0; i < config_.population_size; ++i) {
    PipelineSpec pipeline =
        i < config_.initial_population.size()
            ? config_.initial_population[i]
            : context->space().SampleUniform(context->rng());
    std::optional<double> accuracy = context->Evaluate(pipeline);
    if (!accuracy.has_value()) return;
    population_.push_back({pipeline, *accuracy});
  }
}

void Pbt::Iterate(SearchContext* context) {
  if (population_.empty()) {
    Initialize(context);
    if (population_.empty()) return;
  }
  // Rank descending by accuracy.
  std::vector<size_t> order(population_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return population_[a].accuracy > population_[b].accuracy;
  });
  size_t replace_count = std::max<size_t>(
      1, static_cast<size_t>(std::floor(config_.replace_fraction *
                                        static_cast<double>(order.size()))));
  size_t top_count = std::max<size_t>(1, order.size() - replace_count);
  size_t exploit_pool =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(
                              0.25 * static_cast<double>(order.size()))));
  exploit_pool = std::min(exploit_pool, top_count);

  for (size_t i = 0; i < replace_count; ++i) {
    size_t victim = order[order.size() - 1 - i];
    PipelineSpec candidate;
    if (context->rng()->Bernoulli(config_.random_probability)) {
      // Pure exploration: fresh random pipeline.
      candidate = context->space().SampleUniform(context->rng());
    } else {
      // Exploit a top member, then explore by mutation.
      size_t parent = order[context->rng()->UniformIndex(exploit_pool)];
      candidate = context->space().Mutate(population_[parent].pipeline,
                                          context->rng());
    }
    std::optional<double> accuracy = context->Evaluate(candidate);
    if (!accuracy.has_value()) return;
    population_[victim] = {candidate, *accuracy};
  }
}

}  // namespace autofp
