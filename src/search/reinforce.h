#ifndef AUTOFP_SEARCH_REINFORCE_H_
#define AUTOFP_SEARCH_REINFORCE_H_

#include <string>
#include <vector>

#include "core/search_framework.h"

namespace autofp {

/// REINFORCE (Williams, 1992) with a positional softmax policy: a logit
/// matrix theta[position][token] where tokens are the operators plus a
/// STOP token (allowed after the first position). One pipeline is sampled
/// and evaluated per iteration; the policy follows the Monte-Carlo policy
/// gradient with an exponential-moving-average reward baseline.
class Reinforce : public SearchAlgorithm {
 public:
  struct Config {
    double learning_rate = 0.5;
    double baseline_decay = 0.8;
  };

  explicit Reinforce(const Config& config) : config_(config) {}
  Reinforce() : Reinforce(Config{}) {}

  std::string name() const override { return "REINFORCE"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

  /// Current policy probabilities at a position (exposed for tests).
  std::vector<double> PolicyProbabilities(size_t position) const;

 private:
  Config config_;
  size_t num_tokens_ = 0;     ///< operators + STOP.
  size_t max_length_ = 0;
  std::vector<double> logits_;  ///< [position * num_tokens_ + token].
  double baseline_ = 0.0;
  bool baseline_set_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_REINFORCE_H_
