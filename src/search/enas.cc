#include "search/enas.h"

#include <algorithm>
#include <cmath>

namespace autofp {

namespace {

std::vector<double> Softmax(const std::vector<double>& logits) {
  double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probabilities(logits.size());
  double total = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    probabilities[i] = std::exp(logits[i] - max_logit);
    total += probabilities[i];
  }
  for (double& p : probabilities) p /= total;
  return probabilities;
}

}  // namespace

void Enas::Initialize(SearchContext* context) {
  num_operators_ = context->space().num_operators();
  LstmNetConfig net_config;
  // Input vocabulary: operators + START + STOP (START is only ever input,
  // STOP only ever output, but one table keeps indexing simple).
  net_config.vocab_size = num_operators_ + 2;
  net_config.embed_dim = config_.embed_dim;
  net_config.hidden_dim = config_.hidden_dim;
  net_config.output_dim = num_operators_ + 1;  // operators + STOP.
  Rng rng(config_.controller_seed);
  controller_ = std::make_unique<LstmNet>(net_config, &rng);
  baseline_set_ = false;
}

std::vector<size_t> Enas::SampleDecisions(SearchContext* context) {
  const int start_token = static_cast<int>(num_operators_);
  const size_t stop_decision = num_operators_;
  const size_t max_length = context->space().max_pipeline_length();

  // Autoregressive sampling: re-run the controller on the growing prefix
  // (sequences are tiny, so the O(L^2) forward cost is negligible).
  std::vector<int> inputs = {start_token};
  std::vector<size_t> decisions;
  while (decisions.size() < max_length) {
    std::vector<std::vector<double>> outputs = controller_->Forward(inputs);
    std::vector<double> probabilities = Softmax(outputs.back());
    if (decisions.empty()) probabilities[stop_decision] = 0.0;
    size_t decision = context->rng()->Categorical(probabilities);
    decisions.push_back(decision);
    if (decision == stop_decision) break;
    inputs.push_back(static_cast<int>(decision));
  }
  return decisions;
}

void Enas::UpdateController(const std::vector<size_t>& decisions,
                            double accuracy) {
  const int start_token = static_cast<int>(num_operators_);
  const size_t stop_decision = num_operators_;

  if (!baseline_set_) {
    baseline_ = accuracy;
    baseline_set_ = true;
  } else {
    baseline_ = config_.baseline_decay * baseline_ +
                (1.0 - config_.baseline_decay) * accuracy;
  }
  double advantage = accuracy - baseline_;
  if (advantage == 0.0) return;

  // REINFORCE gradient through the controller: one forward over the full
  // decision sequence, then dLoss/dlogits = advantage * (p - onehot).
  std::vector<int> train_inputs = {start_token};
  for (size_t i = 0; i + 1 < decisions.size(); ++i) {
    AUTOFP_CHECK_LT(decisions[i], stop_decision);
    train_inputs.push_back(static_cast<int>(decisions[i]));
  }
  std::vector<std::vector<double>> outputs =
      controller_->Forward(train_inputs);
  AUTOFP_CHECK_EQ(outputs.size(), decisions.size());
  std::vector<std::vector<double>> grads(outputs.size());
  for (size_t t = 0; t < outputs.size(); ++t) {
    std::vector<double> probabilities = Softmax(outputs[t]);
    grads[t].resize(probabilities.size());
    for (size_t token = 0; token < probabilities.size(); ++token) {
      double indicator = token == decisions[t] ? 1.0 : 0.0;
      grads[t][token] = advantage * (probabilities[token] - indicator);
    }
  }
  AdamConfig adam;
  adam.learning_rate = config_.learning_rate;
  controller_->ZeroGrads();
  controller_->Backward(train_inputs, grads);
  controller_->Step(adam);
}

void Enas::Iterate(SearchContext* context) {
  AUTOFP_CHECK(controller_ != nullptr);
  AUTOFP_CHECK_GE(config_.child_batch, 1);
  const SearchSpace& space = context->space();
  const size_t stop_decision = num_operators_;

  // Sample `child_batch` children from the current controller state, then
  // evaluate them as one batch. With child_batch == 1 this is exactly the
  // classic sample -> evaluate -> update loop.
  std::vector<std::vector<size_t>> children;
  std::vector<PipelineSpec> pipelines;
  children.reserve(static_cast<size_t>(config_.child_batch));
  pipelines.reserve(static_cast<size_t>(config_.child_batch));
  for (int c = 0; c < config_.child_batch; ++c) {
    std::vector<size_t> decisions = SampleDecisions(context);
    std::vector<int> operators;
    for (size_t decision : decisions) {
      if (decision == stop_decision) break;
      operators.push_back(static_cast<int>(decision));
    }
    pipelines.push_back(space.Decode(operators));
    children.push_back(std::move(decisions));
  }

  std::vector<std::optional<double>> accuracies =
      context->EvaluateBatch(pipelines);
  for (size_t c = 0; c < children.size(); ++c) {
    if (!accuracies[c].has_value()) return;
    UpdateController(children[c], *accuracies[c]);
  }
}

}  // namespace autofp
