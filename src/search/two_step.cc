#include "search/two_step.h"

#include <algorithm>
#include <set>

#include "search/registry.h"
#include "util/timer.h"

namespace autofp {

SearchResult RunTwoStep(const TwoStepConfig& config,
                        EvaluatorInterface* evaluator,
                        const ParameterSpace& parameters,
                        const SearchOptions& options) {
  const Budget& total_budget = options.budget;
  const uint64_t seed = options.seed;
  AUTOFP_CHECK(total_budget.limited());
  Rng rng(seed);
  Stopwatch watch;
  SearchResult best;
  best.algorithm = "TwoStep(" + config.algorithm + ")";
  // Each inner RunSearch owns its quarantine map, so the same pipeline can
  // be quarantined in several rounds; the report counts it once.
  std::set<std::string> quarantined;
  long evaluations_used = 0;
  int round = 0;
  while (true) {
    // Remaining budget on both axes.
    Budget remaining = total_budget;
    if (remaining.max_evaluations >= 0) {
      remaining.max_evaluations -= evaluations_used;
      if (remaining.max_evaluations <= 0) break;
    }
    if (remaining.max_seconds >= 0.0) {
      remaining.max_seconds -= watch.ElapsedSeconds();
      if (remaining.max_seconds <= 0.0) break;
    }
    Budget inner = config.inner_budget;
    if (remaining.max_evaluations >= 0) {
      inner.max_evaluations =
          inner.max_evaluations >= 0
              ? std::min(inner.max_evaluations, remaining.max_evaluations)
              : remaining.max_evaluations;
    }
    if (remaining.max_seconds >= 0.0) {
      inner.max_seconds = inner.max_seconds >= 0.0
                              ? std::min(inner.max_seconds,
                                         remaining.max_seconds)
                              : remaining.max_seconds;
    }

    // Step 1: random parameter assignment.
    SearchSpace space = FixedAssignmentSpace(
        parameters.SampleAssignment(&rng), config.max_pipeline_length);
    // Step 2: short pipeline search under those parameters.
    Result<std::unique_ptr<SearchAlgorithm>> algorithm =
        MakeSearchAlgorithm(config.algorithm);
    AUTOFP_CHECK(algorithm.ok()) << algorithm.status().ToString();
    SearchOptions inner_options = options;
    inner_options.budget = inner;
    inner_options.seed = seed + 1000 * static_cast<uint64_t>(round) + 1;
    SearchResult result = RunSearch(algorithm.value().get(), evaluator, space,
                                    inner_options);
    evaluations_used += result.num_evaluations;
    best.num_evaluations += result.num_evaluations;
    best.evaluation_cost += result.evaluation_cost;
    best.prep_seconds += result.prep_seconds;
    best.train_seconds += result.train_seconds;
    best.pick_seconds += result.pick_seconds;
    best.num_failures += result.num_failures;
    best.num_retries += result.num_retries;
    quarantined.insert(result.quarantined_pipelines.begin(),
                       result.quarantined_pipelines.end());
    best.num_quarantine_hits += result.num_quarantine_hits;
    best.num_successes += result.num_successes;
    best.num_replayed += result.num_replayed;
    best.interrupted = result.interrupted;
    best.baseline_accuracy = result.baseline_accuracy;
    if (round == 0 || result.best_accuracy > best.best_accuracy) {
      best.best_accuracy = result.best_accuracy;
      best.best_pipeline = result.best_pipeline;
    }
    ++round;
    if (result.num_evaluations == 0) break;  // inner budget too small.
    if (result.interrupted) break;  // graceful stop: no further rounds.
  }
  best.num_quarantined = static_cast<long>(quarantined.size());
  best.quarantined_pipelines.assign(quarantined.begin(), quarantined.end());
  best.elapsed_seconds = watch.ElapsedSeconds();
  return best;
}

SearchResult RunOneStep(const std::string& algorithm,
                        EvaluatorInterface* evaluator,
                        const ParameterSpace& parameters,
                        const SearchOptions& options,
                        size_t max_pipeline_length) {
  SearchSpace space = OneStepSpace(parameters, max_pipeline_length);
  Result<std::unique_ptr<SearchAlgorithm>> instance =
      MakeSearchAlgorithm(algorithm);
  AUTOFP_CHECK(instance.ok()) << instance.status().ToString();
  SearchResult result =
      RunSearch(instance.value().get(), evaluator, space, options);
  result.algorithm = "OneStep(" + algorithm + ")";
  return result;
}

}  // namespace autofp
