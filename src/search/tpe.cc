#include "search/tpe.h"

#include <algorithm>
#include <cmath>

namespace autofp {

PipelineDensity::PipelineDensity(size_t num_operators, size_t max_length,
                                 double smoothing)
    : num_operators_(num_operators),
      max_length_(max_length),
      smoothing_(smoothing),
      length_weights_(max_length, smoothing),
      position_weights_(max_length,
                        std::vector<double>(num_operators, smoothing)) {}

void PipelineDensity::Fit(const std::vector<std::vector<int>>& encodings) {
  length_weights_.assign(max_length_, smoothing_);
  position_weights_.assign(max_length_,
                           std::vector<double>(num_operators_, smoothing_));
  for (const std::vector<int>& encoding : encodings) {
    if (encoding.empty() || encoding.size() > max_length_) continue;
    length_weights_[encoding.size() - 1] += 1.0;
    for (size_t p = 0; p < encoding.size(); ++p) {
      AUTOFP_CHECK_GE(encoding[p], 0);
      AUTOFP_CHECK_LT(static_cast<size_t>(encoding[p]), num_operators_);
      position_weights_[p][encoding[p]] += 1.0;
    }
  }
}

double PipelineDensity::LogProbability(
    const std::vector<int>& encoding) const {
  AUTOFP_CHECK(!encoding.empty());
  AUTOFP_CHECK_LE(encoding.size(), max_length_);
  double length_total = 0.0;
  for (double w : length_weights_) length_total += w;
  double log_probability =
      std::log(length_weights_[encoding.size() - 1] / length_total);
  for (size_t p = 0; p < encoding.size(); ++p) {
    double position_total = 0.0;
    for (double w : position_weights_[p]) position_total += w;
    log_probability +=
        std::log(position_weights_[p][encoding[p]] / position_total);
  }
  return log_probability;
}

std::vector<int> PipelineDensity::Sample(Rng* rng) const {
  size_t length = rng->Categorical(length_weights_) + 1;
  std::vector<int> encoding(length);
  for (size_t p = 0; p < length; ++p) {
    encoding[p] = static_cast<int>(rng->Categorical(position_weights_[p]));
  }
  return encoding;
}

void Tpe::Initialize(SearchContext* context) {
  for (size_t i = 0; i < config_.num_initial; ++i) {
    if (!context
             ->Evaluate(context->space().SampleUniform(context->rng()))
             .has_value()) {
      return;
    }
  }
}

void Tpe::Iterate(SearchContext* context) {
  const SearchSpace& space = context->space();
  // Full-budget history sorted descending by accuracy.
  std::vector<const Evaluation*> observations;
  for (const Evaluation& evaluation : context->history()) {
    if (evaluation.budget_fraction >= 1.0 && !evaluation.pipeline.empty()) {
      observations.push_back(&evaluation);
    }
  }
  if (observations.size() < 4) {
    context->Evaluate(space.SampleUniform(context->rng()));
    return;
  }
  std::sort(observations.begin(), observations.end(),
            [](const Evaluation* a, const Evaluation* b) {
              return a->accuracy > b->accuracy;
            });
  size_t good_count = std::max<size_t>(
      2, static_cast<size_t>(config_.gamma *
                             static_cast<double>(observations.size())));
  good_count = std::min(good_count, observations.size() - 1);

  std::vector<std::vector<int>> good, bad;
  for (size_t i = 0; i < observations.size(); ++i) {
    std::vector<int> encoding = space.Encode(observations[i]->pipeline);
    if (i < good_count) {
      good.push_back(std::move(encoding));
    } else {
      bad.push_back(std::move(encoding));
    }
  }
  PipelineDensity good_density(space.num_operators(),
                               space.max_pipeline_length(),
                               config_.smoothing);
  PipelineDensity bad_density(space.num_operators(),
                              space.max_pipeline_length(), config_.smoothing);
  good_density.Fit(good);
  bad_density.Fit(bad);

  // Sample candidates from l(x), keep the best l/g ratio.
  std::vector<int> best_encoding;
  double best_score = -1e300;
  for (size_t c = 0; c < config_.num_candidates; ++c) {
    std::vector<int> candidate = good_density.Sample(context->rng());
    double score = good_density.LogProbability(candidate) -
                   bad_density.LogProbability(candidate);
    if (score > best_score) {
      best_score = score;
      best_encoding = std::move(candidate);
    }
  }
  context->Evaluate(space.Decode(best_encoding));
}

}  // namespace autofp
