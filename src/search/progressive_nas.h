#ifndef AUTOFP_SEARCH_PROGRESSIVE_NAS_H_
#define AUTOFP_SEARCH_PROGRESSIVE_NAS_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/search_framework.h"
#include "nn/lstm.h"
#include "nn/mlp_net.h"
#include "preprocess/pipeline.h"

namespace autofp {

/// Progressive NAS (Liu et al., 2018) adapted to pipelines: start from all
/// single-preprocessor pipelines, then repeatedly expand a beam of the best
/// pipelines by one operator, using a learned surrogate (MLP or LSTM over
/// the operator sequence, optionally a 3-model ensemble) to pick which
/// children to actually evaluate. The paper's four variants:
/// PMNE (MLP, no ensemble), PME (MLP ensemble), PLNE (LSTM, no ensemble),
/// PLE (LSTM ensemble).
class ProgressiveNas : public SearchAlgorithm {
 public:
  enum class SurrogateKind { kMlp, kLstm };

  struct Config {
    SurrogateKind surrogate = SurrogateKind::kMlp;
    bool ensemble = false;
    size_t beam_width = 8;
    /// Initialization cap: in very large (One-step) alphabets only this
    /// many random singleton pipelines are evaluated.
    size_t max_singleton_init = 50;
    /// Cap on children scored per expansion (sampled if exceeded).
    size_t max_children = 256;
    /// Surrogate training passes per update. The MLP surrogate is kept
    /// deliberately cheap (the paper: "the overhead of the fitting process
    /// of MLP is very small, approximate to RS"), while the LSTM variants
    /// pay the heavy sequential fitting cost the paper observes.
    int mlp_epochs = 15;
    int lstm_epochs = 8;
    size_t mlp_hidden = 16;
    /// History cap for surrogate fitting (most recent observations).
    size_t max_history = 256;
  };

  explicit ProgressiveNas(const Config& config);

  std::string name() const override;
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  struct BeamEntry {
    PipelineSpec pipeline;
    double accuracy = 0.0;
  };

  /// Refits the surrogate(s) on the evaluation history.
  void FitSurrogates(SearchContext* context);

  /// Ensemble-averaged predicted accuracy for a candidate pipeline.
  double Predict(const SearchContext& context,
                 const PipelineSpec& pipeline) const;

  Config config_;
  std::vector<BeamEntry> beam_;
  size_t current_length_ = 1;
  std::unordered_set<std::string> evaluated_keys_;
  std::vector<MlpNet> mlp_surrogates_;
  std::vector<LstmNet> lstm_surrogates_;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_PROGRESSIVE_NAS_H_
