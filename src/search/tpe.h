#ifndef AUTOFP_SEARCH_TPE_H_
#define AUTOFP_SEARCH_TPE_H_

#include <string>
#include <vector>

#include "core/search_framework.h"
#include "core/search_space.h"
#include "preprocess/pipeline.h"
#include "util/random.h"

namespace autofp {

/// Categorical kernel-density model over pipelines: a smoothed pmf over
/// pipeline lengths plus a smoothed per-position pmf over operators.
/// This is the structured-space analogue of TPE's per-dimension KDEs
/// (Bergstra et al., 2011) and is shared by TPE and BOHB.
class PipelineDensity {
 public:
  PipelineDensity(size_t num_operators, size_t max_length,
                  double smoothing = 1.0);

  /// Rebuilds the density from a set of pipeline encodings.
  void Fit(const std::vector<std::vector<int>>& encodings);

  /// Log probability of an encoding under the density.
  double LogProbability(const std::vector<int>& encoding) const;

  /// Samples an encoding (length from the length pmf, operators from the
  /// per-position pmfs).
  std::vector<int> Sample(Rng* rng) const;

 private:
  size_t num_operators_;
  size_t max_length_;
  double smoothing_;
  std::vector<double> length_weights_;                 ///< index 0 = length 1.
  std::vector<std::vector<double>> position_weights_;  ///< [pos][op].
};

/// Tree-structured Parzen Estimator. After random initialization, each
/// iteration splits the history into good/bad by the gamma-quantile of
/// accuracy, fits one PipelineDensity to each side, samples candidates
/// from the good density and evaluates the candidate maximizing
/// log l(x) - log g(x) (equivalently the EI proxy l/g).
class Tpe : public SearchAlgorithm {
 public:
  struct Config {
    size_t num_initial = 20;
    double gamma = 0.25;
    size_t num_candidates = 24;
    double smoothing = 1.0;
  };

  explicit Tpe(const Config& config) : config_(config) {}
  Tpe() : Tpe(Config{}) {}

  std::string name() const override { return "TPE"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  Config config_;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_TPE_H_
