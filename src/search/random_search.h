#ifndef AUTOFP_SEARCH_RANDOM_SEARCH_H_
#define AUTOFP_SEARCH_RANDOM_SEARCH_H_

#include <string>
#include <vector>

#include "core/search_framework.h"

namespace autofp {

/// Random search (Bergstra & Bengio, 2012): uniformly sampled pipelines,
/// no state. The paper's strong baseline.
///
/// Each Iterate() samples `batch_size` pipelines up front and submits them
/// through EvaluateBatch so the parallel engine can use every worker.
/// Because evaluation consumes no context RNG (request seeds are derived,
/// not drawn), the sampling stream — and therefore the recorded history —
/// is identical to evaluating one pipeline at a time.
class RandomSearch : public SearchAlgorithm {
 public:
  explicit RandomSearch(int batch_size = 8) : batch_size_(batch_size) {
    AUTOFP_CHECK_GE(batch_size, 1);
  }

  std::string name() const override { return "RS"; }
  void Iterate(SearchContext* context) override {
    std::vector<PipelineSpec> batch;
    batch.reserve(static_cast<size_t>(batch_size_));
    for (int i = 0; i < batch_size_; ++i) {
      batch.push_back(context->space().SampleUniform(context->rng()));
    }
    context->EvaluateBatch(batch);
  }

 private:
  int batch_size_;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_RANDOM_SEARCH_H_
