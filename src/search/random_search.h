#ifndef AUTOFP_SEARCH_RANDOM_SEARCH_H_
#define AUTOFP_SEARCH_RANDOM_SEARCH_H_

#include <string>

#include "core/search_framework.h"

namespace autofp {

/// Random search (Bergstra & Bengio, 2012): one uniformly sampled pipeline
/// per iteration, no state. The paper's strong baseline.
class RandomSearch : public SearchAlgorithm {
 public:
  std::string name() const override { return "RS"; }
  void Iterate(SearchContext* context) override {
    context->Evaluate(context->space().SampleUniform(context->rng()));
  }
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_RANDOM_SEARCH_H_
