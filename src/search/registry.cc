#include "search/registry.h"

#include "search/anneal.h"
#include "search/bohb.h"
#include "search/enas.h"
#include "search/evolution.h"
#include "search/hyperband.h"
#include "search/pbt.h"
#include "search/progressive_nas.h"
#include "search/random_search.h"
#include "search/reinforce.h"
#include "search/smac.h"
#include "search/tpe.h"

namespace autofp {

const std::vector<std::string>& AllSearchAlgorithmNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "RS",     "Anneal", "SMAC",      "TPE",  "PMNE",
      "PME",    "PLNE",   "PLE",       "PBT",  "TEVO_H",
      "TEVO_Y", "REINFORCE", "ENAS",   "HYPERBAND", "BOHB"};
  return *names;
}

Result<std::unique_ptr<SearchAlgorithm>> MakeSearchAlgorithm(
    const std::string& name) {
  if (name == "RS") {
    return std::unique_ptr<SearchAlgorithm>(new RandomSearch());
  }
  if (name == "Anneal") {
    return std::unique_ptr<SearchAlgorithm>(new Anneal());
  }
  if (name == "SMAC") {
    return std::unique_ptr<SearchAlgorithm>(new Smac());
  }
  if (name == "TPE") {
    return std::unique_ptr<SearchAlgorithm>(new Tpe());
  }
  if (name == "PMNE" || name == "PME" || name == "PLNE" || name == "PLE") {
    ProgressiveNas::Config config;
    config.surrogate = (name[1] == 'M') ? ProgressiveNas::SurrogateKind::kMlp
                                        : ProgressiveNas::SurrogateKind::kLstm;
    config.ensemble = (name == "PME" || name == "PLE");
    return std::unique_ptr<SearchAlgorithm>(new ProgressiveNas(config));
  }
  if (name == "PBT") {
    return std::unique_ptr<SearchAlgorithm>(new Pbt());
  }
  if (name == "TEVO_H" || name == "TEVO_Y") {
    TournamentEvolution::Config config;
    config.kill = name == "TEVO_H"
                      ? TournamentEvolution::KillPolicy::kWorst
                      : TournamentEvolution::KillPolicy::kOldest;
    return std::unique_ptr<SearchAlgorithm>(new TournamentEvolution(config));
  }
  if (name == "REINFORCE") {
    return std::unique_ptr<SearchAlgorithm>(new Reinforce());
  }
  if (name == "ENAS") {
    return std::unique_ptr<SearchAlgorithm>(new Enas());
  }
  if (name == "HYPERBAND") {
    return std::unique_ptr<SearchAlgorithm>(new Hyperband());
  }
  if (name == "BOHB") {
    return std::unique_ptr<SearchAlgorithm>(new Bohb());
  }
  return Status::NotFound("no search algorithm named '" + name + "'");
}

}  // namespace autofp
