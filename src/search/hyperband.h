#ifndef AUTOFP_SEARCH_HYPERBAND_H_
#define AUTOFP_SEARCH_HYPERBAND_H_

#include <string>
#include <vector>

#include "core/search_framework.h"
#include "preprocess/pipeline.h"

namespace autofp {

/// Hyperband (Li et al., 2017). The resource axis is the fraction of
/// training rows used by the evaluator (partial training, as in the
/// paper's adaptation). Each Iterate() runs one Successive-Halving bracket;
/// brackets cycle through s = s_max .. 0. `eta` and `min_fraction`
/// (min_budget) are the two knobs the paper sweeps in Figure 6.
class Hyperband : public SearchAlgorithm {
 public:
  struct Config {
    double eta = 3.0;
    double min_fraction = 1.0 / 27.0;  ///< smallest training fraction.
  };

  explicit Hyperband(const Config& config);
  Hyperband() : Hyperband(Config{}) {}

  std::string name() const override { return "HYPERBAND"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 protected:
  /// Sampling hook: Hyperband samples uniformly; BOHB overrides this with
  /// model-based sampling.
  virtual PipelineSpec SampleConfiguration(SearchContext* context);

 private:
  Config config_;
  int s_max_ = 0;
  int current_s_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_HYPERBAND_H_
