#include "search/progressive_nas.h"

#include <algorithm>
#include <cmath>

namespace autofp {

namespace {

/// Normalized fixed-length encoding for the MLP surrogate: slot value is
/// (operator index + 1) / num_operators, 0 for padding.
std::vector<double> MlpEncoding(const SearchSpace& space,
                                const PipelineSpec& pipeline) {
  std::vector<int> encoding = space.Encode(pipeline);
  std::vector<double> input(space.max_pipeline_length(), 0.0);
  for (size_t i = 0; i < encoding.size(); ++i) {
    input[i] = static_cast<double>(encoding[i] + 1) /
               static_cast<double>(space.num_operators());
  }
  return input;
}

}  // namespace

ProgressiveNas::ProgressiveNas(const Config& config) : config_(config) {
  AUTOFP_CHECK_GE(config.beam_width, 1u);
}

std::string ProgressiveNas::name() const {
  if (config_.surrogate == SurrogateKind::kMlp) {
    return config_.ensemble ? "PME" : "PMNE";
  }
  return config_.ensemble ? "PLE" : "PLNE";
}

void ProgressiveNas::Initialize(SearchContext* context) {
  beam_.clear();
  evaluated_keys_.clear();
  current_length_ = 1;
  const SearchSpace& space = context->space();
  // Evaluate singleton pipelines (all of them, or a random subset when the
  // One-step alphabet is too large).
  std::vector<size_t> singleton_ops;
  if (space.num_operators() <= config_.max_singleton_init) {
    singleton_ops.resize(space.num_operators());
    for (size_t i = 0; i < singleton_ops.size(); ++i) singleton_ops[i] = i;
  } else {
    singleton_ops = context->rng()->SampleWithoutReplacement(
        space.num_operators(), config_.max_singleton_init);
  }
  std::vector<BeamEntry> singles;
  for (size_t op : singleton_ops) {
    PipelineSpec pipeline;
    pipeline.steps.push_back(space.operator_at(op));
    std::optional<double> accuracy = context->Evaluate(pipeline);
    if (!accuracy.has_value()) break;
    evaluated_keys_.insert(pipeline.Key());
    singles.push_back({pipeline, *accuracy});
  }
  std::sort(singles.begin(), singles.end(),
            [](const BeamEntry& a, const BeamEntry& b) {
              return a.accuracy > b.accuracy;
            });
  if (singles.size() > config_.beam_width) {
    singles.resize(config_.beam_width);
  }
  beam_ = std::move(singles);
}

void ProgressiveNas::FitSurrogates(SearchContext* context) {
  const SearchSpace& space = context->space();
  // Most recent full-budget observations, capped.
  std::vector<const Evaluation*> observations;
  for (const Evaluation& evaluation : context->history()) {
    if (evaluation.budget_fraction >= 1.0 && !evaluation.pipeline.empty()) {
      observations.push_back(&evaluation);
    }
  }
  if (observations.size() > config_.max_history) {
    observations.erase(observations.begin(),
                       observations.end() - config_.max_history);
  }
  if (observations.empty()) return;
  const size_t num_models = config_.ensemble ? 3 : 1;

  if (config_.surrogate == SurrogateKind::kMlp) {
    mlp_surrogates_.clear();
    Matrix inputs(observations.size(), space.max_pipeline_length());
    Matrix targets(observations.size(), 1);
    for (size_t i = 0; i < observations.size(); ++i) {
      std::vector<double> encoding =
          MlpEncoding(space, observations[i]->pipeline);
      for (size_t j = 0; j < encoding.size(); ++j) {
        inputs(i, j) = encoding[j];
      }
      targets(i, 0) = observations[i]->accuracy;
    }
    AdamConfig adam;
    adam.learning_rate = 1e-2;
    for (size_t m = 0; m < num_models; ++m) {
      MlpNetConfig net_config;
      net_config.input_dim = space.max_pipeline_length();
      net_config.hidden_dims = {config_.mlp_hidden};
      net_config.output_dim = 1;
      Rng seed_rng(1000 + m * 7);
      MlpNet net(net_config, &seed_rng);
      for (int epoch = 0; epoch < config_.mlp_epochs; ++epoch) {
        Matrix outputs = net.Forward(inputs);
        Matrix grad(outputs.rows(), 1);
        double inv_n = 1.0 / static_cast<double>(outputs.rows());
        for (size_t r = 0; r < outputs.rows(); ++r) {
          grad(r, 0) = 2.0 * (outputs(r, 0) - targets(r, 0)) * inv_n;
        }
        net.ZeroGrads();
        net.Backward(grad);
        net.Step(adam);
      }
      mlp_surrogates_.push_back(std::move(net));
    }
  } else {
    lstm_surrogates_.clear();
    AdamConfig adam;
    adam.learning_rate = 5e-3;
    for (size_t m = 0; m < num_models; ++m) {
      LstmNetConfig net_config;
      net_config.vocab_size = space.num_operators();
      net_config.embed_dim = 8;
      net_config.hidden_dim = 24;
      net_config.output_dim = 1;
      Rng seed_rng(2000 + m * 7);
      LstmNet net(net_config, &seed_rng);
      for (int epoch = 0; epoch < config_.lstm_epochs; ++epoch) {
        for (const Evaluation* observation : observations) {
          std::vector<int> tokens = space.Encode(observation->pipeline);
          std::vector<std::vector<double>> outputs = net.Forward(tokens);
          std::vector<std::vector<double>> grads(
              tokens.size(), std::vector<double>(1, 0.0));
          grads.back()[0] =
              2.0 * (outputs.back()[0] - observation->accuracy);
          net.ZeroGrads();
          net.Backward(tokens, grads);
          net.Step(adam);
        }
      }
      lstm_surrogates_.push_back(std::move(net));
    }
  }
}

double ProgressiveNas::Predict(const SearchContext& context,
                               const PipelineSpec& pipeline) const {
  const SearchSpace& space = context.space();
  double total = 0.0;
  size_t count = 0;
  if (config_.surrogate == SurrogateKind::kMlp) {
    std::vector<double> encoding = MlpEncoding(space, pipeline);
    Matrix input(1, encoding.size());
    for (size_t j = 0; j < encoding.size(); ++j) input(0, j) = encoding[j];
    for (const MlpNet& net : mlp_surrogates_) {
      total += net.Infer(input)(0, 0);
      ++count;
    }
  } else {
    std::vector<int> tokens = space.Encode(pipeline);
    for (const LstmNet& net : lstm_surrogates_) {
      // Forward mutates internal caches; copy (nets are small).
      LstmNet scratch = net;
      total += scratch.Forward(tokens).back()[0];
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

void ProgressiveNas::Iterate(SearchContext* context) {
  const SearchSpace& space = context->space();
  if (beam_.empty()) {
    Initialize(context);
    if (beam_.empty()) return;
  }
  // Restart a fresh progressive sweep when the beam reached max length.
  if (current_length_ >= space.max_pipeline_length()) {
    current_length_ = 1;
    // Rebuild the beam from the best singleton evaluations in the history.
    std::vector<BeamEntry> singles;
    for (const Evaluation& evaluation : context->history()) {
      if (evaluation.pipeline.size() == 1 &&
          evaluation.budget_fraction >= 1.0) {
        singles.push_back({evaluation.pipeline, evaluation.accuracy});
      }
    }
    std::sort(singles.begin(), singles.end(),
              [](const BeamEntry& a, const BeamEntry& b) {
                return a.accuracy > b.accuracy;
              });
    if (singles.size() > config_.beam_width) {
      singles.resize(config_.beam_width);
    }
    if (!singles.empty()) beam_ = std::move(singles);
  }

  // Step 2: refit surrogate(s).
  FitSurrogates(context);

  // Step 3: expand the beam by one operator; score children.
  struct Scored {
    PipelineSpec pipeline;
    double predicted;
  };
  std::vector<Scored> children;
  size_t total_children = beam_.size() * space.num_operators();
  if (total_children <= config_.max_children) {
    for (const BeamEntry& entry : beam_) {
      for (size_t op = 0; op < space.num_operators(); ++op) {
        PipelineSpec child = entry.pipeline;
        child.steps.push_back(space.operator_at(op));
        if (evaluated_keys_.count(child.Key())) continue;
        children.push_back({std::move(child), 0.0});
      }
    }
  } else {
    for (size_t i = 0; i < config_.max_children; ++i) {
      const BeamEntry& entry =
          beam_[context->rng()->UniformIndex(beam_.size())];
      PipelineSpec child = entry.pipeline;
      child.steps.push_back(
          space.operator_at(context->rng()->UniformIndex(
              space.num_operators())));
      if (evaluated_keys_.count(child.Key())) continue;
      children.push_back({std::move(child), 0.0});
    }
  }
  if (children.empty()) {
    // All children seen — fall back to a random pipeline to keep moving.
    context->Evaluate(space.SampleUniform(context->rng()));
    return;
  }
  for (Scored& child : children) {
    child.predicted = Predict(*context, child.pipeline);
  }
  std::sort(children.begin(), children.end(),
            [](const Scored& a, const Scored& b) {
              return a.predicted > b.predicted;
            });

  // Step 4: evaluate the predicted top-k; they become the next beam.
  std::vector<BeamEntry> next_beam;
  for (size_t i = 0; i < children.size() && next_beam.size() < config_.beam_width;
       ++i) {
    std::optional<double> accuracy = context->Evaluate(children[i].pipeline);
    if (!accuracy.has_value()) break;
    evaluated_keys_.insert(children[i].pipeline.Key());
    next_beam.push_back({children[i].pipeline, *accuracy});
  }
  if (!next_beam.empty()) {
    beam_ = std::move(next_beam);
    ++current_length_;
  }
}

}  // namespace autofp
