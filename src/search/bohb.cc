#include "search/bohb.h"

#include <algorithm>
#include <map>
#include <vector>

#include "search/tpe.h"

namespace autofp {

PipelineSpec Bohb::SampleConfiguration(SearchContext* context) {
  if (context->rng()->Bernoulli(config_.random_fraction)) {
    return Hyperband::SampleConfiguration(context);
  }
  // Observations grouped by budget fraction; model the largest budget with
  // enough observations (BOHB's "highest budget" rule).
  std::map<double, std::vector<const Evaluation*>> by_budget;
  for (const Evaluation& evaluation : context->history()) {
    if (!evaluation.pipeline.empty()) {
      by_budget[evaluation.budget_fraction].push_back(&evaluation);
    }
  }
  const std::vector<const Evaluation*>* observations = nullptr;
  for (auto it = by_budget.rbegin(); it != by_budget.rend(); ++it) {
    if (it->second.size() >= config_.min_observations) {
      observations = &it->second;
      break;
    }
  }
  if (observations == nullptr) {
    return Hyperband::SampleConfiguration(context);
  }
  std::vector<const Evaluation*> sorted = *observations;
  std::sort(sorted.begin(), sorted.end(),
            [](const Evaluation* a, const Evaluation* b) {
              return a->accuracy > b->accuracy;
            });
  size_t good_count = std::max<size_t>(
      2, static_cast<size_t>(config_.gamma *
                             static_cast<double>(sorted.size())));
  good_count = std::min(good_count, sorted.size() - 1);
  const SearchSpace& space = context->space();
  std::vector<std::vector<int>> good, bad;
  for (size_t i = 0; i < sorted.size(); ++i) {
    std::vector<int> encoding = space.Encode(sorted[i]->pipeline);
    (i < good_count ? good : bad).push_back(std::move(encoding));
  }
  PipelineDensity good_density(space.num_operators(),
                               space.max_pipeline_length());
  PipelineDensity bad_density(space.num_operators(),
                              space.max_pipeline_length());
  good_density.Fit(good);
  bad_density.Fit(bad);
  std::vector<int> best_encoding;
  double best_score = -1e300;
  for (size_t c = 0; c < config_.num_candidates; ++c) {
    std::vector<int> candidate = good_density.Sample(context->rng());
    double score = good_density.LogProbability(candidate) -
                   bad_density.LogProbability(candidate);
    if (score > best_score) {
      best_score = score;
      best_encoding = std::move(candidate);
    }
  }
  return space.Decode(best_encoding);
}

}  // namespace autofp
