#ifndef AUTOFP_SEARCH_EVOLUTION_H_
#define AUTOFP_SEARCH_EVOLUTION_H_

#include <deque>
#include <string>

#include "core/search_framework.h"
#include "preprocess/pipeline.h"

namespace autofp {

/// Tournament (regularized) evolution, Real et al. 2018. A population is
/// seeded by random search; each step samples S individuals, mutates the
/// fittest into a child, evaluates it, and kills either the oldest member
/// (TEVO_Y, the "regularized"/aging variant) or the worst member (TEVO_H).
class TournamentEvolution : public SearchAlgorithm {
 public:
  enum class KillPolicy {
    kOldest,  ///< TEVO_Y: kill the oldest ("younger population" survives).
    kWorst,   ///< TEVO_H: kill the lowest-accuracy member.
  };

  struct Config {
    size_t population_size = 20;
    size_t tournament_size = 5;
    KillPolicy kill = KillPolicy::kWorst;
  };

  explicit TournamentEvolution(const Config& config) : config_(config) {
    AUTOFP_CHECK_GE(config.population_size, 2u);
    AUTOFP_CHECK_GE(config.tournament_size, 1u);
  }

  std::string name() const override {
    return config_.kill == KillPolicy::kWorst ? "TEVO_H" : "TEVO_Y";
  }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  struct Member {
    PipelineSpec pipeline;
    double accuracy = 0.0;
  };

  Config config_;
  std::deque<Member> population_;  ///< front = oldest.
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_EVOLUTION_H_
