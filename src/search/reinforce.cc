#include "search/reinforce.h"

#include <algorithm>
#include <cmath>

namespace autofp {

namespace {

std::vector<double> Softmax(const double* logits, size_t n) {
  double max_logit = *std::max_element(logits, logits + n);
  std::vector<double> probabilities(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    probabilities[i] = std::exp(logits[i] - max_logit);
    total += probabilities[i];
  }
  for (double& p : probabilities) p /= total;
  return probabilities;
}

}  // namespace

void Reinforce::Initialize(SearchContext* context) {
  max_length_ = context->space().max_pipeline_length();
  num_tokens_ = context->space().num_operators() + 1;  // + STOP.
  logits_.assign(max_length_ * num_tokens_, 0.0);
  baseline_set_ = false;
}

std::vector<double> Reinforce::PolicyProbabilities(size_t position) const {
  AUTOFP_CHECK_LT(position, max_length_);
  return Softmax(logits_.data() + position * num_tokens_, num_tokens_);
}

void Reinforce::Iterate(SearchContext* context) {
  const SearchSpace& space = context->space();
  const size_t stop_token = num_tokens_ - 1;

  // Sample a pipeline from the current policy.
  std::vector<int> encoding;
  std::vector<std::vector<double>> step_probabilities;
  for (size_t position = 0; position < max_length_; ++position) {
    std::vector<double> probabilities = PolicyProbabilities(position);
    if (position == 0) {
      // STOP is not allowed before the first operator.
      probabilities[stop_token] = 0.0;
    }
    size_t token = context->rng()->Categorical(probabilities);
    step_probabilities.push_back(Softmax(
        logits_.data() + position * num_tokens_, num_tokens_));
    if (token == stop_token) {
      encoding.push_back(-1);  // marker: STOP chosen at this position.
      break;
    }
    encoding.push_back(static_cast<int>(token));
  }
  std::vector<int> operators;
  bool stopped = false;
  for (int token : encoding) {
    if (token < 0) {
      stopped = true;
      break;
    }
    operators.push_back(token);
  }
  PipelineSpec pipeline = space.Decode(operators);

  std::optional<double> accuracy = context->Evaluate(pipeline);
  if (!accuracy.has_value()) return;

  // Baseline update and advantage.
  if (!baseline_set_) {
    baseline_ = *accuracy;
    baseline_set_ = true;
  } else {
    baseline_ = config_.baseline_decay * baseline_ +
                (1.0 - config_.baseline_decay) * *accuracy;
  }
  double advantage = *accuracy - baseline_;
  if (advantage == 0.0) return;

  // Policy gradient ascent: d log pi(token) / d logit_j = 1{j==token} - p_j.
  size_t steps = operators.size() + (stopped ? 1 : 0);
  for (size_t position = 0; position < steps; ++position) {
    size_t chosen = position < operators.size()
                        ? static_cast<size_t>(operators[position])
                        : stop_token;
    const std::vector<double>& probabilities = step_probabilities[position];
    double* row = logits_.data() + position * num_tokens_;
    for (size_t token = 0; token < num_tokens_; ++token) {
      double indicator = token == chosen ? 1.0 : 0.0;
      row[token] += config_.learning_rate * advantage *
                    (indicator - probabilities[token]);
    }
  }
}

}  // namespace autofp
