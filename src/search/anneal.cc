#include "search/anneal.h"

#include <cmath>

namespace autofp {

void Anneal::Initialize(SearchContext* context) {
  temperature_ = config_.initial_temperature;
  current_ = context->space().SampleUniform(context->rng());
  std::optional<double> accuracy = context->Evaluate(current_);
  current_accuracy_ = accuracy.value_or(-1.0);
}

void Anneal::Iterate(SearchContext* context) {
  PipelineSpec candidate = context->space().Mutate(current_, context->rng());
  std::optional<double> accuracy = context->Evaluate(candidate);
  if (!accuracy.has_value()) return;
  double delta = *accuracy - current_accuracy_;
  bool accept = delta >= 0.0;
  if (!accept && temperature_ > 0.0) {
    accept = context->rng()->Bernoulli(std::exp(delta / temperature_));
  }
  if (accept) {
    current_ = candidate;
    current_accuracy_ = *accuracy;
  }
  temperature_ = std::max(temperature_ * config_.cooling,
                          config_.min_temperature);
}

}  // namespace autofp
