#include "search/evolution.h"

#include <algorithm>

namespace autofp {

void TournamentEvolution::Initialize(SearchContext* context) {
  population_.clear();
  // The whole initial generation is independent of its own results, so it
  // is sampled up front and submitted as one batch for the parallel
  // engine. Evaluation draws no context RNG, so the sampling stream (and
  // the resulting population) matches the one-at-a-time loop exactly.
  std::vector<PipelineSpec> initial;
  initial.reserve(config_.population_size);
  for (size_t i = 0; i < config_.population_size; ++i) {
    initial.push_back(context->space().SampleUniform(context->rng()));
  }
  std::vector<std::optional<double>> accuracies =
      context->EvaluateBatch(initial);
  for (size_t i = 0; i < initial.size(); ++i) {
    if (!accuracies[i].has_value()) return;
    population_.push_back({initial[i], *accuracies[i]});
  }
}

void TournamentEvolution::Iterate(SearchContext* context) {
  if (population_.empty()) {
    Initialize(context);
    if (population_.empty()) return;
  }
  // Tournament: sample S members, mutate the fittest.
  size_t sample_size =
      std::min(config_.tournament_size, population_.size());
  std::vector<size_t> contenders = context->rng()->SampleWithoutReplacement(
      population_.size(), sample_size);
  size_t best = contenders[0];
  for (size_t index : contenders) {
    if (population_[index].accuracy > population_[best].accuracy) {
      best = index;
    }
  }
  PipelineSpec child =
      context->space().Mutate(population_[best].pipeline, context->rng());
  std::optional<double> accuracy = context->Evaluate(child);
  if (!accuracy.has_value()) return;
  population_.push_back({child, *accuracy});
  if (population_.size() > config_.population_size) {
    if (config_.kill == KillPolicy::kOldest) {
      population_.pop_front();
    } else {
      auto worst = std::min_element(
          population_.begin(), population_.end(),
          [](const Member& a, const Member& b) {
            return a.accuracy < b.accuracy;
          });
      population_.erase(worst);
    }
  }
}

}  // namespace autofp
