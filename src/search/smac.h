#ifndef AUTOFP_SEARCH_SMAC_H_
#define AUTOFP_SEARCH_SMAC_H_

#include <string>
#include <vector>

#include "core/search_framework.h"
#include "ml/random_forest.h"

namespace autofp {

/// SMAC (Hutter et al., 2011): sequential model-based optimization with a
/// random-forest surrogate over padded pipeline encodings. Each iteration
/// refits the forest on (encoding -> validation error), scores a candidate
/// pool (random samples + neighbours of the incumbent) by expected
/// improvement using the per-tree prediction variance, and evaluates the
/// best candidate.
class Smac : public SearchAlgorithm {
 public:
  struct Config {
    size_t num_initial = 20;
    size_t num_random_candidates = 32;
    size_t num_local_candidates = 32;
    RandomForestRegressor::Config forest;
  };

  explicit Smac(const Config& config) : config_(config) {}
  Smac() : Smac(Config{}) {}

  std::string name() const override { return "SMAC"; }
  void Initialize(SearchContext* context) override;
  void Iterate(SearchContext* context) override;

 private:
  Config config_;
};

}  // namespace autofp

#endif  // AUTOFP_SEARCH_SMAC_H_
