#include "metafeatures/metafeatures.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "data/splits.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/lda.h"
#include "ml/naive_bayes.h"
#include "util/random.h"
#include "util/stats.h"

namespace autofp {

namespace {

/// Jacobi eigenvalue decomposition of a symmetric matrix (values only,
/// plus the eigenvector of the largest eigenvalue). Sizes are capped by
/// MetaFeatureOptions::max_pca_features before calling.
void JacobiEigen(std::vector<double> a, size_t d,
                 std::vector<double>* eigenvalues,
                 std::vector<double>* top_eigenvector) {
  std::vector<double> v(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) v[i * d + i] = 1.0;
  const int max_sweeps = 30;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i + 1; j < d; ++j) off += a[i * d + j] * a[i * d + j];
    }
    if (off < 1e-18) break;
    for (size_t p = 0; p < d; ++p) {
      for (size_t q = p + 1; q < d; ++q) {
        double apq = a[p * d + q];
        if (std::abs(apq) < 1e-15) continue;
        double app = a[p * d + p], aqq = a[q * d + q];
        double theta = (aqq - app) / (2.0 * apq);
        double t = std::copysign(1.0, theta) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < d; ++k) {
          double akp = a[k * d + p], akq = a[k * d + q];
          a[k * d + p] = c * akp - s * akq;
          a[k * d + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < d; ++k) {
          double apk = a[p * d + k], aqk = a[q * d + k];
          a[p * d + k] = c * apk - s * aqk;
          a[q * d + k] = s * apk + c * aqk;
        }
        for (size_t k = 0; k < d; ++k) {
          double vkp = v[k * d + p], vkq = v[k * d + q];
          v[k * d + p] = c * vkp - s * vkq;
          v[k * d + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues->resize(d);
  size_t top = 0;
  for (size_t i = 0; i < d; ++i) {
    (*eigenvalues)[i] = a[i * d + i];
    if ((*eigenvalues)[i] > (*eigenvalues)[top]) top = i;
  }
  top_eigenvector->resize(d);
  for (size_t k = 0; k < d; ++k) (*top_eigenvector)[k] = v[k * d + top];
}

}  // namespace

std::vector<double> MetaFeatures::ToVector() const {
  return {number_of_missing_values,
          percentage_of_missing_values,
          number_of_features_with_missing_values,
          percentage_of_features_with_missing_values,
          number_of_instances_with_missing_values,
          percentage_of_instances_with_missing_values,
          number_of_features,
          log_number_of_features,
          number_of_classes,
          dataset_ratio,
          log_dataset_ratio,
          inverse_dataset_ratio,
          log_inverse_dataset_ratio,
          symbols_sum,
          symbols_std,
          symbols_mean,
          symbols_max,
          symbols_min,
          skewness_std,
          skewness_mean,
          skewness_max,
          skewness_min,
          kurtosis_std,
          kurtosis_mean,
          kurtosis_max,
          kurtosis_min,
          class_probability_std,
          class_probability_mean,
          class_probability_max,
          class_probability_min,
          pca_skewness_first_pc,
          pca_kurtosis_first_pc,
          pca_fraction_components_95,
          class_entropy,
          landmark_1nn,
          landmark_random_node,
          landmark_decision_node,
          landmark_decision_tree,
          landmark_naive_bayes,
          landmark_lda};
}

const std::vector<std::string>& MetaFeatures::Names() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "NumberOfMissingValues",
      "PercentageOfMissingValues",
      "NumberOfFeaturesWithMissingValues",
      "PercentageOfFeaturesWithMissingValues",
      "NumberOfInstancesWithMissingValues",
      "PercentageOfInstancesWithMissingValues",
      "NumberOfFeatures",
      "LogNumberOfFeatures",
      "NumberOfClasses",
      "DatasetRatio",
      "LogDatasetRatio",
      "InverseDatasetRatio",
      "LogInverseDatasetRatio",
      "SymbolsSum",
      "SymbolsSTD",
      "SymbolsMean",
      "SymbolsMax",
      "SymbolsMin",
      "SkewnessSTD",
      "SkewnessMean",
      "SkewnessMax",
      "SkewnessMin",
      "KurtosisSTD",
      "KurtosisMean",
      "KurtosisMax",
      "KurtosisMin",
      "ClassProbabilitySTD",
      "ClassProbabilityMean",
      "ClassProbabilityMax",
      "ClassProbabilityMin",
      "PCASkewnessFirstPC",
      "PCAKurtosisFirstPC",
      "PCAFractionOfComponentsFor95PercentVariance",
      "ClassEntropy",
      "Landmark1NN",
      "LandmarkRandomNodeLearner",
      "LandmarkDecisionNodeLearner",
      "LandmarkDecisionTree",
      "LandmarkNaiveBayes",
      "LandmarkLDA"};
  return *names;
}

MetaFeatures ComputeMetaFeatures(const Dataset& dataset,
                                 const MetaFeatureOptions& options) {
  MetaFeatures mf;
  const size_t n = dataset.num_rows();
  const size_t d = dataset.num_cols();
  AUTOFP_CHECK_GT(n, 0u);
  AUTOFP_CHECK_GT(d, 0u);

  // Missing values (NaN cells).
  size_t missing_cells = 0;
  std::vector<bool> feature_has_missing(d, false);
  size_t rows_with_missing = 0;
  for (size_t r = 0; r < n; ++r) {
    bool row_missing = false;
    const double* row = dataset.features.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      if (std::isnan(row[c])) {
        ++missing_cells;
        feature_has_missing[c] = true;
        row_missing = true;
      }
    }
    if (row_missing) ++rows_with_missing;
  }
  size_t features_with_missing = static_cast<size_t>(
      std::count(feature_has_missing.begin(), feature_has_missing.end(),
                 true));
  mf.number_of_missing_values = static_cast<double>(missing_cells);
  mf.percentage_of_missing_values =
      static_cast<double>(missing_cells) / static_cast<double>(n * d);
  mf.number_of_features_with_missing_values =
      static_cast<double>(features_with_missing);
  mf.percentage_of_features_with_missing_values =
      static_cast<double>(features_with_missing) / static_cast<double>(d);
  mf.number_of_instances_with_missing_values =
      static_cast<double>(rows_with_missing);
  mf.percentage_of_instances_with_missing_values =
      static_cast<double>(rows_with_missing) / static_cast<double>(n);

  // Shape.
  mf.number_of_features = static_cast<double>(d);
  mf.log_number_of_features = std::log(static_cast<double>(d));
  mf.number_of_classes = static_cast<double>(dataset.num_classes);
  mf.dataset_ratio = static_cast<double>(d) / static_cast<double>(n);
  mf.log_dataset_ratio = std::log(mf.dataset_ratio);
  mf.inverse_dataset_ratio = static_cast<double>(n) / static_cast<double>(d);
  mf.log_inverse_dataset_ratio = std::log(mf.inverse_dataset_ratio);

  // Symbols + per-feature skew/kurtosis.
  std::vector<double> symbol_counts(d);
  std::vector<double> skews(d), kurts(d);
  for (size_t c = 0; c < d; ++c) {
    std::vector<double> column = dataset.features.Column(c);
    std::unordered_set<double> unique(column.begin(), column.end());
    symbol_counts[c] = static_cast<double>(unique.size());
    skews[c] = Skewness(column);
    kurts[c] = Kurtosis(column);
  }
  double symbols_total = 0.0;
  for (double s : symbol_counts) symbols_total += s;
  mf.symbols_sum = symbols_total;
  mf.symbols_std = StdDev(symbol_counts);
  mf.symbols_mean = Mean(symbol_counts);
  mf.symbols_max = *std::max_element(symbol_counts.begin(),
                                     symbol_counts.end());
  mf.symbols_min = *std::min_element(symbol_counts.begin(),
                                     symbol_counts.end());
  mf.skewness_std = StdDev(skews);
  mf.skewness_mean = Mean(skews);
  mf.skewness_max = *std::max_element(skews.begin(), skews.end());
  mf.skewness_min = *std::min_element(skews.begin(), skews.end());
  mf.kurtosis_std = StdDev(kurts);
  mf.kurtosis_mean = Mean(kurts);
  mf.kurtosis_max = *std::max_element(kurts.begin(), kurts.end());
  mf.kurtosis_min = *std::min_element(kurts.begin(), kurts.end());

  // Class probabilities + entropy.
  std::vector<double> counts = dataset.ClassCounts();
  std::vector<double> probabilities(counts.size());
  for (size_t k = 0; k < counts.size(); ++k) {
    probabilities[k] = counts[k] / static_cast<double>(n);
  }
  mf.class_probability_std = StdDev(probabilities);
  mf.class_probability_mean = Mean(probabilities);
  mf.class_probability_max =
      *std::max_element(probabilities.begin(), probabilities.end());
  mf.class_probability_min =
      *std::min_element(probabilities.begin(), probabilities.end());
  mf.class_entropy = Entropy(counts);

  // Bounded-cost subsample shared by PCA and landmarkers.
  Rng rng(options.seed);
  Dataset sample = dataset;
  if (n > options.max_rows) {
    double fraction =
        static_cast<double>(options.max_rows) / static_cast<double>(n);
    sample = SubsampleRows(dataset, fraction, &rng);
  }

  // PCA meta-features (on a feature subset if d is large).
  {
    std::vector<size_t> pca_features;
    if (d > options.max_pca_features) {
      pca_features =
          rng.SampleWithoutReplacement(d, options.max_pca_features);
    } else {
      pca_features.resize(d);
      for (size_t c = 0; c < d; ++c) pca_features[c] = c;
    }
    const size_t pd = pca_features.size();
    const size_t pn = sample.num_rows();
    // Column means.
    std::vector<double> means(pd, 0.0);
    for (size_t r = 0; r < pn; ++r) {
      const double* row = sample.features.RowPtr(r);
      for (size_t c = 0; c < pd; ++c) means[c] += row[pca_features[c]];
    }
    for (double& m : means) m /= static_cast<double>(pn);
    // Covariance.
    std::vector<double> cov(pd * pd, 0.0);
    std::vector<double> centered(pd);
    for (size_t r = 0; r < pn; ++r) {
      const double* row = sample.features.RowPtr(r);
      for (size_t c = 0; c < pd; ++c) {
        centered[c] = row[pca_features[c]] - means[c];
      }
      for (size_t i = 0; i < pd; ++i) {
        for (size_t j = 0; j <= i; ++j) {
          cov[i * pd + j] += centered[i] * centered[j];
        }
      }
    }
    for (size_t i = 0; i < pd; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        cov[i * pd + j] /= static_cast<double>(pn);
        cov[j * pd + i] = cov[i * pd + j];
      }
    }
    std::vector<double> eigenvalues, top_vector;
    JacobiEigen(cov, pd, &eigenvalues, &top_vector);
    // Fraction of components explaining 95% of variance.
    std::vector<double> sorted = eigenvalues;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    double total = 0.0;
    for (double e : sorted) total += std::max(e, 0.0);
    if (total > 0.0) {
      double cumulative = 0.0;
      size_t needed = sorted.size();
      for (size_t i = 0; i < sorted.size(); ++i) {
        cumulative += std::max(sorted[i], 0.0);
        if (cumulative >= 0.95 * total) {
          needed = i + 1;
          break;
        }
      }
      mf.pca_fraction_components_95 =
          static_cast<double>(needed) / static_cast<double>(pd);
    }
    // Projection onto the first PC.
    std::vector<double> projection(pn);
    for (size_t r = 0; r < pn; ++r) {
      const double* row = sample.features.RowPtr(r);
      double dot = 0.0;
      for (size_t c = 0; c < pd; ++c) {
        dot += (row[pca_features[c]] - means[c]) * top_vector[c];
      }
      projection[r] = dot;
    }
    mf.pca_skewness_first_pc = Skewness(projection);
    mf.pca_kurtosis_first_pc = Kurtosis(projection);
  }

  // Landmarkers (5-fold CV on the subsample).
  {
    const size_t folds = options.landmark_folds;
    const uint64_t seed = options.seed + 1;
    mf.landmark_1nn =
        CrossValidationAccuracy(KnnClassifier(1), sample, folds, seed);
    TreeConfig stump;
    stump.max_depth = 1;
    mf.landmark_decision_node = CrossValidationAccuracy(
        DecisionTreeClassifier(stump), sample, folds, seed);
    // Random-node learner: a stump restricted to one random feature.
    size_t random_feature = rng.UniformIndex(sample.num_cols());
    Dataset one_feature = sample;
    one_feature.features = Matrix(sample.num_rows(), 1);
    for (size_t r = 0; r < sample.num_rows(); ++r) {
      one_feature.features(r, 0) = sample.features(r, random_feature);
    }
    mf.landmark_random_node = CrossValidationAccuracy(
        DecisionTreeClassifier(stump), one_feature, folds, seed);
    TreeConfig full_tree;
    full_tree.max_depth = 12;
    full_tree.min_samples_leaf = 2;
    mf.landmark_decision_tree = CrossValidationAccuracy(
        DecisionTreeClassifier(full_tree), sample, folds, seed);
    mf.landmark_naive_bayes =
        CrossValidationAccuracy(GaussianNaiveBayes(), sample, folds, seed);
    mf.landmark_lda =
        CrossValidationAccuracy(LdaClassifier(), sample, folds, seed);
  }

  return mf;
}

}  // namespace autofp
