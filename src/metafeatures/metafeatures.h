#ifndef AUTOFP_METAFEATURES_METAFEATURES_H_
#define AUTOFP_METAFEATURES_METAFEATURES_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace autofp {

/// The 40 Auto-Sklearn meta-features of the paper's Table 10, grouped as
/// simple / statistical / information-theoretic / landmarking. Used by the
/// Table 1 experiment ("are there data-characteristic rules that predict
/// whether FP helps?").
struct MetaFeatures {
  // --- Simple: missing values (always 0 for our numeric datasets, but
  // computed, so CSV-loaded data with NaNs is handled faithfully).
  double number_of_missing_values = 0;
  double percentage_of_missing_values = 0;
  double number_of_features_with_missing_values = 0;
  double percentage_of_features_with_missing_values = 0;
  double number_of_instances_with_missing_values = 0;
  double percentage_of_instances_with_missing_values = 0;
  // --- Simple: shape.
  double number_of_features = 0;
  double log_number_of_features = 0;
  double number_of_classes = 0;
  double dataset_ratio = 0;          ///< features / rows.
  double log_dataset_ratio = 0;
  double inverse_dataset_ratio = 0;  ///< rows / features.
  double log_inverse_dataset_ratio = 0;
  // --- Simple: symbols (distinct values per feature).
  double symbols_sum = 0;
  double symbols_std = 0;
  double symbols_mean = 0;
  double symbols_max = 0;
  double symbols_min = 0;
  // --- Statistical.
  double skewness_std = 0;
  double skewness_mean = 0;
  double skewness_max = 0;
  double skewness_min = 0;
  double kurtosis_std = 0;
  double kurtosis_mean = 0;
  double kurtosis_max = 0;
  double kurtosis_min = 0;
  double class_probability_std = 0;
  double class_probability_mean = 0;
  double class_probability_max = 0;
  double class_probability_min = 0;
  double pca_skewness_first_pc = 0;
  double pca_kurtosis_first_pc = 0;
  double pca_fraction_components_95 = 0;
  // --- Information-theoretic.
  double class_entropy = 0;
  // --- Landmarkers (5-fold CV accuracies).
  double landmark_1nn = 0;
  double landmark_random_node = 0;
  double landmark_decision_node = 0;
  double landmark_decision_tree = 0;
  double landmark_naive_bayes = 0;
  double landmark_lda = 0;

  /// The 40 values in Table 10 order.
  std::vector<double> ToVector() const;

  /// Names matching ToVector() positions.
  static const std::vector<std::string>& Names();
};

/// Options bounding the cost of the expensive meta-features.
struct MetaFeatureOptions {
  /// Landmarkers and PCA run on at most this many (random) rows.
  size_t max_rows = 2000;
  /// PCA meta-features use at most this many (random) feature columns;
  /// eigen-decomposition is O(d^3).
  size_t max_pca_features = 128;
  size_t landmark_folds = 5;
  uint64_t seed = 97;
};

/// Computes all 40 meta-features for a dataset.
MetaFeatures ComputeMetaFeatures(const Dataset& dataset,
                                 const MetaFeatureOptions& options = {});

}  // namespace autofp

#endif  // AUTOFP_METAFEATURES_METAFEATURES_H_
