#include "preprocess/preprocessor.h"

#include <sstream>

#include "preprocess/binarizer.h"
#include "preprocess/maxabs_scaler.h"
#include "preprocess/minmax_scaler.h"
#include "preprocess/normalizer.h"
#include "preprocess/power_transformer.h"
#include "preprocess/quantile_transformer.h"
#include "preprocess/standard_scaler.h"
#include "util/logging.h"

namespace autofp {

const std::vector<PreprocessorKind>& AllPreprocessorKinds() {
  static const std::vector<PreprocessorKind>* kinds =
      new std::vector<PreprocessorKind>{
          PreprocessorKind::kBinarizer,
          PreprocessorKind::kMaxAbsScaler,
          PreprocessorKind::kMinMaxScaler,
          PreprocessorKind::kNormalizer,
          PreprocessorKind::kPowerTransformer,
          PreprocessorKind::kQuantileTransformer,
          PreprocessorKind::kStandardScaler,
      };
  return *kinds;
}

std::string KindName(PreprocessorKind kind) {
  switch (kind) {
    case PreprocessorKind::kBinarizer:
      return "Binarizer";
    case PreprocessorKind::kMaxAbsScaler:
      return "MaxAbsScaler";
    case PreprocessorKind::kMinMaxScaler:
      return "MinMaxScaler";
    case PreprocessorKind::kNormalizer:
      return "Normalizer";
    case PreprocessorKind::kPowerTransformer:
      return "PowerTransformer";
    case PreprocessorKind::kQuantileTransformer:
      return "QuantileTransformer";
    case PreprocessorKind::kStandardScaler:
      return "StandardScaler";
  }
  return "Unknown";
}

namespace {

std::string NormName(NormKind norm) {
  switch (norm) {
    case NormKind::kL1:
      return "l1";
    case NormKind::kL2:
      return "l2";
    case NormKind::kMax:
      return "max";
  }
  return "?";
}

}  // namespace

std::string PreprocessorConfig::ToString() const {
  PreprocessorConfig defaults = Defaults(kind);
  std::ostringstream out;
  out << KindName(kind);
  std::vector<std::string> params;
  switch (kind) {
    case PreprocessorKind::kBinarizer:
      if (threshold != defaults.threshold) {
        std::ostringstream p;
        p << "threshold=" << threshold;
        params.push_back(p.str());
      }
      break;
    case PreprocessorKind::kNormalizer:
      if (norm != defaults.norm) params.push_back("norm=" + NormName(norm));
      break;
    case PreprocessorKind::kStandardScaler:
      if (with_mean != defaults.with_mean) {
        params.push_back(std::string("with_mean=") +
                         (with_mean ? "true" : "false"));
      }
      break;
    case PreprocessorKind::kPowerTransformer:
      if (standardize != defaults.standardize) {
        params.push_back(std::string("standardize=") +
                         (standardize ? "true" : "false"));
      }
      break;
    case PreprocessorKind::kQuantileTransformer:
      if (n_quantiles != defaults.n_quantiles) {
        params.push_back("n_quantiles=" + std::to_string(n_quantiles));
      }
      if (output_distribution != defaults.output_distribution) {
        params.push_back(
            std::string("output_distribution=") +
            (output_distribution == OutputDistribution::kUniform ? "uniform"
                                                                 : "normal"));
      }
      break;
    default:
      break;
  }
  if (!params.empty()) {
    out << '(';
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out << ", ";
      out << params[i];
    }
    out << ')';
  }
  return out.str();
}

bool PreprocessorConfig::operator==(const PreprocessorConfig& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case PreprocessorKind::kBinarizer:
      return threshold == other.threshold;
    case PreprocessorKind::kNormalizer:
      return norm == other.norm;
    case PreprocessorKind::kStandardScaler:
      return with_mean == other.with_mean;
    case PreprocessorKind::kPowerTransformer:
      return standardize == other.standardize;
    case PreprocessorKind::kQuantileTransformer:
      return n_quantiles == other.n_quantiles &&
             output_distribution == other.output_distribution;
    default:
      return true;  // MaxAbs/MinMax have no searched parameters.
  }
}

std::unique_ptr<Preprocessor> MakePreprocessor(
    const PreprocessorConfig& config) {
  switch (config.kind) {
    case PreprocessorKind::kBinarizer:
      return std::make_unique<Binarizer>(config);
    case PreprocessorKind::kMaxAbsScaler:
      return std::make_unique<MaxAbsScaler>(config);
    case PreprocessorKind::kMinMaxScaler:
      return std::make_unique<MinMaxScaler>(config);
    case PreprocessorKind::kNormalizer:
      return std::make_unique<Normalizer>(config);
    case PreprocessorKind::kPowerTransformer:
      return std::make_unique<PowerTransformer>(config);
    case PreprocessorKind::kQuantileTransformer:
      return std::make_unique<QuantileTransformer>(config);
    case PreprocessorKind::kStandardScaler:
      return std::make_unique<StandardScaler>(config);
  }
  AUTOFP_CHECK(false) << "unknown preprocessor kind";
  return nullptr;
}

std::unique_ptr<Preprocessor> MakePreprocessor(PreprocessorKind kind) {
  return MakePreprocessor(PreprocessorConfig::Defaults(kind));
}

}  // namespace autofp
