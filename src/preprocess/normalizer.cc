#include "preprocess/normalizer.h"

#include "preprocess/kernels.h"

namespace autofp {

void Normalizer::TransformInPlace(Matrix& data) const {
  // Row-wise by definition: the norm is a per-sample reduction. The
  // kernel keeps the reduction order fixed in both layouts, so the
  // output stays bit-identical either way.
  kernels::NormalizeRows(data, config_.norm);
}

}  // namespace autofp
