#include "preprocess/normalizer.h"

#include <cmath>

namespace autofp {

Matrix Normalizer::Transform(const Matrix& data) const {
  Matrix out(data.rows(), data.cols());
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* in_row = data.RowPtr(r);
    double* out_row = out.RowPtr(r);
    double norm = 0.0;
    switch (config_.norm) {
      case NormKind::kL1:
        for (size_t c = 0; c < data.cols(); ++c) norm += std::abs(in_row[c]);
        break;
      case NormKind::kL2:
        for (size_t c = 0; c < data.cols(); ++c)
          norm += in_row[c] * in_row[c];
        norm = std::sqrt(norm);
        break;
      case NormKind::kMax:
        for (size_t c = 0; c < data.cols(); ++c) {
          double abs_value = std::abs(in_row[c]);
          if (abs_value > norm) norm = abs_value;
        }
        break;
    }
    if (norm == 0.0) norm = 1.0;
    for (size_t c = 0; c < data.cols(); ++c) out_row[c] = in_row[c] / norm;
  }
  return out;
}

}  // namespace autofp
