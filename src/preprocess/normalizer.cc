#include "preprocess/normalizer.h"

#include <cmath>

namespace autofp {

void Normalizer::TransformInPlace(Matrix& data) const {
  const size_t cols = data.cols();
  const NormKind kind = config_.norm;
  // Row-wise by definition: the norm is a per-sample reduction, so the
  // natural row-major pass is also the cache-friendly one.
  for (size_t r = 0; r < data.rows(); ++r) {
    double* row = data.RowPtr(r);
    double norm = 0.0;
    switch (kind) {
      case NormKind::kL1:
        for (size_t c = 0; c < cols; ++c) norm += std::abs(row[c]);
        break;
      case NormKind::kL2:
        for (size_t c = 0; c < cols; ++c) norm += row[c] * row[c];
        norm = std::sqrt(norm);
        break;
      case NormKind::kMax:
        for (size_t c = 0; c < cols; ++c) {
          double abs_value = std::abs(row[c]);
          if (abs_value > norm) norm = abs_value;
        }
        break;
    }
    if (norm == 0.0) norm = 1.0;
    for (size_t c = 0; c < cols; ++c) row[c] /= norm;
  }
}

}  // namespace autofp
