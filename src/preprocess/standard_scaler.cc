#include "preprocess/standard_scaler.h"

#include "util/serialize.h"

#include <cmath>

namespace autofp {

void StandardScaler::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  const size_t cols = data.cols();
  means_.assign(cols, 0.0);
  stddevs_.assign(cols, 0.0);
  const double n = static_cast<double>(data.rows());
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* row = data.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) means_[c] += row[c];
  }
  for (size_t c = 0; c < cols; ++c) means_[c] /= n;
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* row = data.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      double d = row[c] - means_[c];
      stddevs_[c] += d * d;
    }
  }
  for (size_t c = 0; c < cols; ++c) {
    stddevs_[c] = std::sqrt(stddevs_[c] / n);
    if (stddevs_[c] == 0.0) stddevs_[c] = 1.0;
  }
  fitted_ = true;
}

void StandardScaler::FitFromMoments(const std::vector<double>& means,
                                    const std::vector<double>& stddevs) {
  AUTOFP_CHECK_EQ(means.size(), stddevs.size());
  AUTOFP_CHECK_GT(means.size(), 0u);
  means_ = means;
  stddevs_ = stddevs;
  for (double& stddev : stddevs_) {
    if (!(stddev > 0.0)) stddev = 1.0;
  }
  fitted_ = true;
}

void StandardScaler::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "StandardScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), means_.size());
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  const bool with_mean = config_.with_mean;
  // Column-strided: hoist the per-column mean/stddev (and the with_mean
  // branch) out of the row loop.
  for (size_t c = 0; c < cols; ++c) {
    const double mean = with_mean ? means_[c] : 0.0;
    const double stddev = stddevs_[c];
    double* p = data.data().data() + c;
    for (size_t r = 0; r < rows; ++r, p += cols) {
      *p = (*p - mean) / stddev;
    }
  }
}

void StandardScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, means_);
  WriteVec(out, stddevs_);
}

Status StandardScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &means_) || !ReadVec(in, &stddevs_) ||
      means_.size() != stddevs_.size()) {
    return Status::InvalidArgument("StandardScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
