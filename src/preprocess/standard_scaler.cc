#include "preprocess/standard_scaler.h"

#include "preprocess/kernels.h"
#include "util/serialize.h"

#include <cmath>

namespace autofp {

void StandardScaler::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  const size_t cols = data.cols();
  const double n = static_cast<double>(data.rows());
  kernels::ColumnSums(data, &means_);
  for (size_t c = 0; c < cols; ++c) means_[c] /= n;
  kernels::ColumnSquaredDevSums(data, means_, &stddevs_);
  for (size_t c = 0; c < cols; ++c) {
    stddevs_[c] = std::sqrt(stddevs_[c] / n);
    if (stddevs_[c] == 0.0) stddevs_[c] = 1.0;
  }
  fitted_ = true;
}

void StandardScaler::FitFromMoments(const std::vector<double>& means,
                                    const std::vector<double>& stddevs) {
  AUTOFP_CHECK_EQ(means.size(), stddevs.size());
  AUTOFP_CHECK_GT(means.size(), 0u);
  means_ = means;
  stddevs_ = stddevs;
  for (double& stddev : stddevs_) {
    if (!(stddev > 0.0)) stddev = 1.0;
  }
  fitted_ = true;
}

void StandardScaler::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "StandardScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), means_.size());
  // x - 0.0 == x bit-for-bit in round-to-nearest, so the no-centering
  // config is a pure column scale.
  if (config_.with_mean) {
    kernels::ShiftScaleColumns(data, means_, stddevs_);
  } else {
    kernels::ScaleColumns(data, stddevs_);
  }
}

void StandardScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, means_);
  WriteVec(out, stddevs_);
}

Status StandardScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &means_) || !ReadVec(in, &stddevs_) ||
      means_.size() != stddevs_.size()) {
    return Status::InvalidArgument("StandardScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
