#include "preprocess/standard_scaler.h"

#include "util/serialize.h"

#include <cmath>

namespace autofp {

void StandardScaler::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  const size_t cols = data.cols();
  means_.assign(cols, 0.0);
  stddevs_.assign(cols, 0.0);
  const double n = static_cast<double>(data.rows());
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* row = data.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) means_[c] += row[c];
  }
  for (size_t c = 0; c < cols; ++c) means_[c] /= n;
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* row = data.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) {
      double d = row[c] - means_[c];
      stddevs_[c] += d * d;
    }
  }
  for (size_t c = 0; c < cols; ++c) {
    stddevs_[c] = std::sqrt(stddevs_[c] / n);
    if (stddevs_[c] == 0.0) stddevs_[c] = 1.0;
  }
  fitted_ = true;
}

Matrix StandardScaler::Transform(const Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "StandardScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), means_.size());
  Matrix out(data.rows(), data.cols());
  const bool with_mean = config_.with_mean;
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* in_row = data.RowPtr(r);
    double* out_row = out.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) {
      double centered = with_mean ? in_row[c] - means_[c] : in_row[c];
      out_row[c] = centered / stddevs_[c];
    }
  }
  return out;
}

void StandardScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, means_);
  WriteVec(out, stddevs_);
}

Status StandardScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &means_) || !ReadVec(in, &stddevs_) ||
      means_.size() != stddevs_.size()) {
    return Status::InvalidArgument("StandardScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
