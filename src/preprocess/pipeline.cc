#include "preprocess/pipeline.h"

#include <cmath>
#include <sstream>

namespace autofp {

namespace {

bool AllFinite(const Matrix& matrix) {
  for (double value : matrix.data()) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

/// True when every entry of the matrix is identical (including the empty
/// matrix): no feature carries any information.
bool IsCollapsed(const Matrix& matrix) {
  if (matrix.empty()) return true;
  const double first = matrix.data().front();
  for (double value : matrix.data()) {
    if (value != first) return false;
  }
  return true;
}

}  // namespace

std::string PipelineSpec::ToString() const {
  if (steps.empty()) return "<no-FP>";
  std::ostringstream out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out << " -> ";
    out << steps[i].ToString();
  }
  return out.str();
}

PipelineSpec PipelineSpec::FromKinds(
    const std::vector<PreprocessorKind>& kinds) {
  PipelineSpec spec;
  spec.steps.reserve(kinds.size());
  for (PreprocessorKind kind : kinds) {
    spec.steps.push_back(PreprocessorConfig::Defaults(kind));
  }
  return spec;
}

FittedPipeline FittedPipeline::Fit(const PipelineSpec& spec,
                                   const Matrix& train) {
  FittedPipeline pipeline;
  pipeline.spec_ = spec;
  Matrix current = train;
  for (const PreprocessorConfig& config : spec.steps) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
    step->Fit(current);
    current = step->Transform(current);
    pipeline.fitted_steps_.push_back(std::move(step));
  }
  return pipeline;
}

Matrix FittedPipeline::Transform(const Matrix& data) const {
  Matrix current = data;
  for (const auto& step : fitted_steps_) {
    current = step->Transform(current);
  }
  return current;
}

TransformedPair FitTransformPair(const PipelineSpec& spec, const Matrix& train,
                                 const Matrix& valid) {
  TransformedPair out;
  if (spec.empty()) {
    out.train = train;
    out.valid = valid;
    return out;
  }
  // Fitting already transforms the training matrix step-by-step; doing the
  // same for valid in lockstep avoids a second pass over the chain.
  Matrix current_train = train;
  Matrix current_valid = valid;
  for (const PreprocessorConfig& config : spec.steps) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
    step->Fit(current_train);
    current_train = step->Transform(current_train);
    current_valid = step->Transform(current_valid);
  }
  out.train = std::move(current_train);
  out.valid = std::move(current_valid);
  return out;
}

Result<TransformedPair> CheckedFitTransformPair(const PipelineSpec& spec,
                                                const Matrix& train,
                                                const Matrix& valid) {
  TransformedPair pair = FitTransformPair(spec, train, valid);
  if (!AllFinite(pair.train) || !AllFinite(pair.valid)) {
    return Status::OutOfRange("pipeline '" + spec.ToString() +
                              "' produced non-finite output");
  }
  // Only non-empty pipelines can be blamed for collapsing the data; the
  // no-FP pass-through reports whatever the raw features are.
  if (!spec.empty() && IsCollapsed(pair.train)) {
    return Status::InvalidArgument("pipeline '" + spec.ToString() +
                                   "' produced a degenerate (constant) "
                                   "training matrix");
  }
  return pair;
}

}  // namespace autofp
