#include "preprocess/pipeline.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "preprocess/transform_cache.h"

namespace autofp {

namespace {

bool AllFinite(const Matrix& matrix) {
  for (double value : matrix.data()) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

/// True when every entry of the matrix is identical (including the empty
/// matrix): no feature carries any information.
bool IsCollapsed(const Matrix& matrix) {
  if (matrix.empty()) return true;
  const double first = matrix.data().front();
  for (double value : matrix.data()) {
    if (value != first) return false;
  }
  return true;
}

/// Shared validation of a transformed pair (the Checked* contract).
Result<TransformedPair> CheckTransformedPair(const PipelineSpec& spec,
                                             TransformedPair pair) {
  if (!AllFinite(pair.train) || !AllFinite(pair.valid)) {
    return Status::OutOfRange("pipeline '" + spec.ToString() +
                              "' produced non-finite output");
  }
  // Only non-empty pipelines can be blamed for collapsing the data; the
  // no-FP pass-through reports whatever the raw features are.
  if (!spec.empty() && IsCollapsed(pair.train)) {
    return Status::InvalidArgument("pipeline '" + spec.ToString() +
                                   "' produced a degenerate (constant) "
                                   "training matrix");
  }
  return pair;
}

/// Cache key of the length-`length` prefix of `spec` fitted on the data
/// identified by `data_key`.
std::string PrefixCacheKey(const std::string& data_key,
                           const PipelineSpec& spec, size_t length) {
  PipelineSpec prefix;
  prefix.steps.assign(spec.steps.begin(),
                      spec.steps.begin() + static_cast<long>(length));
  return data_key + "||" + prefix.Key();
}

}  // namespace

std::string PipelineSpec::ToString() const {
  if (steps.empty()) return "<no-FP>";
  std::ostringstream out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out << " -> ";
    out << steps[i].ToString();
  }
  return out.str();
}

PipelineSpec PipelineSpec::FromKinds(
    const std::vector<PreprocessorKind>& kinds) {
  PipelineSpec spec;
  spec.steps.reserve(kinds.size());
  for (PreprocessorKind kind : kinds) {
    spec.steps.push_back(PreprocessorConfig::Defaults(kind));
  }
  return spec;
}

FittedPipeline FittedPipeline::Fit(const PipelineSpec& spec,
                                   const Matrix& train) {
  FittedPipeline pipeline;
  pipeline.spec_ = spec;
  Matrix current = train;
  for (const PreprocessorConfig& config : spec.steps) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
    step->Fit(current);
    current = step->Transform(current);
    pipeline.fitted_steps_.push_back(std::move(step));
  }
  return pipeline;
}

FittedPipeline FittedPipeline::FromFittedSteps(
    PipelineSpec spec, std::vector<std::unique_ptr<Preprocessor>> steps) {
  AUTOFP_CHECK_EQ(spec.steps.size(), steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    AUTOFP_CHECK(steps[i] != nullptr);
    AUTOFP_CHECK(steps[i]->config() == spec.steps[i])
        << "fitted step " << i << " does not match the spec";
  }
  FittedPipeline pipeline;
  pipeline.spec_ = std::move(spec);
  pipeline.fitted_steps_ = std::move(steps);
  return pipeline;
}

Matrix FittedPipeline::Transform(const Matrix& data) const {
  Matrix current = data;
  for (const auto& step : fitted_steps_) {
    current = step->Transform(current);
  }
  return current;
}

TransformedPair FitTransformPair(const PipelineSpec& spec, const Matrix& train,
                                 const Matrix& valid) {
  TransformedPair out;
  if (spec.empty()) {
    out.train = train;
    out.valid = valid;
    return out;
  }
  // Fitting already transforms the training matrix step-by-step; doing the
  // same for valid in lockstep avoids a second pass over the chain.
  Matrix current_train = train;
  Matrix current_valid = valid;
  for (const PreprocessorConfig& config : spec.steps) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
    step->Fit(current_train);
    current_train = step->Transform(current_train);
    current_valid = step->Transform(current_valid);
  }
  out.train = std::move(current_train);
  out.valid = std::move(current_valid);
  return out;
}

Result<TransformedPair> CheckedFitTransformPair(const PipelineSpec& spec,
                                                const Matrix& train,
                                                const Matrix& valid) {
  return CheckTransformedPair(spec, FitTransformPair(spec, train, valid));
}

Result<TransformedPair> CheckedFitTransformPairCached(
    const PipelineSpec& spec, const Matrix& train, const Matrix& valid,
    TransformCache* cache, const std::string& data_key) {
  if (cache == nullptr || spec.empty()) {
    return CheckedFitTransformPair(spec, train, valid);
  }
  // Longest cached prefix, probed from the full pipeline downward so a
  // repeat evaluation skips fitting entirely.
  size_t fitted = 0;
  std::shared_ptr<const TransformedPair> cached;
  for (size_t length = spec.size(); length >= 1; --length) {
    cached = cache->Get(PrefixCacheKey(data_key, spec, length));
    if (cached != nullptr) {
      fitted = length;
      break;
    }
  }
  Matrix current_train = cached != nullptr ? cached->train : train;
  Matrix current_valid = cached != nullptr ? cached->valid : valid;
  // Continue fitting exactly where the cached prefix left off; every newly
  // produced prefix is cached, including the full pipeline. Intermediate
  // matrices are cached unchecked — the uncached path also fits through
  // non-finite intermediates, so reuse stays bit-identical.
  for (size_t i = fitted; i < spec.size(); ++i) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(spec.steps[i]);
    step->Fit(current_train);
    current_train = step->Transform(current_train);
    current_valid = step->Transform(current_valid);
    TransformedPair prefix_pair;
    prefix_pair.train = current_train;
    prefix_pair.valid = current_valid;
    cache->Put(PrefixCacheKey(data_key, spec, i + 1), std::move(prefix_pair));
  }
  TransformedPair pair;
  pair.train = std::move(current_train);
  pair.valid = std::move(current_valid);
  return CheckTransformedPair(spec, std::move(pair));
}

}  // namespace autofp
