#include "preprocess/pipeline.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "preprocess/transform_cache.h"

namespace autofp {

namespace {

bool AllFinite(const Matrix& matrix) {
  const double* p = matrix.Raw();
  for (size_t i = 0; i < matrix.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

/// True when every entry of the matrix is identical (including the empty
/// matrix): no feature carries any information.
bool IsCollapsed(const Matrix& matrix) {
  if (matrix.empty()) return true;
  const double* p = matrix.Raw();
  const double first = p[0];
  for (size_t i = 0; i < matrix.size(); ++i) {
    if (p[i] != first) return false;
  }
  return true;
}

/// The Checked* validation contract, on the matrices themselves.
Status CheckTransformed(const PipelineSpec& spec, const Matrix& train,
                        const Matrix& valid) {
  if (!AllFinite(train) || !AllFinite(valid)) {
    return Status::OutOfRange("pipeline '" + spec.ToString() +
                              "' produced non-finite output");
  }
  // Only non-empty pipelines can be blamed for collapsing the data; the
  // no-FP pass-through reports whatever the raw features are.
  if (!spec.empty() && IsCollapsed(train)) {
    return Status::InvalidArgument("pipeline '" + spec.ToString() +
                                   "' produced a degenerate (constant) "
                                   "training matrix");
  }
  return Status::OK();
}

/// Shared validation of a transformed pair (the Checked* contract).
Result<TransformedPair> CheckTransformedPair(const PipelineSpec& spec,
                                             TransformedPair pair) {
  Status status = CheckTransformed(spec, pair.train, pair.valid);
  if (!status.ok()) return status;
  return pair;
}

/// A shared_ptr that observes `matrix` without owning it (the aliasing
/// constructor with an empty control block). Used to hand out zero-copy
/// views of caller-owned storage; the caller guarantees the storage
/// outlives every use of the view.
std::shared_ptr<const Matrix> NonOwningView(const Matrix& matrix) {
  return std::shared_ptr<const Matrix>(std::shared_ptr<const Matrix>(),
                                       &matrix);
}

/// Cache key of the length-`length` prefix of `spec` fitted on the data
/// identified by `data_key`.
std::string PrefixCacheKey(const std::string& data_key,
                           const PipelineSpec& spec, size_t length) {
  PipelineSpec prefix;
  prefix.steps.assign(spec.steps.begin(),
                      spec.steps.begin() + static_cast<long>(length));
  return data_key + "||" + prefix.Key();
}

}  // namespace

std::string PipelineSpec::ToString() const {
  if (steps.empty()) return "<no-FP>";
  std::ostringstream out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out << " -> ";
    out << steps[i].ToString();
  }
  return out.str();
}

PipelineSpec PipelineSpec::FromKinds(
    const std::vector<PreprocessorKind>& kinds) {
  PipelineSpec spec;
  spec.steps.reserve(kinds.size());
  for (PreprocessorKind kind : kinds) {
    spec.steps.push_back(PreprocessorConfig::Defaults(kind));
  }
  return spec;
}

Matrix::Layout ChooseWorkingLayout(const PipelineSpec& spec, size_t rows) {
  // The columnar staging pays for two transpose copies; below a few
  // hundred rows the strided row-major kernels win outright.
  if (spec.empty() || rows < 256) return Matrix::Layout::kRowMajor;
  return Matrix::Layout::kColMajor;
}

FittedPipeline FittedPipeline::Fit(const PipelineSpec& spec,
                                   const Matrix& train) {
  FittedPipeline pipeline;
  pipeline.spec_ = spec;
  // One working copy threaded through the whole chain: each step fits on
  // the previous step's output, then transforms it in place. The copy is
  // discarded afterwards, so it can use whichever layout the kernels
  // prefer — the fitted parameters are bit-identical either way.
  Matrix current;
  current.AssignWithLayout(train, ChooseWorkingLayout(spec, train.rows()));
  for (const PreprocessorConfig& config : spec.steps) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
    step->Fit(current);
    step->TransformInPlace(current);
    pipeline.fitted_steps_.push_back(std::move(step));
  }
  return pipeline;
}

FittedPipeline FittedPipeline::FromFittedSteps(
    PipelineSpec spec, std::vector<std::unique_ptr<Preprocessor>> steps) {
  AUTOFP_CHECK_EQ(spec.steps.size(), steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    AUTOFP_CHECK(steps[i] != nullptr);
    AUTOFP_CHECK(steps[i]->config() == spec.steps[i])
        << "fitted step " << i << " does not match the spec";
  }
  FittedPipeline pipeline;
  pipeline.spec_ = std::move(spec);
  pipeline.fitted_steps_ = std::move(steps);
  return pipeline;
}

Matrix FittedPipeline::Transform(const Matrix& data) const {
  Matrix current = data;
  TransformInPlace(current);
  return current;
}

void FittedPipeline::TransformInPlace(Matrix& data) const {
  for (const auto& step : fitted_steps_) {
    step->TransformInPlace(data);
  }
}

void FittedPipeline::TransformInto(const Matrix& data, Matrix* scratch) const {
  AUTOFP_CHECK(scratch != nullptr);
  if (scratch != &data) *scratch = data;
  TransformInPlace(*scratch);
}

TransformedPair FitTransformPair(const PipelineSpec& spec, const Matrix& train,
                                 const Matrix& valid) {
  // One working copy per matrix threaded through the whole chain: fitting
  // transforms train step-by-step anyway, and valid follows in lockstep.
  TransformedPair out;
  if (ChooseWorkingLayout(spec, train.rows()) == Matrix::Layout::kColMajor) {
    Matrix stage_train, stage_valid;
    stage_train.AssignWithLayout(train, Matrix::Layout::kColMajor);
    stage_valid.AssignWithLayout(valid, Matrix::Layout::kColMajor);
    for (const PreprocessorConfig& config : spec.steps) {
      std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
      step->Fit(stage_train);
      step->TransformInPlace(stage_train);
      step->TransformInPlace(stage_valid);
    }
    out.train.AssignWithLayout(stage_train, Matrix::Layout::kRowMajor);
    out.valid.AssignWithLayout(stage_valid, Matrix::Layout::kRowMajor);
    return out;
  }
  out.train = train;
  out.valid = valid;
  for (const PreprocessorConfig& config : spec.steps) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
    step->Fit(out.train);
    step->TransformInPlace(out.train);
    step->TransformInPlace(out.valid);
  }
  return out;
}

Result<TransformedPair> CheckedFitTransformPair(const PipelineSpec& spec,
                                                const Matrix& train,
                                                const Matrix& valid) {
  return CheckTransformedPair(spec, FitTransformPair(spec, train, valid));
}

Result<SharedTransformedPair> CheckedFitTransformPairCached(
    const PipelineSpec& spec, const Matrix& train, const Matrix& valid,
    TransformCache* cache, const std::string& data_key,
    TransformScratch* scratch) {
  // The empty spec passes the inputs through: hand out zero-copy views of
  // the caller's matrices (valid while the caller's data is).
  if (spec.empty()) {
    Status status = CheckTransformed(spec, train, valid);
    if (!status.ok()) return status;
    return SharedTransformedPair{NonOwningView(train), NonOwningView(valid)};
  }

  if (cache == nullptr) {
    // Uncached path: thread the chain through the scratch buffers (or
    // locals when the caller brought none), then hand out views. With
    // scratch, the steady state allocates nothing and the result aliases
    // the scratch buffers — see the header contract. When the layout
    // policy picks columnar, the chain runs through the stage_* buffers
    // and only the final transpose-out touches train/valid.
    TransformScratch local;
    TransformScratch& work = scratch != nullptr ? *scratch : local;
    if (ChooseWorkingLayout(spec, train.rows()) ==
        Matrix::Layout::kColMajor) {
      work.stage_train.AssignWithLayout(train, Matrix::Layout::kColMajor);
      work.stage_valid.AssignWithLayout(valid, Matrix::Layout::kColMajor);
      for (const PreprocessorConfig& config : spec.steps) {
        std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
        step->Fit(work.stage_train);
        step->TransformInPlace(work.stage_train);
        step->TransformInPlace(work.stage_valid);
      }
      work.train.AssignWithLayout(work.stage_train,
                                  Matrix::Layout::kRowMajor);
      work.valid.AssignWithLayout(work.stage_valid,
                                  Matrix::Layout::kRowMajor);
    } else {
      work.train = train;
      work.valid = valid;
      for (const PreprocessorConfig& config : spec.steps) {
        std::unique_ptr<Preprocessor> step = MakePreprocessor(config);
        step->Fit(work.train);
        step->TransformInPlace(work.train);
        step->TransformInPlace(work.valid);
      }
    }
    Status status = CheckTransformed(spec, work.train, work.valid);
    if (!status.ok()) return status;
    if (scratch != nullptr) {
      return SharedTransformedPair{NonOwningView(scratch->train),
                                   NonOwningView(scratch->valid)};
    }
    return SharedTransformedPair{
        std::make_shared<const Matrix>(std::move(local.train)),
        std::make_shared<const Matrix>(std::move(local.valid))};
  }

  // Longest cached prefix, probed from the full pipeline downward so a
  // repeat evaluation skips fitting entirely — a full hit returns the
  // cached matrices themselves, copying nothing.
  size_t fitted = 0;
  CachedTransforms cached;
  for (size_t length = spec.size(); length >= 1; --length) {
    cached = cache->Get(PrefixCacheKey(data_key, spec, length));
    if (cached) {
      fitted = length;
      break;
    }
  }
  SharedTransformedPair current;
  if (cached) {
    current.train = std::move(cached.train);
    current.valid = std::move(cached.valid);
  } else {
    current.train = NonOwningView(train);
    current.valid = NonOwningView(valid);
  }
  // Continue fitting exactly where the cached prefix left off. Each new
  // step costs one copy of the (immutable) previous prefix, transformed in
  // place; the result doubles as the cache entry, so the old copy-into-
  // cache and copy-out-of-cache both disappear. Intermediate matrices are
  // cached unchecked — the uncached path also fits through non-finite
  // intermediates, so reuse stays bit-identical.
  for (size_t i = fitted; i < spec.size(); ++i) {
    std::unique_ptr<Preprocessor> step = MakePreprocessor(spec.steps[i]);
    step->Fit(*current.train);
    Matrix next_train = *current.train;
    step->TransformInPlace(next_train);
    Matrix next_valid = *current.valid;
    step->TransformInPlace(next_valid);
    current.train = std::make_shared<const Matrix>(std::move(next_train));
    current.valid = std::make_shared<const Matrix>(std::move(next_valid));
    cache->Put(PrefixCacheKey(data_key, spec, i + 1), current.train,
               current.valid);
  }
  Status status = CheckTransformed(spec, *current.train, *current.valid);
  if (!status.ok()) return status;
  return current;
}

}  // namespace autofp
