#ifndef AUTOFP_PREPROCESS_MINMAX_SCALER_H_
#define AUTOFP_PREPROCESS_MINMAX_SCALER_H_

#include <memory>
#include <vector>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Rescales each feature to [0, 1] using the min/max seen at fit time:
/// x -> (x - min) / (max - min). Constant columns map to 0 (scale = 1),
/// matching scikit-learn's handling of zero ranges.
class MinMaxScaler : public Preprocessor {
 public:
  explicit MinMaxScaler(const PreprocessorConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kMinMaxScaler);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override;
  /// Incremental-refit hook (see src/stream/): installs streamed per-column
  /// minima/maxima. Zero ranges get the Fit guard (range = 1). Leaves the
  /// scaler fitted.
  void FitFromRanges(const std::vector<double>& mins,
                     const std::vector<double>& maxs);
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<MinMaxScaler>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  PreprocessorConfig config_;
  std::vector<double> mins_;
  std::vector<double> ranges_;  ///< max - min, or 1 when max == min.
  bool fitted_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_MINMAX_SCALER_H_
