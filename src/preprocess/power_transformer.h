#ifndef AUTOFP_PREPROCESS_POWER_TRANSFORMER_H_
#define AUTOFP_PREPROCESS_POWER_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Yeo-Johnson power transform (Equation 1 in the paper). For each feature
/// the exponent lambda is chosen at fit time by maximizing the Yeo-Johnson
/// log-likelihood (golden-section search), then, if `standardize` (the
/// scikit-learn default), the transformed feature is shifted/scaled to zero
/// mean and unit variance using training statistics.
class PowerTransformer : public Preprocessor {
 public:
  explicit PowerTransformer(const PreprocessorConfig& config)
      : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kPowerTransformer);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override;
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<PowerTransformer>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  const std::vector<double>& lambdas() const { return lambdas_; }

  /// The Yeo-Johnson transform of a single value (exposed for tests).
  static double YeoJohnson(double x, double lambda);

  /// Log-likelihood of lambda for a feature column (exposed for tests).
  static double LogLikelihood(const std::vector<double>& column,
                              double lambda);

 private:
  PreprocessorConfig config_;
  std::vector<double> lambdas_;
  std::vector<double> means_;    ///< post-transform means (standardize).
  std::vector<double> stddevs_;  ///< post-transform stddevs (standardize).
  bool fitted_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_POWER_TRANSFORMER_H_
