#ifndef AUTOFP_PREPROCESS_PIPELINE_H_
#define AUTOFP_PREPROCESS_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "preprocess/preprocessor.h"
#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// An (unfitted) feature-preprocessing pipeline: an ordered sequence of
/// preprocessor configurations (Definition 2 in the paper). The empty
/// pipeline is the identity (the paper's "no-FP" baseline).
struct PipelineSpec {
  std::vector<PreprocessorConfig> steps;

  size_t size() const { return steps.size(); }
  bool empty() const { return steps.empty(); }

  /// "StandardScaler -> Binarizer"-style description; "<no-FP>" if empty.
  std::string ToString() const;

  bool operator==(const PipelineSpec& other) const {
    return steps == other.steps;
  }

  /// Stable string key for memoization / dedup.
  std::string Key() const { return ToString(); }

  /// Builds a spec from default-parameter preprocessor kinds.
  static PipelineSpec FromKinds(const std::vector<PreprocessorKind>& kinds);
};

/// A pipeline whose preprocessors have been fitted sequentially on training
/// data: step i is fitted on the output of steps 0..i-1 over the training
/// features, exactly as a scikit-learn Pipeline would.
class FittedPipeline {
 public:
  /// Fits `spec` on `train` and returns the fitted chain.
  static FittedPipeline Fit(const PipelineSpec& spec, const Matrix& train);

  /// Reassembles a fitted chain from already-fitted steps (the artifact
  /// loader's path — see src/serve/artifact.h). `steps[i]` must be the
  /// fitted preprocessor of `spec.steps[i]`.
  static FittedPipeline FromFittedSteps(
      PipelineSpec spec, std::vector<std::unique_ptr<Preprocessor>> steps);

  /// Applies the fitted chain to arbitrary data with matching column count.
  Matrix Transform(const Matrix& data) const;

  /// Applies the fitted chain to `data` in place: every step is
  /// shape-preserving, so the whole chain runs through one buffer with no
  /// per-stage temporaries.
  void TransformInPlace(Matrix& data) const;

  /// Transform into a caller-provided scratch buffer: copies `data` into
  /// `*scratch` (reusing its allocation) and applies the chain in place.
  /// The result lives in `*scratch`. Passing `scratch == &data` skips the
  /// copy and transforms the caller's matrix directly; any other overlap
  /// is undefined.
  void TransformInto(const Matrix& data, Matrix* scratch) const;

  const PipelineSpec& spec() const { return spec_; }

  /// The fitted steps, in application order (size() == spec().size()).
  const std::vector<std::unique_ptr<Preprocessor>>& steps() const {
    return fitted_steps_;
  }

 private:
  PipelineSpec spec_;
  std::vector<std::unique_ptr<Preprocessor>> fitted_steps_;
};

/// Convenience: fits on `train`, returns transformed copies of `train` and
/// `valid` (the evaluation path of Algorithm 1 Step 4).
struct TransformedPair {
  Matrix train;
  Matrix valid;
};
TransformedPair FitTransformPair(const PipelineSpec& spec, const Matrix& train,
                                 const Matrix& valid);

/// Status-carrying variant of FitTransformPair: instead of silently
/// propagating broken output into model training, it reports
///  - OutOfRange  when the transformed train/valid matrices contain
///    NaN/Inf values (non-finite output), and
///  - InvalidArgument when the transformed training matrix is degenerate
///    (empty, or every entry identical — the transform destroyed all
///    information the downstream model could use).
/// The empty spec (no-FP) passes the inputs through; only the non-finite
/// check applies to it (raw features are not the pipeline's fault).
Result<TransformedPair> CheckedFitTransformPair(const PipelineSpec& spec,
                                                const Matrix& train,
                                                const Matrix& valid);

class TransformCache;  // preprocess/transform_cache.h

/// A transformed (train, valid) pair handed out without copying: the
/// matrices are immutable and may be shared with the transform cache, with
/// other threads, or (see the aliasing notes on
/// CheckedFitTransformPairCached) merely alias a caller-owned buffer.
/// Consumers must treat them as read-only.
struct SharedTransformedPair {
  std::shared_ptr<const Matrix> train;
  std::shared_ptr<const Matrix> valid;
};

/// Reusable working buffers for the uncached fit/transform path. One per
/// worker thread (see core/parallel_evaluator.h): after the first
/// evaluation the buffers have seen their largest shape and the steady
/// state allocates nothing. The stage_* buffers hold the column-major
/// working copies when the data plane picks the columnar layout (see
/// ChooseWorkingLayout); train/valid always end up row-major, which is
/// what the models consume.
struct TransformScratch {
  Matrix train;
  Matrix valid;
  Matrix stage_train;
  Matrix stage_valid;
};

/// The data plane's layout policy: fit/transform chains stage a
/// column-major working copy when the pipeline does per-column work over
/// enough rows to amortize the two transposes; small inputs and the
/// empty pipeline stay row-major. Outputs are row-major either way, and
/// bit-identical either way (the kernels' exactness contract).
Matrix::Layout ChooseWorkingLayout(const PipelineSpec& spec, size_t rows);

/// CheckedFitTransformPair with prefix memoization: reuses the longest
/// cached fitted prefix of `spec` and caches every newly computed prefix,
/// so evaluating "A -> B -> C" after "A -> B" only fits C. `data_key`
/// must uniquely identify the (train, valid) matrices the prefixes are
/// fitted on (e.g. the subsample identity); results are bit-identical to
/// the uncached path.
///
/// Zero-copy contract: the returned matrices are shared immutable
/// references — cache hits hand out the cached entries themselves, the
/// empty spec aliases `train`/`valid`, and on the uncached path (`cache`
/// null) with a non-null `scratch` the result aliases the scratch
/// buffers. Aliased results are only valid while the aliased storage is
/// (until the next call reusing `scratch`, or until `train`/`valid` are
/// destroyed); callers that need the data to outlive that must copy.
Result<SharedTransformedPair> CheckedFitTransformPairCached(
    const PipelineSpec& spec, const Matrix& train, const Matrix& valid,
    TransformCache* cache, const std::string& data_key,
    TransformScratch* scratch = nullptr);

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_PIPELINE_H_
