#ifndef AUTOFP_PREPROCESS_MAXABS_SCALER_H_
#define AUTOFP_PREPROCESS_MAXABS_SCALER_H_

#include <memory>
#include <vector>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Scales each feature by its maximum absolute value seen at fit time, so
/// training values land in [-1, 1]. Columns that are all-zero are left
/// unscaled (scale = 1), matching scikit-learn.
class MaxAbsScaler : public Preprocessor {
 public:
  explicit MaxAbsScaler(const PreprocessorConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kMaxAbsScaler);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override;
  /// Incremental-refit hook (see src/stream/): installs streamed per-column
  /// max-absolute-value scales. All-zero columns get the Fit guard
  /// (scale = 1). Leaves the scaler fitted.
  void FitFromScales(const std::vector<double>& max_abs);
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<MaxAbsScaler>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  const std::vector<double>& scales() const { return scales_; }

 private:
  PreprocessorConfig config_;
  std::vector<double> scales_;
  bool fitted_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_MAXABS_SCALER_H_
