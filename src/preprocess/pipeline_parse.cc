#include "preprocess/pipeline_parse.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace autofp {

namespace {

std::string Trim(const std::string& text) {
  size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitOn(const std::string& text,
                                 const std::string& separator) {
  std::vector<std::string> parts;
  size_t position = 0;
  while (true) {
    size_t next = text.find(separator, position);
    if (next == std::string::npos) {
      parts.push_back(text.substr(position));
      return parts;
    }
    parts.push_back(text.substr(position, next - position));
    position = next + separator.size();
  }
}

Result<PreprocessorKind> ParseKind(const std::string& name) {
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    if (KindName(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown preprocessor '" + name + "'");
}

Status ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "True") {
    *out = true;
    return Status::OK();
  }
  if (value == "false" || value == "False") {
    *out = false;
    return Status::OK();
  }
  return Status::InvalidArgument("expected true/false, got '" + value + "'");
}

Status ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected a number, got '" + value + "'");
  }
  return Status::OK();
}

Status ApplyParameter(const std::string& key, const std::string& value,
                      PreprocessorConfig* config) {
  switch (config->kind) {
    case PreprocessorKind::kBinarizer:
      if (key == "threshold") return ParseDouble(value, &config->threshold);
      break;
    case PreprocessorKind::kNormalizer:
      if (key == "norm") {
        if (value == "l1") {
          config->norm = NormKind::kL1;
        } else if (value == "l2") {
          config->norm = NormKind::kL2;
        } else if (value == "max") {
          config->norm = NormKind::kMax;
        } else {
          return Status::InvalidArgument("unknown norm '" + value + "'");
        }
        return Status::OK();
      }
      break;
    case PreprocessorKind::kStandardScaler:
      if (key == "with_mean") return ParseBool(value, &config->with_mean);
      break;
    case PreprocessorKind::kPowerTransformer:
      if (key == "standardize") return ParseBool(value, &config->standardize);
      break;
    case PreprocessorKind::kQuantileTransformer:
      if (key == "n_quantiles") {
        double parsed = 0.0;
        Status status = ParseDouble(value, &parsed);
        if (!status.ok()) return status;
        if (parsed < 2.0) {
          return Status::InvalidArgument("n_quantiles must be >= 2");
        }
        config->n_quantiles = static_cast<int>(parsed);
        return Status::OK();
      }
      if (key == "output_distribution") {
        if (value == "uniform") {
          config->output_distribution = OutputDistribution::kUniform;
        } else if (value == "normal") {
          config->output_distribution = OutputDistribution::kNormal;
        } else {
          return Status::InvalidArgument("unknown output_distribution '" +
                                         value + "'");
        }
        return Status::OK();
      }
      break;
    default:
      break;
  }
  return Status::InvalidArgument("parameter '" + key +
                                 "' is not valid for " +
                                 KindName(config->kind));
}

Result<PreprocessorConfig> ParseStep(const std::string& raw) {
  std::string step = Trim(raw);
  if (step.empty()) {
    return Status::InvalidArgument("empty pipeline step");
  }
  size_t paren = step.find('(');
  std::string name = Trim(paren == std::string::npos
                              ? step
                              : step.substr(0, paren));
  Result<PreprocessorKind> kind = ParseKind(name);
  if (!kind.ok()) return kind.status();
  PreprocessorConfig config = PreprocessorConfig::Defaults(kind.value());
  if (paren == std::string::npos) return config;
  if (step.back() != ')') {
    return Status::InvalidArgument("missing ')' in '" + step + "'");
  }
  std::string params = step.substr(paren + 1, step.size() - paren - 2);
  if (Trim(params).empty()) return config;
  for (const std::string& assignment : SplitOn(params, ",")) {
    size_t equals = assignment.find('=');
    if (equals == std::string::npos) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     Trim(assignment) + "'");
    }
    std::string key = Trim(assignment.substr(0, equals));
    std::string value = Trim(assignment.substr(equals + 1));
    Status status = ApplyParameter(key, value, &config);
    if (!status.ok()) return status;
  }
  return config;
}

}  // namespace

Result<PipelineSpec> ParsePipelineSpec(const std::string& text) {
  PipelineSpec pipeline;
  std::string trimmed = Trim(text);
  if (trimmed.empty() || trimmed == "<no-FP>") return pipeline;
  for (const std::string& raw_step : SplitOn(trimmed, "->")) {
    Result<PreprocessorConfig> step = ParseStep(raw_step);
    if (!step.ok()) return step.status();
    pipeline.steps.push_back(step.value());
  }
  return pipeline;
}

}  // namespace autofp
