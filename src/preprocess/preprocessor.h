#ifndef AUTOFP_PREPROCESS_PREPROCESSOR_H_
#define AUTOFP_PREPROCESS_PREPROCESSOR_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// The seven feature preprocessors studied by the paper (Section 2.1),
/// in a fixed canonical order used by pipeline encodings everywhere.
enum class PreprocessorKind : int {
  kBinarizer = 0,
  kMaxAbsScaler = 1,
  kMinMaxScaler = 2,
  kNormalizer = 3,
  kPowerTransformer = 4,
  kQuantileTransformer = 5,
  kStandardScaler = 6,
};

/// Number of distinct preprocessor kinds.
inline constexpr int kNumPreprocessorKinds = 7;

/// All kinds in canonical order.
const std::vector<PreprocessorKind>& AllPreprocessorKinds();

/// Human-readable name ("StandardScaler" etc.).
std::string KindName(PreprocessorKind kind);

/// Row-normalization norms for Normalizer.
enum class NormKind : int { kL1 = 0, kL2 = 1, kMax = 2 };

/// Output distribution for QuantileTransformer.
enum class OutputDistribution : int { kUniform = 0, kNormal = 1 };

/// A preprocessor plus its (possibly non-default) parameters. This is the
/// unit the extended search spaces of Section 6 enumerate. Fields are only
/// meaningful for the kinds that use them; defaults match scikit-learn.
struct PreprocessorConfig {
  PreprocessorKind kind = PreprocessorKind::kStandardScaler;
  double threshold = 0.0;        ///< Binarizer.
  NormKind norm = NormKind::kL2; ///< Normalizer.
  bool with_mean = true;         ///< StandardScaler.
  bool standardize = true;       ///< PowerTransformer.
  int n_quantiles = 1000;        ///< QuantileTransformer.
  OutputDistribution output_distribution =
      OutputDistribution::kUniform;  ///< QuantileTransformer.

  /// Default-parameter config for a kind.
  static PreprocessorConfig Defaults(PreprocessorKind kind) {
    PreprocessorConfig config;
    config.kind = kind;
    return config;
  }

  /// "Binarizer(threshold=0.2)"-style description. Default-parameter
  /// configs print as just the kind name.
  std::string ToString() const;

  bool operator==(const PreprocessorConfig& other) const;
};

/// A fitted or fittable feature preprocessor: maps a feature matrix to a
/// transformed feature matrix (Definition 1 in the paper). Fit() learns any
/// data-dependent state from training features; Transform() applies it.
class Preprocessor {
 public:
  virtual ~Preprocessor() = default;

  /// The configuration this instance was built from.
  virtual const PreprocessorConfig& config() const = 0;

  /// Learns column statistics from `data`. Must be called before
  /// Transform() (stateless preprocessors accept it as a no-op).
  virtual void Fit(const Matrix& data) = 0;

  /// Applies the learned transformation to `data` in place. All seven
  /// preprocessors are shape-preserving, so the matrix keeps its
  /// dimensions; only the element values change. `data` must have the
  /// same column count as the fit data. This is the allocation-free hot
  /// path (see DESIGN.md "Data plane and memory").
  virtual void TransformInPlace(Matrix& data) const = 0;

  /// Copying form of TransformInPlace: applies the learned transformation
  /// to a copy of `data` and returns it. Call sites that own a reusable
  /// buffer should prefer TransformInPlace.
  Matrix Transform(const Matrix& data) const {
    Matrix out = data;
    TransformInPlace(out);
    return out;
  }

  /// Fresh unfitted copy with the same configuration.
  virtual std::unique_ptr<Preprocessor> Clone() const = 0;

  /// Serializes the fitted state (learned column statistics — NOT the
  /// config, which travels separately as the parseable pipeline string)
  /// to `out`. Must be called on a fitted instance; stateless
  /// preprocessors write nothing. The encoding is the host-endian
  /// field-by-field format of util/serialize.h, framed and CRC-protected
  /// by the artifact layer (src/serve/artifact.h).
  virtual void SaveState(std::ostream& out) const = 0;

  /// Restores the state written by SaveState on an instance built from
  /// the same configuration, leaving it fitted. Returns InvalidArgument
  /// on malformed or truncated bytes — never crashes on bad input.
  virtual Status LoadState(std::istream& in) = 0;

  std::string name() const { return KindName(config().kind); }

  Matrix FitTransform(const Matrix& data) {
    Fit(data);
    return Transform(data);
  }
};

/// Instantiates the preprocessor described by `config`.
std::unique_ptr<Preprocessor> MakePreprocessor(const PreprocessorConfig& config);

/// Convenience: default-parameter instance of a kind.
std::unique_ptr<Preprocessor> MakePreprocessor(PreprocessorKind kind);

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_PREPROCESSOR_H_
