#include "preprocess/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "preprocess/power_transformer.h"
#include "util/aligned.h"
#include "util/simd.h"
#include "util/stats.h"

namespace autofp {
namespace kernels {

namespace {

using simd::VecD;
using simd::VecIdx;
using Layout = Matrix::Layout;

constexpr size_t kLanes = simd::kDoubleLanes;

bool SimdOn() { return kLanes > 1 && !simd::ForceScalarEnabled(); }

/// Mirrors power_transformer.cc's clamp: NaN -> 0, else clip to ±1e100.
double ClampFinite(double value) {
  if (std::isnan(value)) return 0.0;
  return std::clamp(value, -1e100, 1e100);
}

/// Piecewise-linear empirical CDF of one value against a sorted table,
/// exactly as the pre-kernel-layer QuantileTransformer computed it (the
/// branchless UpperBoundIndex returns the same index std::upper_bound
/// did).
double CdfScalar(double value, const double* refs, size_t n, double denom) {
  if (value <= refs[0]) return 0.0;
  if (value >= refs[n - 1]) return 1.0;
  const size_t hi = simd::UpperBoundIndex(refs, n, value);
  const size_t lo = hi - 1;
  const double gap = refs[hi] - refs[lo];
  const double fraction = gap > 0.0 ? (value - refs[lo]) / gap : 0.0;
  return (static_cast<double>(lo) + fraction) / denom;
}

/// Clip CDF values away from {0,1} before the normal inverse, matching
/// scikit-learn's bounded output (~±5.2 sigma).
constexpr double kCdfEps = 1e-7;

}  // namespace

void Binarize(Matrix& data, double threshold) {
  double* p = data.MutableRaw();
  const size_t n = data.size();
  size_t i = 0;
  if (SimdOn()) {
    const VecD vt = VecD::Set1(threshold);
    const VecD one = VecD::Set1(1.0);
    const VecD zero = VecD::Zero();
    for (; i + kLanes <= n; i += kLanes) {
      const VecD v = VecD::Load(p + i);
      VecD::Select(VecD::Gt(v, vt), one, zero).Store(p + i);
    }
  }
  for (; i < n; ++i) p[i] = p[i] > threshold ? 1.0 : 0.0;
}

void ScaleColumns(Matrix& data, const std::vector<double>& scales) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  if (SimdOn() && data.layout() == Layout::kRowMajor) {
    for (size_t r = 0; r < rows; ++r) {
      double* row = data.RowPtr(r);
      size_t c = 0;
      for (; c + kLanes <= cols; c += kLanes) {
        (VecD::Load(row + c) / VecD::Load(scales.data() + c)).Store(row + c);
      }
      for (; c < cols; ++c) row[c] /= scales[c];
    }
    return;
  }
  if (SimdOn() && data.layout() == Layout::kColMajor) {
    for (size_t c = 0; c < cols; ++c) {
      const VecD vs = VecD::Set1(scales[c]);
      double* p = data.ColPtr(c);
      size_t r = 0;
      for (; r + kLanes <= rows; r += kLanes) {
        (VecD::Load(p + r) / vs).Store(p + r);
      }
      for (; r < rows; ++r) p[r] /= scales[c];
    }
    return;
  }
  for (size_t c = 0; c < cols; ++c) {
    const double scale = scales[c];
    const Matrix::ColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) col[r] /= scale;
  }
}

void ShiftScaleColumns(Matrix& data, const std::vector<double>& shifts,
                       const std::vector<double>& scales) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  if (SimdOn() && data.layout() == Layout::kRowMajor) {
    for (size_t r = 0; r < rows; ++r) {
      double* row = data.RowPtr(r);
      size_t c = 0;
      for (; c + kLanes <= cols; c += kLanes) {
        ((VecD::Load(row + c) - VecD::Load(shifts.data() + c)) /
         VecD::Load(scales.data() + c))
            .Store(row + c);
      }
      for (; c < cols; ++c) row[c] = (row[c] - shifts[c]) / scales[c];
    }
    return;
  }
  if (SimdOn() && data.layout() == Layout::kColMajor) {
    for (size_t c = 0; c < cols; ++c) {
      const VecD vm = VecD::Set1(shifts[c]);
      const VecD vs = VecD::Set1(scales[c]);
      double* p = data.ColPtr(c);
      size_t r = 0;
      for (; r + kLanes <= rows; r += kLanes) {
        ((VecD::Load(p + r) - vm) / vs).Store(p + r);
      }
      for (; r < rows; ++r) p[r] = (p[r] - shifts[c]) / scales[c];
    }
    return;
  }
  for (size_t c = 0; c < cols; ++c) {
    const double shift = shifts[c];
    const double scale = scales[c];
    const Matrix::ColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) col[r] = (col[r] - shift) / scale;
  }
}

void NormalizeRows(Matrix& data, NormKind kind) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  if (data.layout() == Layout::kRowMajor) {
    // The norm is a per-row reduction: it stays scalar (vectorizing it
    // would reassociate and break exactness); the divide is elementwise
    // and vectorizes.
    const bool simd_on = SimdOn();
    for (size_t r = 0; r < rows; ++r) {
      double* row = data.RowPtr(r);
      double norm = 0.0;
      switch (kind) {
        case NormKind::kL1:
          for (size_t c = 0; c < cols; ++c) norm += std::abs(row[c]);
          break;
        case NormKind::kL2:
          for (size_t c = 0; c < cols; ++c) norm += row[c] * row[c];
          norm = std::sqrt(norm);
          break;
        case NormKind::kMax:
          for (size_t c = 0; c < cols; ++c) {
            const double abs_value = std::abs(row[c]);
            if (abs_value > norm) norm = abs_value;
          }
          break;
      }
      if (norm == 0.0) norm = 1.0;
      size_t c = 0;
      if (simd_on) {
        const VecD vn = VecD::Set1(norm);
        for (; c + kLanes <= cols; c += kLanes) {
          (VecD::Load(row + c) / vn).Store(row + c);
        }
      }
      for (; c < cols; ++c) row[c] /= norm;
    }
    return;
  }
  // Column-major: accumulate all row norms in one pass per column,
  // visiting columns in ascending order so each row's reduction happens
  // in exactly the order the row-major reference uses — which is what
  // keeps this path bit-identical. Vector lanes span rows, which are
  // independent reductions, so vectorizing is exact too.
  thread_local AlignedVector<double> norms;
  norms.assign(rows, 0.0);
  double* acc = norms.data();
  const bool simd_on = SimdOn();
  for (size_t c = 0; c < cols; ++c) {
    const double* p = data.ColPtr(c);
    size_t r = 0;
    if (simd_on) {
      for (; r + kLanes <= rows; r += kLanes) {
        const VecD x = VecD::Load(p + r);
        const VecD a = VecD::Load(acc + r);
        switch (kind) {
          case NormKind::kL1:
            (a + x.Abs()).Store(acc + r);
            break;
          case NormKind::kL2:
            (a + x * x).Store(acc + r);
            break;
          case NormKind::kMax: {
            const VecD abs_x = x.Abs();
            VecD::Select(VecD::Gt(abs_x, a), abs_x, a).Store(acc + r);
            break;
          }
        }
      }
    }
    for (; r < rows; ++r) {
      const double x = p[r];
      switch (kind) {
        case NormKind::kL1:
          acc[r] += std::abs(x);
          break;
        case NormKind::kL2:
          acc[r] += x * x;
          break;
        case NormKind::kMax: {
          const double abs_x = std::abs(x);
          if (abs_x > acc[r]) acc[r] = abs_x;
          break;
        }
      }
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    if (kind == NormKind::kL2) acc[r] = std::sqrt(acc[r]);
    if (acc[r] == 0.0) acc[r] = 1.0;
  }
  for (size_t c = 0; c < cols; ++c) {
    double* p = data.ColPtr(c);
    size_t r = 0;
    if (simd_on) {
      for (; r + kLanes <= rows; r += kLanes) {
        (VecD::Load(p + r) / VecD::Load(acc + r)).Store(p + r);
      }
    }
    for (; r < rows; ++r) p[r] /= acc[r];
  }
}

void PowerTransformColumns(Matrix& data, const std::vector<double>& lambdas,
                           const std::vector<double>& means,
                           const std::vector<double>& stddevs,
                           bool standardize) {
  // Yeo-Johnson is a libm transcendental (log1p/expm1) with no vector
  // form under the exactness contract; this kernel's win is layout
  // awareness — the column pass is contiguous when the matrix is
  // column-major instead of cols-strided.
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  for (size_t c = 0; c < cols; ++c) {
    const double lambda = lambdas[c];
    const double mean = means[c];
    const double stddev = stddevs[c];
    const Matrix::ColumnSpan col = data.Col(c);
    if (standardize) {
      for (size_t r = 0; r < rows; ++r) {
        col[r] = ClampFinite(
            (PowerTransformer::YeoJohnson(col[r], lambda) - mean) / stddev);
      }
    } else {
      for (size_t r = 0; r < rows; ++r) {
        col[r] = ClampFinite(PowerTransformer::YeoJohnson(col[r], lambda));
      }
    }
  }
}

void QuantileTransformColumns(
    Matrix& data, const std::vector<std::vector<double>>& references,
    bool to_normal) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  if (SimdOn() && data.layout() == Layout::kColMajor) {
    for (size_t c = 0; c < cols; ++c) {
      const std::vector<double>& refs = references[c];
      const size_t n = refs.size();
      const double denom = static_cast<double>(n - 1);
      double* p = data.ColPtr(c);
      const VecD v_lo_ref = VecD::Set1(refs.front());
      const VecD v_hi_ref = VecD::Set1(refs.back());
      const VecD v_denom = VecD::Set1(denom);
      const VecD zero = VecD::Zero();
      const VecD one = VecD::Set1(1.0);
      const VecD half = VecD::Set1(0.5);
      const VecD n_minus_half = VecD::Set1(static_cast<double>(n) - 0.5);
      const VecD v_eps = VecD::Set1(kCdfEps);
      const VecD v_one_m_eps = VecD::Set1(1.0 - kCdfEps);
      size_t r = 0;
      for (; r + kLanes <= rows; r += kLanes) {
        const VecD v = VecD::Load(p + r);
        const auto below = VecD::Le(v, v_lo_ref);
        const auto above = VecD::Ge(v, v_hi_ref);
        // Lane-parallel upper_bound; out-of-range lanes then get their
        // index clamped into [1, n-1] so the gathers stay in bounds (the
        // Selects below overwrite those lanes with 0 / 1 anyway).
        VecIdx hi = simd::UpperBoundIndexV(refs.data(), n, v);
        const VecD hi_d = simd::ToDouble(hi);
        hi = hi.AddWhere(VecD::Le(hi_d, half), VecIdx::Set1(1));
        hi = hi.AddWhere(VecD::Ge(hi_d, n_minus_half), VecIdx::Set1(-1));
        const VecIdx lo = hi + VecIdx::Set1(-1);
        const VecD ref_hi = simd::Gather(refs.data(), hi);
        const VecD ref_lo = simd::Gather(refs.data(), lo);
        const VecD gap = ref_hi - ref_lo;
        const VecD fraction =
            VecD::Select(VecD::Gt(gap, zero), (v - ref_lo) / gap, zero);
        VecD cdf = (simd::ToDouble(lo) + fraction) / v_denom;
        cdf = VecD::Select(below, zero, cdf);
        cdf = VecD::Select(above, one, cdf);
        if (to_normal) cdf = VecD::Min(VecD::Max(cdf, v_eps), v_one_m_eps);
        cdf.Store(p + r);
      }
      for (; r < rows; ++r) {
        double cdf = CdfScalar(p[r], refs.data(), n, denom);
        if (to_normal) cdf = std::clamp(cdf, kCdfEps, 1.0 - kCdfEps);
        p[r] = cdf;
      }
      if (to_normal) {
        for (size_t i = 0; i < rows; ++i) p[i] = NormalInverseCdf(p[i]);
      }
    }
    return;
  }
  for (size_t c = 0; c < cols; ++c) {
    const std::vector<double>& refs = references[c];
    const size_t n = refs.size();
    const double denom = static_cast<double>(n - 1);
    const Matrix::ColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) {
      double cdf = CdfScalar(col[r], refs.data(), n, denom);
      if (to_normal) {
        cdf = std::clamp(cdf, kCdfEps, 1.0 - kCdfEps);
        col[r] = NormalInverseCdf(cdf);
      } else {
        col[r] = cdf;
      }
    }
  }
}

void ColumnAbsMax(const Matrix& data, std::vector<double>* out) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  out->assign(cols, 0.0);
  double* acc = out->data();
  if (SimdOn() && data.layout() == Layout::kRowMajor) {
    for (size_t r = 0; r < rows; ++r) {
      const double* row = data.RowPtr(r);
      size_t c = 0;
      for (; c + kLanes <= cols; c += kLanes) {
        const VecD abs_x = VecD::Load(row + c).Abs();
        const VecD a = VecD::Load(acc + c);
        VecD::Select(VecD::Gt(abs_x, a), abs_x, a).Store(acc + c);
      }
      for (; c < cols; ++c) {
        const double abs_x = std::abs(row[c]);
        if (abs_x > acc[c]) acc[c] = abs_x;
      }
    }
    return;
  }
  for (size_t c = 0; c < cols; ++c) {
    const Matrix::ConstColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) {
      const double abs_x = std::abs(col[r]);
      if (abs_x > acc[c]) acc[c] = abs_x;
    }
  }
}

void ColumnMinMax(const Matrix& data, std::vector<double>* mins,
                  std::vector<double>* maxs) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  mins->assign(cols, std::numeric_limits<double>::infinity());
  maxs->assign(cols, -std::numeric_limits<double>::infinity());
  double* lo = mins->data();
  double* hi = maxs->data();
  if (SimdOn() && data.layout() == Layout::kRowMajor) {
    for (size_t r = 0; r < rows; ++r) {
      const double* row = data.RowPtr(r);
      size_t c = 0;
      for (; c + kLanes <= cols; c += kLanes) {
        const VecD x = VecD::Load(row + c);
        const VecD a = VecD::Load(lo + c);
        const VecD b = VecD::Load(hi + c);
        // Select on strict comparison (not Min/Max) so ties keep the
        // incumbent, exactly like the scalar update — the two differ in
        // which signed zero survives.
        VecD::Select(VecD::Gt(a, x), x, a).Store(lo + c);
        VecD::Select(VecD::Gt(x, b), x, b).Store(hi + c);
      }
      for (; c < cols; ++c) {
        if (row[c] < lo[c]) lo[c] = row[c];
        if (row[c] > hi[c]) hi[c] = row[c];
      }
    }
    return;
  }
  for (size_t c = 0; c < cols; ++c) {
    const Matrix::ConstColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) {
      if (col[r] < lo[c]) lo[c] = col[r];
      if (col[r] > hi[c]) hi[c] = col[r];
    }
  }
}

void ColumnSums(const Matrix& data, std::vector<double>* out) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  out->assign(cols, 0.0);
  double* acc = out->data();
  if (SimdOn() && data.layout() == Layout::kRowMajor) {
    for (size_t r = 0; r < rows; ++r) {
      const double* row = data.RowPtr(r);
      size_t c = 0;
      for (; c + kLanes <= cols; c += kLanes) {
        (VecD::Load(acc + c) + VecD::Load(row + c)).Store(acc + c);
      }
      for (; c < cols; ++c) acc[c] += row[c];
    }
    return;
  }
  // Column passes accumulate in the same row-ascending order, so the
  // result is bit-identical to the row-major reference.
  for (size_t c = 0; c < cols; ++c) {
    const Matrix::ConstColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) acc[c] += col[r];
  }
}

void ColumnSquaredDevSums(const Matrix& data,
                          const std::vector<double>& means,
                          std::vector<double>* out) {
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  out->assign(cols, 0.0);
  double* acc = out->data();
  if (SimdOn() && data.layout() == Layout::kRowMajor) {
    for (size_t r = 0; r < rows; ++r) {
      const double* row = data.RowPtr(r);
      size_t c = 0;
      for (; c + kLanes <= cols; c += kLanes) {
        const VecD d = VecD::Load(row + c) - VecD::Load(means.data() + c);
        (VecD::Load(acc + c) + d * d).Store(acc + c);
      }
      for (; c < cols; ++c) {
        const double d = row[c] - means[c];
        acc[c] += d * d;
      }
    }
    return;
  }
  for (size_t c = 0; c < cols; ++c) {
    const Matrix::ConstColumnSpan col = data.Col(c);
    for (size_t r = 0; r < rows; ++r) {
      const double d = col[r] - means[c];
      acc[c] += d * d;
    }
  }
}

}  // namespace kernels
}  // namespace autofp
