#ifndef AUTOFP_PREPROCESS_PIPELINE_PARSE_H_
#define AUTOFP_PREPROCESS_PIPELINE_PARSE_H_

#include <string>

#include "preprocess/pipeline.h"
#include "util/status.h"

namespace autofp {

/// Parses the textual pipeline syntax produced by PipelineSpec::ToString():
///
///   "StandardScaler -> Binarizer(threshold=0.2) -> Normalizer(norm=l1)"
///
/// Steps are separated by "->"; parameters are an optional parenthesized
/// key=value list. "<no-FP>" (or an empty/whitespace string) parses to the
/// empty pipeline. Round-trip guarantee:
/// ParsePipelineSpec(spec.ToString()) == spec for every representable spec.
/// Returns InvalidArgument on unknown preprocessor names, unknown keys for
/// a kind, or malformed values.
Result<PipelineSpec> ParsePipelineSpec(const std::string& text);

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_PIPELINE_PARSE_H_
