#ifndef AUTOFP_PREPROCESS_QUANTILE_TRANSFORMER_H_
#define AUTOFP_PREPROCESS_QUANTILE_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Maps each feature through its empirical CDF, producing a uniform(0,1)
/// output (default) or, via the normal inverse CDF, a standard-normal
/// output. `n_quantiles` reference quantiles are estimated at fit time
/// (capped at the number of training rows, as in scikit-learn); transform
/// interpolates linearly between references and clips outside the training
/// range.
class QuantileTransformer : public Preprocessor {
 public:
  explicit QuantileTransformer(const PreprocessorConfig& config)
      : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kQuantileTransformer);
    AUTOFP_CHECK_GE(config.n_quantiles, 2);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override;
  /// Incremental-refit hook (see src/stream/): installs reference quantile
  /// tables produced by streaming quantile sketches, one ascending table
  /// per column (all tables the same size >= 2; non-ascending input is
  /// sorted defensively). Leaves the transformer fitted.
  void FitFromReferences(std::vector<std::vector<double>> references);
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<QuantileTransformer>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  /// Number of reference quantiles actually used after row-count capping.
  int effective_quantiles() const { return effective_quantiles_; }

 private:
  PreprocessorConfig config_;
  int effective_quantiles_ = 0;
  /// references_[c] holds the ascending reference quantiles of column c.
  std::vector<std::vector<double>> references_;
  bool fitted_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_QUANTILE_TRANSFORMER_H_
