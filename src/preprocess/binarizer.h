#ifndef AUTOFP_PREPROCESS_BINARIZER_H_
#define AUTOFP_PREPROCESS_BINARIZER_H_

#include <memory>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Maps each value to 1 if it is strictly greater than `threshold`, else 0
/// (scikit-learn semantics: values <= threshold map to 0). Stateless.
class Binarizer : public Preprocessor {
 public:
  explicit Binarizer(const PreprocessorConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kBinarizer);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override { (void)data; }
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<Binarizer>(config_);
  }
  /// Stateless: nothing to persist beyond the config.
  void SaveState(std::ostream& out) const override { (void)out; }
  Status LoadState(std::istream& in) override {
    (void)in;
    return Status::OK();
  }

 private:
  PreprocessorConfig config_;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_BINARIZER_H_
