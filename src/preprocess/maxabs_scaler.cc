#include "preprocess/maxabs_scaler.h"

#include "util/serialize.h"

#include <cmath>

namespace autofp {

void MaxAbsScaler::Fit(const Matrix& data) {
  scales_.assign(data.cols(), 0.0);
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* row = data.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) {
      double abs_value = std::abs(row[c]);
      if (abs_value > scales_[c]) scales_[c] = abs_value;
    }
  }
  for (double& scale : scales_) {
    if (scale == 0.0) scale = 1.0;
  }
  fitted_ = true;
}

Matrix MaxAbsScaler::Transform(const Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "MaxAbsScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), scales_.size());
  Matrix out(data.rows(), data.cols());
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* in_row = data.RowPtr(r);
    double* out_row = out.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) {
      out_row[c] = in_row[c] / scales_[c];
    }
  }
  return out;
}

void MaxAbsScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, scales_);
}

Status MaxAbsScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &scales_)) {
    return Status::InvalidArgument("MaxAbsScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
