#include "preprocess/maxabs_scaler.h"

#include "preprocess/kernels.h"
#include "util/serialize.h"

#include <cmath>

namespace autofp {

void MaxAbsScaler::Fit(const Matrix& data) {
  kernels::ColumnAbsMax(data, &scales_);
  for (double& scale : scales_) {
    if (scale == 0.0) scale = 1.0;
  }
  fitted_ = true;
}

void MaxAbsScaler::FitFromScales(const std::vector<double>& max_abs) {
  AUTOFP_CHECK_GT(max_abs.size(), 0u);
  scales_ = max_abs;
  for (double& scale : scales_) {
    scale = std::abs(scale);
    if (scale == 0.0) scale = 1.0;
  }
  fitted_ = true;
}

void MaxAbsScaler::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "MaxAbsScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), scales_.size());
  kernels::ScaleColumns(data, scales_);
}

void MaxAbsScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, scales_);
}

Status MaxAbsScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &scales_)) {
    return Status::InvalidArgument("MaxAbsScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
