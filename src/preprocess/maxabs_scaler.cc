#include "preprocess/maxabs_scaler.h"

#include "util/serialize.h"

#include <cmath>

namespace autofp {

void MaxAbsScaler::Fit(const Matrix& data) {
  scales_.assign(data.cols(), 0.0);
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* row = data.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) {
      double abs_value = std::abs(row[c]);
      if (abs_value > scales_[c]) scales_[c] = abs_value;
    }
  }
  for (double& scale : scales_) {
    if (scale == 0.0) scale = 1.0;
  }
  fitted_ = true;
}

void MaxAbsScaler::FitFromScales(const std::vector<double>& max_abs) {
  AUTOFP_CHECK_GT(max_abs.size(), 0u);
  scales_ = max_abs;
  for (double& scale : scales_) {
    scale = std::abs(scale);
    if (scale == 0.0) scale = 1.0;
  }
  fitted_ = true;
}

void MaxAbsScaler::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "MaxAbsScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), scales_.size());
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  // Column-strided: hoist the per-column scale out of the row loop.
  for (size_t c = 0; c < cols; ++c) {
    const double scale = scales_[c];
    double* p = data.data().data() + c;
    for (size_t r = 0; r < rows; ++r, p += cols) {
      *p /= scale;
    }
  }
}

void MaxAbsScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, scales_);
}

Status MaxAbsScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &scales_)) {
    return Status::InvalidArgument("MaxAbsScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
