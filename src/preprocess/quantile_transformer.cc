#include "preprocess/quantile_transformer.h"

#include "preprocess/kernels.h"
#include "util/serialize.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace autofp {

void QuantileTransformer::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  effective_quantiles_ = std::min<int>(config_.n_quantiles,
                                       static_cast<int>(data.rows()));
  effective_quantiles_ = std::max(effective_quantiles_, 2);
  references_.assign(data.cols(), {});
  for (size_t c = 0; c < data.cols(); ++c) {
    std::vector<double> column = data.Column(c);
    std::sort(column.begin(), column.end());
    std::vector<double>& refs = references_[c];
    refs.resize(effective_quantiles_);
    for (int q = 0; q < effective_quantiles_; ++q) {
      double p = static_cast<double>(q) /
                 static_cast<double>(effective_quantiles_ - 1);
      refs[q] = QuantileSorted(column, p);
    }
  }
  fitted_ = true;
}

void QuantileTransformer::FitFromReferences(
    std::vector<std::vector<double>> references) {
  AUTOFP_CHECK_GT(references.size(), 0u);
  const size_t table_size = references[0].size();
  AUTOFP_CHECK_GE(table_size, 2u);
  for (std::vector<double>& table : references) {
    AUTOFP_CHECK_EQ(table.size(), table_size);
    std::sort(table.begin(), table.end());
  }
  references_ = std::move(references);
  effective_quantiles_ = static_cast<int>(table_size);
  fitted_ = true;
}

void QuantileTransformer::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "QuantileTransformer::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), references_.size());
  kernels::QuantileTransformColumns(
      data, references_,
      config_.output_distribution == OutputDistribution::kNormal);
}

void QuantileTransformer::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WritePod<int32_t>(out, effective_quantiles_);
  WritePod<uint64_t>(out, references_.size());
  for (const std::vector<double>& column : references_) {
    WriteVec(out, column);
  }
}

Status QuantileTransformer::LoadState(std::istream& in) {
  int32_t effective = 0;
  uint64_t columns = 0;
  if (!ReadPod(in, &effective) || effective < 2 || !ReadPod(in, &columns) ||
      columns > kMaxSerializedElements) {
    return Status::InvalidArgument("QuantileTransformer: malformed state blob");
  }
  references_.assign(columns, {});
  for (std::vector<double>& column : references_) {
    if (!ReadVec(in, &column)) {
      return Status::InvalidArgument(
          "QuantileTransformer: malformed state blob");
    }
  }
  effective_quantiles_ = effective;
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
