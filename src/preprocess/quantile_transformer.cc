#include "preprocess/quantile_transformer.h"

#include "util/serialize.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace autofp {

void QuantileTransformer::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  effective_quantiles_ = std::min<int>(config_.n_quantiles,
                                       static_cast<int>(data.rows()));
  effective_quantiles_ = std::max(effective_quantiles_, 2);
  references_.assign(data.cols(), {});
  for (size_t c = 0; c < data.cols(); ++c) {
    std::vector<double> column = data.Column(c);
    std::sort(column.begin(), column.end());
    std::vector<double>& refs = references_[c];
    refs.resize(effective_quantiles_);
    for (int q = 0; q < effective_quantiles_; ++q) {
      double p = static_cast<double>(q) /
                 static_cast<double>(effective_quantiles_ - 1);
      refs[q] = QuantileSorted(column, p);
    }
  }
  fitted_ = true;
}

void QuantileTransformer::FitFromReferences(
    std::vector<std::vector<double>> references) {
  AUTOFP_CHECK_GT(references.size(), 0u);
  const size_t table_size = references[0].size();
  AUTOFP_CHECK_GE(table_size, 2u);
  for (std::vector<double>& table : references) {
    AUTOFP_CHECK_EQ(table.size(), table_size);
    std::sort(table.begin(), table.end());
  }
  references_ = std::move(references);
  effective_quantiles_ = static_cast<int>(table_size);
  fitted_ = true;
}

void QuantileTransformer::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "QuantileTransformer::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), references_.size());
  const bool to_normal =
      config_.output_distribution == OutputDistribution::kNormal;
  // Clip CDF values away from {0,1} before the normal inverse, matching
  // scikit-learn's bounded output (~±5.2 sigma).
  const double cdf_eps = 1e-7;
  const size_t rows = data.rows();
  const size_t cols = data.cols();
  const double denom = static_cast<double>(effective_quantiles_ - 1);
  // Column-strided: hoist the per-column reference table (front/back and
  // the search bounds) out of the row loop.
  for (size_t c = 0; c < cols; ++c) {
    const std::vector<double>& refs = references_[c];
    const double lo_ref = refs.front();
    const double hi_ref = refs.back();
    double* p = data.data().data() + c;
    for (size_t r = 0; r < rows; ++r, p += cols) {
      const double value = *p;
      double cdf;
      if (value <= lo_ref) {
        cdf = 0.0;
      } else if (value >= hi_ref) {
        cdf = 1.0;
      } else {
        // Binary search for the bracketing references, then interpolate.
        auto it = std::upper_bound(refs.begin(), refs.end(), value);
        size_t hi = static_cast<size_t>(it - refs.begin());
        size_t lo = hi - 1;
        double gap = refs[hi] - refs[lo];
        double fraction = gap > 0.0 ? (value - refs[lo]) / gap : 0.0;
        cdf = (static_cast<double>(lo) + fraction) / denom;
      }
      if (to_normal) {
        cdf = std::clamp(cdf, cdf_eps, 1.0 - cdf_eps);
        *p = NormalInverseCdf(cdf);
      } else {
        *p = cdf;
      }
    }
  }
}

void QuantileTransformer::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WritePod<int32_t>(out, effective_quantiles_);
  WritePod<uint64_t>(out, references_.size());
  for (const std::vector<double>& column : references_) {
    WriteVec(out, column);
  }
}

Status QuantileTransformer::LoadState(std::istream& in) {
  int32_t effective = 0;
  uint64_t columns = 0;
  if (!ReadPod(in, &effective) || effective < 2 || !ReadPod(in, &columns) ||
      columns > kMaxSerializedElements) {
    return Status::InvalidArgument("QuantileTransformer: malformed state blob");
  }
  references_.assign(columns, {});
  for (std::vector<double>& column : references_) {
    if (!ReadVec(in, &column)) {
      return Status::InvalidArgument(
          "QuantileTransformer: malformed state blob");
    }
  }
  effective_quantiles_ = effective;
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
