#include "preprocess/minmax_scaler.h"

#include "preprocess/kernels.h"
#include "util/serialize.h"

#include <limits>

namespace autofp {

void MinMaxScaler::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  std::vector<double> maxs;
  kernels::ColumnMinMax(data, &mins_, &maxs);
  ranges_.resize(data.cols());
  for (size_t c = 0; c < data.cols(); ++c) {
    double range = maxs[c] - mins_[c];
    ranges_[c] = range == 0.0 ? 1.0 : range;
  }
  fitted_ = true;
}

void MinMaxScaler::FitFromRanges(const std::vector<double>& mins,
                                 const std::vector<double>& maxs) {
  AUTOFP_CHECK_EQ(mins.size(), maxs.size());
  AUTOFP_CHECK_GT(mins.size(), 0u);
  mins_ = mins;
  ranges_.resize(maxs.size());
  for (size_t c = 0; c < maxs.size(); ++c) {
    double range = maxs[c] - mins[c];
    ranges_[c] = range == 0.0 ? 1.0 : range;
  }
  fitted_ = true;
}

void MinMaxScaler::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "MinMaxScaler::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), mins_.size());
  kernels::ShiftScaleColumns(data, mins_, ranges_);
}

void MinMaxScaler::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, mins_);
  WriteVec(out, ranges_);
}

Status MinMaxScaler::LoadState(std::istream& in) {
  if (!ReadVec(in, &mins_) || !ReadVec(in, &ranges_) ||
      mins_.size() != ranges_.size()) {
    return Status::InvalidArgument("MinMaxScaler: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
