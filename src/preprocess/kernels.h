#ifndef AUTOFP_PREPROCESS_KERNELS_H_
#define AUTOFP_PREPROCESS_KERNELS_H_

/// Layout-aware, vectorized inner loops for the seven preprocessors.
/// Each kernel dispatches on the matrix's storage layout and on
/// simd::ForceScalarEnabled():
///
///   - kRowMajor + SIMD: vectorize ACROSS COLUMNS within each row, with
///     the per-column parameter arrays loaded as vectors. Contiguous
///     loads, exact per element.
///   - kColMajor + SIMD: vectorize DOWN each contiguous column with the
///     column's parameters broadcast. This is the transform data plane's
///     fast path.
///   - otherwise: the scalar reference — a column-strided loop identical
///     to the pre-kernel-layer implementation. The property tests compare
///     the SIMD paths against this reference bit for bit.
///
/// Exactness: every transform kernel here is bit-identical across
/// backends and layouts (see util/simd.h's contract) because each element
/// is produced by the same sequence of correctly-rounded IEEE ops and
/// per-column/per-row accumulation order is preserved. The fit reductions
/// (ColumnSums etc.) preserve the row-ascending accumulation order per
/// column for the same reason. The transcendental element functions
/// (Yeo-Johnson's log1p/expm1, the normal inverse CDF) stay scalar libm
/// calls — identical on every path — so Power/Quantile remain exact too.

#include <vector>

#include "preprocess/preprocessor.h"
#include "util/matrix.h"

namespace autofp {
namespace kernels {

/// value > threshold ? 1.0 : 0.0, elementwise over the whole storage.
void Binarize(Matrix& data, double threshold);

/// data(r, c) /= scales[c].
void ScaleColumns(Matrix& data, const std::vector<double>& scales);

/// data(r, c) = (data(r, c) - shifts[c]) / scales[c].
void ShiftScaleColumns(Matrix& data, const std::vector<double>& shifts,
                       const std::vector<double>& scales);

/// Divides each row by its L1/L2/max norm (zero norms divide by 1).
void NormalizeRows(Matrix& data, NormKind kind);

/// Yeo-Johnson per column, optionally standardized:
/// data(r, c) = ClampFinite((YJ(x, lambdas[c]) - means[c]) / stddevs[c]).
void PowerTransformColumns(Matrix& data, const std::vector<double>& lambdas,
                           const std::vector<double>& means,
                           const std::vector<double>& stddevs,
                           bool standardize);

/// Maps each value through its column's empirical CDF (piecewise-linear
/// over `references[c]`, a sorted table of >= 2 entries), optionally
/// through the normal inverse CDF. The table walk is the branchless
/// simd::UpperBoundIndex, gathered lane-parallel on the columnar path.
void QuantileTransformColumns(
    Matrix& data, const std::vector<std::vector<double>>& references,
    bool to_normal);

/// Fit reductions. All accumulate per column in row-ascending order on
/// every path, so fitted parameters are bit-identical across layouts and
/// backends. Output vectors are assigned (not accumulated into).
void ColumnAbsMax(const Matrix& data, std::vector<double>* out);
void ColumnMinMax(const Matrix& data, std::vector<double>* mins,
                  std::vector<double>* maxs);
void ColumnSums(const Matrix& data, std::vector<double>* out);
void ColumnSquaredDevSums(const Matrix& data,
                          const std::vector<double>& means,
                          std::vector<double>* out);

}  // namespace kernels
}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_KERNELS_H_
