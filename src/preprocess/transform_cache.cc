#include "preprocess/transform_cache.h"

#include <utility>

namespace autofp {

TransformCache::TransformCache(size_t max_bytes) : max_bytes_(max_bytes) {}

size_t TransformCache::PayloadBytes(const std::string& key,
                                    const Matrix& train, const Matrix& valid) {
  return (train.size() + valid.size()) * sizeof(double) +
         key.size() + sizeof(Entry);
}

CachedTransforms TransformCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = entries_.find(key);
  if (found == entries_.end()) {
    ++misses_;
    return {};
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, found->second.lru_position);
  return found->second.pair;
}

void TransformCache::Put(const std::string& key,
                         std::shared_ptr<const Matrix> train,
                         std::shared_ptr<const Matrix> valid) {
  AUTOFP_CHECK(train != nullptr && valid != nullptr);
  size_t bytes = PayloadBytes(key, *train, *valid);
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > max_bytes_) return;  // would evict everything for one entry.
  if (entries_.count(key) > 0) return;  // concurrent Put of the same prefix.
  EvictToFitLocked(bytes);
  lru_.push_front(key);
  Entry entry;
  entry.pair.train = std::move(train);
  entry.pair.valid = std::move(valid);
  entry.bytes = bytes;
  entry.lru_position = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  ++insertions_;
}

void TransformCache::EvictToFitLocked(size_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > max_bytes_) {
    auto victim = entries_.find(lru_.back());
    AUTOFP_CHECK(victim != entries_.end());
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
}

TransformCache::Stats TransformCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.bytes = bytes_;
  stats.max_bytes = max_bytes_;
  stats.entries = entries_.size();
  return stats;
}

void TransformCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace autofp
