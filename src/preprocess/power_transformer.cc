#include "preprocess/power_transformer.h"

#include "preprocess/kernels.h"
#include "util/serialize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.h"

namespace autofp {

namespace {

constexpr double kLambdaEps = 1e-8;
constexpr double kValueClamp = 1e100;

double ClampFinite(double value) {
  if (std::isnan(value)) return 0.0;
  return std::clamp(value, -kValueClamp, kValueClamp);
}

/// Golden-section maximization of f over [lo, hi].
template <typename F>
double GoldenSectionMaximize(F f, double lo, double hi, int iterations) {
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  for (int i = 0; i < iterations; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace

double PowerTransformer::YeoJohnson(double x, double lambda) {
  if (x >= 0.0) {
    if (std::abs(lambda) < kLambdaEps) {
      return std::log1p(x);
    }
    // ((x+1)^lambda - 1) / lambda, computed via expm1 for stability.
    return ClampFinite(std::expm1(lambda * std::log1p(x)) / lambda);
  }
  double two_minus = 2.0 - lambda;
  if (std::abs(two_minus) < kLambdaEps) {
    return -std::log1p(-x);
  }
  // -(((1-x)^(2-lambda)) - 1) / (2-lambda).
  return ClampFinite(-std::expm1(two_minus * std::log1p(-x)) / two_minus);
}

namespace {

/// Log-likelihood given the precomputed (lambda-independent) Jacobian sum
/// of sign(x) * log(|x|+1) over the column.
double LogLikelihoodWithJacobian(const std::vector<double>& column,
                                 double lambda, double jacobian) {
  const double n = static_cast<double>(column.size());
  if (column.empty()) return 0.0;
  // Single-pass variance of the transformed column.
  double sum = 0.0, sum_sq = 0.0;
  for (double x : column) {
    double t = PowerTransformer::YeoJohnson(x, lambda);
    sum += t;
    sum_sq += t * t;
  }
  double variance = sum_sq / n - (sum / n) * (sum / n);
  if (!(variance > 0.0) || !std::isfinite(variance)) {
    return -std::numeric_limits<double>::infinity();
  }
  return -0.5 * n * std::log(variance) + (lambda - 1.0) * jacobian;
}

double JacobianSum(const std::vector<double>& column) {
  double jacobian = 0.0;
  for (double x : column) {
    jacobian += std::copysign(std::log1p(std::abs(x)), x);
  }
  return jacobian;
}

}  // namespace

double PowerTransformer::LogLikelihood(const std::vector<double>& column,
                                       double lambda) {
  return LogLikelihoodWithJacobian(column, lambda, JacobianSum(column));
}

void PowerTransformer::Fit(const Matrix& data) {
  AUTOFP_CHECK_GT(data.rows(), 0u);
  const size_t cols = data.cols();
  lambdas_.assign(cols, 1.0);
  means_.assign(cols, 0.0);
  stddevs_.assign(cols, 1.0);
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> column = data.Column(c);
    // Constant columns: identity lambda, no standardization scaling.
    double variance = Variance(column);
    if (!(variance > 0.0)) {
      lambdas_[c] = 1.0;
      means_[c] = config_.standardize ? YeoJohnson(column[0], 1.0) : 0.0;
      stddevs_[c] = 1.0;
      continue;
    }
    const double jacobian = JacobianSum(column);
    auto objective = [&column, jacobian](double lambda) {
      return LogLikelihoodWithJacobian(column, lambda, jacobian);
    };
    lambdas_[c] = GoldenSectionMaximize(objective, -4.0, 6.0, 30);
    if (config_.standardize) {
      std::vector<double> transformed(column.size());
      for (size_t i = 0; i < column.size(); ++i) {
        transformed[i] = YeoJohnson(column[i], lambdas_[c]);
      }
      MeanStd stats = ComputeMeanStd(transformed);
      means_[c] = stats.mean;
      stddevs_[c] = stats.stddev > 0.0 ? stats.stddev : 1.0;
    }
  }
  fitted_ = true;
}

void PowerTransformer::TransformInPlace(Matrix& data) const {
  AUTOFP_CHECK(fitted_) << "PowerTransformer::Transform before Fit";
  AUTOFP_CHECK_EQ(data.cols(), lambdas_.size());
  kernels::PowerTransformColumns(data, lambdas_, means_, stddevs_,
                                 config_.standardize);
}

void PowerTransformer::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(fitted_) << "SaveState before Fit";
  WriteVec(out, lambdas_);
  WriteVec(out, means_);
  WriteVec(out, stddevs_);
}

Status PowerTransformer::LoadState(std::istream& in) {
  if (!ReadVec(in, &lambdas_) || !ReadVec(in, &means_) ||
      !ReadVec(in, &stddevs_) || means_.size() != stddevs_.size() ||
      (config_.standardize && means_.size() != lambdas_.size())) {
    return Status::InvalidArgument("PowerTransformer: malformed state blob");
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace autofp
