#include "preprocess/binarizer.h"

#include "preprocess/kernels.h"

namespace autofp {

void Binarizer::TransformInPlace(Matrix& data) const {
  // Elementwise with no per-column state: one flat pass over the storage.
  kernels::Binarize(data, config_.threshold);
}

}  // namespace autofp
