#include "preprocess/binarizer.h"

namespace autofp {

Matrix Binarizer::Transform(const Matrix& data) const {
  Matrix out(data.rows(), data.cols());
  const double threshold = config_.threshold;
  for (size_t r = 0; r < data.rows(); ++r) {
    const double* in_row = data.RowPtr(r);
    double* out_row = out.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) {
      out_row[c] = in_row[c] > threshold ? 1.0 : 0.0;
    }
  }
  return out;
}

}  // namespace autofp
