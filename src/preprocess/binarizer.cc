#include "preprocess/binarizer.h"

namespace autofp {

void Binarizer::TransformInPlace(Matrix& data) const {
  const double threshold = config_.threshold;
  // Elementwise with no per-column state: one flat pass over the storage.
  for (double& value : data.data()) {
    value = value > threshold ? 1.0 : 0.0;
  }
}

}  // namespace autofp
