#ifndef AUTOFP_PREPROCESS_TRANSFORM_CACHE_H_
#define AUTOFP_PREPROCESS_TRANSFORM_CACHE_H_

/// Prefix-transform memoization for pipeline evaluation.
///
/// Auto-FP searches evaluate thousands of pipelines drawn from a space of
/// 7 preprocessors; pipelines share prefixes heavily ("StandardScaler ->
/// Binarizer -> X" for every X). Fitting a prefix is a pure function of
/// (prefix steps, training matrix), so its transformed train/valid output
/// can be cached once and reused by every pipeline that extends it — the
/// systems half of the paper's "evaluate faster" research opportunity.

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/matrix.h"

namespace autofp {

/// The cached train/valid matrices of one fitted prefix, handed out as
/// shared immutable references: a hit costs two shared_ptr copies, never
/// a matrix copy. Empty (null matrices, false in bool context) on a miss.
struct CachedTransforms {
  std::shared_ptr<const Matrix> train;
  std::shared_ptr<const Matrix> valid;

  explicit operator bool() const { return train != nullptr; }
};

/// Thread-safe LRU cache from a prefix key to the transformed train/valid
/// matrices of that fitted prefix, bounded by (approximate) payload bytes.
/// Entries are shared-immutable (see DESIGN.md "Data plane and memory"):
/// eviction can never invalidate matrices a concurrent evaluation is
/// still reading, and no consumer may mutate them.
class TransformCache {
 public:
  /// `max_bytes` bounds the summed payload size; entries larger than the
  /// whole budget are never stored.
  explicit TransformCache(size_t max_bytes);

  /// Returns the cached matrices for `key`, or an empty result. A hit
  /// refreshes the entry's LRU position.
  CachedTransforms Get(const std::string& key);

  /// Stores the pair under `key` (no-op if the key is already present),
  /// evicting least-recently-used entries until the byte budget holds.
  /// Both pointers must be non-null; the cache shares ownership with the
  /// caller instead of copying the matrices.
  void Put(const std::string& key, std::shared_ptr<const Matrix> train,
           std::shared_ptr<const Matrix> valid);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long insertions = 0;
    long evictions = 0;
    size_t bytes = 0;
    size_t max_bytes = 0;
    size_t entries = 0;

    double HitRate() const {
      long lookups = hits + misses;
      return lookups > 0 ? static_cast<double>(hits) /
                               static_cast<double>(lookups)
                         : 0.0;
    }
  };
  Stats stats() const;

  void Clear();

 private:
  struct Entry {
    CachedTransforms pair;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_position;
  };

  static size_t PayloadBytes(const std::string& key, const Matrix& train,
                             const Matrix& valid);
  void EvictToFitLocked(size_t incoming_bytes);

  mutable std::mutex mutex_;
  const size_t max_bytes_;
  size_t bytes_ = 0;
  std::list<std::string> lru_;  ///< front = most recently used.
  std::unordered_map<std::string, Entry> entries_;
  long hits_ = 0;
  long misses_ = 0;
  long insertions_ = 0;
  long evictions_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_TRANSFORM_CACHE_H_
