#ifndef AUTOFP_PREPROCESS_TRANSFORM_CACHE_H_
#define AUTOFP_PREPROCESS_TRANSFORM_CACHE_H_

/// Prefix-transform memoization for pipeline evaluation.
///
/// Auto-FP searches evaluate thousands of pipelines drawn from a space of
/// 7 preprocessors; pipelines share prefixes heavily ("StandardScaler ->
/// Binarizer -> X" for every X). Fitting a prefix is a pure function of
/// (prefix steps, training matrix), so its transformed train/valid output
/// can be cached once and reused by every pipeline that extends it — the
/// systems half of the paper's "evaluate faster" research opportunity.

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "preprocess/pipeline.h"

namespace autofp {

/// Thread-safe LRU cache from a prefix key to the transformed train/valid
/// matrices of that fitted prefix, bounded by (approximate) payload bytes.
/// Values are handed out as shared_ptr-to-const so eviction can never
/// invalidate matrices a concurrent evaluation is still reading.
class TransformCache {
 public:
  /// `max_bytes` bounds the summed payload size; entries larger than the
  /// whole budget are never stored.
  explicit TransformCache(size_t max_bytes);

  /// Returns the cached pair for `key`, or nullptr. A hit refreshes the
  /// entry's LRU position.
  std::shared_ptr<const TransformedPair> Get(const std::string& key);

  /// Stores `pair` under `key` (no-op if the key is already present),
  /// evicting least-recently-used entries until the byte budget holds.
  void Put(const std::string& key, TransformedPair pair);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long insertions = 0;
    long evictions = 0;
    size_t bytes = 0;
    size_t max_bytes = 0;
    size_t entries = 0;

    double HitRate() const {
      long lookups = hits + misses;
      return lookups > 0 ? static_cast<double>(hits) /
                               static_cast<double>(lookups)
                         : 0.0;
    }
  };
  Stats stats() const;

  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const TransformedPair> pair;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_position;
  };

  static size_t PayloadBytes(const std::string& key,
                             const TransformedPair& pair);
  void EvictToFitLocked(size_t incoming_bytes);

  mutable std::mutex mutex_;
  const size_t max_bytes_;
  size_t bytes_ = 0;
  std::list<std::string> lru_;  ///< front = most recently used.
  std::unordered_map<std::string, Entry> entries_;
  long hits_ = 0;
  long misses_ = 0;
  long insertions_ = 0;
  long evictions_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_TRANSFORM_CACHE_H_
