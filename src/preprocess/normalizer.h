#ifndef AUTOFP_PREPROCESS_NORMALIZER_H_
#define AUTOFP_PREPROCESS_NORMALIZER_H_

#include <memory>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Scales each *row* (sample) to unit norm (l1, l2 or max, per config).
/// Stateless; zero rows are left unchanged, matching scikit-learn.
class Normalizer : public Preprocessor {
 public:
  explicit Normalizer(const PreprocessorConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kNormalizer);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override { (void)data; }
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<Normalizer>(config_);
  }
  /// Stateless: nothing to persist beyond the config.
  void SaveState(std::ostream& out) const override { (void)out; }
  Status LoadState(std::istream& in) override {
    (void)in;
    return Status::OK();
  }

 private:
  PreprocessorConfig config_;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_NORMALIZER_H_
