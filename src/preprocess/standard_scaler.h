#ifndef AUTOFP_PREPROCESS_STANDARD_SCALER_H_
#define AUTOFP_PREPROCESS_STANDARD_SCALER_H_

#include <memory>
#include <vector>

#include "preprocess/preprocessor.h"

namespace autofp {

/// Standardizes each feature: x -> (x - mean) / stddev. Columns with zero
/// standard deviation are only centered (scale = 1), matching scikit-learn.
/// With `with_mean = false` (Table 6 extended space) only the scaling is
/// applied.
class StandardScaler : public Preprocessor {
 public:
  explicit StandardScaler(const PreprocessorConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == PreprocessorKind::kStandardScaler);
  }

  const PreprocessorConfig& config() const override { return config_; }
  void Fit(const Matrix& data) override;
  /// Incremental-refit hook (see src/stream/): installs column statistics
  /// accumulated by a streaming source (Welford running moments) instead
  /// of a batch Fit pass. Zero/negative stddevs get the same guard as
  /// Fit (scale = 1, column only centered). Leaves the scaler fitted.
  void FitFromMoments(const std::vector<double>& means,
                      const std::vector<double>& stddevs);
  void TransformInPlace(Matrix& data) const override;
  std::unique_ptr<Preprocessor> Clone() const override {
    return std::make_unique<StandardScaler>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  PreprocessorConfig config_;
  std::vector<double> means_;
  std::vector<double> stddevs_;
  bool fitted_ = false;
};

}  // namespace autofp

#endif  // AUTOFP_PREPROCESS_STANDARD_SCALER_H_
