#ifndef AUTOFP_AUTOML_TPOT_FP_H_
#define AUTOFP_AUTOML_TPOT_FP_H_

#include "core/budget.h"
#include "core/evaluator.h"
#include "core/search_framework.h"
#include "core/search_space.h"

namespace autofp {

/// The feature-preprocessing module of a TPOT-style AutoML tool
/// (Section 7.1): genetic programming over TPOT's *five* preprocessors
/// (Binarizer, MaxAbsScaler, MinMaxScaler, Normalizer, StandardScaler —
/// no Power/Quantile transformer), pipelines of arbitrary length, with
/// tournament selection, one-point crossover and point mutation.
struct TpotFpConfig {
  size_t population_size = 20;
  size_t tournament_size = 3;
  double crossover_rate = 0.5;
  double mutation_rate = 0.9;
  size_t max_pipeline_length = 7;
};

/// The 5-preprocessor TPOT search space.
SearchSpace TpotFpSpace(size_t max_pipeline_length = 7);

/// Runs the GP search under `budget` and returns the best pipeline found.
SearchResult RunTpotFp(const TpotFpConfig& config,
                       EvaluatorInterface* evaluator, const Budget& budget,
                       uint64_t seed);

}  // namespace autofp

#endif  // AUTOFP_AUTOML_TPOT_FP_H_
