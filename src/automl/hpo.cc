#include "automl/hpo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ml/metrics.h"
#include "util/timer.h"

namespace autofp {

namespace {

double LogUniform(Rng* rng, double lo, double hi) {
  return std::exp(rng->Uniform(std::log(lo), std::log(hi)));
}

}  // namespace

ModelConfig SampleModelConfig(ModelKind kind, Rng* rng) {
  ModelConfig config = ModelConfig::Defaults(kind);
  switch (kind) {
    case ModelKind::kLogisticRegression:
      config.lr_l2 = LogUniform(rng, 1e-6, 1.0);
      config.lr_step = LogUniform(rng, 1e-3, 0.5);
      config.lr_epochs = rng->UniformInt(20, 150);
      break;
    case ModelKind::kXgboost:
      config.xgb_rounds = rng->UniformInt(10, 80);
      config.xgb_max_depth = rng->UniformInt(2, 8);
      config.xgb_eta = LogUniform(rng, 0.05, 0.5);
      config.xgb_lambda = LogUniform(rng, 0.1, 10.0);
      config.xgb_min_child_weight = LogUniform(rng, 0.5, 10.0);
      break;
    case ModelKind::kMlp:
      config.mlp_hidden = rng->UniformInt(8, 96);
      config.mlp_step = LogUniform(rng, 1e-4, 1e-1);
      config.mlp_epochs = rng->UniformInt(10, 60);
      config.mlp_batch = 1 << rng->UniformInt(4, 8);  // 16..256.
      break;
  }
  return config;
}

ModelConfig MutateModelConfig(const ModelConfig& config, Rng* rng) {
  ModelConfig mutated = config;
  auto jitter = [rng](double value, double lo, double hi) {
    double factor = std::exp(rng->Gaussian(0.0, 0.4));
    return std::clamp(value * factor, lo, hi);
  };
  switch (config.kind) {
    case ModelKind::kLogisticRegression:
      switch (rng->UniformInt(0, 2)) {
        case 0:
          mutated.lr_l2 = jitter(config.lr_l2, 1e-6, 1.0);
          break;
        case 1:
          mutated.lr_step = jitter(config.lr_step, 1e-3, 0.5);
          break;
        default:
          mutated.lr_epochs = std::clamp(
              config.lr_epochs + rng->UniformInt(-20, 20), 20, 150);
      }
      break;
    case ModelKind::kXgboost:
      switch (rng->UniformInt(0, 3)) {
        case 0:
          mutated.xgb_rounds = std::clamp(
              config.xgb_rounds + rng->UniformInt(-10, 10), 10, 80);
          break;
        case 1:
          mutated.xgb_max_depth =
              std::clamp(config.xgb_max_depth + rng->UniformInt(-1, 1), 2, 8);
          break;
        case 2:
          mutated.xgb_eta = jitter(config.xgb_eta, 0.05, 0.5);
          break;
        default:
          mutated.xgb_lambda = jitter(config.xgb_lambda, 0.1, 10.0);
      }
      break;
    case ModelKind::kMlp:
      switch (rng->UniformInt(0, 2)) {
        case 0:
          mutated.mlp_hidden = std::clamp(
              config.mlp_hidden + rng->UniformInt(-16, 16), 8, 96);
          break;
        case 1:
          mutated.mlp_step = jitter(config.mlp_step, 1e-4, 1e-1);
          break;
        default:
          mutated.mlp_epochs = std::clamp(
              config.mlp_epochs + rng->UniformInt(-10, 10), 10, 60);
      }
      break;
  }
  return mutated;
}

HpoResult RunHpoSearch(ModelKind kind, const Dataset& train,
                       const Dataset& valid, const Budget& budget,
                       uint64_t seed, const HpoConfig& config) {
  AUTOFP_CHECK(budget.limited());
  Rng rng(seed);
  Stopwatch watch;
  HpoResult result;

  auto evaluate = [&](const ModelConfig& candidate) {
    std::unique_ptr<Classifier> model = MakeClassifier(candidate);
    model->Train(train.features, train.labels, train.num_classes);
    ++result.num_evaluations;
    return EvaluateAccuracy(*model, valid.features, valid.labels);
  };
  auto exhausted = [&]() {
    if (budget.max_evaluations >= 0 &&
        result.num_evaluations >= budget.max_evaluations) {
      return true;
    }
    return budget.max_seconds >= 0.0 &&
           watch.ElapsedSeconds() >= budget.max_seconds;
  };

  // Default configuration = the no-HPO reference point.
  result.default_accuracy = evaluate(ModelConfig::Defaults(kind));
  result.best_config = ModelConfig::Defaults(kind);
  result.best_accuracy = result.default_accuracy;

  struct Member {
    ModelConfig config;
    double accuracy;
  };
  std::vector<Member> population;
  while (!exhausted() && population.size() < config.population_size) {
    ModelConfig candidate = SampleModelConfig(kind, &rng);
    double accuracy = evaluate(candidate);
    population.push_back({candidate, accuracy});
    if (accuracy > result.best_accuracy) {
      result.best_accuracy = accuracy;
      result.best_config = candidate;
    }
  }
  while (!exhausted() && !population.empty()) {
    // Tournament select + mutate, steady-state replace-worst.
    size_t best = rng.UniformIndex(population.size());
    for (size_t i = 1; i < config.tournament_size; ++i) {
      size_t contender = rng.UniformIndex(population.size());
      if (population[contender].accuracy > population[best].accuracy) {
        best = contender;
      }
    }
    ModelConfig candidate = MutateModelConfig(population[best].config, &rng);
    double accuracy = evaluate(candidate);
    if (accuracy > result.best_accuracy) {
      result.best_accuracy = accuracy;
      result.best_config = candidate;
    }
    auto worst = std::min_element(population.begin(), population.end(),
                                  [](const Member& a, const Member& b) {
                                    return a.accuracy < b.accuracy;
                                  });
    if (accuracy > worst->accuracy) *worst = {candidate, accuracy};
  }
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace autofp
