#include "automl/tpot_fp.h"

#include <algorithm>

namespace autofp {

namespace {

/// Genetic-programming search over the TPOT preprocessor alphabet,
/// expressed in the unified framework so RunSearch handles budgets and
/// timing identically to the 15 Auto-FP algorithms.
class TpotGp : public SearchAlgorithm {
 public:
  explicit TpotGp(const TpotFpConfig& config) : config_(config) {}

  std::string name() const override { return "TPOT-FP"; }

  void Initialize(SearchContext* context) override {
    population_.clear();
    for (size_t i = 0; i < config_.population_size; ++i) {
      PipelineSpec pipeline = context->space().SampleUniform(context->rng());
      std::optional<double> accuracy = context->Evaluate(pipeline);
      if (!accuracy.has_value()) return;
      population_.push_back({pipeline, *accuracy});
    }
  }

  void Iterate(SearchContext* context) override {
    if (population_.size() < 2) {
      Initialize(context);
      if (population_.size() < 2) return;
    }
    Rng* rng = context->rng();
    const SearchSpace& space = context->space();
    PipelineSpec child = Select(rng).pipeline;
    if (rng->Bernoulli(config_.crossover_rate)) {
      child = Crossover(child, Select(rng).pipeline, rng);
    }
    if (rng->Bernoulli(config_.mutation_rate)) {
      child = space.Mutate(child, rng);
    }
    if (child.size() > config_.max_pipeline_length) {
      child.steps.resize(config_.max_pipeline_length);
    }
    std::optional<double> accuracy = context->Evaluate(child);
    if (!accuracy.has_value()) return;
    // Steady-state replacement of the worst member.
    auto worst = std::min_element(
        population_.begin(), population_.end(),
        [](const Member& a, const Member& b) {
          return a.accuracy < b.accuracy;
        });
    if (accuracy > worst->accuracy) *worst = {child, *accuracy};
  }

 private:
  struct Member {
    PipelineSpec pipeline;
    double accuracy = 0.0;
  };

  const Member& Select(Rng* rng) const {
    size_t best = rng->UniformIndex(population_.size());
    for (size_t i = 1; i < config_.tournament_size; ++i) {
      size_t contender = rng->UniformIndex(population_.size());
      if (population_[contender].accuracy > population_[best].accuracy) {
        best = contender;
      }
    }
    return population_[best];
  }

  PipelineSpec Crossover(const PipelineSpec& a, const PipelineSpec& b,
                         Rng* rng) const {
    // One-point crossover: prefix of a + suffix of b.
    PipelineSpec child;
    size_t cut_a = rng->UniformIndex(a.size() + 1);
    size_t cut_b = rng->UniformIndex(b.size() + 1);
    child.steps.assign(a.steps.begin(), a.steps.begin() + cut_a);
    child.steps.insert(child.steps.end(), b.steps.begin() + cut_b,
                       b.steps.end());
    if (child.steps.empty()) child = a;
    return child;
  }

  TpotFpConfig config_;
  std::vector<Member> population_;
};

}  // namespace

SearchSpace TpotFpSpace(size_t max_pipeline_length) {
  std::vector<PreprocessorConfig> operators = {
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer),
      PreprocessorConfig::Defaults(PreprocessorKind::kMaxAbsScaler),
      PreprocessorConfig::Defaults(PreprocessorKind::kMinMaxScaler),
      PreprocessorConfig::Defaults(PreprocessorKind::kNormalizer),
      PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler),
  };
  return SearchSpace(std::move(operators), max_pipeline_length);
}

SearchResult RunTpotFp(const TpotFpConfig& config,
                       EvaluatorInterface* evaluator, const Budget& budget,
                       uint64_t seed) {
  SearchSpace space = TpotFpSpace(config.max_pipeline_length);
  TpotGp algorithm(config);
  return RunSearch(&algorithm, evaluator, space, SearchOptions{budget, seed});
}

}  // namespace autofp
