#ifndef AUTOFP_AUTOML_HPO_H_
#define AUTOFP_AUTOML_HPO_H_

#include <string>

#include "core/budget.h"
#include "data/dataset.h"
#include "ml/model.h"
#include "util/random.h"

namespace autofp {

/// The hyperparameter-optimization module of a TPOT-style AutoML tool
/// (Section 7.2's comparator): evolutionary search over the downstream
/// model's hyperparameters with *no* feature preprocessing. The search
/// spaces per model family mirror common AutoML grids.
struct HpoConfig {
  size_t population_size = 10;
  size_t tournament_size = 3;
};

struct HpoResult {
  ModelConfig best_config;
  double best_accuracy = 0.0;
  double default_accuracy = 0.0;  ///< default hyperparameters, no FP.
  long num_evaluations = 0;
  double elapsed_seconds = 0.0;
};

/// Samples a random hyperparameter configuration for `kind`.
ModelConfig SampleModelConfig(ModelKind kind, Rng* rng);

/// Mutates one hyperparameter of `config`.
ModelConfig MutateModelConfig(const ModelConfig& config, Rng* rng);

/// Runs the HPO search: trains candidate configurations on the raw
/// training set and scores on the validation set until the budget ends.
HpoResult RunHpoSearch(ModelKind kind, const Dataset& train,
                       const Dataset& valid, const Budget& budget,
                       uint64_t seed, const HpoConfig& config = {});

}  // namespace autofp

#endif  // AUTOFP_AUTOML_HPO_H_
