#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autofp {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Skewness(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double m2 = 0.0, m3 = 0.0;
  for (double v : values) {
    double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  double n = static_cast<double>(values.size());
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double Kurtosis(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double m2 = 0.0, m4 = 0.0;
  for (double v : values) {
    double d = v - mean;
    double d2 = d * d;
    m2 += d2;
    m4 += d2 * d2;
  }
  double n = static_cast<double>(values.size());
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double QuantileSorted(const std::vector<double>& sorted_values, double q) {
  AUTOFP_CHECK(!sorted_values.empty());
  AUTOFP_CHECK_GE(q, 0.0);
  AUTOFP_CHECK_LE(q, 1.0);
  if (sorted_values.size() == 1) return sorted_values[0];
  double position = q * static_cast<double>(sorted_values.size() - 1);
  size_t lower = static_cast<size_t>(position);
  if (lower + 1 >= sorted_values.size()) return sorted_values.back();
  double fraction = position - static_cast<double>(lower);
  return sorted_values[lower] +
         fraction * (sorted_values[lower + 1] - sorted_values[lower]);
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

double Entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    AUTOFP_CHECK_GE(c, 0.0);
    total += c;
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  AUTOFP_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd result;
  result.mean = Mean(values);
  result.stddev = StdDev(values);
  return result;
}

double NormalInverseCdf(double p) {
  AUTOFP_CHECK_GT(p, 0.0);
  AUTOFP_CHECK_LT(p, 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace autofp
