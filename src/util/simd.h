#ifndef AUTOFP_UTIL_SIMD_H_
#define AUTOFP_UTIL_SIMD_H_

/// Portable SIMD wrapper for the kernel layer (DESIGN.md "Kernel layer
/// and memory layout").
///
/// Backend is chosen at compile time:
///   - AVX2 when the build enables it (top-level CMakeLists passes -mavx2
///     on x86-64 hosts whose compiler supports it) — 4 double lanes.
///   - NEON on AArch64 (implied by the baseline ISA) — 2 double lanes.
///   - Scalar fallback otherwise, or when AUTOFP_DISABLE_SIMD is defined
///     (CI's forced-scalar leg) — 1 lane, plain IEEE arithmetic.
///
/// Exactness contract: every lane op here maps to a single IEEE-754
/// correctly-rounded operation (add/sub/mul/div/sqrt/min/max/compare/
/// select), so a vectorized elementwise loop is bit-identical to its
/// scalar reference regardless of backend. No FMA is ever emitted (the
/// build also passes -ffp-contract=off so the compiler cannot contract
/// the scalar references either). The only helpers that reassociate —
/// and are therefore tolerance-gated, not bit-exact — are the horizontal
/// reductions: Vec::Sum() and Dot().
///
/// Loads and stores are unaligned-safe; Matrix storage is 64-byte
/// aligned (util/aligned.h) purely as a performance property.

#include <cmath>
#include <cstddef>
#include <cstdint>

#if !defined(AUTOFP_DISABLE_SIMD) && defined(__AVX2__)
#define AUTOFP_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(AUTOFP_DISABLE_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define AUTOFP_SIMD_NEON 1
#include <arm_neon.h>
#else
#define AUTOFP_SIMD_SCALAR 1
#endif

namespace autofp {
namespace simd {

#if defined(AUTOFP_SIMD_AVX2)
inline constexpr bool kEnabled = true;
inline constexpr const char* kBackendName = "avx2";
#elif defined(AUTOFP_SIMD_NEON)
inline constexpr bool kEnabled = true;
inline constexpr const char* kBackendName = "neon";
#else
inline constexpr bool kEnabled = false;
inline constexpr const char* kBackendName = "scalar";
#endif

/// Runtime escape hatch: when set, the dispatching kernel entry points
/// (preprocess/kernels.h, Dot/Axpy below) take their scalar reference
/// path even in a SIMD build. Used by the property tests to compare both
/// paths inside one binary and by the micro-bench roofline report to
/// measure the scalar baseline. Not for production call sites.
bool ForceScalarEnabled();
void SetForceScalar(bool force);

/// RAII form for tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) : previous_(ForceScalarEnabled()) {
    SetForceScalar(force);
  }
  ~ScopedForceScalar() { SetForceScalar(previous_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

template <typename T>
struct Vec;

#if defined(AUTOFP_SIMD_AVX2)

template <>
struct Vec<double> {
  __m256d v;
  static constexpr size_t kLanes = 4;

  static Vec Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Vec Set1(double x) { return {_mm256_set1_pd(x)}; }
  static Vec Zero() { return {_mm256_setzero_pd()}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }

  Vec operator+(Vec o) const { return {_mm256_add_pd(v, o.v)}; }
  Vec operator-(Vec o) const { return {_mm256_sub_pd(v, o.v)}; }
  Vec operator*(Vec o) const { return {_mm256_mul_pd(v, o.v)}; }
  Vec operator/(Vec o) const { return {_mm256_div_pd(v, o.v)}; }

  static Vec Min(Vec a, Vec b) { return {_mm256_min_pd(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
  Vec Abs() const {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), v)};
  }
  Vec Sqrt() const { return {_mm256_sqrt_pd(v)}; }

  /// Comparisons return an all-ones / all-zeros lane mask (as a Vec).
  static Vec Gt(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)}; }
  static Vec Ge(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
  static Vec Le(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
  static Vec Eq(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)}; }
  /// Lanes from `a` where the mask lane is set, else from `b`.
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }

  /// Horizontal sum. Reassociates (pairwise) — tolerance-gated only.
  double Sum() const {
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d pair = _mm_add_pd(lo, hi);
    __m128d swap = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swap));
  }

  double Lane(size_t i) const {
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, v);
    return lanes[i];
  }
};

/// Signed-64 index vector matching Vec<double>'s lane count; only what
/// the branchless table lookups need (add, masked add, conversion).
struct VecIdx {
  __m256i v;
  static constexpr size_t kLanes = 4;
  static VecIdx Set1(int64_t x) { return {_mm256_set1_epi64x(x)}; }
  static VecIdx Zero() { return {_mm256_setzero_si256()}; }
  VecIdx operator+(VecIdx o) const { return {_mm256_add_epi64(v, o.v)}; }
  /// this + (add where the comparison-mask lane is all-ones, else this).
  VecIdx AddWhere(Vec<double> mask, VecIdx add) const {
    return {_mm256_add_epi64(
        v, _mm256_and_si256(_mm256_castpd_si256(mask.v), add.v))};
  }
  int64_t Lane(size_t i) const {
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
    return lanes[i];
  }
};

template <>
struct Vec<float> {
  __m256 v;
  static constexpr size_t kLanes = 8;

  static Vec Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static Vec Set1(float x) { return {_mm256_set1_ps(x)}; }
  static Vec Zero() { return {_mm256_setzero_ps()}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }

  Vec operator+(Vec o) const { return {_mm256_add_ps(v, o.v)}; }
  Vec operator-(Vec o) const { return {_mm256_sub_ps(v, o.v)}; }
  Vec operator*(Vec o) const { return {_mm256_mul_ps(v, o.v)}; }
  Vec operator/(Vec o) const { return {_mm256_div_ps(v, o.v)}; }

  static Vec Min(Vec a, Vec b) { return {_mm256_min_ps(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {_mm256_max_ps(a.v, b.v)}; }
  Vec Abs() const { return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), v)}; }
  static Vec Gt(Vec a, Vec b) { return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)}; }
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {_mm256_blendv_ps(b.v, a.v, mask.v)};
  }

  float Lane(size_t i) const {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, v);
    return lanes[i];
  }
};

/// refs[idx] per lane (table gather for the branchless quantile lookup).
inline Vec<double> Gather(const double* base, VecIdx idx) {
  return {_mm256_i64gather_pd(base, idx.v, 8)};
}

/// Exact int->double conversion for 0 <= idx < 2^52 (the classic
/// magic-number trick; AVX2 has no epi64->pd instruction).
inline Vec<double> ToDouble(VecIdx idx) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  __m256d shifted = _mm256_castsi256_pd(_mm256_or_si256(idx.v, magic));
  return {_mm256_sub_pd(shifted, _mm256_set1_pd(4503599627370496.0))};
}

#elif defined(AUTOFP_SIMD_NEON)

template <>
struct Vec<double> {
  float64x2_t v;
  static constexpr size_t kLanes = 2;

  static Vec Load(const double* p) { return {vld1q_f64(p)}; }
  static Vec Set1(double x) { return {vdupq_n_f64(x)}; }
  static Vec Zero() { return {vdupq_n_f64(0.0)}; }
  void Store(double* p) const { vst1q_f64(p, v); }

  Vec operator+(Vec o) const { return {vaddq_f64(v, o.v)}; }
  Vec operator-(Vec o) const { return {vsubq_f64(v, o.v)}; }
  Vec operator*(Vec o) const { return {vmulq_f64(v, o.v)}; }
  Vec operator/(Vec o) const { return {vdivq_f64(v, o.v)}; }

  static Vec Min(Vec a, Vec b) { return {vminq_f64(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {vmaxq_f64(a.v, b.v)}; }
  Vec Abs() const { return {vabsq_f64(v)}; }
  Vec Sqrt() const { return {vsqrtq_f64(v)}; }

  static Vec Gt(Vec a, Vec b) {
    return {vreinterpretq_f64_u64(vcgtq_f64(a.v, b.v))};
  }
  static Vec Ge(Vec a, Vec b) {
    return {vreinterpretq_f64_u64(vcgeq_f64(a.v, b.v))};
  }
  static Vec Le(Vec a, Vec b) {
    return {vreinterpretq_f64_u64(vcleq_f64(a.v, b.v))};
  }
  static Vec Eq(Vec a, Vec b) {
    return {vreinterpretq_f64_u64(vceqq_f64(a.v, b.v))};
  }
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {vbslq_f64(vreinterpretq_u64_f64(mask.v), a.v, b.v)};
  }

  double Sum() const { return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1); }
  double Lane(size_t i) const {
    return i == 0 ? vgetq_lane_f64(v, 0) : vgetq_lane_f64(v, 1);
  }
};

struct VecIdx {
  int64x2_t v;
  static constexpr size_t kLanes = 2;
  static VecIdx Set1(int64_t x) { return {vdupq_n_s64(x)}; }
  static VecIdx Zero() { return {vdupq_n_s64(0)}; }
  VecIdx operator+(VecIdx o) const { return {vaddq_s64(v, o.v)}; }
  VecIdx AddWhere(Vec<double> mask, VecIdx add) const {
    return {vaddq_s64(
        v, vandq_s64(vreinterpretq_s64_f64(mask.v), add.v))};
  }
  int64_t Lane(size_t i) const {
    return i == 0 ? vgetq_lane_s64(v, 0) : vgetq_lane_s64(v, 1);
  }
};

template <>
struct Vec<float> {
  float32x4_t v;
  static constexpr size_t kLanes = 4;

  static Vec Load(const float* p) { return {vld1q_f32(p)}; }
  static Vec Set1(float x) { return {vdupq_n_f32(x)}; }
  static Vec Zero() { return {vdupq_n_f32(0.0f)}; }
  void Store(float* p) const { vst1q_f32(p, v); }

  Vec operator+(Vec o) const { return {vaddq_f32(v, o.v)}; }
  Vec operator-(Vec o) const { return {vsubq_f32(v, o.v)}; }
  Vec operator*(Vec o) const { return {vmulq_f32(v, o.v)}; }
  Vec operator/(Vec o) const { return {vdivq_f32(v, o.v)}; }

  static Vec Min(Vec a, Vec b) { return {vminq_f32(a.v, b.v)}; }
  static Vec Max(Vec a, Vec b) { return {vmaxq_f32(a.v, b.v)}; }
  Vec Abs() const { return {vabsq_f32(v)}; }
  static Vec Gt(Vec a, Vec b) {
    return {vreinterpretq_f32_u32(vcgtq_f32(a.v, b.v))};
  }
  static Vec Select(Vec mask, Vec a, Vec b) {
    return {vbslq_f32(vreinterpretq_u32_f32(mask.v), a.v, b.v)};
  }

  float Lane(size_t i) const {
    switch (i) {
      case 0: return vgetq_lane_f32(v, 0);
      case 1: return vgetq_lane_f32(v, 1);
      case 2: return vgetq_lane_f32(v, 2);
      default: return vgetq_lane_f32(v, 3);
    }
  }
};

inline Vec<double> Gather(const double* base, VecIdx idx) {
  float64x2_t out = vdupq_n_f64(0.0);
  out = vsetq_lane_f64(base[vgetq_lane_s64(idx.v, 0)], out, 0);
  out = vsetq_lane_f64(base[vgetq_lane_s64(idx.v, 1)], out, 1);
  return {out};
}

inline Vec<double> ToDouble(VecIdx idx) { return {vcvtq_f64_s64(idx.v)}; }

#else  // scalar fallback

template <>
struct Vec<double> {
  double v;
  static constexpr size_t kLanes = 1;

  static Vec Load(const double* p) { return {*p}; }
  static Vec Set1(double x) { return {x}; }
  static Vec Zero() { return {0.0}; }
  void Store(double* p) const { *p = v; }

  Vec operator+(Vec o) const { return {v + o.v}; }
  Vec operator-(Vec o) const { return {v - o.v}; }
  Vec operator*(Vec o) const { return {v * o.v}; }
  Vec operator/(Vec o) const { return {v / o.v}; }

  static Vec Min(Vec a, Vec b) { return {b.v < a.v ? b.v : a.v}; }
  static Vec Max(Vec a, Vec b) { return {a.v < b.v ? b.v : a.v}; }
  Vec Abs() const { return {std::fabs(v)}; }
  Vec Sqrt() const { return {std::sqrt(v)}; }

  /// Scalar "masks" are plain bools consumed by Select/AddWhere.
  static bool Gt(Vec a, Vec b) { return a.v > b.v; }
  static bool Ge(Vec a, Vec b) { return a.v >= b.v; }
  static bool Le(Vec a, Vec b) { return a.v <= b.v; }
  static bool Eq(Vec a, Vec b) { return a.v == b.v; }
  static Vec Select(bool mask, Vec a, Vec b) { return mask ? a : b; }

  double Sum() const { return v; }
  double Lane(size_t) const { return v; }
};

struct VecIdx {
  int64_t v;
  static constexpr size_t kLanes = 1;
  static VecIdx Set1(int64_t x) { return {x}; }
  static VecIdx Zero() { return {0}; }
  VecIdx operator+(VecIdx o) const { return {v + o.v}; }
  VecIdx AddWhere(bool mask, VecIdx add) const {
    return {v + (mask ? add.v : 0)};
  }
  int64_t Lane(size_t) const { return v; }
};


template <>
struct Vec<float> {
  float v;
  static constexpr size_t kLanes = 1;

  static Vec Load(const float* p) { return {*p}; }
  static Vec Set1(float x) { return {x}; }
  static Vec Zero() { return {0.0f}; }
  void Store(float* p) const { *p = v; }

  Vec operator+(Vec o) const { return {v + o.v}; }
  Vec operator-(Vec o) const { return {v - o.v}; }
  Vec operator*(Vec o) const { return {v * o.v}; }
  Vec operator/(Vec o) const { return {v / o.v}; }

  static Vec Min(Vec a, Vec b) { return {b.v < a.v ? b.v : a.v}; }
  static Vec Max(Vec a, Vec b) { return {a.v < b.v ? b.v : a.v}; }
  Vec Abs() const { return {std::fabs(v)}; }
  static bool Gt(Vec a, Vec b) { return a.v > b.v; }
  static Vec Select(bool mask, Vec a, Vec b) { return mask ? a : b; }

  float Lane(size_t) const { return v; }
};

inline Vec<double> Gather(const double* base, VecIdx idx) {
  return {base[idx.v]};
}

inline Vec<double> ToDouble(VecIdx idx) {
  return {static_cast<double>(idx.v)};
}

#endif

using VecD = Vec<double>;
using VecF = Vec<float>;
inline constexpr size_t kDoubleLanes = VecD::kLanes;

/// Branchless std::upper_bound over a sorted table: returns the number of
/// elements <= value (== upper_bound - begin). The iteration count
/// depends only on `n`, never on the data — which is what makes the
/// vectorized form below possible (all lanes share the control flow).
inline size_t UpperBoundIndex(const double* refs, size_t n, double value) {
  size_t base = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base += refs[base + half - 1] <= value ? half : 0;
    len -= half;
  }
  // One element left: the window holds the answer directly.
  return base + (n > 0 && refs[base] <= value ? 1 : 0);
}

/// Branchless std::lower_bound: the number of elements < value. Same
/// shape as UpperBoundIndex with a strict comparison.
inline size_t LowerBoundIndex(const double* refs, size_t n, double value) {
  size_t base = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base += refs[base + half - 1] < value ? half : 0;
    len -= half;
  }
  return base + (n > 0 && refs[base] < value ? 1 : 0);
}

/// Lane-parallel UpperBoundIndex: one gather + compare per level instead
/// of a data-dependent branchy descent per element.
inline VecIdx UpperBoundIndexV(const double* refs, size_t n, VecD value) {
  VecIdx base = VecIdx::Zero();
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    VecD probe = Gather(refs, base + VecIdx::Set1(static_cast<int64_t>(
                                        half - 1)));
    base = base.AddWhere(VecD::Le(probe, value), VecIdx::Set1(
                             static_cast<int64_t>(half)));
    len -= half;
  }
  if (n > 0) {
    VecD last = Gather(refs, base);
    base = base.AddWhere(VecD::Le(last, value), VecIdx::Set1(1));
  }
  return base;
}

/// Dot product. Vector accumulation reassociates the sum (lane-striped
/// plus a pairwise horizontal reduce), so results differ from the scalar
/// loop in the low bits: users (MLP/LSTM GEMM, LR logits) are
/// tolerance-gated, never bit-compared against scalar references.
inline double DotScalar(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

inline double Dot(const double* a, const double* b, size_t n) {
  if (VecD::kLanes == 1 || ForceScalarEnabled()) return DotScalar(a, b, n);
  VecD acc = VecD::Zero();
  size_t i = 0;
  for (; i + VecD::kLanes <= n; i += VecD::kLanes) {
    acc = acc + VecD::Load(a + i) * VecD::Load(b + i);
  }
  double sum = acc.Sum();
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

/// y[i] += alpha * x[i]. Elementwise — bit-identical to the scalar loop
/// on every backend (each lane is one mul and one add, no reassociation).
inline void Axpy(double alpha, const double* x, double* y, size_t n) {
  size_t i = 0;
  if (VecD::kLanes > 1 && !ForceScalarEnabled()) {
    const VecD va = VecD::Set1(alpha);
    for (; i + VecD::kLanes <= n; i += VecD::kLanes) {
      (VecD::Load(y + i) + va * VecD::Load(x + i)).Store(y + i);
    }
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// Fills n doubles with `value` (vectorized memset for scratch reuse).
inline void Fill(double* p, double value, size_t n) {
  size_t i = 0;
  if (VecD::kLanes > 1) {
    const VecD v = VecD::Set1(value);
    for (; i + VecD::kLanes <= n; i += VecD::kLanes) v.Store(p + i);
  }
  for (; i < n; ++i) p[i] = value;
}

}  // namespace simd
}  // namespace autofp

#endif  // AUTOFP_UTIL_SIMD_H_
