#ifndef AUTOFP_UTIL_CSV_H_
#define AUTOFP_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// A parsed CSV table: numeric matrix plus optional header names.
struct CsvTable {
  std::vector<std::string> header;
  Matrix values;
};

/// Parses a numeric CSV file. If `has_header` the first row is stored in
/// `header` and not parsed as data. All data cells must parse as doubles;
/// returns InvalidArgument otherwise. Empty files yield an empty table.
Result<CsvTable> ReadCsv(const std::string& path, bool has_header);

/// Parses CSV content from a string (same rules as ReadCsv).
Result<CsvTable> ParseCsv(const std::string& content, bool has_header);

/// Writes a matrix as CSV; `header` may be empty to omit the header row.
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header, const Matrix& values);

}  // namespace autofp

#endif  // AUTOFP_UTIL_CSV_H_
