#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace autofp {
namespace simd {

namespace {

/// Relaxed is enough: the flag is a test/bench toggle flipped while no
/// kernels run concurrently; production never touches it.
std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("AUTOFP_FORCE_SCALAR");
    return env != nullptr && std::strcmp(env, "0") != 0;
  }();
  return flag;
}

}  // namespace

bool ForceScalarEnabled() {
  return ForceScalarFlag().load(std::memory_order_relaxed);
}

void SetForceScalar(bool force) {
  ForceScalarFlag().store(force, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace autofp
