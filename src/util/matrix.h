#ifndef AUTOFP_UTIL_MATRIX_H_
#define AUTOFP_UTIL_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <vector>

#include "util/aligned.h"
#include "util/logging.h"

namespace autofp {

/// Dense matrix of doubles. The workhorse container for feature tables:
/// rows are samples, columns are features. Deliberately minimal — models
/// and preprocessors implement their own math on top of raw access.
///
/// Two storage layouts (DESIGN.md "Kernel layer and memory layout"):
///   - kRowMajor (default): element (r, c) at data[r * cols + c]. The
///     layout models consume (RowPtr) and every persistent matrix uses.
///   - kColMajor: element (r, c) at data[c * rows + r]. Used by the
///     transform data plane's working buffers so per-column kernel
///     passes are contiguous instead of cols-strided.
/// Layout is a storage property only: logical content, equality and
/// serialization are layout-independent.
///
/// A Matrix can also *borrow* read-only storage it does not own
/// (WrapConstRowMajor) — the zero-copy path for mmap'd shared datasets.
/// Borrowed matrices serve all const accessors; mutating accessors
/// CHECK-fail, and copying one materializes an owned deep copy (value
/// semantics are preserved everywhere else in the codebase).
class Matrix {
 public:
  enum class Layout { kRowMajor, kColMajor };

  /// Unowned view of one column: `data[i * stride]` is row i. Stride is 1
  /// for column-major storage (the contiguous fast path) and cols() for
  /// row-major.
  struct ColumnSpan {
    double* data;
    size_t stride;
    size_t rows;
    double& operator[](size_t i) const { return data[i * stride]; }
  };
  struct ConstColumnSpan {
    const double* data;
    size_t stride;
    size_t rows;
    double operator[](size_t i) const { return data[i * stride]; }
  };

  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer lists; all rows must have the
  /// same length. Intended for tests and small literals.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Copying a borrowed matrix materializes an owned copy; copying an
  /// owned matrix copies storage as before.
  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept = default;
  Matrix& operator=(Matrix&& other) noexcept = default;

  /// Borrow external row-major storage (rows * cols doubles) without
  /// copying. `backing` keeps the storage alive (e.g. an mmap handle) and
  /// travels with the matrix; pass nullptr when the caller guarantees
  /// lifetime. The result is read-only: mutating accessors CHECK-fail.
  static Matrix WrapConstRowMajor(const double* data, size_t rows,
                                  size_t cols,
                                  std::shared_ptr<const void> backing);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  Layout layout() const { return layout_; }
  bool borrowed() const { return view_ != nullptr; }

  double& operator()(size_t r, size_t c) {
    AUTOFP_CHECK_LT(r, rows_);
    AUTOFP_CHECK_LT(c, cols_);
    return MutableRaw()[Index(r, c)];
  }
  double operator()(size_t r, size_t c) const {
    AUTOFP_CHECK_LT(r, rows_);
    AUTOFP_CHECK_LT(c, cols_);
    return Raw()[Index(r, c)];
  }

  /// Flat storage pointers (layout order). Raw() works for borrowed
  /// matrices; MutableRaw() requires owned storage.
  const double* Raw() const { return view_ != nullptr ? view_ : data_.data(); }
  double* MutableRaw() {
    AUTOFP_CHECK(view_ == nullptr) << "mutating a borrowed matrix";
    return data_.data();
  }

  /// Unchecked raw row access for hot loops. Row-major only.
  double* RowPtr(size_t r) {
    AUTOFP_CHECK(layout_ == Layout::kRowMajor);
    return MutableRaw() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    AUTOFP_CHECK(layout_ == Layout::kRowMajor);
    return Raw() + r * cols_;
  }

  /// Contiguous column pointer. Column-major only.
  double* ColPtr(size_t c) {
    AUTOFP_CHECK(layout_ == Layout::kColMajor);
    return MutableRaw() + c * rows_;
  }
  const double* ColPtr(size_t c) const {
    AUTOFP_CHECK(layout_ == Layout::kColMajor);
    return Raw() + c * rows_;
  }

  /// Layout-aware column accessors: stride 1 when column-major.
  ColumnSpan Col(size_t c) {
    AUTOFP_CHECK_LT(c, cols_);
    return layout_ == Layout::kColMajor
               ? ColumnSpan{MutableRaw() + c * rows_, 1, rows_}
               : ColumnSpan{MutableRaw() + c, cols_, rows_};
  }
  ConstColumnSpan Col(size_t c) const {
    AUTOFP_CHECK_LT(c, cols_);
    return layout_ == Layout::kColMajor
               ? ConstColumnSpan{Raw() + c * rows_, 1, rows_}
               : ConstColumnSpan{Raw() + c, cols_, rows_};
  }

  /// Owned storage access (serialization, wire decode, tests). Borrowed
  /// matrices CHECK-fail: use Raw(). Elements are in layout order.
  AlignedVector<double>& data() {
    AUTOFP_CHECK(view_ == nullptr) << "mutating a borrowed matrix";
    return data_;
  }
  const AlignedVector<double>& data() const {
    AUTOFP_CHECK(view_ == nullptr) << "data() on a borrowed matrix";
    return data_;
  }

  /// Reshapes to rows x cols without initializing the new contents
  /// (existing element values are unspecified afterwards). Keeps the
  /// allocation when capacity suffices, so a reused scratch matrix stops
  /// allocating once it has seen its largest shape. The three-argument
  /// form also sets the storage layout; the two-argument form keeps it.
  void Resize(size_t rows, size_t cols);
  void Resize(size_t rows, size_t cols, Layout layout);

  /// Copies the logical content of `src` into *this with storage layout
  /// `layout` (a transpose-copy when layouts differ). Reuses capacity.
  /// `src` must not alias this matrix.
  void AssignWithLayout(const Matrix& src, Layout layout);

  /// Returns a copy of column c (row order).
  std::vector<double> Column(size_t c) const;

  /// Overwrites column c with `values` (must have rows() entries).
  void SetColumn(size_t c, const std::vector<double>& values);

  /// Returns the sub-matrix consisting of the given row indices, in order.
  /// Row-major only.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// SelectRows into a caller-provided destination (resized to fit), so a
  /// hot loop can reuse one buffer. `out` must not alias this matrix.
  void SelectRowsInto(const std::vector<size_t>& indices, Matrix* out) const;

  /// Appends the rows of `other` (must have identical column count,
  /// unless this matrix is empty). Row-major only.
  void AppendRows(const Matrix& other);

  /// Move form: when this matrix is empty, adopts `other`'s storage
  /// instead of copying it.
  void AppendRows(Matrix&& other);

  /// Logical equality: same shape and element values, regardless of
  /// storage layout or ownership.
  bool operator==(const Matrix& other) const;

 private:
  size_t Index(size_t r, size_t c) const {
    return layout_ == Layout::kRowMajor ? r * cols_ + c : c * rows_ + r;
  }

  size_t rows_;
  size_t cols_;
  Layout layout_ = Layout::kRowMajor;
  AlignedVector<double> data_;
  /// Borrowed storage (zero-copy views); nullptr when owned.
  const double* view_ = nullptr;
  std::shared_ptr<const void> backing_;
};

}  // namespace autofp

#endif  // AUTOFP_UTIL_MATRIX_H_
