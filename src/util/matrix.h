#ifndef AUTOFP_UTIL_MATRIX_H_
#define AUTOFP_UTIL_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/logging.h"

namespace autofp {

/// Dense row-major matrix of doubles. The workhorse container for feature
/// tables: rows are samples, columns are features. Deliberately minimal —
/// models and preprocessors implement their own math on top of raw access.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer lists; all rows must have the
  /// same length. Intended for tests and small literals.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    AUTOFP_CHECK_LT(r, rows_);
    AUTOFP_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    AUTOFP_CHECK_LT(r, rows_);
    AUTOFP_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked raw access for hot loops.
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Reshapes to rows x cols without initializing the new contents
  /// (existing element values are unspecified afterwards). Keeps the
  /// allocation when capacity suffices, so a reused scratch matrix stops
  /// allocating once it has seen its largest shape.
  void Resize(size_t rows, size_t cols);

  /// Returns a copy of column c.
  std::vector<double> Column(size_t c) const;

  /// Overwrites column c with `values` (must have rows() entries).
  void SetColumn(size_t c, const std::vector<double>& values);

  /// Returns the sub-matrix consisting of the given row indices, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// SelectRows into a caller-provided destination (resized to fit), so a
  /// hot loop can reuse one buffer. `out` must not alias this matrix.
  void SelectRowsInto(const std::vector<size_t>& indices, Matrix* out) const;

  /// Appends the rows of `other` (must have identical column count,
  /// unless this matrix is empty).
  void AppendRows(const Matrix& other);

  /// Move form: when this matrix is empty, adopts `other`'s storage
  /// instead of copying it.
  void AppendRows(Matrix&& other);

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace autofp

#endif  // AUTOFP_UTIL_MATRIX_H_
