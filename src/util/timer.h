#ifndef AUTOFP_UTIL_TIMER_H_
#define AUTOFP_UTIL_TIMER_H_

#include <chrono>

namespace autofp {

/// Monotonic stopwatch. Starts on construction; Elapsed() returns seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace autofp

#endif  // AUTOFP_UTIL_TIMER_H_
