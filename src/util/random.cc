#include "util/random.h"

#include <numeric>

namespace autofp {

size_t Rng::Categorical(const std::vector<double>& weights) {
  AUTOFP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AUTOFP_CHECK_GE(w, 0.0) << "Categorical weights must be non-negative";
    total += w;
  }
  if (total <= 0.0) return UniformIndex(weights.size());
  double draw = Uniform(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (draw < cumulative) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  Shuffle(&perm);
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  AUTOFP_CHECK_LE(k, n);
  // Partial Fisher-Yates: only the first k draws are materialized.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformIndex(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace autofp
