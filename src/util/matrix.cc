#include "util/matrix.h"

#include <algorithm>
#include <cstring>

namespace autofp {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  if (rows_ == 0) return;
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    AUTOFP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::vector<double> Matrix::Column(size_t c) const {
  AUTOFP_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::SetColumn(size_t c, const std::vector<double>& values) {
  AUTOFP_CHECK_LT(c, cols_);
  AUTOFP_CHECK_EQ(values.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    AUTOFP_CHECK_LT(indices[i], rows_);
    std::memcpy(out.RowPtr(i), RowPtr(indices[i]), cols_ * sizeof(double));
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (empty() && rows_ == 0) {
    *this = other;
    return;
  }
  AUTOFP_CHECK_EQ(cols_, other.cols_) << "column count mismatch";
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

}  // namespace autofp
