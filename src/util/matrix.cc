#include "util/matrix.h"

#include <algorithm>
#include <utility>

namespace autofp {

namespace {

/// Block edge for the transpose copy: 32x32 doubles = 8 KiB working set,
/// comfortably inside L1 for source plus destination blocks.
constexpr size_t kTransposeBlock = 32;

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  if (rows_ == 0) return;
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    AUTOFP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), layout_(other.layout_) {
  if (other.view_ != nullptr) {
    // Copying a borrowed matrix materializes owned storage.
    data_.assign(other.view_, other.view_ + rows_ * cols_);
  } else {
    data_ = other.data_;
  }
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  layout_ = other.layout_;
  view_ = nullptr;
  backing_.reset();
  if (other.view_ != nullptr) {
    data_.assign(other.view_, other.view_ + rows_ * cols_);
  } else {
    data_ = other.data_;
  }
  return *this;
}

Matrix Matrix::WrapConstRowMajor(const double* data, size_t rows, size_t cols,
                                 std::shared_ptr<const void> backing) {
  AUTOFP_CHECK(data != nullptr || rows * cols == 0);
  Matrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.layout_ = Layout::kRowMajor;
  out.view_ = data;
  out.backing_ = std::move(backing);
  return out;
}

void Matrix::Resize(size_t rows, size_t cols) { Resize(rows, cols, layout_); }

void Matrix::Resize(size_t rows, size_t cols, Layout layout) {
  view_ = nullptr;
  backing_.reset();
  rows_ = rows;
  cols_ = cols;
  layout_ = layout;
  data_.resize(rows * cols);
}

void Matrix::AssignWithLayout(const Matrix& src, Layout layout) {
  AUTOFP_CHECK(&src != this) << "AssignWithLayout source aliases destination";
  Resize(src.rows_, src.cols_, layout);
  const double* in = src.Raw();
  double* out = data_.data();
  if (src.layout_ == layout) {
    std::copy(in, in + rows_ * cols_, out);
    return;
  }
  // Transpose copy, blocked so both access patterns stay cache-resident.
  // Express both layouts as row-major shapes: transposing an R x C
  // row-major image into C x R row-major covers every layout pair.
  const bool src_row_major = src.layout_ == Layout::kRowMajor;
  const size_t in_rows = src_row_major ? rows_ : cols_;
  const size_t in_cols = src_row_major ? cols_ : rows_;
  for (size_t rb = 0; rb < in_rows; rb += kTransposeBlock) {
    const size_t r_end = std::min(in_rows, rb + kTransposeBlock);
    for (size_t cb = 0; cb < in_cols; cb += kTransposeBlock) {
      const size_t c_end = std::min(in_cols, cb + kTransposeBlock);
      for (size_t r = rb; r < r_end; ++r) {
        for (size_t c = cb; c < c_end; ++c) {
          out[c * in_rows + r] = in[r * in_cols + c];
        }
      }
    }
  }
}

std::vector<double> Matrix::Column(size_t c) const {
  AUTOFP_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  const ConstColumnSpan col = Col(c);
  for (size_t r = 0; r < rows_; ++r) out[r] = col[r];
  return out;
}

void Matrix::SetColumn(size_t c, const std::vector<double>& values) {
  AUTOFP_CHECK_LT(c, cols_);
  AUTOFP_CHECK_EQ(values.size(), rows_);
  const ColumnSpan col = Col(c);
  for (size_t r = 0; r < rows_; ++r) col[r] = values[r];
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out;
  SelectRowsInto(indices, &out);
  return out;
}

void Matrix::SelectRowsInto(const std::vector<size_t>& indices,
                            Matrix* out) const {
  AUTOFP_CHECK(out != this) << "SelectRowsInto destination aliases source";
  out->Resize(indices.size(), cols_, Layout::kRowMajor);
  for (size_t i = 0; i < indices.size(); ++i) {
    AUTOFP_CHECK_LT(indices[i], rows_);
    const double* src = RowPtr(indices[i]);
    std::copy(src, src + cols_, out->RowPtr(i));
  }
}

void Matrix::AppendRows(const Matrix& other) {
  if (empty() && rows_ == 0) {
    *this = other;
    return;
  }
  AUTOFP_CHECK_EQ(cols_, other.cols_) << "column count mismatch";
  AUTOFP_CHECK(layout_ == Layout::kRowMajor);
  AUTOFP_CHECK(view_ == nullptr) << "appending to a borrowed matrix";
  data_.reserve(data_.size() + other.size());
  for (size_t r = 0; r < other.rows_; ++r) {
    const double* src = other.RowPtr(r);
    data_.insert(data_.end(), src, src + other.cols_);
  }
  rows_ += other.rows_;
}

void Matrix::AppendRows(Matrix&& other) {
  if (empty() && rows_ == 0) {
    *this = std::move(other);
    return;
  }
  AppendRows(other);
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  if (layout_ == other.layout_) {
    const double* a = Raw();
    const double* b = other.Raw();
    return std::equal(a, a + size(), b);
  }
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      if ((*this)(r, c) != other(r, c)) return false;
    }
  }
  return true;
}

}  // namespace autofp
