#include "util/matrix.h"

#include <algorithm>
#include <utility>

namespace autofp {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  if (rows_ == 0) return;
  cols_ = rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    AUTOFP_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

std::vector<double> Matrix::Column(size_t c) const {
  AUTOFP_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::SetColumn(size_t c, const std::vector<double>& values) {
  AUTOFP_CHECK_LT(c, cols_);
  AUTOFP_CHECK_EQ(values.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out;
  SelectRowsInto(indices, &out);
  return out;
}

void Matrix::SelectRowsInto(const std::vector<size_t>& indices,
                            Matrix* out) const {
  AUTOFP_CHECK(out != this) << "SelectRowsInto destination aliases source";
  out->Resize(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    AUTOFP_CHECK_LT(indices[i], rows_);
    const double* src = RowPtr(indices[i]);
    std::copy(src, src + cols_, out->RowPtr(i));
  }
}

void Matrix::AppendRows(const Matrix& other) {
  if (empty() && rows_ == 0) {
    *this = other;
    return;
  }
  AUTOFP_CHECK_EQ(cols_, other.cols_) << "column count mismatch";
  data_.reserve(data_.size() + other.data_.size());
  for (size_t r = 0; r < other.rows_; ++r) {
    const double* src = other.RowPtr(r);
    data_.insert(data_.end(), src, src + other.cols_);
  }
  rows_ += other.rows_;
}

void Matrix::AppendRows(Matrix&& other) {
  if (empty() && rows_ == 0) {
    *this = std::move(other);
    return;
  }
  AppendRows(other);
}

}  // namespace autofp
