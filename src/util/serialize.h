#ifndef AUTOFP_UTIL_SERIALIZE_H_
#define AUTOFP_UTIL_SERIALIZE_H_

/// Binary stream helpers for fitted-state blobs (Preprocessor::SaveState,
/// Classifier::SaveState and the artifact format in src/serve/). The
/// encoding is host-endian and field-by-field (never raw struct bytes, so
/// padding can't leak nondeterminism into artifacts). Readers return false
/// on exhaustion or implausible lengths instead of throwing or allocating
/// unbounded memory; callers turn that into a typed Status.

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/matrix.h"

namespace autofp {

/// Upper bound on one serialized vector/string, far above any real fitted
/// state. A declared length beyond it is corruption (or a version bug),
/// not data — reading it would only manufacture a giant allocation.
inline constexpr uint64_t kMaxSerializedElements = 1ull << 28;

template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

template <typename T, typename Alloc>
void WriteVec(std::ostream& out, const std::vector<T, Alloc>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, values.size());
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(T)));
  }
}

template <typename T, typename Alloc>
bool ReadVec(std::istream& in, std::vector<T, Alloc>* values) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count > kMaxSerializedElements) return false;
  values->resize(count);
  if (count == 0) return true;
  const std::streamsize bytes =
      static_cast<std::streamsize>(count * sizeof(T));
  in.read(reinterpret_cast<char*>(values->data()), bytes);
  return in.gcount() == bytes;
}

inline void WriteString(std::ostream& out, const std::string& value) {
  WritePod<uint64_t>(out, value.size());
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

inline bool ReadString(std::istream& in, std::string* value) {
  uint64_t size = 0;
  if (!ReadPod(in, &size) || size > kMaxSerializedElements) return false;
  value->resize(size);
  if (size == 0) return true;
  in.read(value->data(), static_cast<std::streamsize>(size));
  return in.gcount() == static_cast<std::streamsize>(size);
}

/// Matrices serialize in row-major element order regardless of the
/// in-memory layout, so artifacts stay byte-stable when the data plane
/// stages column-major working copies.
inline void WriteMatrix(std::ostream& out, const Matrix& matrix) {
  WritePod<uint64_t>(out, matrix.rows());
  WritePod<uint64_t>(out, matrix.cols());
  WritePod<uint64_t>(out, matrix.size());
  if (matrix.empty()) return;
  if (matrix.layout() == Matrix::Layout::kRowMajor) {
    out.write(reinterpret_cast<const char*>(matrix.Raw()),
              static_cast<std::streamsize>(matrix.size() * sizeof(double)));
    return;
  }
  for (size_t r = 0; r < matrix.rows(); ++r) {
    for (size_t c = 0; c < matrix.cols(); ++c) {
      WritePod<double>(out, matrix(r, c));
    }
  }
}

inline bool ReadMatrix(std::istream& in, Matrix* matrix) {
  uint64_t rows = 0, cols = 0, count = 0;
  if (!ReadPod(in, &rows) || !ReadPod(in, &cols) || !ReadPod(in, &count)) {
    return false;
  }
  if (count > kMaxSerializedElements || rows * cols != count ||
      (cols != 0 && rows > kMaxSerializedElements / cols)) {
    return false;
  }
  Matrix out_matrix;
  out_matrix.Resize(rows, cols, Matrix::Layout::kRowMajor);
  if (count != 0) {
    const std::streamsize bytes =
        static_cast<std::streamsize>(count * sizeof(double));
    in.read(reinterpret_cast<char*>(out_matrix.MutableRaw()), bytes);
    if (in.gcount() != bytes) return false;
  }
  *matrix = std::move(out_matrix);
  return true;
}

}  // namespace autofp

#endif  // AUTOFP_UTIL_SERIALIZE_H_
