#ifndef AUTOFP_UTIL_LOGGING_H_
#define AUTOFP_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace autofp {

/// Internal helper that aborts the process with a formatted message.
/// Used by the CHECK family of macros; not intended for direct use.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

namespace internal {

/// Stream collector so CHECK(x) << "context" works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace autofp

/// Aborts with a diagnostic if `condition` is false. Active in all builds:
/// these guard programmer errors (API misuse), not recoverable conditions.
#define AUTOFP_CHECK(condition)                                             \
  if (condition) {                                                          \
  } else                                                                    \
    ::autofp::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define AUTOFP_CHECK_EQ(a, b) AUTOFP_CHECK((a) == (b))
#define AUTOFP_CHECK_NE(a, b) AUTOFP_CHECK((a) != (b))
#define AUTOFP_CHECK_LT(a, b) AUTOFP_CHECK((a) < (b))
#define AUTOFP_CHECK_LE(a, b) AUTOFP_CHECK((a) <= (b))
#define AUTOFP_CHECK_GT(a, b) AUTOFP_CHECK((a) > (b))
#define AUTOFP_CHECK_GE(a, b) AUTOFP_CHECK((a) >= (b))

#endif  // AUTOFP_UTIL_LOGGING_H_
