#ifndef AUTOFP_UTIL_ALIGNED_H_
#define AUTOFP_UTIL_ALIGNED_H_

/// Cache-line-aligned storage for the data plane. Matrix (util/matrix.h)
/// keeps its elements in an AlignedVector so every matrix starts on a
/// 64-byte boundary: whole cache lines per vector load, no straddle on
/// the first lane, and a stable base for the columnar layout's
/// per-column pointers. Alignment is a performance property only — the
/// SIMD wrapper (util/simd.h) uses unaligned loads, so code stays
/// correct on any interior offset.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace autofp {

template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    // Size must be a multiple of the alignment for std::aligned_alloc.
    const std::size_t bytes = (n * sizeof(T) + Alignment - 1) / Alignment *
                              Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// The storage type of Matrix and of kernels' reusable scratch buffers.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace autofp

#endif  // AUTOFP_UTIL_ALIGNED_H_
