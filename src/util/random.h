#ifndef AUTOFP_UTIL_RANDOM_H_
#define AUTOFP_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace autofp {

/// Deterministic random number generator used throughout the library.
/// Every stochastic component takes an explicit seed so that experiments
/// are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    AUTOFP_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    AUTOFP_CHECK_GT(n, 0u);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal deviate scaled to (mean, stddev).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index proportionally to non-negative `weights`.
  /// If all weights are zero, samples uniformly.
  size_t Categorical(const std::vector<double>& weights);

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// Samples k distinct indices from [0, n) without replacement (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle of an arbitrary vector.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Derives a child generator; used to give sub-components independent
  /// yet reproducible streams.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autofp

#endif  // AUTOFP_UTIL_RANDOM_H_
