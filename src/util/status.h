#ifndef AUTOFP_UTIL_STATUS_H_
#define AUTOFP_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace autofp {

/// Error category for recoverable failures (I/O, parsing, bad user input).
/// Programmer errors use AUTOFP_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kInternal,
};

/// Lightweight success-or-error value, in the style of arrow::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kIoError:
        return "IoError";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kInternal:
        return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Accessing the value of an errored
/// Result is a programmer error and aborts.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {    // NOLINT(runtime/explicit)
    AUTOFP_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AUTOFP_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& value() & {
    AUTOFP_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AUTOFP_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace autofp

#endif  // AUTOFP_UTIL_STATUS_H_
