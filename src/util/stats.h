#ifndef AUTOFP_UTIL_STATS_H_
#define AUTOFP_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace autofp {

/// Descriptive statistics used by preprocessors, meta-features and the
/// synthetic generators. All functions tolerate empty input by returning 0
/// unless documented otherwise.

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population variance (divides by n); 0 for fewer than 2 values.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Fisher-Pearson skewness g1 (biased, scipy.stats.skew default);
/// 0 when the standard deviation is 0.
double Skewness(const std::vector<double>& values);

/// Excess kurtosis g2 (biased, scipy.stats.kurtosis default);
/// 0 when the standard deviation is 0.
double Kurtosis(const std::vector<double>& values);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
/// Matches numpy.quantile's default "linear" interpolation.
double Quantile(std::vector<double> values, double q);

/// Same but assumes `sorted_values` is already ascending (no copy).
double QuantileSorted(const std::vector<double>& sorted_values, double q);

/// Shannon entropy (natural log) of a discrete distribution given by
/// non-negative counts; matches scipy.stats.entropy on normalized counts.
double Entropy(const std::vector<double>& counts);

/// Pearson correlation; 0 if either side has no variance.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Mean and standard deviation in a single pass.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9). p must be in (0, 1).
double NormalInverseCdf(double p);

/// CDF of the standard normal distribution.
double NormalCdf(double x);

}  // namespace autofp

#endif  // AUTOFP_UTIL_STATS_H_
