#include "util/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace autofp {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& content, bool has_header) {
  CsvTable table;
  std::stringstream stream(content);
  std::string line;
  std::vector<std::vector<double>> rows;
  size_t line_number = 0;
  size_t expected_cols = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitLine(line);
    if (line_number == 1 && has_header) {
      table.header = cells;
      expected_cols = cells.size();
      continue;
    }
    if (expected_cols == 0) expected_cols = cells.size();
    if (cells.size() != expected_cols) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected " +
                                     std::to_string(expected_cols) +
                                     " cells, got " +
                                     std::to_string(cells.size()));
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const std::string& cell : cells) {
      char* end = nullptr;
      double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": non-numeric cell '" + cell + "'");
      }
      row.push_back(value);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    table.values = Matrix();
    return table;
  }
  Matrix values(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) values(r, c) = rows[r][c];
  }
  table.values = std::move(values);
  return table;
}

Result<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), has_header);
}

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header, const Matrix& values) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "' for writing");
  if (!header.empty()) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (i > 0) file << ',';
      file << header[i];
    }
    file << '\n';
  }
  for (size_t r = 0; r < values.rows(); ++r) {
    for (size_t c = 0; c < values.cols(); ++c) {
      if (c > 0) file << ',';
      file << values(r, c);
    }
    file << '\n';
  }
  if (!file) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace autofp
