#ifndef AUTOFP_UTIL_FS_H_
#define AUTOFP_UTIL_FS_H_

/// Durable-file helpers shared by the run journal, the artifact writer
/// and the distributed shared-dataset file. POSIX gives two separate
/// durability promises: fsync(fd) persists a file's *content*, but the
/// file's *existence* (its directory entry) lives in the parent
/// directory and needs its own fsync — a machine crash right after
/// creating a freshly fsync'd file can otherwise lose the file itself.

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/status.h"

namespace autofp {

/// Directory component of `path` ("." when there is none).
inline std::string ParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsyncs the directory containing `path`, making the file's directory
/// entry (creation, rename) as durable as its fsync'd content.
inline Status FsyncParentDirectory(const std::string& path) {
  const std::string dir = ParentDirectory(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory '" + dir +
                           "' for fsync: " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync of directory '" + dir +
                           "' failed: " + std::strerror(saved_errno));
  }
  return Status::OK();
}

/// Writes `bytes` to `path` atomically and durably: the content lands in
/// a temp file in the same directory, is fsync'd, then renamed over
/// `path`, and the parent directory is fsync'd. Readers never observe a
/// torn file — they see either the old content or the complete new one.
inline Status WriteFileAtomic(const std::string& path,
                              const std::string& bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create temp file '" + tmp +
                           "': " + std::strerror(errno));
  }
  const char* data = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      int saved_errno = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("short write to '" + tmp +
                             "': " + std::strerror(saved_errno));
    }
    data += written;
    remaining -= static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0) {
    int saved_errno = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("fsync of '" + tmp +
                           "' failed: " + std::strerror(saved_errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved_errno = errno;
    ::unlink(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path +
                           "': " + std::strerror(saved_errno));
  }
  return FsyncParentDirectory(path);
}

}  // namespace autofp

#endif  // AUTOFP_UTIL_FS_H_
