#include "dist/worker.h"

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/run_journal.h"
#include "preprocess/transform_cache.h"

namespace autofp {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Parses one hook spec: either "N" (applies to every worker) or
/// "I=N[,J=M,...]" (per worker index). Absent/unmatched -> -1.
long ParseHookSpec(const char* spec, int worker_index) {
  if (spec == nullptr || *spec == '\0') return -1;
  if (std::strchr(spec, '=') == nullptr) return std::atol(spec);
  const char* cursor = spec;
  while (*cursor != '\0') {
    char* end = nullptr;
    long index = std::strtol(cursor, &end, 10);
    if (end == cursor || *end != '=') return -1;  // malformed: disable.
    cursor = end + 1;
    long value = std::strtol(cursor, &end, 10);
    if (end == cursor) return -1;
    if (index == worker_index) return value;
    cursor = (*end == ',') ? end + 1 : end;
  }
  return -1;
}

/// Sleeps for `seconds`, polling the channel for coordinator death every
/// ~100ms so a revoked straggler exits within one poll interval of its
/// coordinator disappearing.
bool StallWatchingPeer(FrameChannel* channel, double seconds) {
  const double end = MonotonicSeconds() + seconds;
  while (MonotonicSeconds() < end) {
    if (channel->PeerClosed()) return false;  // coordinator died.
    ::usleep(100 * 1000);
  }
  return true;
}

}  // namespace

WorkerHooks WorkerHooksFromEnv(int worker_index) {
  WorkerHooks hooks;
  hooks.crash_after_results =
      ParseHookSpec(std::getenv("AUTOFP_WORKER_CRASH_AFTER_EVALS"),
                    worker_index);
  hooks.stall_after_results =
      ParseHookSpec(std::getenv("AUTOFP_WORKER_STALL_AFTER_EVALS"),
                    worker_index);
  const char* stall_seconds = std::getenv("AUTOFP_WORKER_STALL_SECONDS");
  if (stall_seconds != nullptr && *stall_seconds != '\0') {
    hooks.stall_seconds = std::atof(stall_seconds);
  }
  return hooks;
}

int RunDistWorker(int fd, int worker_index, uint64_t dataset_fingerprint,
                  EvaluatorInterface* evaluator, const WorkerHooks& hooks) {
  FrameChannel channel(fd);
  TransformScratch scratch;
  long results_sent = 0;
  bool stalled_once = false;

  DistHello hello;
  hello.pid = static_cast<int32_t>(::getpid());
  hello.worker_index = static_cast<uint32_t>(worker_index);
  hello.dataset_fingerprint = dataset_fingerprint;
  std::string bytes;
  EncodeHelloFrame(hello, &bytes);
  if (!channel.Send(bytes)) return 0;  // coordinator already gone.

  for (;;) {
    Frame frame;
    switch (channel.Recv(&frame)) {
      case FrameChannel::RecvOutcome::kClosed:
        return 0;  // orphaned: coordinator died, exit cleanly.
      case FrameChannel::RecvOutcome::kBad:
        return 1;  // desynced coordinator stream; nothing to salvage.
      case FrameChannel::RecvOutcome::kTimeout:
        continue;
      case FrameChannel::RecvOutcome::kFrame:
        break;
    }

    if (frame.type == static_cast<uint8_t>(DistFrameType::kShutdown)) {
      return 0;
    }
    DistLease lease;
    if (!DecodeLeaseFrame(frame, &lease)) return 1;

    for (size_t i = 0; i < lease.requests.size(); ++i) {
      // A revoked worker whose replacement already took the lease should
      // not keep burning CPU once its coordinator is gone.
      if (channel.PeerClosed()) return 0;
      const EvalRequest& request = lease.requests[i];

      const double start = MonotonicSeconds();
      Evaluation evaluation = evaluator->Evaluate(request, &scratch);
      const double elapsed = MonotonicSeconds() - start;

      if (!stalled_once && hooks.stall_after_results >= 0 &&
          results_sent >= hooks.stall_after_results) {
        stalled_once = true;
        if (!StallWatchingPeer(&channel, hooks.stall_seconds)) return 0;
      }

      DistResult result;
      result.lease_id = lease.lease_id;
      result.generation = lease.generation;
      result.offset = static_cast<uint32_t>(i);
      result.record = MakeJournalRecord(evaluation, request.seed, elapsed);
      bytes.clear();
      EncodeResultFrame(result, &bytes);
      if (!channel.Send(bytes)) return 0;  // coordinator died mid-lease.
      ++results_sent;

      if (hooks.crash_after_results > 0 &&
          results_sent >= hooks.crash_after_results) {
        std::_Exit(kWorkerCrashExitCode);
      }
    }

    DistLeaseDone done;
    done.lease_id = lease.lease_id;
    done.generation = lease.generation;
    bytes.clear();
    EncodeLeaseDoneFrame(done, &bytes);
    if (!channel.Send(bytes)) return 0;
  }
}

}  // namespace autofp
