#include "dist/shared_dataset.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "core/run_journal.h"
#include "util/fs.h"

namespace autofp {
namespace {

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Bounds-checked cursor over the mapped bytes.
struct MapCursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  template <typename T>
  bool Read(T* value) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(value, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t count) {
    if (size - pos < count) return false;
    std::memcpy(out, data + pos, count);
    pos += count;
    return true;
  }
};

}  // namespace

Status WriteSharedDataset(const std::string& path, const Dataset& dataset) {
  std::string bytes;
  const uint64_t rows = dataset.features.rows();
  const uint64_t cols = dataset.features.cols();
  bytes.reserve(128 + dataset.name.size() + rows * cols * sizeof(double) +
                rows * sizeof(int32_t));
  AppendPod(&bytes, kSharedDatasetMagic);
  AppendPod(&bytes, kSharedDatasetVersion);
  AppendPod(&bytes, DatasetFingerprint(dataset));
  AppendPod(&bytes, static_cast<uint32_t>(dataset.num_classes));
  AppendPod(&bytes, rows);
  AppendPod(&bytes, cols);
  AppendPod(&bytes, static_cast<uint32_t>(dataset.name.size()));
  bytes.append(dataset.name);
  // Pad so the feature block sits at a 64-byte file offset (the reader
  // maps it in place; see the header layout doc). Derivable from the
  // header, so nothing extra is stored.
  bytes.append((kSharedDatasetAlign - bytes.size() % kSharedDatasetAlign) %
                   kSharedDatasetAlign,
               '\0');
  if (dataset.features.layout() == Matrix::Layout::kRowMajor) {
    bytes.append(reinterpret_cast<const char*>(dataset.features.Raw()),
                 static_cast<size_t>(rows * cols) * sizeof(double));
  } else {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        AppendPod(&bytes, dataset.features(r, c));
      }
    }
  }
  for (int label : dataset.labels) {
    AppendPod(&bytes, static_cast<int32_t>(label));
  }
  AppendPod(&bytes, Crc32(bytes.data(), bytes.size()));
  return WriteFileAtomic(path, bytes);
}

Result<Dataset> MapSharedDataset(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open shared dataset '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved_errno = errno;
    ::close(fd);
    return Status::IoError("cannot stat shared dataset '" + path +
                           "': " + std::strerror(saved_errno));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < 40 + sizeof(uint32_t)) {
    ::close(fd);
    return Status::InvalidArgument("shared dataset '" + path +
                                   "' is too short to be valid");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference.
  if (mapped == MAP_FAILED) {
    return Status::IoError("cannot mmap shared dataset '" + path +
                           "': " + std::strerror(errno));
  }
  // The mapping's owner from here on: released when the last reference
  // (an error path below, or the returned feature matrix's backing)
  // goes away.
  std::shared_ptr<const void> backing(
      mapped, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });
  const char* data = static_cast<const char*>(mapped);

  auto fail = [&](const std::string& message) -> Result<Dataset> {
    return Status::InvalidArgument("shared dataset '" + path +
                                   "': " + message);
  };

  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data + size - sizeof(uint32_t), sizeof(uint32_t));
  if (Crc32(data, size - sizeof(uint32_t)) != stored_crc) {
    return fail("checksum mismatch (corrupt or truncated)");
  }

  MapCursor cursor{data, size - sizeof(uint32_t)};
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  uint32_t num_classes = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint32_t name_len = 0;
  if (!cursor.Read(&magic) || magic != kSharedDatasetMagic) {
    return fail("bad magic (not a shared dataset file)");
  }
  if (!cursor.Read(&version) || version != kSharedDatasetVersion) {
    return fail("unsupported version");
  }
  if (!cursor.Read(&fingerprint) || !cursor.Read(&num_classes) ||
      !cursor.Read(&rows) || !cursor.Read(&cols) ||
      !cursor.Read(&name_len)) {
    return fail("truncated header");
  }
  Dataset dataset;
  dataset.name.resize(name_len);
  if (!cursor.ReadBytes(dataset.name.data(), name_len)) {
    return fail("truncated name");
  }
  dataset.num_classes = static_cast<int>(num_classes);
  const uint64_t cells = rows * cols;
  if (cols != 0 && cells / cols != rows) return fail("shape overflow");
  // Skip the writer's alignment padding (all zeros by construction, not
  // re-checked: the CRC already covered it).
  const size_t pad = (kSharedDatasetAlign - cursor.pos % kSharedDatasetAlign) %
                     kSharedDatasetAlign;
  if (cursor.size - cursor.pos < pad) return fail("truncated padding");
  cursor.pos += pad;
  const size_t feature_bytes = static_cast<size_t>(cells) * sizeof(double);
  if (cursor.size - cursor.pos < feature_bytes) {
    return fail("truncated feature block");
  }
  // Zero-copy: the feature matrix is a read-only view straight into the
  // mapping, whose lifetime the backing now carries. The 64-byte file
  // alignment plus the page-aligned mapping make the block cache-line
  // aligned in memory.
  const auto* features =
      reinterpret_cast<const double*>(data + cursor.pos);
  cursor.pos += feature_bytes;
  dataset.features = Matrix::WrapConstRowMajor(
      features, static_cast<size_t>(rows), static_cast<size_t>(cols), backing);
  dataset.labels.resize(static_cast<size_t>(rows));
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    int32_t label = 0;
    if (!cursor.Read(&label)) return fail("truncated label block");
    dataset.labels[i] = label;
  }
  if (cursor.pos != cursor.size) return fail("trailing bytes");

  // Belt and braces: the fingerprint the writer computed must match what
  // this process computes over the materialized dataset — it is what the
  // worker reports at HELLO, so it must be derived, not trusted.
  if (DatasetFingerprint(dataset) != fingerprint) {
    return Status::InvalidArgument("shared dataset '" + path +
                                   "': fingerprint mismatch after load");
  }
  return dataset;
}

}  // namespace autofp
