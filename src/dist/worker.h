#ifndef AUTOFP_DIST_WORKER_H_
#define AUTOFP_DIST_WORKER_H_

/// The distributed worker loop (see DESIGN.md "Distributed search"): a
/// worker process connects back to its coordinator over an inherited
/// socketpair fd, announces itself (HELLO with the fingerprint of the
/// dataset it mapped), then serves leases — evaluating each request and
/// streaming one RESULT frame per outcome so the coordinator loses at
/// most the in-flight evaluation when the worker dies. Workers never
/// retry (the coordinator owns the retry/quarantine taxonomy) and never
/// touch the journal (the coordinator's single choke point journals every
/// outcome). A worker whose coordinator dies sees EOF/EPIPE on the pipe
/// and exits cleanly — orphan detection needs no signals or timers.

#include "core/evaluator.h"
#include "dist/wire.h"

namespace autofp {

/// Deterministic failure-injection hooks, the worker-side extension of
/// the journal's AUTOFP_CRASH_AFTER_APPENDS kill point. Counters count
/// RESULT frames successfully sent by this worker process.
struct WorkerHooks {
  /// Hard-exit (std::_Exit(kWorkerCrashExitCode), a simulated crash)
  /// once this many results were sent. < 0 disables.
  long crash_after_results = -1;
  /// Stall (simulated straggler) before sending result N+1; the stall
  /// polls for coordinator death so a revoked worker still exits.
  /// < 0 disables; fires once.
  long stall_after_results = -1;
  double stall_seconds = 3600.0;
};

/// Parses hooks from the environment:
///   AUTOFP_WORKER_CRASH_AFTER_EVALS / AUTOFP_WORKER_STALL_AFTER_EVALS —
///     either "N" (every worker) or "I=N[,J=M,...]" (per worker index);
///   AUTOFP_WORKER_STALL_SECONDS — stall duration (default 3600).
WorkerHooks WorkerHooksFromEnv(int worker_index);

/// Runs the worker loop on `fd` until shutdown. Returns the process exit
/// code: 0 for a clean exit (SHUTDOWN frame or coordinator death), 1 on
/// a protocol error from the coordinator.
int RunDistWorker(int fd, int worker_index, uint64_t dataset_fingerprint,
                  EvaluatorInterface* evaluator, const WorkerHooks& hooks);

}  // namespace autofp

#endif  // AUTOFP_DIST_WORKER_H_
