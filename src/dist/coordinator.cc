#include "dist/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/run_journal.h"

namespace autofp {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Evaluation WorkerLostEvaluation(const EvalRequest& request) {
  Evaluation evaluation;
  evaluation.pipeline = request.pipeline;
  evaluation.budget_fraction = request.budget_fraction;
  evaluation.accuracy = kPenaltyAccuracy;
  evaluation.failure = EvalFailure::kWorkerLost;
  evaluation.status =
      Status::Internal("distributed lease attempts exhausted");
  return evaluation;
}

}  // namespace

WorkerSpawner ExecWorkerSpawner(std::vector<std::string> argv_prefix) {
  return [argv_prefix = std::move(argv_prefix)](
             int worker_index, int child_fd) -> Result<pid_t> {
    std::vector<std::string> args = argv_prefix;
    args.push_back("--worker-fd");
    args.push_back(std::to_string(child_fd));
    args.push_back("--worker-index");
    args.push_back(std::to_string(worker_index));
    pid_t pid = ::fork();
    if (pid < 0) {
      return Status::Internal(std::string("fork failed: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // Child: exec the worker entrypoint. Sibling coordinator pipes are
      // close-on-exec; only child_fd survives into the worker image.
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::_Exit(127);  // exec failed; the coordinator sees EOF pre-HELLO.
    }
    return pid;
  };
}

WorkerSpawner InProcessWorkerSpawner(
    std::function<int(int fd, int worker_index)> worker_main) {
  return [worker_main = std::move(worker_main)](
             int worker_index, int child_fd) -> Result<pid_t> {
    pid_t pid = ::fork();
    if (pid < 0) {
      return Status::Internal(std::string("fork failed: ") +
                              std::strerror(errno));
    }
    if (pid == 0) {
      // No exec, so close-on-exec flags never fire: drop every inherited
      // fd except our own pipe by hand, or sibling pipes would keep each
      // other's EOF detection (and the worker's orphan detection) from
      // ever triggering.
      for (int fd = 3; fd < 1024; ++fd) {
        if (fd != child_fd) ::close(fd);
      }
      std::_Exit(worker_main(child_fd, worker_index));
    }
    return pid;
  };
}

DistributedEvaluator::DistributedEvaluator(EvaluatorInterface* local,
                                           WorkerSpawner spawner,
                                           DistOptions options)
    : local_(local), spawner_(std::move(spawner)), options_(options) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.lease_size = std::max<size_t>(1, options_.lease_size);
  respawn_budget_ =
      options_.num_workers + (options_.max_respawns < 0
                                  ? 64 + 16 * options_.num_workers
                                  : options_.max_respawns);
  workers_.resize(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) workers_[i].index = i;
}

DistributedEvaluator::~DistributedEvaluator() { Shutdown(); }

void DistributedEvaluator::Start() {
  if (started_) return;
  started_ = true;
  for (int i = 0; i < options_.num_workers; ++i) {
    if (!SpawnWorker(i)) ++consecutive_spawn_failures_;
  }
}

bool DistributedEvaluator::SpawnWorker(int index) {
  if (respawn_budget_ <= 0) return false;
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  // Coordinator end: close-on-exec (workers must not inherit each
  // other's pipes) and nonblocking (the event loop drains it).
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  Result<pid_t> spawned = spawner_(index, fds[1]);
  ::close(fds[1]);
  if (!spawned.ok()) {
    ::close(fds[0]);
    return false;
  }
  Worker& worker = workers_[static_cast<size_t>(index)];
  worker.pid = spawned.value();
  worker.fd = fds[0];
  worker.ready = false;
  worker.lease_id = 0;
  worker.decoder = std::make_unique<FrameDecoder>();
  ++stats_.workers_spawned;
  --respawn_budget_;
  return true;
}

int DistributedEvaluator::live_workers() const {
  int live = 0;
  for (const Worker& worker : workers_) {
    if (worker.fd >= 0) ++live;
  }
  return live;
}

bool DistributedEvaluator::AnySpawnableWorker() const {
  return !spawning_disabled_ && respawn_budget_ > 0;
}

void DistributedEvaluator::MaintainFleet() {
  if (spawning_disabled_) return;
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) continue;
    if (respawn_budget_ <= 0 ||
        consecutive_spawn_failures_ > 2 * options_.num_workers + 2) {
      spawning_disabled_ = true;
      return;
    }
    if (!SpawnWorker(worker.index)) {
      ++consecutive_spawn_failures_;
      return;  // retried next loop until the counter disables spawning.
    }
  }
}

void DistributedEvaluator::FailWorker(Worker* worker, bool kill,
                                      Round* round) {
  if (worker->fd < 0) return;
  if (!worker->ready) ++consecutive_spawn_failures_;  // died before HELLO.
  if (worker->lease_id != 0) {
    std::optional<Lease> lease = leases_.Revoke(worker->lease_id);
    worker->lease_id = 0;
    if (lease.has_value() && round != nullptr) RequeueLease(*lease, round);
  }
  ::close(worker->fd);
  worker->fd = -1;
  worker->ready = false;
  worker->decoder.reset();
  if (worker->pid > 0) {
    if (kill) ::kill(worker->pid, SIGKILL);
    int status = 0;
    ::waitpid(worker->pid, &status, 0);
    worker->pid = -1;
  }
}

void DistributedEvaluator::RequeueLease(const Lease& lease, Round* round) {
  std::vector<size_t> remaining = lease.RemainingSlots();
  if (remaining.empty()) return;
  PendingBatch batch;
  batch.slots = std::move(remaining);
  batch.attempts = lease.batch_attempts;
  round->queue.push_back(std::move(batch));
}

void DistributedEvaluator::ResolveWithoutWorkers(const PendingBatch& batch,
                                                 Round* round) {
  for (size_t slot : batch.slots) {
    if (round->done[slot]) continue;
    const EvalRequest& request = (*round->requests)[slot];
    if (options_.allow_local_fallback) {
      (*round->results)[slot] = local_->Evaluate(request, &scratch_);
      ++stats_.local_fallback_evals;
    } else {
      (*round->results)[slot] = WorkerLostEvaluation(request);
      ++stats_.worker_lost_evals;
    }
    round->done[slot] = 1;
    --round->remaining;
  }
}

void DistributedEvaluator::AssignLeases(Round* round) {
  auto drain_exhausted = [&] {
    while (!round->queue.empty() &&
           round->queue.front().attempts >= options_.max_lease_attempts) {
      PendingBatch batch = std::move(round->queue.front());
      round->queue.pop_front();
      ResolveWithoutWorkers(batch, round);
    }
  };
  drain_exhausted();
  for (Worker& worker : workers_) {
    if (round->queue.empty()) break;
    if (worker.fd < 0 || !worker.ready || worker.lease_id != 0) continue;
    drain_exhausted();
    if (round->queue.empty()) break;
    PendingBatch batch = std::move(round->queue.front());
    round->queue.pop_front();
    const double deadline =
        MonotonicSeconds() + options_.lease_deadline_seconds;
    const Lease& lease = leases_.Issue(std::move(batch.slots), worker.index,
                                       deadline, batch.attempts + 1);
    DistLease message;
    message.lease_id = lease.id;
    message.generation = lease.generation;
    message.deadline_seconds = options_.lease_deadline_seconds;
    message.requests.reserve(lease.slots.size());
    for (size_t slot : lease.slots) {
      message.requests.push_back((*round->requests)[slot]);
    }
    std::string bytes;
    EncodeLeaseFrame(message, &bytes);
    ++stats_.leases_issued;
    if (batch.attempts > 0) ++stats_.re_leases;
    worker.lease_id = lease.id;
    if (!SendFrameBytes(worker.fd, bytes)) {
      // The worker died between leases: revoke, requeue, reap.
      ++stats_.worker_crashes;
      FailWorker(&worker, /*kill=*/false, round);
    }
  }
}

void DistributedEvaluator::HandleFrame(Worker* worker, const Frame& frame,
                                       Round* round) {
  if (frame.type == static_cast<uint8_t>(DistFrameType::kHello)) {
    DistHello hello;
    if (!DecodeHelloFrame(frame, &hello)) {
      ++stats_.corrupt_frame_revocations;
      FailWorker(worker, /*kill=*/true, round);
      return;
    }
    if (options_.expected_dataset_fingerprint != 0 &&
        hello.dataset_fingerprint != options_.expected_dataset_fingerprint) {
      // The worker is evaluating against different data; nothing it
      // returns can be journaled. Refuse it like a failed spawn.
      ++stats_.hello_rejects;
      FailWorker(worker, /*kill=*/true, round);
      return;
    }
    worker->ready = true;
    consecutive_spawn_failures_ = 0;
    return;
  }
  if (frame.type == static_cast<uint8_t>(DistFrameType::kResult)) {
    DistResult result;
    if (!DecodeResultFrame(frame, &result)) {
      ++stats_.corrupt_frame_revocations;
      FailWorker(worker, /*kill=*/true, round);
      return;
    }
    std::optional<size_t> slot =
        leases_.AcceptResult(result.lease_id, result.generation,
                             result.offset);
    if (!slot.has_value() || round->done[*slot]) {
      ++stats_.stale_results;
      return;
    }
    (*round->results)[*slot] = EvaluationFromRecord(result.record);
    round->done[*slot] = 1;
    --round->remaining;
    return;
  }
  if (frame.type == static_cast<uint8_t>(DistFrameType::kLeaseDone)) {
    DistLeaseDone done;
    if (!DecodeLeaseDoneFrame(frame, &done)) {
      ++stats_.corrupt_frame_revocations;
      FailWorker(worker, /*kill=*/true, round);
      return;
    }
    std::optional<Lease> lease = leases_.Release(done.lease_id,
                                                 done.generation);
    if (!lease.has_value()) {
      ++stats_.stale_results;
      return;
    }
    if (worker->lease_id == done.lease_id) worker->lease_id = 0;
    // Defensive: a LEASE_DONE with unanswered slots (a worker bug) must
    // not strand them.
    RequeueLease(*lease, round);
    return;
  }
  // Any other type from a worker is a protocol violation.
  ++stats_.corrupt_frame_revocations;
  FailWorker(worker, /*kill=*/true, round);
}

void DistributedEvaluator::ReadWorker(Worker* worker, Round* round) {
  bool eof = false;
  for (;;) {
    char buffer[65536];
    ssize_t n = ::read(worker->fd, buffer, sizeof(buffer));
    if (n > 0) {
      worker->decoder->Feed(buffer, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard read error: treat like death.
    break;
  }
  // Drain complete frames first — results a dying worker managed to
  // flush still count (they are correct, and accepting them is cheaper
  // than re-evaluating their slots).
  for (;;) {
    if (worker->fd < 0) return;  // a frame handler already failed it.
    Frame frame;
    ServeError error = ServeError::kNone;
    std::string detail;
    FrameDecoder::Outcome outcome =
        worker->decoder->Next(&frame, &error, &detail);
    if (outcome == FrameDecoder::Outcome::kFrame) {
      HandleFrame(worker, frame, round);
      continue;
    }
    if (outcome == FrameDecoder::Outcome::kBad) {
      ++stats_.corrupt_frame_revocations;
      FailWorker(worker, /*kill=*/true, round);
      return;
    }
    break;  // kNeedMore
  }
  if (eof) {
    ++stats_.worker_crashes;
    FailWorker(worker, /*kill=*/false, round);
  }
}

void DistributedEvaluator::PollWorkers(Round* round) {
  std::vector<struct pollfd> pfds;
  std::vector<int> indices;
  for (const Worker& worker : workers_) {
    if (worker.fd < 0) continue;
    struct pollfd pfd;
    pfd.fd = worker.fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    pfds.push_back(pfd);
    indices.push_back(worker.index);
  }
  if (pfds.empty()) return;
  int timeout_ms = 100;
  std::optional<double> next_deadline = leases_.NextDeadline();
  if (next_deadline.has_value()) {
    double wait = (*next_deadline - MonotonicSeconds()) * 1000.0;
    timeout_ms = static_cast<int>(
        std::min(200.0, std::max(0.0, wait)));
  }
  int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc <= 0) return;
  for (size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    Worker& worker = workers_[static_cast<size_t>(indices[i])];
    if (worker.fd >= 0) ReadWorker(&worker, round);
  }
}

void DistributedEvaluator::ExpireLeases(Round* round) {
  const double now = MonotonicSeconds();
  for (uint64_t id : leases_.ExpiredLeases(now)) {
    std::optional<Lease> lease = leases_.Revoke(id);
    if (!lease.has_value()) continue;
    ++stats_.straggler_revocations;
    RequeueLease(*lease, round);
    // Kill the straggler: a worker past its deadline cannot be trusted
    // to come back, and a fresh one is one respawn away.
    Worker& worker = workers_[static_cast<size_t>(lease->worker_index)];
    if (worker.fd >= 0 && worker.lease_id == id) {
      worker.lease_id = 0;  // already revoked above.
      FailWorker(&worker, /*kill=*/true, round);
    }
  }
}

Evaluation DistributedEvaluator::Evaluate(const EvalRequest& request) {
  return EvaluateAll({request}).front();
}

std::vector<Evaluation> DistributedEvaluator::EvaluateAll(
    const std::vector<EvalRequest>& requests) {
  std::vector<Evaluation> results(requests.size());
  if (requests.empty()) return results;
  if (!started_) Start();

  Round round;
  round.requests = &requests;
  round.results = &results;
  round.done.assign(requests.size(), 0);
  round.remaining = requests.size();
  for (size_t begin = 0; begin < requests.size();
       begin += options_.lease_size) {
    PendingBatch batch;
    const size_t end =
        std::min(requests.size(), begin + options_.lease_size);
    for (size_t slot = begin; slot < end; ++slot) {
      batch.slots.push_back(slot);
    }
    round.queue.push_back(std::move(batch));
  }

  while (round.remaining > 0) {
    MaintainFleet();
    if (live_workers() == 0 && leases_.active() == 0 &&
        !AnySpawnableWorker()) {
      // The fleet is gone for good: resolve everything in-process.
      while (!round.queue.empty()) {
        PendingBatch batch = std::move(round.queue.front());
        round.queue.pop_front();
        ResolveWithoutWorkers(batch, &round);
      }
      continue;
    }
    AssignLeases(&round);
    PollWorkers(&round);
    ExpireLeases(&round);
  }
  return results;
}

void DistributedEvaluator::Shutdown() {
  std::string bytes;
  EncodeShutdownFrame(&bytes);
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      SendFrameBytes(worker.fd, bytes);
      ::close(worker.fd);
      worker.fd = -1;
      worker.ready = false;
      worker.lease_id = 0;
      worker.decoder.reset();
    }
  }
  const double deadline =
      MonotonicSeconds() + options_.shutdown_grace_seconds;
  for (Worker& worker : workers_) {
    if (worker.pid <= 0) continue;
    for (;;) {
      int status = 0;
      pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
      if (reaped == worker.pid || (reaped < 0 && errno == ECHILD)) {
        worker.pid = -1;
        break;
      }
      if (MonotonicSeconds() >= deadline) {
        ::kill(worker.pid, SIGKILL);
        ::waitpid(worker.pid, &status, 0);
        worker.pid = -1;
        break;
      }
      ::usleep(20 * 1000);
    }
  }
  spawning_disabled_ = true;  // a shut-down fleet stays down; evaluation
                              // degrades to the local path.
}

}  // namespace autofp
