#include "dist/wire.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "preprocess/pipeline_parse.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace autofp {
namespace {

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPodAt(const std::string& bytes, size_t* pos, T* value) {
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void AppendString(std::string* out, const std::string& value) {
  AppendPod(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

bool ReadStringAt(const std::string& bytes, size_t* pos, std::string* value) {
  uint32_t size = 0;
  if (!ReadPodAt(bytes, pos, &size)) return false;
  if (bytes.size() - *pos < size) return false;
  value->assign(bytes.data() + *pos, size);
  *pos += size;
  return true;
}

void EncodeDistFrame(DistFrameType type, const std::string& payload,
                     std::string* out) {
  EncodeFrame(static_cast<FrameType>(type), payload, out);
}

bool FrameIs(const Frame& frame, DistFrameType type) {
  return frame.type == static_cast<uint8_t>(type);
}

}  // namespace

void EncodeHelloFrame(const DistHello& hello, std::string* out) {
  std::string payload;
  AppendPod(&payload, hello.pid);
  AppendPod(&payload, hello.worker_index);
  AppendPod(&payload, hello.dataset_fingerprint);
  EncodeDistFrame(DistFrameType::kHello, payload, out);
}

bool DecodeHelloFrame(const Frame& frame, DistHello* hello) {
  if (!FrameIs(frame, DistFrameType::kHello)) return false;
  size_t pos = 0;
  return ReadPodAt(frame.payload, &pos, &hello->pid) &&
         ReadPodAt(frame.payload, &pos, &hello->worker_index) &&
         ReadPodAt(frame.payload, &pos, &hello->dataset_fingerprint) &&
         pos == frame.payload.size();
}

void EncodeLeaseFrame(const DistLease& lease, std::string* out) {
  std::string payload;
  AppendPod(&payload, lease.lease_id);
  AppendPod(&payload, lease.generation);
  AppendPod(&payload, lease.deadline_seconds);
  AppendPod(&payload, static_cast<uint32_t>(lease.requests.size()));
  for (const EvalRequest& request : lease.requests) {
    AppendString(&payload, request.pipeline.ToString());
    AppendPod(&payload, request.budget_fraction);
    AppendPod(&payload, request.deadline_seconds);
    AppendPod(&payload, request.seed);
  }
  EncodeDistFrame(DistFrameType::kLease, payload, out);
}

bool DecodeLeaseFrame(const Frame& frame, DistLease* lease) {
  if (!FrameIs(frame, DistFrameType::kLease)) return false;
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadPodAt(frame.payload, &pos, &lease->lease_id) ||
      !ReadPodAt(frame.payload, &pos, &lease->generation) ||
      !ReadPodAt(frame.payload, &pos, &lease->deadline_seconds) ||
      !ReadPodAt(frame.payload, &pos, &count)) {
    return false;
  }
  lease->requests.clear();
  lease->requests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string spec_text;
    EvalRequest request;
    if (!ReadStringAt(frame.payload, &pos, &spec_text) ||
        !ReadPodAt(frame.payload, &pos, &request.budget_fraction) ||
        !ReadPodAt(frame.payload, &pos, &request.deadline_seconds) ||
        !ReadPodAt(frame.payload, &pos, &request.seed)) {
      return false;
    }
    Result<PipelineSpec> spec = ParsePipelineSpec(spec_text);
    if (!spec.ok()) return false;
    request.pipeline = std::move(spec.value());
    lease->requests.push_back(std::move(request));
  }
  return pos == frame.payload.size();
}

void EncodeResultFrame(const DistResult& result, std::string* out) {
  std::string payload;
  AppendPod(&payload, result.lease_id);
  AppendPod(&payload, result.generation);
  AppendPod(&payload, result.offset);
  payload += EncodeJournalRecordPayload(result.record);
  EncodeDistFrame(DistFrameType::kResult, payload, out);
}

bool DecodeResultFrame(const Frame& frame, DistResult* result) {
  if (!FrameIs(frame, DistFrameType::kResult)) return false;
  size_t pos = 0;
  if (!ReadPodAt(frame.payload, &pos, &result->lease_id) ||
      !ReadPodAt(frame.payload, &pos, &result->generation) ||
      !ReadPodAt(frame.payload, &pos, &result->offset)) {
    return false;
  }
  return DecodeJournalRecordPayload(frame.payload.data() + pos,
                                    frame.payload.size() - pos,
                                    &result->record);
}

void EncodeLeaseDoneFrame(const DistLeaseDone& done, std::string* out) {
  std::string payload;
  AppendPod(&payload, done.lease_id);
  AppendPod(&payload, done.generation);
  EncodeDistFrame(DistFrameType::kLeaseDone, payload, out);
}

bool DecodeLeaseDoneFrame(const Frame& frame, DistLeaseDone* done) {
  if (!FrameIs(frame, DistFrameType::kLeaseDone)) return false;
  size_t pos = 0;
  return ReadPodAt(frame.payload, &pos, &done->lease_id) &&
         ReadPodAt(frame.payload, &pos, &done->generation) &&
         pos == frame.payload.size();
}

void EncodeShutdownFrame(std::string* out) {
  EncodeDistFrame(DistFrameType::kShutdown, std::string(), out);
}

bool SendFrameBytes(int fd, const std::string& bytes) {
  const char* data = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    ssize_t sent = ::send(fd, data, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking fd with a full buffer (the coordinator's end is
        // nonblocking): wait briefly for drain; a peer that never drains
        // is as dead as a closed one.
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        if (::poll(&pfd, 1, 5000) <= 0) return false;
        continue;
      }
      return false;
    }
    data += sent;
    remaining -= static_cast<size_t>(sent);
  }
  return true;
}

FrameChannel::RecvOutcome FrameChannel::Recv(Frame* frame, int timeout_ms) {
  for (;;) {
    ServeError error = ServeError::kNone;
    std::string detail;
    switch (decoder_.Next(frame, &error, &detail)) {
      case FrameDecoder::Outcome::kFrame:
        return RecvOutcome::kFrame;
      case FrameDecoder::Outcome::kBad:
        return RecvOutcome::kBad;
      case FrameDecoder::Outcome::kNeedMore:
        break;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return RecvOutcome::kTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return RecvOutcome::kClosed;
    }
    char buffer[4096];
    ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) return RecvOutcome::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return RecvOutcome::kClosed;
    }
    decoder_.Feed(buffer, static_cast<size_t>(n));
  }
}

bool FrameChannel::PeerClosed() const {
  char probe;
  ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  return n == 0;
}

}  // namespace autofp
