#ifndef AUTOFP_DIST_LEASE_H_
#define AUTOFP_DIST_LEASE_H_

/// The coordinator's lease bookkeeping (see DESIGN.md "Distributed
/// search"), kept free of processes and sockets so the state machine is
/// unit-testable: a Lease grants one worker responsibility for a batch of
/// round slots until a deadline; results are accepted only under the
/// lease's (id, generation) stamp, so answers from a revoked straggler
/// arriving after re-lease are discarded instead of double-counted.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace autofp {

/// One outstanding lease.
struct Lease {
  uint64_t id = 0;
  /// Monotonic stamp across all leases ever issued; a result must match
  /// both id and generation to be accepted.
  uint64_t generation = 0;
  int worker_index = -1;
  /// Round-slot indices this lease covers (indices into the caller's
  /// request/result vectors), and which of them have been answered.
  std::vector<size_t> slots;
  std::vector<bool> done;
  /// Absolute expiry on the coordinator's monotonic clock (seconds).
  double deadline = 0.0;
  /// Times this batch content has been leased (this lease included).
  int batch_attempts = 1;

  /// Slots not yet answered — what gets re-leased after revocation.
  std::vector<size_t> RemainingSlots() const;
  bool AllDone() const;
};

/// Owns every outstanding lease. Single-threaded (the coordinator event
/// loop); all mutation goes through Issue/AcceptResult/Release/Revoke.
class LeaseTable {
 public:
  /// Issues a new lease over `slots` to `worker_index`, expiring at
  /// `deadline`. Returns a reference valid until the next mutation.
  const Lease& Issue(std::vector<size_t> slots, int worker_index,
                     double deadline, int batch_attempts);

  /// The lease with `id`, or nullptr.
  const Lease* Find(uint64_t id) const;

  /// Accepts one result: marks `offset` (an index into the lease's slot
  /// vector) done and returns the round slot it answers. Returns nullopt
  /// for anything stale — unknown lease, generation mismatch, offset out
  /// of range, or a slot already answered.
  std::optional<size_t> AcceptResult(uint64_t id, uint64_t generation,
                                     uint32_t offset);

  /// Removes and returns the lease on a worker's LEASE_DONE. Stale
  /// (id, generation) pairs return nullopt and change nothing.
  std::optional<Lease> Release(uint64_t id, uint64_t generation);

  /// Forcibly removes and returns the lease (deadline expiry, worker
  /// death, corrupt frames) regardless of generation.
  std::optional<Lease> Revoke(uint64_t id);

  /// Leases whose deadline has passed at `now`.
  std::vector<uint64_t> ExpiredLeases(double now) const;

  /// Earliest deadline among active leases (the coordinator's poll
  /// timeout bound), or nullopt when no lease is outstanding.
  std::optional<double> NextDeadline() const;

  size_t active() const { return leases_.size(); }
  uint64_t leases_issued() const { return next_id_ - 1; }

 private:
  uint64_t next_id_ = 1;
  uint64_t next_generation_ = 1;
  std::unordered_map<uint64_t, Lease> leases_;
};

}  // namespace autofp

#endif  // AUTOFP_DIST_LEASE_H_
