#ifndef AUTOFP_DIST_COORDINATOR_H_
#define AUTOFP_DIST_COORDINATOR_H_

/// The distributed-evaluation coordinator (see DESIGN.md "Distributed
/// search"): a DistributedEvaluator behind EvaluatorInterface that leases
/// EvalRequest batches to a fleet of spawned worker processes over
/// CRC-framed socketpairs and merges their streamed outcomes back into
/// request order. Because every evaluation is a pure function of its
/// request (EvalRequest::DeriveSeed), a re-leased batch reproduces the
/// crashed worker's missing outcomes exactly — so worker death, straggler
/// revocation and corrupt frames cost wall-clock, never determinism, and
/// the coordinator-side journal (SearchContext's single choke point, one
/// layer up) is byte-identical to a single-process run.
///
/// Failure policy per lease: a worker that crashes (EOF), straggles past
/// the lease deadline, or desyncs its frame stream loses the lease; the
/// unanswered slots are re-leased up to max_lease_attempts times, then
/// resolved locally (allow_local_fallback) or reported as the transient
/// EvalFailure::kWorkerLost so the search framework's existing
/// retry/quarantine taxonomy decides the terminal outcome.

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "dist/lease.h"
#include "dist/wire.h"
#include "util/status.h"

namespace autofp {

/// Spawns one worker process that runs the worker loop on `child_fd`
/// (its end of the socketpair, inherited across fork/exec). Returns the
/// child pid. The coordinator owns reaping.
using WorkerSpawner = std::function<Result<pid_t>(int worker_index,
                                                  int child_fd)>;

/// Production spawner: fork + execv of `argv_prefix` with
/// "--worker-fd N --worker-index I" appended (the CLI's hidden worker
/// entrypoint). argv_prefix[0] must be the executable path.
WorkerSpawner ExecWorkerSpawner(std::vector<std::string> argv_prefix);

/// Test/bench spawner: fork only, no exec — the child runs `worker_main`
/// (fd, worker_index) -> exit code in the forked image, inheriting the
/// parent's dataset by copy-on-write. The child closes every other
/// inherited fd first so sibling pipes and EOF detection stay correct.
WorkerSpawner InProcessWorkerSpawner(
    std::function<int(int fd, int worker_index)> worker_main);

/// Coordinator tuning knobs.
struct DistOptions {
  int num_workers = 2;
  /// Requests per lease. Smaller leases lose less to a crash; larger
  /// leases amortize framing. Round remainders lease short.
  size_t lease_size = 4;
  /// Seconds a worker may hold a lease before it is revoked as a
  /// straggler (the worker is killed and the batch re-leased).
  double lease_deadline_seconds = 30.0;
  /// Times one batch may be leased before its requests resolve without
  /// workers (locally, or as kWorkerLost).
  int max_lease_attempts = 3;
  /// When nonzero, a worker HELLO carrying a different dataset
  /// fingerprint is refused (killed and counted as a spawn failure).
  uint64_t expected_dataset_fingerprint = 0;
  /// Re-spawns allowed beyond the initial fleet before the coordinator
  /// stops replacing dead workers. < 0 picks a generous default.
  int max_respawns = -1;
  /// When the fleet is unusable (spawns failing, respawn budget gone),
  /// evaluate remaining requests in-process via the local evaluator —
  /// outcome-identical, just slower. When false, exhausted requests
  /// report EvalFailure::kWorkerLost instead.
  bool allow_local_fallback = true;
  /// Seconds Shutdown() waits for workers to exit before SIGKILL.
  double shutdown_grace_seconds = 2.0;
};

/// Observability counters (monotonic over the evaluator's lifetime).
struct DistStats {
  long workers_spawned = 0;
  long worker_crashes = 0;        ///< deaths observed (EOF on the pipe).
  long straggler_revocations = 0; ///< leases revoked past deadline.
  long corrupt_frame_revocations = 0;
  long hello_rejects = 0;         ///< fingerprint-mismatched workers.
  long leases_issued = 0;
  long re_leases = 0;             ///< leases re-issued after revocation.
  long stale_results = 0;         ///< late answers from revoked leases.
  long local_fallback_evals = 0;
  long worker_lost_evals = 0;     ///< kWorkerLost outcomes reported.
};

/// Multi-process evaluation engine. Single-threaded: EvaluateAll runs a
/// poll(2) event loop over the worker pipes on the calling thread, so it
/// composes with the journal choke point exactly like the sequential
/// engine (journaling happens caller-side, after EvaluateAll returns).
/// Mutually exclusive with ParallelEvaluator by construction (the
/// SearchContext CHECK enforces num_threads == 1 when workers are on).
class DistributedEvaluator : public EvaluatorInterface {
 public:
  /// `local` must outlive this evaluator; it answers BaselineAccuracy and
  /// the local-fallback path.
  DistributedEvaluator(EvaluatorInterface* local, WorkerSpawner spawner,
                       DistOptions options);
  ~DistributedEvaluator() override;
  DistributedEvaluator(const DistributedEvaluator&) = delete;
  DistributedEvaluator& operator=(const DistributedEvaluator&) = delete;

  /// Spawns the initial fleet. Idempotent; also called lazily by the
  /// first EvaluateAll. Spawn failures are not fatal — the evaluator
  /// degrades to local fallback.
  void Start();

  /// Graceful fleet teardown: SHUTDOWN frames, bounded wait, SIGKILL for
  /// anything still alive. Idempotent; the destructor calls it.
  void Shutdown();

  Evaluation Evaluate(const EvalRequest& request) override;
  std::vector<Evaluation> EvaluateAll(
      const std::vector<EvalRequest>& requests) override;
  bool SupportsConcurrentBatches() const override { return true; }
  double BaselineAccuracy() override { return local_->BaselineAccuracy(); }

  const DistStats& stats() const { return stats_; }
  /// Live worker processes right now (for tests and the CLI report).
  int live_workers() const;

 private:
  struct Worker {
    int index = -1;
    pid_t pid = -1;
    int fd = -1;          ///< coordinator end of the socketpair; -1 = dead.
    bool ready = false;   ///< HELLO received and accepted.
    uint64_t lease_id = 0;  ///< outstanding lease, 0 = idle.
    std::unique_ptr<FrameDecoder> decoder;  ///< fresh per spawn.
  };

  /// One queued batch of round slots awaiting a lease.
  struct PendingBatch {
    std::vector<size_t> slots;
    int attempts = 0;  ///< times this content has been leased so far.
  };

  /// Per-EvaluateAll mutable state, threaded through the helpers.
  struct Round {
    const std::vector<EvalRequest>* requests = nullptr;
    std::vector<Evaluation>* results = nullptr;
    std::vector<char> done;
    size_t remaining = 0;
    std::deque<PendingBatch> queue;
  };

  bool SpawnWorker(int index);
  void MaintainFleet();
  /// Tears down a worker: revokes its lease (requeueing unanswered
  /// slots), closes the pipe, optionally SIGKILLs, reaps the pid.
  void FailWorker(Worker* worker, bool kill, Round* round);
  void AssignLeases(Round* round);
  void PollWorkers(Round* round);
  /// Drains every decodable frame a worker has buffered.
  void ReadWorker(Worker* worker, Round* round);
  void HandleFrame(Worker* worker, const Frame& frame, Round* round);
  void ExpireLeases(Round* round);
  void RequeueLease(const Lease& lease, Round* round);
  /// Resolves a batch that exhausted its lease attempts (local fallback
  /// or kWorkerLost).
  void ResolveWithoutWorkers(const PendingBatch& batch, Round* round);
  bool AnySpawnableWorker() const;

  EvaluatorInterface* local_;
  WorkerSpawner spawner_;
  DistOptions options_;
  std::vector<Worker> workers_;
  LeaseTable leases_;
  DistStats stats_;
  int respawn_budget_ = 0;
  int consecutive_spawn_failures_ = 0;
  bool spawning_disabled_ = false;
  bool started_ = false;
  TransformScratch scratch_;  ///< local-fallback transform buffers.
};

}  // namespace autofp

#endif  // AUTOFP_DIST_COORDINATOR_H_
