#ifndef AUTOFP_DIST_WIRE_H_
#define AUTOFP_DIST_WIRE_H_

/// The distributed-search wire protocol (see DESIGN.md "Distributed
/// search") — the coordinator/worker message surface layered on the serve
/// framing (serve/protocol.h): every message is one length-prefixed,
/// CRC-protected frame reassembled by the same FrameDecoder, so a worker
/// that writes garbage (partial frame, flipped bits, wrong magic) is
/// detected the same way a misbehaving network client is. Dist frame
/// types live in their own range (>= 128) so a dist frame can never be
/// confused with a serve request or response.
///
/// Evaluator outcomes travel in the run journal's own record encoding
/// (EncodeJournalRecordPayload): one serialization of an outcome, whether
/// it crosses a process boundary or lands on disk.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/run_journal.h"
#include "serve/protocol.h"

namespace autofp {

/// Dist frame types. Kept >= 128: serve requests are < 64 and serve
/// responses < 128, so the ranges never collide on a shared decoder.
enum class DistFrameType : uint8_t {
  /// worker -> coordinator, once at startup: identity + the fingerprint
  /// of the dataset the worker actually mapped.
  kHello = 128,
  /// coordinator -> worker: a lease over a batch of EvalRequests.
  kLease = 129,
  /// worker -> coordinator: one completed outcome within a lease.
  kResult = 130,
  /// worker -> coordinator: every request in the lease was answered.
  kLeaseDone = 131,
  /// coordinator -> worker: drain and exit cleanly.
  kShutdown = 132,
};

/// Exit code a worker uses at its injected kill point
/// (AUTOFP_WORKER_CRASH_AFTER_EVALS) so the chaos harness can tell an
/// injected worker crash from a real failure. Distinct from the
/// coordinator's kCrashPointExitCode (86).
inline constexpr int kWorkerCrashExitCode = 87;

/// Worker startup announcement.
struct DistHello {
  int32_t pid = 0;
  uint32_t worker_index = 0;
  /// DatasetFingerprint of the dataset the worker loaded; the coordinator
  /// refuses to lease work to a worker evaluating against different data.
  uint64_t dataset_fingerprint = 0;
};

/// One lease: a batch of requests a single worker is responsible for
/// until the deadline. `generation` is a monotonically increasing stamp;
/// results carrying a stale (lease_id, generation) pair — from a revoked
/// straggler that answered late — are discarded, never double-counted.
struct DistLease {
  uint64_t lease_id = 0;
  uint64_t generation = 0;
  /// Informational copy of the coordinator's deadline (the coordinator
  /// enforces it; workers may use it to pace themselves).
  double deadline_seconds = 0.0;
  std::vector<EvalRequest> requests;
};

/// One completed outcome: `offset` indexes into the lease's request
/// vector; the outcome itself is a journal record (journal-grade
/// encoding, coordinator re-journals it through the single choke point).
struct DistResult {
  uint64_t lease_id = 0;
  uint64_t generation = 0;
  uint32_t offset = 0;
  JournalRecord record;
};

/// Worker's declaration that a lease is fully answered.
struct DistLeaseDone {
  uint64_t lease_id = 0;
  uint64_t generation = 0;
};

/// Frame encoders: each appends one complete framed message to `*out`.
void EncodeHelloFrame(const DistHello& hello, std::string* out);
void EncodeLeaseFrame(const DistLease& lease, std::string* out);
void EncodeResultFrame(const DistResult& result, std::string* out);
void EncodeLeaseDoneFrame(const DistLeaseDone& done, std::string* out);
void EncodeShutdownFrame(std::string* out);

/// Frame decoders: each returns false unless `frame` is a well-formed
/// message of the matching type (wrong type byte, short payload, trailing
/// bytes and unparseable pipeline specs all fail).
bool DecodeHelloFrame(const Frame& frame, DistHello* hello);
bool DecodeLeaseFrame(const Frame& frame, DistLease* lease);
bool DecodeResultFrame(const Frame& frame, DistResult* result);
bool DecodeLeaseDoneFrame(const Frame& frame, DistLeaseDone* done);

/// Writes all of `bytes` to `fd` (EINTR-safe, SIGPIPE suppressed).
/// Returns false on any hard error — EPIPE/ECONNRESET when the peer died.
bool SendFrameBytes(int fd, const std::string& bytes);

/// Blocking frame channel over one socket fd — the worker's view of its
/// coordinator pipe (the coordinator multiplexes many fds with poll() and
/// uses FrameDecoder directly). Does not own the fd.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}

  enum class RecvOutcome {
    kFrame,    ///< *frame holds one complete message.
    kClosed,   ///< peer closed (or unrecoverable read error).
    kBad,      ///< framing error; the stream is desynced.
    kTimeout,  ///< timeout_ms elapsed without a complete frame.
  };

  /// Waits up to `timeout_ms` (-1 = forever) for one complete frame.
  RecvOutcome Recv(Frame* frame, int timeout_ms = -1);

  bool Send(const std::string& bytes) { return SendFrameBytes(fd_, bytes); }

  /// Nonblocking probe: true once the peer's end is closed. The worker's
  /// orphan detection — a coordinator that died (crash, SIGKILL) closes
  /// its end of the socketpair by process exit.
  bool PeerClosed() const;

  int fd() const { return fd_; }

 private:
  int fd_;
  FrameDecoder decoder_;
};

}  // namespace autofp

#endif  // AUTOFP_DIST_WIRE_H_
