#include "dist/lease.h"

#include <utility>

namespace autofp {

std::vector<size_t> Lease::RemainingSlots() const {
  std::vector<size_t> remaining;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (!done[i]) remaining.push_back(slots[i]);
  }
  return remaining;
}

bool Lease::AllDone() const {
  for (bool d : done) {
    if (!d) return false;
  }
  return true;
}

const Lease& LeaseTable::Issue(std::vector<size_t> slots, int worker_index,
                               double deadline, int batch_attempts) {
  Lease lease;
  lease.id = next_id_++;
  lease.generation = next_generation_++;
  lease.worker_index = worker_index;
  lease.done.assign(slots.size(), false);
  lease.slots = std::move(slots);
  lease.deadline = deadline;
  lease.batch_attempts = batch_attempts;
  uint64_t id = lease.id;
  return leases_.emplace(id, std::move(lease)).first->second;
}

const Lease* LeaseTable::Find(uint64_t id) const {
  auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

std::optional<size_t> LeaseTable::AcceptResult(uint64_t id,
                                               uint64_t generation,
                                               uint32_t offset) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return std::nullopt;
  Lease& lease = it->second;
  if (lease.generation != generation) return std::nullopt;
  if (offset >= lease.slots.size()) return std::nullopt;
  if (lease.done[offset]) return std::nullopt;
  lease.done[offset] = true;
  return lease.slots[offset];
}

std::optional<Lease> LeaseTable::Release(uint64_t id, uint64_t generation) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return std::nullopt;
  if (it->second.generation != generation) return std::nullopt;
  Lease lease = std::move(it->second);
  leases_.erase(it);
  return lease;
}

std::optional<Lease> LeaseTable::Revoke(uint64_t id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return std::nullopt;
  Lease lease = std::move(it->second);
  leases_.erase(it);
  return lease;
}

std::vector<uint64_t> LeaseTable::ExpiredLeases(double now) const {
  std::vector<uint64_t> expired;
  for (const auto& [id, lease] : leases_) {
    if (lease.deadline <= now) expired.push_back(id);
  }
  return expired;
}

std::optional<double> LeaseTable::NextDeadline() const {
  std::optional<double> next;
  for (const auto& [id, lease] : leases_) {
    if (!next.has_value() || lease.deadline < *next) next = lease.deadline;
  }
  return next;
}

}  // namespace autofp
