#ifndef AUTOFP_DIST_SHARED_DATASET_H_
#define AUTOFP_DIST_SHARED_DATASET_H_

/// The dataset hand-off between a coordinator and its worker processes:
/// the coordinator writes the loaded dataset once (atomically, fsync'd)
/// and every worker maps it read-only instead of re-parsing CSV. The
/// file is CRC-protected and host-endian (machine-local hand-off, like
/// the artifact format, never interchange); a worker that maps a
/// corrupt, truncated or foreign file gets a typed error and exits
/// before HELLO — the coordinator additionally cross-checks the
/// worker's DatasetFingerprint at HELLO, so a worker can never evaluate
/// against different data than the journal fingerprints.
///
/// Layout (version 2):
///   "AFPD" | u32 version | u64 dataset_fingerprint | u32 num_classes |
///   u64 rows | u64 cols | u32 name_len | name |
///   zero padding to the next 64-byte file offset |
///   rows*cols f64 features (row-major) | rows i32 labels |
///   u32 crc32(everything above)
///
/// The padding 64-byte-aligns the feature block within the file; since
/// mmap returns page-aligned addresses, the mapped block is 64-byte
/// aligned in memory. MapSharedDataset exploits that: after the CRC
/// passes, the returned Dataset's feature matrix is a zero-copy
/// read-only view straight into the mapping (Matrix::WrapConstRowMajor),
/// with the mapping's lifetime owned by the matrix backing. The CRC is
/// verified over the whole file before the first use, so a worker never
/// computes on corrupt bytes.

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace autofp {

inline constexpr uint32_t kSharedDatasetMagic = 0x44504641;  // "AFPD"
inline constexpr uint32_t kSharedDatasetVersion = 2;

/// Alignment of the feature block inside the file (and therefore in the
/// mapping): one cache line, enough for any SIMD load width we use.
inline constexpr size_t kSharedDatasetAlign = 64;

/// Writes `dataset` to `path` atomically and durably (temp + rename +
/// parent-dir fsync, util/fs.h).
Status WriteSharedDataset(const std::string& path, const Dataset& dataset);

/// Maps `path` read-only (mmap) and materializes the Dataset it holds.
/// Every structural problem — short file, bad magic/version, CRC
/// mismatch, inconsistent lengths — is a typed error, never a partial
/// dataset.
Result<Dataset> MapSharedDataset(const std::string& path);

}  // namespace autofp

#endif  // AUTOFP_DIST_SHARED_DATASET_H_
