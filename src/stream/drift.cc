#include "stream/drift.h"

#include <cmath>
#include <utility>

#include "util/logging.h"

namespace autofp {

DriftMonitor::DriftMonitor(ReferenceStats reference, DriftConfig config)
    : reference_(std::move(reference)), config_(config) {
  AUTOFP_CHECK(!reference_.empty())
      << "DriftMonitor needs a non-empty reference baseline";
  AUTOFP_CHECK_GT(config_.window_rows, 0u);
  reference_stddev_.resize(reference_.cols());
  for (size_t c = 0; c < reference_.cols(); ++c) {
    reference_stddev_[c] = std::sqrt(reference_.Variance(c));
  }
  window_.Reset(reference_.cols());
}

DriftReport DriftMonitor::Compare() const {
  DriftReport report;
  report.window_rows = window_.rows();
  report.columns.resize(reference_.cols());
  for (size_t c = 0; c < reference_.cols(); ++c) {
    ColumnDrift& column = report.columns[c];
    column.column = c;
    const double sigma0 = reference_stddev_[c];
    if (!(sigma0 > 0.0)) {
      column.state = ColumnDriftState::kSkippedZeroVariance;
      ++report.skipped_zero_variance;
      continue;
    }
    const double mean_shift =
        std::fabs(window_.Mean(c) - reference_.mean[c]) / sigma0;
    const double scale_shift =
        std::fabs(window_.StdDev(c) - sigma0) / sigma0;
    column.statistic = std::max(mean_shift, scale_shift);
    if (column.statistic > report.max_statistic) {
      report.max_statistic = column.statistic;
    }
    if (column.statistic >= config_.threshold) {
      column.state = ColumnDriftState::kDrifted;
      ++report.drifted_columns;
    }
  }
  report.triggered = report.drifted_columns >= config_.min_columns;
  return report;
}

std::optional<DriftReport> DriftMonitor::ObserveBatch(const Matrix& rows) {
  if (rows.rows() == 0) return std::nullopt;
  AUTOFP_CHECK_EQ(rows.cols(), reference_.cols());
  std::optional<DriftReport> report;
  for (size_t r = 0; r < rows.rows(); ++r) {
    window_.ObserveRow(rows.RowPtr(r), rows.cols());
    if (window_.rows() >= config_.window_rows) {
      report = Compare();
      ResetWindow();
    }
  }
  return report;
}

}  // namespace autofp
