#include "stream/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/serialize.h"

namespace autofp {

P2QuantileSketch::P2QuantileSketch(int markers) : num_markers_(markers) {
  AUTOFP_CHECK_GE(markers, 3);
  buffer_.reserve(static_cast<size_t>(markers));
}

void P2QuantileSketch::InitializeMarkers() {
  // The first num_markers_ observations become the markers verbatim:
  // marker i starts at stream position i+1 with height = i-th order
  // statistic, which is exactly where P² wants it.
  std::sort(buffer_.begin(), buffer_.end());
  heights_ = std::move(buffer_);
  buffer_.clear();
  positions_.resize(static_cast<size_t>(num_markers_));
  for (int i = 0; i < num_markers_; ++i) {
    positions_[static_cast<size_t>(i)] = static_cast<double>(i + 1);
  }
}

void P2QuantileSketch::Observe(double value) {
  ++count_;
  if (count_ <= static_cast<uint64_t>(num_markers_)) {
    buffer_.push_back(value);
    if (count_ == static_cast<uint64_t>(num_markers_)) InitializeMarkers();
    return;
  }

  const size_t m = heights_.size();
  // Find the cell k with heights_[k] <= value < heights_[k+1], extending
  // the extreme markers when the value falls outside them.
  size_t k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[m - 1]) {
    if (value > heights_[m - 1]) heights_[m - 1] = value;
    k = m - 2;
  } else {
    k = static_cast<size_t>(
            std::upper_bound(heights_.begin(), heights_.end(), value) -
            heights_.begin()) -
        1;
  }
  for (size_t j = k + 1; j < m; ++j) positions_[j] += 1.0;

  // Nudge each interior marker toward its desired position
  // 1 + i*(count-1)/(M-1), by one step at most, adjusting its height
  // with the piecewise-parabolic prediction (linear fallback when the
  // parabola would break monotonicity).
  const double span = static_cast<double>(count_ - 1) /
                      static_cast<double>(num_markers_ - 1);
  for (size_t i = 1; i + 1 < m; ++i) {
    const double desired = 1.0 + static_cast<double>(i) * span;
    double d = desired - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      d = d >= 0.0 ? 1.0 : -1.0;
      const double np = positions_[i - 1];
      const double nc = positions_[i];
      const double nn = positions_[i + 1];
      const double qp = heights_[i - 1];
      const double qc = heights_[i];
      const double qn = heights_[i + 1];
      double candidate =
          qc + d / (nn - np) *
                   ((nc - np + d) * (qn - qc) / (nn - nc) +
                    (nn - nc - d) * (qc - qp) / (nc - np));
      if (!(qp < candidate && candidate < qn)) {
        // Linear prediction toward the neighbor in the step direction.
        const size_t j = d > 0.0 ? i + 1 : i - 1;
        candidate = qc + d * (heights_[j] - qc) / (positions_[j] - nc);
      }
      heights_[i] = candidate;
      positions_[i] += d;
    }
  }
}

void P2QuantileSketch::SupportPoints(std::vector<double>* values,
                                     std::vector<double>* cdfs) const {
  values->clear();
  cdfs->clear();
  if (count_ == 0) return;
  if (!buffer_.empty() || heights_.empty()) {
    // Warm-up: the sorted observations themselves, at the exact empirical
    // quantiles i/(n-1).
    std::vector<double> sorted = buffer_;
    std::sort(sorted.begin(), sorted.end());
    const size_t n = sorted.size();
    for (size_t i = 0; i < n; ++i) {
      values->push_back(sorted[i]);
      cdfs->push_back(n > 1 ? static_cast<double>(i) /
                                  static_cast<double>(n - 1)
                            : 0.0);
    }
    if (n == 1) {
      values->push_back(sorted[0]);
      cdfs->push_back(1.0);
    }
    return;
  }
  const double denom = static_cast<double>(count_ - 1);
  for (size_t i = 0; i < heights_.size(); ++i) {
    values->push_back(heights_[i]);
    cdfs->push_back(denom > 0.0 ? (positions_[i] - 1.0) / denom : 0.0);
  }
}

double P2QuantileSketch::Quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::vector<double> values, cdfs;
  SupportPoints(&values, &cdfs);
  if (p <= cdfs.front()) return values.front();
  if (p >= cdfs.back()) return values.back();
  // Piecewise-linear interpolation between the bracketing support points.
  for (size_t i = 1; i < cdfs.size(); ++i) {
    if (p <= cdfs[i]) {
      const double gap = cdfs[i] - cdfs[i - 1];
      if (!(gap > 0.0)) return values[i];
      const double fraction = (p - cdfs[i - 1]) / gap;
      return values[i - 1] + fraction * (values[i] - values[i - 1]);
    }
  }
  return values.back();
}

double P2QuantileSketch::Cdf(double value) const {
  if (count_ == 0) return 0.0;
  std::vector<double> values, cdfs;
  SupportPoints(&values, &cdfs);
  if (value <= values.front()) return 0.0;
  if (value >= values.back()) return 1.0;
  // Find the last support point <= value; interpolate into the next.
  size_t hi = static_cast<size_t>(
      std::upper_bound(values.begin(), values.end(), value) -
      values.begin());
  const size_t lo = hi - 1;
  const double gap = values[hi] - values[lo];
  if (!(gap > 0.0)) return cdfs[hi];
  const double fraction = (value - values[lo]) / gap;
  return cdfs[lo] + fraction * (cdfs[hi] - cdfs[lo]);
}

std::vector<double> P2QuantileSketch::References(int k) const {
  AUTOFP_CHECK_GE(k, 2);
  std::vector<double> refs(static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    refs[static_cast<size_t>(j)] =
        Quantile(static_cast<double>(j) / static_cast<double>(k - 1));
  }
  return refs;
}

void P2QuantileSketch::Merge(const P2QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const uint64_t total = count_ + other.count_;
  if (total <= static_cast<uint64_t>(num_markers_) && !buffer_.empty() &&
      !other.buffer_.empty()) {
    // Both still exact: the union is exact too.
    buffer_.insert(buffer_.end(), other.buffer_.begin(),
                   other.buffer_.end());
    count_ = total;
    if (count_ == static_cast<uint64_t>(num_markers_)) InitializeMarkers();
    return;
  }

  // Invert the count-weighted mixture CDF at each marker quantile by
  // binary search over the value axis (both CDFs are monotone, so the
  // mixture is too and the resulting heights are non-decreasing).
  const double w_self = static_cast<double>(count_) /
                        static_cast<double>(total);
  const double w_other = 1.0 - w_self;
  const double lo_bound = std::min(Quantile(0.0), other.Quantile(0.0));
  const double hi_bound = std::max(Quantile(1.0), other.Quantile(1.0));
  const size_t m = static_cast<size_t>(num_markers_);
  std::vector<double> merged_heights(m);
  merged_heights[0] = lo_bound;
  merged_heights[m - 1] = hi_bound;
  for (size_t i = 1; i + 1 < m; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(m - 1);
    double lo = lo_bound, hi = hi_bound;
    for (int iter = 0; iter < 64 && hi - lo > 0.0; ++iter) {
      const double mid = lo + (hi - lo) / 2.0;
      const double mixture = w_self * Cdf(mid) + w_other * other.Cdf(mid);
      if (mixture < p) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    merged_heights[i] = std::max(hi, merged_heights[i - 1]);
  }
  heights_ = std::move(merged_heights);
  positions_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    positions_[i] = 1.0 + static_cast<double>(i) *
                              static_cast<double>(total - 1) /
                              static_cast<double>(m - 1);
  }
  buffer_.clear();
  count_ = total;
}

void P2QuantileSketch::SaveState(std::ostream& out) const {
  WritePod<int32_t>(out, num_markers_);
  WritePod<uint64_t>(out, count_);
  WriteVec(out, buffer_);
  WriteVec(out, heights_);
  WriteVec(out, positions_);
}

Status P2QuantileSketch::LoadState(std::istream& in) {
  int32_t markers = 0;
  P2QuantileSketch loaded;
  if (!ReadPod(in, &markers) || markers < 3 ||
      !ReadPod(in, &loaded.count_) || !ReadVec(in, &loaded.buffer_) ||
      !ReadVec(in, &loaded.heights_) || !ReadVec(in, &loaded.positions_)) {
    return Status::InvalidArgument("P2QuantileSketch: malformed state blob");
  }
  loaded.num_markers_ = markers;
  const bool warming = loaded.count_ < static_cast<uint64_t>(markers);
  const bool shape_ok =
      warming ? (loaded.buffer_.size() == loaded.count_ &&
                 loaded.heights_.empty() && loaded.positions_.empty())
              : (loaded.buffer_.empty() &&
                 loaded.heights_.size() == static_cast<size_t>(markers) &&
                 loaded.positions_.size() == static_cast<size_t>(markers));
  if (!shape_ok) {
    return Status::InvalidArgument("P2QuantileSketch: malformed state blob");
  }
  *this = std::move(loaded);
  return Status::OK();
}

}  // namespace autofp
