#include "stream/reservoir.h"

#include <algorithm>

#include "util/logging.h"

namespace autofp {

ReservoirSampler::ReservoirSampler(size_t capacity, size_t cols,
                                   uint64_t seed)
    : capacity_(capacity), cols_(cols), rng_(seed) {
  AUTOFP_CHECK_GT(capacity, 0u);
  AUTOFP_CHECK_GT(cols, 0u);
  values_.reserve(capacity * cols);
  labels_.reserve(capacity);
}

void ReservoirSampler::ObserveRow(const double* row, size_t cols,
                                  int label) {
  AUTOFP_CHECK_EQ(cols, cols_);
  ++rows_seen_;
  if (labels_.size() < capacity_) {
    values_.insert(values_.end(), row, row + cols_);
    labels_.push_back(label);
    return;
  }
  // Algorithm R: the i-th row (1-based) replaces a uniformly random slot
  // with probability capacity/i.
  const uint64_t slot = rng_.UniformIndex(static_cast<size_t>(rows_seen_));
  if (slot < capacity_) {
    std::copy(row, row + cols_, values_.begin() +
                                    static_cast<long>(slot * cols_));
    labels_[slot] = label;
  }
}

Dataset ReservoirSampler::Snapshot(const std::string& name,
                                   int num_classes) const {
  Dataset data;
  data.name = name;
  data.features = Matrix(labels_.size(), cols_);
  data.features.data().assign(values_.begin(), values_.end());
  data.labels = labels_;
  data.num_classes = num_classes;
  return data;
}

void ReservoirSampler::Reset() {
  rows_seen_ = 0;
  values_.clear();
  labels_.clear();
}

}  // namespace autofp
