#ifndef AUTOFP_STREAM_DRIFT_H_
#define AUTOFP_STREAM_DRIFT_H_

/// Windowed drift detection against an artifact's reference stats (see
/// DESIGN.md "Streaming and drift"). The monitor accumulates serving
/// rows into a RunningMoments window; every full window is compared
/// per-column against the ReferenceStats the artifact was exported with:
///
///   statistic(c) = max(|mu_w - mu_0| / sigma_0, |sigma_w - sigma_0| / sigma_0)
///
/// i.e. how many reference standard deviations the window's mean has
/// moved, or the spread has changed by — whichever is larger. A column
/// whose reference is constant (sigma_0 == 0) cannot be scored this way;
/// it is recorded as a typed skip, never divided by. The report triggers
/// when at least `min_columns` columns exceed `threshold`.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "serve/artifact.h"
#include "stream/moments.h"
#include "util/matrix.h"

namespace autofp {

struct DriftConfig {
  /// Rows per comparison window; a report is produced (and the window
  /// reset) each time this many rows have been observed.
  size_t window_rows = 512;
  /// Per-column trigger threshold in reference standard deviations.
  double threshold = 0.5;
  /// Columns that must exceed the threshold for the report to trigger.
  size_t min_columns = 1;
};

/// Why a column did or did not contribute to the trigger decision.
enum class ColumnDriftState : int {
  kOk = 0,       ///< scored, below threshold.
  kDrifted,      ///< scored, at or above threshold.
  /// Reference variance is zero (constant column at export time): the
  /// statistic is undefined, so the column is skipped — a typed outcome,
  /// not a division by zero.
  kSkippedZeroVariance,
};

struct ColumnDrift {
  size_t column = 0;
  /// The drift statistic; 0 for skipped columns.
  double statistic = 0.0;
  ColumnDriftState state = ColumnDriftState::kOk;
};

/// One window's verdict. `columns` always has one entry per feature
/// column, in column order.
struct DriftReport {
  bool triggered = false;
  uint64_t window_rows = 0;
  std::vector<ColumnDrift> columns;
  size_t drifted_columns = 0;
  size_t skipped_zero_variance = 0;
  double max_statistic = 0.0;
};

/// Accumulates rows and emits one DriftReport per full window. Not
/// thread-safe (the serve batch thread is the single producer).
class DriftMonitor {
 public:
  /// `reference` must be non-empty; its column count fixes the monitor's.
  DriftMonitor(ReferenceStats reference, DriftConfig config);

  /// Feeds a scored batch. Returns a report for each window boundary the
  /// batch crossed (the report of the *last* completed window when a
  /// batch spans several); nullopt while the window is still filling.
  std::optional<DriftReport> ObserveBatch(const Matrix& rows);

  /// Drops the partial window (used after a swap installs a new baseline).
  void ResetWindow() { window_.Reset(reference_.cols()); }

  const ReferenceStats& reference() const { return reference_; }
  const DriftConfig& config() const { return config_; }
  uint64_t rows_in_window() const { return window_.rows(); }

  /// Scores the current window against the reference without waiting for
  /// it to fill (used by tests and the final flush).
  DriftReport Compare() const;

 private:
  ReferenceStats reference_;
  /// Reference stddev per column, precomputed once.
  std::vector<double> reference_stddev_;
  DriftConfig config_;
  RunningMoments window_;
};

}  // namespace autofp

#endif  // AUTOFP_STREAM_DRIFT_H_
