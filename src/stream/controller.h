#ifndef AUTOFP_STREAM_CONTROLLER_H_
#define AUTOFP_STREAM_CONTROLLER_H_

/// The streaming control loop (see DESIGN.md "Streaming and drift"):
/// one object wired into the serve batch thread as a ServeBatchObserver.
/// Per scored micro-batch it (1) feeds every row into a uniform
/// reservoir sample, pseudo-labeled with the live predictions, and
/// (2) feeds the rows into the drift monitor built from the live
/// artifact's reference stats. When a window triggers, the reservoir is
/// snapshotted and handed to the BackgroundResearcher, which re-searches
/// on a low-priority thread and hot-swaps the winner. A swap (observed
/// as a predictor identity change) rebuilds the monitor around the new
/// baseline and resets the window, so the new artifact is judged only
/// against its own export stats.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/server.h"
#include "stream/drift.h"
#include "stream/research.h"
#include "stream/reservoir.h"

namespace autofp {

struct StreamConfig {
  DriftConfig drift;
  ResearchConfig research;
  /// Reservoir capacity (rows retained for the re-search snapshot).
  size_t reservoir_rows = 2048;
  /// Seed for the reservoir's replacement draws.
  uint64_t seed = 42;
};

/// Monotonic counters over the controller's lifetime (all producer-side,
/// read via CountersJson/counters from any thread).
struct StreamCounters {
  long rows_observed = 0;
  long windows_compared = 0;   ///< full windows scored against the baseline.
  long drift_triggers = 0;     ///< windows whose report triggered.
  long zero_variance_skips = 0;  ///< column skips summed over all windows.
  long research_started = 0;
  long research_dropped = 0;   ///< triggers refused because a run was busy.
  long research_succeeded = 0;
  long research_failed = 0;
  long baseline_resets = 0;    ///< monitor rebuilds after a swap.
};

class StreamController : public ServeBatchObserver {
 public:
  /// `registry` must outlive the controller (shared with the server).
  StreamController(ArtifactRegistry* registry, StreamConfig config);

  /// ServeBatchObserver: batch-thread-synchronous.
  void OnBatchScored(const Matrix& rows, const std::vector<int>& predictions,
                     const Predictor& predictor) override;

  StreamCounters counters() const;
  /// The counters as one flat JSON object fragment (keys only, no braces),
  /// for splicing into the server's SIGUSR1 stats line.
  std::string CountersJson() const;

  /// Blocks until no background research run is in flight (tests, final
  /// flush before shutdown).
  void WaitForResearch() { researcher_.WaitIdle(); }
  BackgroundResearcher& researcher() { return researcher_; }

 private:
  /// (Re)builds monitor + reservoir for the predictor's baseline; leaves
  /// the monitor unset when the artifact carries no reference stats.
  void RebuildForPredictor(const Predictor& predictor);

  ArtifactRegistry* const registry_;
  const StreamConfig config_;
  BackgroundResearcher researcher_;

  mutable std::mutex mutex_;  ///< guards everything below.
  StreamCounters counters_;
  /// Identity of the predictor the monitor was built for; a different
  /// pointer means a swap happened.
  const Predictor* baseline_owner_ = nullptr;
  std::optional<DriftMonitor> monitor_;
  std::unique_ptr<ReservoirSampler> reservoir_;
  int num_classes_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_STREAM_CONTROLLER_H_
