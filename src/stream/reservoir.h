#ifndef AUTOFP_STREAM_RESERVOIR_H_
#define AUTOFP_STREAM_RESERVOIR_H_

/// Uniform reservoir sampling (Algorithm R) over the serving stream (see
/// DESIGN.md "Streaming and drift"): keeps a capacity-bounded uniform
/// sample of every (row, predicted label) pair scored so far, so a drift
/// trigger can snapshot a representative re-search dataset without the
/// stream ever being materialized. Labels are the live predictor's own
/// predictions (pseudo-labels) — serving traffic carries no ground
/// truth; see DESIGN.md for why that is the honest option here.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/matrix.h"
#include "util/random.h"

namespace autofp {

/// Not thread-safe (single producer: the serve batch thread). The seed
/// makes the sample deterministic for a given stream.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, size_t cols, uint64_t seed);

  /// Offers one scored row (`cols` values) with its predicted label.
  void ObserveRow(const double* row, size_t cols, int label);

  size_t size() const { return labels_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t rows_seen() const { return rows_seen_; }

  /// Materializes the current sample as a labeled dataset (`num_classes`
  /// comes from the serving schema, not the sample, so rare classes
  /// absent from the reservoir keep their ids).
  Dataset Snapshot(const std::string& name, int num_classes) const;

  /// Drops the sample and the seen-count (fresh stream after a swap).
  void Reset();

 private:
  size_t capacity_;
  size_t cols_;
  uint64_t rows_seen_ = 0;
  Rng rng_;
  /// Row-major sample buffer, size() rows of cols_ values each.
  std::vector<double> values_;
  std::vector<int> labels_;
};

}  // namespace autofp

#endif  // AUTOFP_STREAM_RESERVOIR_H_
