#ifndef AUTOFP_STREAM_RESEARCH_H_
#define AUTOFP_STREAM_RESEARCH_H_

/// Budget-bounded background re-search (see DESIGN.md "Streaming and
/// drift"): when the drift monitor fires, a snapshot of recent serving
/// rows is handed to a low-priority worker thread that re-runs the
/// pipeline search (the same RunSearch/SearchOptions machinery as the
/// CLI), exports the winner as a candidate artifact (atomic write), and
/// hot-swaps it through the ArtifactRegistry. Every failure path —
/// too-small snapshot, search found nothing, export failed, swap
/// rejected the candidate — is a typed Status and a counter bump; the
/// old artifact keeps serving untouched, and the generation only moves
/// on a successful swap.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "data/dataset.h"
#include "serve/registry.h"
#include "util/status.h"

namespace autofp {

struct ResearchConfig {
  /// Evaluation budget for one background search run.
  long budget_evaluations = 32;
  /// Table 3 algorithm name (search/registry.h).
  std::string algorithm = "RS";
  uint64_t seed = 1;
  /// Train share of the snapshot split (the paper's 80:20).
  double train_fraction = 0.8;
  /// Where the candidate artifact is exported before the swap. Required.
  std::string candidate_path;
  /// Optional durable-run journal for the background search ("" = none).
  std::string journal_path;
  /// Evaluator worker threads for the background search.
  int num_threads = 1;
  /// Snapshots smaller than this are refused (a search on a handful of
  /// pseudo-labeled rows would only produce noise).
  size_t min_rows = 64;
};

/// Owns the background thread. At most one run is in flight: triggers
/// arriving while busy are dropped (counted), because a newer window
/// will re-trigger if the drift persists.
class BackgroundResearcher {
 public:
  /// Runs (snapshot) -> candidate artifact at `path`. The default body
  /// searches with RunSearch and exports via ExportArtifact; tests
  /// substitute a rigged function to make the end-to-end path
  /// deterministic (or to fail on purpose).
  using SearchExportFn =
      std::function<Status(const Dataset& snapshot, const std::string& path)>;

  struct Counters {
    long triggers_accepted = 0;  ///< background runs started.
    long triggers_dropped = 0;   ///< triggers refused because busy.
    long runs_succeeded = 0;     ///< search + export + swap all OK.
    long runs_failed = 0;        ///< any stage failed; old artifact kept.
  };

  /// `registry` must outlive the researcher; the model config for the
  /// default search body is taken from the live predictor at run time.
  BackgroundResearcher(ArtifactRegistry* registry, ResearchConfig config);
  ~BackgroundResearcher();
  BackgroundResearcher(const BackgroundResearcher&) = delete;
  BackgroundResearcher& operator=(const BackgroundResearcher&) = delete;

  /// Starts a background run over `snapshot` unless one is in flight.
  /// Returns true when the run was accepted.
  bool TriggerAsync(Dataset snapshot);

  /// The synchronous run body (also what the background thread executes):
  /// search, export candidate, swap. Any non-OK return leaves the
  /// registry untouched.
  Status RunOnce(const Dataset& snapshot);

  bool busy() const { return busy_.load(std::memory_order_acquire); }
  /// Blocks until no run is in flight (test/shutdown helper).
  void WaitIdle();

  Counters counters() const;

  /// Test hook: replaces the search+export body (not the swap).
  void set_search_export_fn(SearchExportFn fn);

 private:
  /// Default SearchExportFn: RunSearch on a snapshot split, then
  /// ExportArtifact of the best pipeline fitted on the full snapshot.
  Status SearchAndExport(const Dataset& snapshot, const std::string& path);
  void ThreadBody(Dataset snapshot);

  ArtifactRegistry* const registry_;
  const ResearchConfig config_;
  SearchExportFn search_export_fn_;

  std::atomic<bool> busy_{false};
  mutable std::mutex mutex_;  ///< guards counters_ and thread_.
  std::condition_variable idle_;
  Counters counters_;
  std::thread thread_;
};

}  // namespace autofp

#endif  // AUTOFP_STREAM_RESEARCH_H_
