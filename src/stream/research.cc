#include "stream/research.h"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "core/budget.h"
#include "core/evaluator.h"
#include "core/run_journal.h"
#include "core/search_framework.h"
#include "core/search_space.h"
#include "data/splits.h"
#include "search/registry.h"
#include "serve/artifact.h"
#include "util/logging.h"
#include "util/random.h"

namespace autofp {
namespace {

/// Best-effort: background search must never steal cycles from the serve
/// threads, so the worker renices itself (thread-scoped on Linux; a
/// failure — e.g. no such capability — is simply ignored).
void LowerThreadPriority() {
#ifdef __linux__
  const pid_t tid = static_cast<pid_t>(syscall(SYS_gettid));
  (void)setpriority(PRIO_PROCESS, static_cast<id_t>(tid), 10);
#endif
}

}  // namespace

BackgroundResearcher::BackgroundResearcher(ArtifactRegistry* registry,
                                           ResearchConfig config)
    : registry_(registry), config_(std::move(config)) {
  AUTOFP_CHECK(registry_ != nullptr);
  search_export_fn_ = [this](const Dataset& snapshot,
                             const std::string& path) {
    return SearchAndExport(snapshot, path);
  };
}

BackgroundResearcher::~BackgroundResearcher() {
  WaitIdle();
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_.joinable()) thread_.join();
}

void BackgroundResearcher::set_search_export_fn(SearchExportFn fn) {
  AUTOFP_CHECK(fn != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  search_export_fn_ = std::move(fn);
}

bool BackgroundResearcher::TriggerAsync(Dataset snapshot) {
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true,
                                     std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.triggers_dropped;
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.triggers_accepted;
  // Reap the previous (finished) thread before launching the next run.
  if (thread_.joinable()) thread_.join();
  thread_ = std::thread(
      [this, moved = std::move(snapshot)]() mutable {
        ThreadBody(std::move(moved));
      });
  return true;
}

void BackgroundResearcher::ThreadBody(Dataset snapshot) {
  LowerThreadPriority();
  const Status status = RunOnce(snapshot);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status.ok()) {
      ++counters_.runs_succeeded;
    } else {
      ++counters_.runs_failed;
      std::fprintf(stderr, "research: run failed, keeping old artifact: %s\n",
                   status.ToString().c_str());
    }
    // Cleared under the mutex so WaitIdle's predicate check can't miss
    // the wakeup.
    busy_.store(false, std::memory_order_release);
  }
  idle_.notify_all();
}

Status BackgroundResearcher::RunOnce(const Dataset& snapshot) {
  if (snapshot.num_rows() < config_.min_rows) {
    return Status::InvalidArgument(
        "research: snapshot has " + std::to_string(snapshot.num_rows()) +
        " rows, need at least " + std::to_string(config_.min_rows));
  }
  if (config_.candidate_path.empty()) {
    return Status::InvalidArgument("research: no candidate path configured");
  }
  SearchExportFn body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body = search_export_fn_;
  }
  Status produced = body(snapshot, config_.candidate_path);
  if (!produced.ok()) return produced;
  // The swap is the only step that touches serving state: it loads the
  // candidate through the full corruption taxonomy and publishes it with
  // one pointer exchange, or leaves the old predictor serving.
  return registry_->Swap(config_.candidate_path);
}

Status BackgroundResearcher::SearchAndExport(const Dataset& snapshot,
                                             const std::string& path) {
  // The downstream model is whatever the live artifact serves; re-search
  // only repicks the preprocessing pipeline (the paper's search space).
  std::shared_ptr<const Predictor> live = registry_->Acquire();
  if (live == nullptr) {
    return Status::NotFound("research: no live artifact to take the model "
                            "config from");
  }
  const ModelConfig model_config = live->model_config();
  live.reset();  // don't pin the old predictor across the whole search.

  Status valid = snapshot.Validate();
  if (!valid.ok()) return valid;

  Rng rng(config_.seed);
  TrainValidSplit split =
      SplitTrainValid(snapshot, config_.train_fraction, &rng);
  PipelineEvaluator evaluator(std::move(split.train), std::move(split.valid),
                              model_config);
  Result<std::unique_ptr<SearchAlgorithm>> algorithm =
      MakeSearchAlgorithm(config_.algorithm);
  if (!algorithm.ok()) return algorithm.status();
  SearchSpace space = SearchSpace::Default();

  SearchOptions options;
  options.budget = Budget::Evaluations(config_.budget_evaluations);
  options.seed = config_.seed;
  options.num_threads = config_.num_threads;
  std::unique_ptr<RunJournalWriter> journal;
  if (!config_.journal_path.empty()) {
    Result<std::unique_ptr<RunJournalWriter>> created = RunJournalWriter::Create(
        config_.journal_path, SearchOptionsFingerprint(options),
        DatasetFingerprint(snapshot));
    if (!created.ok()) return created.status();
    journal = std::move(created.value());
    options.journal = journal.get();
  }

  SearchResult result =
      RunSearch(algorithm.value().get(), &evaluator, space, options);
  if (result.num_successes == 0) {
    return Status::Internal(
        "research: no pipeline evaluated successfully on the snapshot");
  }
  // Fit the winner on the full snapshot and export the candidate; the
  // write is atomic (WriteFileAtomic), so the registry can never load a
  // half-written candidate.
  Result<ArtifactSchema> exported =
      ExportArtifact(path, snapshot, result.best_pipeline, model_config);
  if (!exported.ok()) return exported.status();
  return Status::OK();
}

void BackgroundResearcher::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return !busy_.load(std::memory_order_acquire); });
}

BackgroundResearcher::Counters BackgroundResearcher::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace autofp
