#include "stream/controller.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "util/logging.h"

namespace autofp {

StreamController::StreamController(ArtifactRegistry* registry,
                                   StreamConfig config)
    : registry_(registry),
      config_(std::move(config)),
      researcher_(registry, config_.research) {
  AUTOFP_CHECK(registry_ != nullptr);
}

void StreamController::RebuildForPredictor(const Predictor& predictor) {
  baseline_owner_ = &predictor;
  num_classes_ = predictor.schema().num_classes;
  const ReferenceStats& reference = predictor.reference_stats();
  if (reference.empty()) {
    // Pre-v2 artifacts carry no baseline; drift monitoring stays off
    // until a stats-bearing artifact is swapped in.
    monitor_.reset();
  } else {
    monitor_.emplace(reference, config_.drift);
  }
  reservoir_ = std::make_unique<ReservoirSampler>(
      config_.reservoir_rows, predictor.schema().input_cols, config_.seed);
}

void StreamController::OnBatchScored(const Matrix& rows,
                                     const std::vector<int>& predictions,
                                     const Predictor& predictor) {
  AUTOFP_CHECK_EQ(rows.rows(), predictions.size());
  Dataset snapshot;
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (baseline_owner_ != &predictor) {
      if (baseline_owner_ != nullptr) ++counters_.baseline_resets;
      RebuildForPredictor(predictor);
    }
    counters_.rows_observed += static_cast<long>(rows.rows());
    for (size_t r = 0; r < rows.rows(); ++r) {
      reservoir_->ObserveRow(rows.RowPtr(r), rows.cols(), predictions[r]);
    }
    if (monitor_.has_value()) {
      std::optional<DriftReport> report = monitor_->ObserveBatch(rows);
      if (report.has_value()) {
        ++counters_.windows_compared;
        counters_.zero_variance_skips +=
            static_cast<long>(report->skipped_zero_variance);
        if (report->triggered) {
          ++counters_.drift_triggers;
          trigger = true;
          snapshot = reservoir_->Snapshot("drift-snapshot", num_classes_);
          std::fprintf(stderr,
                       "drift: window of %llu rows triggered "
                       "(%zu/%zu columns over threshold, max statistic "
                       "%.3f, %zu zero-variance skips)\n",
                       static_cast<unsigned long long>(report->window_rows),
                       report->drifted_columns, report->columns.size(),
                       report->max_statistic,
                       report->skipped_zero_variance);
        }
      }
    }
  }
  if (!trigger) return;
  // Hand off outside the lock: TriggerAsync may join a finished worker.
  if (researcher_.TriggerAsync(std::move(snapshot))) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.research_started;
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.research_dropped;
  }
}

StreamCounters StreamController::counters() const {
  StreamCounters out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = counters_;
  }
  const BackgroundResearcher::Counters research = researcher_.counters();
  out.research_succeeded = research.runs_succeeded;
  out.research_failed = research.runs_failed;
  return out;
}

std::string StreamController::CountersJson() const {
  const StreamCounters c = counters();
  std::ostringstream out;
  out << "\"stream_rows_observed\":" << c.rows_observed
      << ",\"stream_windows_compared\":" << c.windows_compared
      << ",\"drift_triggers\":" << c.drift_triggers
      << ",\"drift_zero_variance_skips\":" << c.zero_variance_skips
      << ",\"research_started\":" << c.research_started
      << ",\"research_dropped\":" << c.research_dropped
      << ",\"research_succeeded\":" << c.research_succeeded
      << ",\"research_failed\":" << c.research_failed
      << ",\"baseline_resets\":" << c.baseline_resets;
  return out.str();
}

}  // namespace autofp
