#ifndef AUTOFP_STREAM_MOMENTS_H_
#define AUTOFP_STREAM_MOMENTS_H_

/// Incremental per-column statistics (see DESIGN.md "Streaming and
/// drift"): Welford's online algorithm over row batches, with Chan's
/// parallel merge so partial accumulators from different windows/workers
/// combine exactly. A RunningMoments converts losslessly to and from the
/// artifact's ReferenceStats (serve/artifact.h), so the drift baseline
/// stamped at export time is literally a saved accumulator, and the
/// scaler refit hooks (StandardScaler::FitFromMoments,
/// MinMaxScaler::FitFromRanges, MaxAbsScaler::FitFromScales) can be fed
/// from a live stream without ever materializing the data.

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "serve/artifact.h"
#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// Per-column running (count, mean, M2, min, max) in Welford form.
/// Numerically stable: M2 accumulates squared deviations from the running
/// mean, never raw sums of squares. Not thread-safe; give each producer
/// its own accumulator and Merge().
class RunningMoments {
 public:
  RunningMoments() = default;
  explicit RunningMoments(size_t cols) { Reset(cols); }

  /// Drops all state and fixes the column count.
  void Reset(size_t cols);

  /// One Welford update per column. `cols` must equal cols().
  void ObserveRow(const double* row, size_t cols);
  /// Batch form: one ObserveRow per matrix row.
  void Observe(const Matrix& rows);

  /// Chan's parallel merge: afterwards *this summarizes the union of both
  /// streams exactly (same count/mean/M2/min/max as one sequential pass,
  /// up to floating-point rounding). Column counts must match; merging an
  /// empty accumulator is a no-op.
  void Merge(const RunningMoments& other);

  size_t cols() const { return mean_.size(); }
  uint64_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  double Mean(size_t c) const { return mean_[c]; }
  double M2(size_t c) const { return m2_[c]; }
  /// Population variance (0 with no rows).
  double Variance(size_t c) const {
    return rows_ > 0 ? m2_[c] / static_cast<double>(rows_) : 0.0;
  }
  double StdDev(size_t c) const;
  double Min(size_t c) const { return min_[c]; }
  double Max(size_t c) const { return max_[c]; }
  /// Largest absolute observed value of column c (0 with no rows).
  double MaxAbs(size_t c) const;

  /// Per-column vectors in the shape the refit hooks take.
  std::vector<double> Means() const { return mean_; }
  std::vector<double> StdDevs() const;
  std::vector<double> Mins() const { return min_; }
  std::vector<double> Maxs() const { return max_; }
  std::vector<double> MaxAbses() const;

  /// Lossless conversion to/from the artifact's drift-baseline section.
  ReferenceStats ToReferenceStats() const;
  static RunningMoments FromReferenceStats(const ReferenceStats& stats);

  /// Serialization in the fitted-state-blob convention (util/serialize.h):
  /// SaveState writes the full accumulator; LoadState rejects malformed
  /// blobs with InvalidArgument and leaves *this unchanged on failure.
  void SaveState(std::ostream& out) const;
  Status LoadState(std::istream& in);

 private:
  uint64_t rows_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;
  std::vector<double> min_;
  std::vector<double> max_;
};

}  // namespace autofp

#endif  // AUTOFP_STREAM_MOMENTS_H_
