#ifndef AUTOFP_STREAM_QUANTILE_SKETCH_H_
#define AUTOFP_STREAM_QUANTILE_SKETCH_H_

/// Streaming quantile estimation (see DESIGN.md "Streaming and drift"):
/// an extended P² (piecewise-parabolic, Jain & Chlamtac) sketch tracking
/// M markers at the quantiles i/(M-1) in O(M) memory, independent of
/// stream length. Until M observations arrive the sketch is exact (it
/// simply keeps the values); past that each observation moves at most
/// every marker one position and adjusts heights with the parabolic
/// prediction formula. References(k) emits a reference table in exactly
/// the shape QuantileTransformer::FitFromReferences() consumes, so a
/// QuantileTransformer can be refit from a live stream without holding
/// the rows.

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/status.h"

namespace autofp {

/// One-column P² sketch. Not thread-safe; Merge() combines independent
/// sketches (e.g. per-worker or per-window) by inverting the
/// count-weighted mixture of their piecewise-linear CDFs — approximate,
/// like the sketch itself, but count-exact and monotone.
class P2QuantileSketch {
 public:
  /// `markers` >= 3; more markers = finer tail resolution. The default 32
  /// keeps worst-case quantile error well under 1% on smooth
  /// distributions while staying a few hundred bytes per column.
  explicit P2QuantileSketch(int markers = 32);

  void Observe(double value);

  /// Estimated p-quantile (p in [0, 1]); exact while count() < markers.
  /// Returns 0.0 for an empty sketch.
  double Quantile(double p) const;

  /// Reference table at the k quantiles j/(k-1), k >= 2 — the input shape
  /// of QuantileTransformer::FitFromReferences (one call per column).
  std::vector<double> References(int k) const;

  /// Replaces *this with a sketch of the union stream: markers are placed
  /// by inverting the count-weighted mixture CDF of the two inputs
  /// (binary search over the value axis). Approximately associative —
  /// each merge is itself a sketching step, so differently-shaped merge
  /// trees agree within sketch tolerance, not bit-for-bit.
  void Merge(const P2QuantileSketch& other);

  uint64_t count() const { return count_; }
  int markers() const { return num_markers_; }

  /// Serialization in the fitted-state-blob convention; LoadState rejects
  /// malformed blobs with InvalidArgument, leaving *this unchanged.
  void SaveState(std::ostream& out) const;
  Status LoadState(std::istream& in);

 private:
  /// Piecewise-linear empirical CDF at `value` (0 when empty).
  double Cdf(double value) const;
  /// The current (value, cdf) support points: the sorted buffer while
  /// warming up, marker heights afterwards.
  void SupportPoints(std::vector<double>* values,
                     std::vector<double>* cdfs) const;
  /// Switches from the exact warm-up buffer to marker mode.
  void InitializeMarkers();

  int num_markers_;
  uint64_t count_ = 0;
  /// Warm-up: first num_markers_ values, kept sorted. Cleared once
  /// markers take over.
  std::vector<double> buffer_;
  /// Marker mode (count_ >= num_markers_): heights (estimated quantile
  /// values, non-decreasing) and 1-based positions in the stream.
  std::vector<double> heights_;
  std::vector<double> positions_;

  friend class P2QuantileSketchPeer;  // test access to marker internals.
};

}  // namespace autofp

#endif  // AUTOFP_STREAM_QUANTILE_SKETCH_H_
