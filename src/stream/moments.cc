#include "stream/moments.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/serialize.h"
#include "util/simd.h"

namespace autofp {

void RunningMoments::Reset(size_t cols) {
  rows_ = 0;
  mean_.assign(cols, 0.0);
  m2_.assign(cols, 0.0);
  min_.assign(cols, std::numeric_limits<double>::infinity());
  max_.assign(cols, -std::numeric_limits<double>::infinity());
}

void RunningMoments::ObserveRow(const double* row, size_t cols) {
  AUTOFP_CHECK_EQ(cols, mean_.size());
  ++rows_;
  const double inv_rows = 1.0 / static_cast<double>(rows_);
  using simd::VecD;
  size_t c = 0;
  if (simd::kDoubleLanes > 1 && !simd::ForceScalarEnabled()) {
    // Welford's update is independent per column, so vector lanes across
    // columns reproduce the scalar loop bit for bit (each lane performs
    // the identical op sequence; the strict-comparison Selects keep the
    // scalar min/max tie behavior).
    const VecD v_inv = VecD::Set1(inv_rows);
    for (; c + simd::kDoubleLanes <= cols; c += simd::kDoubleLanes) {
      const VecD value = VecD::Load(row + c);
      VecD mean = VecD::Load(mean_.data() + c);
      const VecD delta = value - mean;
      mean = mean + delta * v_inv;
      mean.Store(mean_.data() + c);
      (VecD::Load(m2_.data() + c) + delta * (value - mean))
          .Store(m2_.data() + c);
      const VecD lo = VecD::Load(min_.data() + c);
      const VecD hi = VecD::Load(max_.data() + c);
      VecD::Select(VecD::Gt(lo, value), value, lo).Store(min_.data() + c);
      VecD::Select(VecD::Gt(value, hi), value, hi).Store(max_.data() + c);
    }
  }
  for (; c < cols; ++c) {
    const double value = row[c];
    const double delta = value - mean_[c];
    mean_[c] += delta * inv_rows;
    m2_[c] += delta * (value - mean_[c]);
    if (value < min_[c]) min_[c] = value;
    if (value > max_[c]) max_[c] = value;
  }
}

void RunningMoments::Observe(const Matrix& rows) {
  for (size_t r = 0; r < rows.rows(); ++r) {
    ObserveRow(rows.RowPtr(r), rows.cols());
  }
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0) {
    *this = other;
    return;
  }
  AUTOFP_CHECK_EQ(cols(), other.cols());
  const double n_a = static_cast<double>(rows_);
  const double n_b = static_cast<double>(other.rows_);
  const double n = n_a + n_b;
  for (size_t c = 0; c < cols(); ++c) {
    const double delta = other.mean_[c] - mean_[c];
    // Chan et al.: combined mean is the count-weighted mean; combined M2
    // gains the between-stream term delta^2 * n_a*n_b/n.
    mean_[c] += delta * (n_b / n);
    m2_[c] += other.m2_[c] + delta * delta * (n_a * n_b / n);
    if (other.min_[c] < min_[c]) min_[c] = other.min_[c];
    if (other.max_[c] > max_[c]) max_[c] = other.max_[c];
  }
  rows_ += other.rows_;
}

double RunningMoments::StdDev(size_t c) const {
  return std::sqrt(Variance(c));
}

double RunningMoments::MaxAbs(size_t c) const {
  if (rows_ == 0) return 0.0;
  return std::max(std::fabs(min_[c]), std::fabs(max_[c]));
}

std::vector<double> RunningMoments::StdDevs() const {
  std::vector<double> out(cols());
  for (size_t c = 0; c < cols(); ++c) out[c] = StdDev(c);
  return out;
}

std::vector<double> RunningMoments::MaxAbses() const {
  std::vector<double> out(cols());
  for (size_t c = 0; c < cols(); ++c) out[c] = MaxAbs(c);
  return out;
}

ReferenceStats RunningMoments::ToReferenceStats() const {
  ReferenceStats stats;
  stats.rows = rows_;
  stats.mean = mean_;
  stats.m2 = m2_;
  if (rows_ == 0) {
    // Match ComputeReferenceStats on empty input: finite sentinels, not
    // the +/-inf the accumulator uses internally.
    stats.min.assign(cols(), 0.0);
    stats.max.assign(cols(), 0.0);
  } else {
    stats.min = min_;
    stats.max = max_;
  }
  return stats;
}

RunningMoments RunningMoments::FromReferenceStats(const ReferenceStats& stats) {
  RunningMoments moments(stats.cols());
  if (stats.rows == 0) return moments;
  moments.rows_ = stats.rows;
  moments.mean_ = stats.mean;
  moments.m2_ = stats.m2;
  moments.min_ = stats.min;
  moments.max_ = stats.max;
  return moments;
}

void RunningMoments::SaveState(std::ostream& out) const {
  WritePod<uint64_t>(out, rows_);
  WriteVec(out, mean_);
  WriteVec(out, m2_);
  WriteVec(out, min_);
  WriteVec(out, max_);
}

Status RunningMoments::LoadState(std::istream& in) {
  RunningMoments loaded;
  if (!ReadPod(in, &loaded.rows_) || !ReadVec(in, &loaded.mean_) ||
      !ReadVec(in, &loaded.m2_) || !ReadVec(in, &loaded.min_) ||
      !ReadVec(in, &loaded.max_) ||
      loaded.m2_.size() != loaded.mean_.size() ||
      loaded.min_.size() != loaded.mean_.size() ||
      loaded.max_.size() != loaded.mean_.size()) {
    return Status::InvalidArgument("RunningMoments: malformed state blob");
  }
  *this = std::move(loaded);
  return Status::OK();
}

}  // namespace autofp
