#ifndef AUTOFP_CORE_FP_GROWTH_H_
#define AUTOFP_CORE_FP_GROWTH_H_

#include <cstddef>
#include <vector>

namespace autofp {

/// A frequent itemset and its support (number of transactions containing
/// every item of the set).
struct FrequentItemset {
  std::vector<int> items;  ///< ascending item ids.
  size_t support = 0;
};

/// FP-growth frequent-itemset mining (Han et al., SIGMOD 2000), used by
/// Section 5.2's "are there frequent excellent preprocessor patterns?"
/// analysis over the best pipelines PBT finds per dataset. Transactions
/// are sets of item ids (duplicates within a transaction are ignored).
/// Returns all itemsets with support >= min_support, largest support
/// first; singletons included.
std::vector<FrequentItemset> FpGrowth(
    const std::vector<std::vector<int>>& transactions, size_t min_support);

}  // namespace autofp

#endif  // AUTOFP_CORE_FP_GROWTH_H_
