#include "core/evaluator.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "data/splits.h"
#include "ml/metrics.h"
#include "util/timer.h"

namespace autofp {

namespace {

Evaluation FailedEvaluation(const PipelineSpec& pipeline,
                            double budget_fraction, EvalFailure failure,
                            Status status) {
  Evaluation result;
  result.pipeline = pipeline;
  result.budget_fraction = budget_fraction;
  result.failure = failure;
  result.status = std::move(status);
  result.accuracy = kPenaltyAccuracy;
  return result;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// Key fragment identifying the exact training matrix a prefix was fitted
/// on: the full data for effective fraction >= 1, otherwise the
/// (fraction, seed) pair that reproduces the subsample.
std::string SubsampleKey(double effective_fraction, uint64_t seed) {
  if (effective_fraction >= 1.0) return "full";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "f%.17g|s%llu", effective_fraction,
                static_cast<unsigned long long>(seed));
  return buffer;
}

}  // namespace

uint64_t EvalRequest::DeriveSeed(uint64_t root, const PipelineSpec& pipeline,
                                 double budget_fraction, int attempt) {
  uint64_t fraction_bits = 0;
  std::memcpy(&fraction_bits, &budget_fraction, sizeof(fraction_bits));
  uint64_t mixed = SplitMix64(root);
  mixed = SplitMix64(mixed ^ Fnv1a(pipeline.Key()));
  mixed = SplitMix64(mixed ^ fraction_bits);
  mixed = SplitMix64(mixed ^ static_cast<uint64_t>(attempt));
  return mixed;
}

PipelineEvaluator::PipelineEvaluator(Dataset train, Dataset valid,
                                     ModelConfig model)
    : train_(std::move(train)), valid_(std::move(valid)), model_(model) {
  AUTOFP_CHECK_GT(train_.num_rows(), 0u);
  AUTOFP_CHECK_GT(valid_.num_rows(), 0u);
  AUTOFP_CHECK_EQ(train_.num_cols(), valid_.num_cols());
  AUTOFP_CHECK_EQ(train_.num_classes, valid_.num_classes);
}

void PipelineEvaluator::AttachFaultInjector(const FaultInjectorConfig& config) {
  fault_injector_ = std::make_unique<FaultInjector>(config);
}

Evaluation PipelineEvaluator::Evaluate(const EvalRequest& request) {
  return Evaluate(request, /*scratch=*/nullptr);
}

Evaluation PipelineEvaluator::Evaluate(const EvalRequest& request,
                                       TransformScratch* scratch) {
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return EvaluateImpl(request, /*use_injector=*/true, scratch);
}

Evaluation PipelineEvaluator::EvaluateImpl(const EvalRequest& request,
                                           bool use_injector,
                                           TransformScratch* scratch) {
  const PipelineSpec& pipeline = request.pipeline;
  const double budget_fraction = request.budget_fraction;
  AUTOFP_CHECK_GT(budget_fraction, 0.0);
  AUTOFP_CHECK_LE(budget_fraction, 1.0);
  Stopwatch eval_watch;

  // Injected faults and slowdowns are decided up front from the request
  // seed; a slowdown is simulated (no real sleep) by counting against the
  // deadline.
  double injected_delay = 0.0;
  if (use_injector && fault_injector_ != nullptr) {
    InjectionDecision decision = fault_injector_->DecisionFor(request.seed);
    if (decision.failure != EvalFailure::kNone) {
      return FailedEvaluation(pipeline, budget_fraction, decision.failure,
                              Status::Internal("injected fault"));
    }
    injected_delay = decision.delay_seconds;
  }
  const double deadline = request.deadline_seconds;
  auto past_deadline = [&]() {
    return deadline > 0.0 &&
           eval_watch.ElapsedSeconds() + injected_delay > deadline;
  };

  Evaluation result;
  result.pipeline = pipeline;
  result.budget_fraction = budget_fraction;

  const Dataset* train_view = &train_;
  Dataset subsampled;
  double effective_fraction = budget_fraction * global_train_fraction_;
  if (effective_fraction < 1.0) {
    // Seeded by the request, not by call count: concurrent and repeated
    // evaluations of the same request subsample identically.
    Rng subsample_rng(request.seed);
    subsampled =
        SubsampleRowsStratified(train_, effective_fraction, &subsample_rng);
    train_view = &subsampled;
  }

  Stopwatch prep_watch;
  // The shared matrices returned here may alias `train_view`/`valid_`
  // (empty pipeline) or `*scratch` (uncached path) — both outlive every
  // use below, which is the whole lifetime the zero-copy contract needs.
  Result<SharedTransformedPair> transformed = CheckedFitTransformPairCached(
      pipeline, train_view->features, valid_.features, transform_cache_.get(),
      SubsampleKey(effective_fraction, request.seed), scratch);
  result.timing.prep_seconds = prep_watch.ElapsedSeconds() + injected_delay;
  if (!transformed.ok()) {
    Status status = transformed.status();
    EvalFailure failure = FailureFromStatus(status);
    return FailedEvaluation(pipeline, budget_fraction, failure,
                            std::move(status));
  }
  if (past_deadline()) {
    return FailedEvaluation(
        pipeline, budget_fraction, EvalFailure::kDeadlineExceeded,
        Status::Internal("deadline exceeded after preprocessing"));
  }

  Stopwatch train_watch;
  std::unique_ptr<Classifier> model = MakeClassifier(model_);
  model->Train(*transformed.value().train, train_view->labels,
               train_.num_classes);
  double accuracy =
      EvaluateAccuracy(*model, *transformed.value().valid, valid_.labels);
  result.timing.train_seconds = train_watch.ElapsedSeconds();
  if (!std::isfinite(accuracy)) {
    return FailedEvaluation(pipeline, budget_fraction,
                            EvalFailure::kModelDiverged,
                            Status::Internal("non-finite validation score"));
  }
  if (past_deadline()) {
    return FailedEvaluation(
        pipeline, budget_fraction, EvalFailure::kDeadlineExceeded,
        Status::Internal("deadline exceeded during training"));
  }
  result.accuracy = accuracy;
  return result;
}

double PipelineEvaluator::BaselineAccuracy() {
  std::lock_guard<std::mutex> lock(baseline_mutex_);
  if (baseline_accuracy_ < 0.0) {
    // The baseline is infrastructure, not a search decision: compute it
    // without injection, deadlines, or budget accounting (the evaluation
    // counter is not bumped).
    EvalRequest request;
    baseline_accuracy_ =
        EvaluateImpl(request, /*use_injector=*/false, /*scratch=*/nullptr)
            .accuracy;
  }
  return baseline_accuracy_;
}

FaultInjectingEvaluator::FaultInjectingEvaluator(
    EvaluatorInterface* inner, const FaultInjectorConfig& config)
    : inner_(inner), injector_(config) {
  AUTOFP_CHECK(inner != nullptr);
}

Evaluation FaultInjectingEvaluator::Evaluate(const EvalRequest& request) {
  return Evaluate(request, /*scratch=*/nullptr);
}

Evaluation FaultInjectingEvaluator::Evaluate(const EvalRequest& request,
                                             TransformScratch* scratch) {
  InjectionDecision decision = injector_.DecisionFor(request.seed);
  if (decision.failure != EvalFailure::kNone) {
    Evaluation result;
    result.pipeline = request.pipeline;
    result.budget_fraction = request.budget_fraction;
    result.failure = decision.failure;
    result.status = Status::Internal("injected fault");
    result.accuracy = kPenaltyAccuracy;
    return result;
  }
  Evaluation result = inner_->Evaluate(request, scratch);
  if (decision.delay_seconds > 0.0) {
    result.timing.prep_seconds += decision.delay_seconds;
    if (request.deadline_seconds > 0.0 &&
        decision.delay_seconds > request.deadline_seconds &&
        !result.failed()) {
      result.failure = EvalFailure::kDeadlineExceeded;
      result.status = Status::Internal("injected slowdown past deadline");
      result.accuracy = kPenaltyAccuracy;
    }
  }
  return result;
}

}  // namespace autofp
