#include "core/evaluator.h"

#include <cmath>
#include <utility>

#include "data/splits.h"
#include "ml/metrics.h"
#include "util/timer.h"

namespace autofp {

namespace {

Evaluation FailedEvaluation(const PipelineSpec& pipeline,
                            double budget_fraction, EvalFailure failure,
                            Status status) {
  Evaluation result;
  result.pipeline = pipeline;
  result.budget_fraction = budget_fraction;
  result.failure = failure;
  result.status = std::move(status);
  result.accuracy = kPenaltyAccuracy;
  return result;
}

}  // namespace

PipelineEvaluator::PipelineEvaluator(Dataset train, Dataset valid,
                                     ModelConfig model)
    : train_(std::move(train)),
      valid_(std::move(valid)),
      model_(model),
      subsample_rng_(0xFEEDFACE) {
  AUTOFP_CHECK_GT(train_.num_rows(), 0u);
  AUTOFP_CHECK_GT(valid_.num_rows(), 0u);
  AUTOFP_CHECK_EQ(train_.num_cols(), valid_.num_cols());
  AUTOFP_CHECK_EQ(train_.num_classes, valid_.num_classes);
}

void PipelineEvaluator::AttachFaultInjector(const FaultInjectorConfig& config) {
  fault_injector_ = std::make_unique<FaultInjector>(config);
}

Evaluation PipelineEvaluator::Evaluate(const PipelineSpec& pipeline,
                                       double budget_fraction) {
  AUTOFP_CHECK_GT(budget_fraction, 0.0);
  AUTOFP_CHECK_LE(budget_fraction, 1.0);
  ++num_evaluations_;
  Stopwatch eval_watch;

  // Injected faults and slowdowns are decided up front; a slowdown is
  // simulated (no real sleep) by counting against the deadline.
  double injected_delay = 0.0;
  if (fault_injector_ != nullptr) {
    InjectionDecision decision = fault_injector_->Next();
    if (decision.failure != EvalFailure::kNone) {
      return FailedEvaluation(pipeline, budget_fraction, decision.failure,
                              Status::Internal("injected fault"));
    }
    injected_delay = decision.delay_seconds;
  }
  const double deadline = eval_deadline_seconds_;
  auto past_deadline = [&]() {
    return deadline > 0.0 &&
           eval_watch.ElapsedSeconds() + injected_delay > deadline;
  };

  Evaluation result;
  result.pipeline = pipeline;
  result.budget_fraction = budget_fraction;

  const Dataset* train_view = &train_;
  Dataset subsampled;
  double effective_fraction = budget_fraction * global_train_fraction_;
  if (effective_fraction < 1.0) {
    subsampled =
        SubsampleRowsStratified(train_, effective_fraction, &subsample_rng_);
    train_view = &subsampled;
  }

  Stopwatch prep_watch;
  Result<TransformedPair> transformed =
      CheckedFitTransformPair(pipeline, train_view->features, valid_.features);
  result.timing.prep_seconds = prep_watch.ElapsedSeconds() + injected_delay;
  if (!transformed.ok()) {
    Status status = transformed.status();
    EvalFailure failure = FailureFromStatus(status);
    return FailedEvaluation(pipeline, budget_fraction, failure,
                            std::move(status));
  }
  if (past_deadline()) {
    return FailedEvaluation(
        pipeline, budget_fraction, EvalFailure::kDeadlineExceeded,
        Status::Internal("deadline exceeded after preprocessing"));
  }

  Stopwatch train_watch;
  std::unique_ptr<Classifier> model = MakeClassifier(model_);
  model->Train(transformed.value().train, train_view->labels,
               train_.num_classes);
  double accuracy =
      EvaluateAccuracy(*model, transformed.value().valid, valid_.labels);
  result.timing.train_seconds = train_watch.ElapsedSeconds();
  if (!std::isfinite(accuracy)) {
    return FailedEvaluation(pipeline, budget_fraction,
                            EvalFailure::kModelDiverged,
                            Status::Internal("non-finite validation score"));
  }
  if (past_deadline()) {
    return FailedEvaluation(
        pipeline, budget_fraction, EvalFailure::kDeadlineExceeded,
        Status::Internal("deadline exceeded during training"));
  }
  result.accuracy = accuracy;
  return result;
}

double PipelineEvaluator::BaselineAccuracy() {
  if (baseline_accuracy_ < 0.0) {
    // The baseline is infrastructure, not a search decision: compute it
    // without injection, deadlines, or budget accounting.
    long saved_evaluations = num_evaluations_;
    double saved_deadline = eval_deadline_seconds_;
    std::unique_ptr<FaultInjector> saved_injector = std::move(fault_injector_);
    eval_deadline_seconds_ = -1.0;
    baseline_accuracy_ = Evaluate(PipelineSpec{}, 1.0).accuracy;
    fault_injector_ = std::move(saved_injector);
    eval_deadline_seconds_ = saved_deadline;
    num_evaluations_ = saved_evaluations;
  }
  return baseline_accuracy_;
}

FaultInjectingEvaluator::FaultInjectingEvaluator(
    EvaluatorInterface* inner, const FaultInjectorConfig& config)
    : inner_(inner), injector_(config) {
  AUTOFP_CHECK(inner != nullptr);
}

void FaultInjectingEvaluator::SetEvalDeadline(double seconds) {
  eval_deadline_seconds_ = seconds;
  inner_->SetEvalDeadline(seconds);
}

Evaluation FaultInjectingEvaluator::Evaluate(const PipelineSpec& pipeline,
                                             double budget_fraction) {
  InjectionDecision decision = injector_.Next();
  if (decision.failure != EvalFailure::kNone) {
    Evaluation result;
    result.pipeline = pipeline;
    result.budget_fraction = budget_fraction;
    result.failure = decision.failure;
    result.status = Status::Internal("injected fault");
    result.accuracy = kPenaltyAccuracy;
    return result;
  }
  Evaluation result = inner_->Evaluate(pipeline, budget_fraction);
  if (decision.delay_seconds > 0.0) {
    result.timing.prep_seconds += decision.delay_seconds;
    if (eval_deadline_seconds_ > 0.0 &&
        decision.delay_seconds > eval_deadline_seconds_ && !result.failed()) {
      result.failure = EvalFailure::kDeadlineExceeded;
      result.status = Status::Internal("injected slowdown past deadline");
      result.accuracy = kPenaltyAccuracy;
    }
  }
  return result;
}

}  // namespace autofp
