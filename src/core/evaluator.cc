#include "core/evaluator.h"

#include <utility>

#include "data/splits.h"
#include "ml/metrics.h"
#include "util/timer.h"

namespace autofp {

PipelineEvaluator::PipelineEvaluator(Dataset train, Dataset valid,
                                     ModelConfig model)
    : train_(std::move(train)),
      valid_(std::move(valid)),
      model_(model),
      subsample_rng_(0xFEEDFACE) {
  AUTOFP_CHECK_GT(train_.num_rows(), 0u);
  AUTOFP_CHECK_GT(valid_.num_rows(), 0u);
  AUTOFP_CHECK_EQ(train_.num_cols(), valid_.num_cols());
  AUTOFP_CHECK_EQ(train_.num_classes, valid_.num_classes);
}

Evaluation PipelineEvaluator::Evaluate(const PipelineSpec& pipeline,
                                       double budget_fraction) {
  AUTOFP_CHECK_GT(budget_fraction, 0.0);
  AUTOFP_CHECK_LE(budget_fraction, 1.0);
  ++num_evaluations_;
  Evaluation result;
  result.pipeline = pipeline;
  result.budget_fraction = budget_fraction;

  const Dataset* train_view = &train_;
  Dataset subsampled;
  double effective_fraction = budget_fraction * global_train_fraction_;
  if (effective_fraction < 1.0) {
    subsampled = SubsampleRows(train_, effective_fraction, &subsample_rng_);
    train_view = &subsampled;
  }

  Stopwatch prep_watch;
  TransformedPair transformed =
      FitTransformPair(pipeline, train_view->features, valid_.features);
  result.timing.prep_seconds = prep_watch.ElapsedSeconds();

  Stopwatch train_watch;
  std::unique_ptr<Classifier> model = MakeClassifier(model_);
  model->Train(transformed.train, train_view->labels, train_.num_classes);
  result.accuracy =
      EvaluateAccuracy(*model, transformed.valid, valid_.labels);
  result.timing.train_seconds = train_watch.ElapsedSeconds();
  return result;
}

double PipelineEvaluator::BaselineAccuracy() {
  if (baseline_accuracy_ < 0.0) {
    long saved = num_evaluations_;
    baseline_accuracy_ = Evaluate(PipelineSpec{}, 1.0).accuracy;
    num_evaluations_ = saved;  // the baseline does not consume budget.
  }
  return baseline_accuracy_;
}

}  // namespace autofp
