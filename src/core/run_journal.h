#ifndef AUTOFP_CORE_RUN_JOURNAL_H_
#define AUTOFP_CORE_RUN_JOURNAL_H_

/// Durable, resumable search runs (see DESIGN.md "Durable runs and crash
/// recovery"). A RunJournalWriter appends one fsync'd, CRC-protected
/// record per completed evaluator outcome to an append-only file; after a
/// crash, ReadRunJournal recovers every intact record (tolerating a torn
/// tail) and a RunJournalReplay serves the recorded outcomes back to
/// SearchContext, which re-runs the search deterministically and replays
/// instead of re-evaluating. No per-algorithm state is serialized: because
/// every evaluation is a pure function of its EvalRequest (PR 2), the
/// journal of outcomes is a complete checkpoint for all 15 algorithms.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluator.h"
#include "data/dataset.h"
#include "util/status.h"

namespace autofp {

struct SearchOptions;  // core/search_framework.h

/// Journal file format version; bumped on any layout change. A reader
/// never guesses at an unknown layout: version mismatch is a typed error.
inline constexpr uint32_t kRunJournalVersion = 1;

/// Process exit code used by the deterministic crash point (see
/// RunJournalOptions::crash_after_appends) so harnesses can distinguish an
/// injected crash from a real failure.
inline constexpr int kCrashPointExitCode = 86;

/// CRC-32 (IEEE 802.3) over `size` bytes, seeded with `crc` so calls can
/// be chained. Used for the per-record and header checksums.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

/// FNV-1a 64-bit over raw bytes, seeded so hashes combine/chain.
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t hash = 0xcbf29ce484222325ull);
/// Folds `value` into hash `h` (order-sensitive).
uint64_t HashCombine(uint64_t h, uint64_t value);

/// Fingerprint of the dataset a journal belongs to: name, shape, class
/// count and every feature/label byte. Resuming against a different
/// dataset is rejected (the recorded outcomes would be meaningless).
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Fingerprint of the determinism-relevant SearchOptions fields: seed,
/// budget axes and retry/quarantine policy. num_threads, num_workers and
/// cache_bytes are deliberately excluded — history is thread-count-,
/// worker-count- and cache-invariant, so a run may be resumed at a
/// different thread or worker count.
uint64_t SearchOptionsFingerprint(const SearchOptions& options);

/// Why a journal could not be opened/validated. kNone means success.
enum class JournalError : int {
  kNone = 0,
  /// The file could not be read at all.
  kIoError,
  /// The file does not start with the journal magic (not a journal, or
  /// the header itself was torn).
  kBadMagic,
  /// The header is a journal but a different format version.
  kVersionMismatch,
  /// The header checksum does not match its content.
  kCorruptHeader,
  /// A record before the tail fails its CRC or is internally inconsistent,
  /// or any record declares an implausibly large length (a torn append
  /// leaves a short length field, never a garbage one) — corruption, not a
  /// torn tail; the journal is rejected rather than silently truncated.
  kCorruptRecord,
  /// Header fingerprint does not match the resuming run's SearchOptions.
  kOptionsMismatch,
  /// Header fingerprint does not match the resuming run's dataset.
  kDatasetMismatch,
};

/// Human-readable name ("CorruptRecord" etc.; "OK" for kNone).
const char* JournalErrorName(JournalError error);

/// Versioned journal header, written once at creation.
struct JournalHeader {
  uint32_t version = kRunJournalVersion;
  uint64_t options_fingerprint = 0;
  uint64_t dataset_fingerprint = 0;
  /// Free-form run description (informational only, CRC-protected).
  std::string meta;
};

/// One journaled evaluator outcome. `seed` is the first-attempt request
/// seed (the request's identity under EvalRequest::DeriveSeed); `attempts`
/// counts evaluator attempts including retries; `elapsed_seconds` is the
/// wall-clock the outcome consumed, charged back to the budget on replay.
struct JournalRecord {
  std::string pipeline;  ///< PipelineSpec::ToString() (parseable back).
  double budget_fraction = 1.0;
  uint64_t seed = 0;
  double accuracy = 0.0;
  EvalFailure failure = EvalFailure::kNone;
  int status_code = 0;  ///< StatusCode of Evaluation::status.
  std::string status_message;
  int attempts = 1;
  double elapsed_seconds = 0.0;
  double prep_seconds = 0.0;
  double train_seconds = 0.0;
};

/// Builds the journal record for a completed evaluator outcome.
/// `request_seed` must be the first-attempt seed, `elapsed_seconds` the
/// wall-clock charged to this outcome.
JournalRecord MakeJournalRecord(const Evaluation& evaluation,
                                uint64_t request_seed,
                                double elapsed_seconds);

/// The record payload codec, exposed so the distributed wire protocol
/// (dist/wire.h) ships evaluator outcomes in exactly the journal's
/// encoding — one serialization of an outcome, whether it crosses a
/// process boundary or lands on disk. Decode returns false on any layout
/// mismatch or trailing bytes.
std::string EncodeJournalRecordPayload(const JournalRecord& record);
bool DecodeJournalRecordPayload(const char* data, size_t size,
                                JournalRecord* record);

/// Reconstructs the Evaluation a record describes (pipeline re-parsed,
/// status re-typed). Aborts on an unparseable pipeline string — records
/// are validated by CRC before they get here, so that is a version bug,
/// not user input.
Evaluation EvaluationFromRecord(const JournalRecord& record);

/// Outcome of reading a journal file. On success (`ok()`), `records`
/// holds every intact record in append order; a torn tail (an incomplete
/// or partially written final record — the expected state after a crash)
/// is dropped and counted in `dropped_tail_bytes`, never an error.
struct JournalReadResult {
  JournalError error = JournalError::kNone;
  Status status;  ///< detail message; OK iff error == kNone.
  JournalHeader header;
  std::vector<JournalRecord> records;
  size_t dropped_tail_bytes = 0;

  bool ok() const { return error == JournalError::kNone; }
};

/// Reads and validates `path`. Structural errors (bad magic, version or
/// header mismatch, mid-file corruption) are typed via JournalError;
/// fingerprint validation against the resuming run is separate
/// (ValidateJournalHeader) so tools can inspect foreign journals.
JournalReadResult ReadRunJournal(const std::string& path);

/// Checks a journal header against the fingerprints of the run about to
/// resume. Returns kNone when compatible; kOptionsMismatch /
/// kDatasetMismatch (with detail in `*detail` when non-null) otherwise.
JournalError ValidateJournalHeader(const JournalHeader& header,
                                   uint64_t options_fingerprint,
                                   uint64_t dataset_fingerprint,
                                   Status* detail = nullptr);

/// Writer configuration.
struct RunJournalOptions {
  std::string meta;  ///< informational header text.
  /// Deterministic crash point for the crash-injection harness: when
  /// > 0, the process hard-exits (std::_Exit(kCrashPointExitCode),
  /// no destructors — a simulated crash) immediately after append number
  /// `crash_after_appends` (1-based) reaches the disk. <= 0 disables.
  int crash_after_appends = -1;
  /// fsync after every record (the durability guarantee). Disable only
  /// for overhead measurement.
  bool fsync_each_record = true;
};

/// Append-only, fsync'd write-ahead journal of evaluator outcomes. Not
/// thread-safe: SearchContext appends from the coordinating thread only
/// (worker threads never touch the journal).
class RunJournalWriter {
 public:
  /// Creates/truncates `path` and writes the versioned header.
  static Result<std::unique_ptr<RunJournalWriter>> Create(
      const std::string& path, uint64_t options_fingerprint,
      uint64_t dataset_fingerprint, const RunJournalOptions& options = {});

  /// Opens an existing, already-validated journal for appending (resume).
  /// The caller must have read it with ReadRunJournal first; the file is
  /// truncated to `valid_bytes` (the extent of intact content) so a torn
  /// tail is physically removed before new records follow it.
  static Result<std::unique_ptr<RunJournalWriter>> OpenForAppend(
      const std::string& path, const RunJournalOptions& options = {});

  ~RunJournalWriter();
  RunJournalWriter(const RunJournalWriter&) = delete;
  RunJournalWriter& operator=(const RunJournalWriter&) = delete;

  /// Appends one record (single write + fsync). On success the record is
  /// durable before control returns — a crash afterwards loses nothing.
  Status Append(const JournalRecord& record);

  long num_appends() const { return num_appends_; }
  const std::string& path() const { return path_; }

 private:
  RunJournalWriter(int fd, std::string path, const RunJournalOptions& options);

  int fd_ = -1;
  std::string path_;
  RunJournalOptions options_;
  long num_appends_ = 0;
};

/// Serves recorded outcomes during a resumed run. Outcomes are keyed by
/// request identity (pipeline key, budget fraction) and served FIFO per
/// key, so the deterministic re-run consumes exactly the sequence the
/// original run produced regardless of batch boundaries. kDeadlineExceeded
/// records are deliberately not replayable (a wall-clock property of the
/// original machine/moment, mirroring CachingEvaluator's rule) and are
/// dropped at construction; those evaluations re-run live.
class RunJournalReplay {
 public:
  explicit RunJournalReplay(const std::vector<JournalRecord>& records);

  /// Takes the next recorded outcome for (pipeline key, fraction), or
  /// nullopt when the journal has nothing (left) for that identity.
  std::optional<JournalRecord> Take(const std::string& pipeline_key,
                                    double budget_fraction);

  /// Records not yet consumed (0 once the resumed run caught up).
  size_t remaining() const { return remaining_; }
  /// Deadline-failure records dropped at construction (re-run live).
  size_t dropped_deadline_records() const { return dropped_deadline_; }

 private:
  static std::string SlotKey(const std::string& pipeline_key,
                             double budget_fraction);

  std::unordered_map<std::string, std::deque<JournalRecord>> by_key_;
  size_t remaining_ = 0;
  size_t dropped_deadline_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_CORE_RUN_JOURNAL_H_
