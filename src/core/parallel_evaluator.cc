#include "core/parallel_evaluator.h"

#include <utility>

namespace autofp {

ParallelEvaluator::ParallelEvaluator(EvaluatorInterface* inner,
                                     int num_threads)
    : inner_(inner) {
  AUTOFP_CHECK(inner != nullptr);
  AUTOFP_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelEvaluator::~ParallelEvaluator() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::vector<Evaluation> ParallelEvaluator::EvaluateAll(
    const std::vector<EvalRequest>& requests) {
  std::vector<Evaluation> results(requests.size());
  if (requests.empty()) return results;
  Batch batch;
  batch.remaining = requests.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < requests.size(); ++i) {
      queue_.push_back(Task{&requests[i], &results[i], &batch});
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> batch_lock(batch.mutex);
  batch.done.wait(batch_lock, [&batch] { return batch.remaining == 0; });
  return results;
}

void ParallelEvaluator::WorkerLoop() {
  // Per-worker scratch arena, reused across every evaluation this worker
  // runs: only this thread touches it, and after the first few tasks its
  // buffers have seen the largest matrix shape, so the uncached transform
  // path stops allocating.
  TransformScratch scratch;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with no work left.
      task = queue_.front();
      queue_.pop_front();
    }
    *task.result = inner_->Evaluate(*task.request, &scratch);
    {
      // Notify while holding the batch mutex: the submitter's wait can
      // only observe remaining == 0 (and destroy the Batch) after this
      // lock is released, so the condition_variable is never touched
      // after its owner returned.
      std::lock_guard<std::mutex> lock(task.batch->mutex);
      if (--task.batch->remaining == 0) task.batch->done.notify_all();
    }
  }
}

}  // namespace autofp
