#ifndef AUTOFP_CORE_AUTO_FP_H_
#define AUTOFP_CORE_AUTO_FP_H_

/// Umbrella header for the Auto-FP library: automated feature-preprocessing
/// pipeline search for tabular classification (Qi et al., EDBT 2024).
///
/// Typical use:
///
///   Dataset data = GetSuiteDataset("heart_syn").value();
///   Rng rng(1);
///   TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
///   PipelineEvaluator evaluator(split.train, split.valid,
///                               ModelConfig::Defaults(ModelKind::kLogisticRegression));
///   SearchSpace space = SearchSpace::Default();
///   auto algorithm = MakeSearchAlgorithm("PBT");
///   SearchResult result = RunSearch(algorithm.get(), &evaluator, space,
///                                   SearchOptions{Budget::Evaluations(200),
///                                                 /*seed=*/42});
///
/// See examples/quickstart.cc for a runnable version.

#include "core/budget.h"             // IWYU pragma: export
#include "core/evaluator.h"          // IWYU pragma: export
#include "core/fp_growth.h"          // IWYU pragma: export
#include "core/ranking.h"            // IWYU pragma: export
#include "core/run_journal.h"        // IWYU pragma: export
#include "core/search_framework.h"   // IWYU pragma: export
#include "core/search_space.h"       // IWYU pragma: export
#include "data/benchmark_suite.h"    // IWYU pragma: export
#include "data/dataset.h"            // IWYU pragma: export
#include "data/splits.h"             // IWYU pragma: export
#include "ml/model.h"                // IWYU pragma: export
#include "preprocess/pipeline.h"     // IWYU pragma: export
#include "preprocess/preprocessor.h" // IWYU pragma: export

#endif  // AUTOFP_CORE_AUTO_FP_H_
