#include "core/ranking.h"

#include <algorithm>

#include "util/logging.h"

namespace autofp {

std::vector<double> RanksWithTies(const std::vector<double>& accuracies) {
  const size_t n = accuracies.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return accuracies[a] > accuracies[b];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && accuracies[order[j]] == accuracies[order[i]]) ++j;
    // Competition ("min") rank shared by the tie group.
    for (size_t k = i; k < j; ++k) {
      ranks[order[k]] = static_cast<double>(i + 1);
    }
    i = j;
  }
  return ranks;
}

std::vector<double> AverageRanks(const std::vector<ScenarioScores>& scenarios,
                                 double min_improvement,
                                 size_t* num_qualified) {
  AUTOFP_CHECK(!scenarios.empty());
  const size_t num_algorithms = scenarios[0].accuracies.size();
  std::vector<double> totals(num_algorithms, 0.0);
  size_t qualified = 0;
  for (const ScenarioScores& scenario : scenarios) {
    AUTOFP_CHECK_EQ(scenario.accuracies.size(), num_algorithms)
        << "inconsistent algorithm count in scenario " << scenario.scenario;
    double best = *std::max_element(scenario.accuracies.begin(),
                                    scenario.accuracies.end());
    if (best - scenario.baseline < min_improvement) continue;
    ++qualified;
    std::vector<double> ranks = RanksWithTies(scenario.accuracies);
    for (size_t a = 0; a < num_algorithms; ++a) totals[a] += ranks[a];
  }
  if (num_qualified != nullptr) *num_qualified = qualified;
  if (qualified == 0) return std::vector<double>(num_algorithms, 0.0);
  for (double& total : totals) total /= static_cast<double>(qualified);
  return totals;
}

}  // namespace autofp
