#ifndef AUTOFP_CORE_SEARCH_SPACE_H_
#define AUTOFP_CORE_SEARCH_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "preprocess/pipeline.h"
#include "preprocess/preprocessor.h"
#include "util/random.h"

namespace autofp {

/// The pipeline search space of Definition 3: an operator alphabet (each a
/// preprocessor with fixed parameters) and a maximum pipeline length. The
/// default space has the 7 default-parameter preprocessors and max length 7
/// (~1M pipelines, as in the paper's Auto-Sklearn comparison). The One-step
/// extension of Section 6 is simply a larger alphabet.
class SearchSpace {
 public:
  SearchSpace(std::vector<PreprocessorConfig> operators,
              size_t max_pipeline_length);

  /// The 7 default preprocessors, pipelines of length 1..7.
  static SearchSpace Default(size_t max_pipeline_length = 7);

  size_t num_operators() const { return operators_.size(); }
  size_t max_pipeline_length() const { return max_pipeline_length_; }
  const std::vector<PreprocessorConfig>& operators() const {
    return operators_;
  }
  const PreprocessorConfig& operator_at(size_t index) const {
    AUTOFP_CHECK_LT(index, operators_.size());
    return operators_[index];
  }

  /// Total number of pipelines (sum over lengths of ops^len), saturating
  /// at ~1e18.
  double TotalPipelines() const;

  /// Uniform pipeline: length uniform in [1, max], each slot uniform.
  PipelineSpec SampleUniform(Rng* rng) const;

  /// Mutation kernel shared by Anneal/evolution/PBT: with equal
  /// probability replace a random position, insert a random operator
  /// (if below max length), or delete a position (if length > 1).
  PipelineSpec Mutate(const PipelineSpec& pipeline, Rng* rng) const;

  /// Encoding to operator indices (for surrogates / policies).
  std::vector<int> Encode(const PipelineSpec& pipeline) const;
  PipelineSpec Decode(const std::vector<int>& encoding) const;

  /// Fixed-length encoding padded with `pad_value` (for vector surrogates).
  std::vector<double> EncodePadded(const PipelineSpec& pipeline,
                                   double pad_value = -1.0) const;

 private:
  std::vector<PreprocessorConfig> operators_;
  size_t max_pipeline_length_;
};

/// Parameter value lists for the extended search spaces (Section 6).
struct ParameterSpace {
  std::vector<double> binarizer_thresholds;
  std::vector<NormKind> norms;
  std::vector<bool> standard_with_mean;
  std::vector<bool> power_standardize;
  std::vector<int> quantile_n_quantiles;
  std::vector<OutputDistribution> quantile_output_distributions;

  /// Table 6: max cardinality 8 (n_quantiles).
  static ParameterSpace LowCardinality();
  /// Table 7: threshold 0..1 step 0.05; n_quantiles 10..2000 step 1.
  static ParameterSpace HighCardinality();

  /// Number of operator variants the One-step flattening produces.
  size_t OneStepOperatorCount() const;

  /// Draws one concrete parameter assignment: a 7-operator alphabet with
  /// randomly chosen parameter values (the first step of Two-step).
  std::vector<PreprocessorConfig> SampleAssignment(Rng* rng) const;
};

/// One-step extension: flattens every (preprocessor, parameter) combination
/// into a single enlarged operator alphabet.
SearchSpace OneStepSpace(const ParameterSpace& parameters,
                         size_t max_pipeline_length = 7);

/// Space over a fixed parameter assignment (the inner space of Two-step).
SearchSpace FixedAssignmentSpace(
    const std::vector<PreprocessorConfig>& assignment,
    size_t max_pipeline_length = 7);

}  // namespace autofp

#endif  // AUTOFP_CORE_SEARCH_SPACE_H_
