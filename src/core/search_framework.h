#ifndef AUTOFP_CORE_SEARCH_FRAMEWORK_H_
#define AUTOFP_CORE_SEARCH_FRAMEWORK_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/budget.h"
#include "core/evaluator.h"
#include "core/fault.h"
#include "core/search_space.h"
#include "util/random.h"
#include "util/timer.h"

namespace autofp {

/// Services the unified framework (Algorithm 1) offers an algorithm:
/// the search space, a seeded RNG, budget-aware evaluation, and the
/// shared evaluation history. Owned by RunSearch.
///
/// Fault tolerance (see DESIGN.md "Failure semantics"): evaluations that
/// fail transiently are retried with bounded backoff; pipelines that fail
/// permanently are quarantined and never re-evaluated; every failed
/// evaluation enters the history with the penalty score flagged as failed,
/// and the search continues.
class SearchContext {
 public:
  SearchContext(const SearchSpace* space, EvaluatorInterface* evaluator,
                const Budget& budget, uint64_t seed,
                const FaultPolicy& policy = FaultPolicy{});

  const SearchSpace& space() const { return *space_; }
  Rng* rng() { return &rng_; }

  /// Step 4 of Algorithm 1: evaluates `pipeline`, records it in the
  /// history, and returns its validation accuracy — or nullopt when the
  /// budget ran out (the algorithm should then return from Iterate).
  std::optional<double> Evaluate(const PipelineSpec& pipeline,
                                 double budget_fraction = 1.0);

  bool BudgetExhausted() const;

  const std::vector<Evaluation>& history() const { return history_; }
  long num_evaluations() const {
    return static_cast<long>(history_.size());
  }

  /// Budget consumed on the evaluation axis: partial-training evaluations
  /// (bandit algorithms) cost their budget fraction, so an evaluation-count
  /// budget behaves like the paper's wall-clock budget.
  double evaluation_cost() const { return evaluation_cost_; }

  /// Best full-budget evaluation so far (partial-budget evaluations from
  /// bandit algorithms are tracked separately and do not count as final
  /// answers unless nothing else exists).
  bool has_best() const { return best_index_ >= 0; }
  const Evaluation& best() const;

  /// Seconds spent inside Evaluate() (prep + train + overhead) — the
  /// complement of "Pick" time in the Section 5.3 decomposition.
  double eval_seconds() const { return eval_seconds_; }
  double elapsed_seconds() const { return total_watch_.ElapsedSeconds(); }

  /// Fault bookkeeping. num_failures counts evaluator attempts that
  /// returned a failure (including ones later recovered by a retry);
  /// num_retries counts retry attempts; num_quarantined counts distinct
  /// quarantined pipelines; num_quarantine_hits counts evaluations
  /// short-circuited because the pipeline was already quarantined.
  long num_failures() const { return num_failures_; }
  long num_retries() const { return num_retries_; }
  long num_quarantined() const {
    return static_cast<long>(quarantine_.size());
  }
  long num_quarantine_hits() const { return num_quarantine_hits_; }
  bool IsQuarantined(const PipelineSpec& pipeline) const {
    return quarantine_.count(pipeline.Key()) > 0;
  }
  const FaultPolicy& fault_policy() const { return policy_; }

 private:
  const SearchSpace* space_;
  EvaluatorInterface* evaluator_;
  Budget budget_;
  Rng rng_;
  FaultPolicy policy_;
  std::vector<Evaluation> history_;
  /// Pipeline key -> the permanent failure that quarantined it.
  std::unordered_map<std::string, EvalFailure> quarantine_;
  double evaluation_cost_ = 0.0;
  int best_index_ = -1;
  double best_key_ = -1.0;
  double eval_seconds_ = 0.0;
  long num_failures_ = 0;
  long num_retries_ = 0;
  long num_quarantine_hits_ = 0;
  Stopwatch total_watch_;
};

/// A search algorithm in the unified framework: Initialize() performs
/// Step 1 (initial pipelines), each Iterate() performs Steps 2-4 (update
/// surrogate, sample, evaluate via the context).
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Step 1. May evaluate initial pipelines through the context.
  virtual void Initialize(SearchContext* context) { (void)context; }

  /// One iteration of Steps 2-4. Must call context->Evaluate() at least
  /// once unless the budget is exhausted.
  virtual void Iterate(SearchContext* context) = 0;
};

/// Outcome of one search run.
struct SearchResult {
  std::string algorithm;
  PipelineSpec best_pipeline;
  double best_accuracy = 0.0;
  double baseline_accuracy = 0.0;  ///< no-FP accuracy.
  long num_evaluations = 0;
  /// Budget units consumed (partial-training evaluations cost their
  /// training fraction); <= the evaluation budget when one was set.
  double evaluation_cost = 0.0;
  double elapsed_seconds = 0.0;
  /// Section 5.3 decomposition. pick = elapsed - (prep + train + overhead
  /// inside Evaluate); prep/train summed over all evaluations.
  double pick_seconds = 0.0;
  double prep_seconds = 0.0;
  double train_seconds = 0.0;
  /// Fault report (see SearchContext accessors for exact semantics):
  /// failed evaluator attempts, retries performed, distinct pipelines
  /// quarantined, and evaluations short-circuited by the quarantine.
  long num_failures = 0;
  long num_retries = 0;
  long num_quarantined = 0;
  long num_quarantine_hits = 0;
};

/// Drives Algorithm 1: Initialize once, then Iterate until the budget is
/// exhausted. Returns the best pipeline found (empty pipeline if the
/// algorithm never completed a successful evaluation). `policy` governs
/// retry/quarantine behaviour for failed evaluations.
SearchResult RunSearch(SearchAlgorithm* algorithm,
                       EvaluatorInterface* evaluator,
                       const SearchSpace& space, const Budget& budget,
                       uint64_t seed,
                       const FaultPolicy& policy = FaultPolicy{});

}  // namespace autofp

#endif  // AUTOFP_CORE_SEARCH_FRAMEWORK_H_
