#ifndef AUTOFP_CORE_SEARCH_FRAMEWORK_H_
#define AUTOFP_CORE_SEARCH_FRAMEWORK_H_

#include <csignal>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/budget.h"
#include "core/eval_cache.h"
#include "core/evaluator.h"
#include "core/fault.h"
#include "core/parallel_evaluator.h"
#include "core/search_space.h"
#include "preprocess/transform_cache.h"
#include "util/random.h"
#include "util/timer.h"

namespace autofp {

class RunJournalWriter;  // core/run_journal.h
class RunJournalReplay;  // core/run_journal.h

/// Everything that configures one search run besides the algorithm, the
/// evaluator and the space. An aggregate, so call sites read
/// `RunSearch(&alg, &eval, space, {budget, seed})` and grow options
/// without signature churn.
struct SearchOptions {
  Budget budget{};
  uint64_t seed = 0;
  /// Retry/quarantine behaviour for failed evaluations.
  FaultPolicy fault_policy{};
  /// Worker threads for batch evaluation (EvaluateBatch); 1 = evaluate
  /// batches inline on the caller. Results are thread-count-invariant.
  int num_threads = 1;
  /// Worker *processes* behind the evaluator (reporting only: the caller
  /// builds the DistributedEvaluator and passes it as the evaluator —
  /// see dist/coordinator.h). Excluded from SearchOptionsFingerprint for
  /// the same reason as num_threads: history is worker-count-invariant,
  /// so a journaled run may be resumed at any worker count. Mutually
  /// exclusive with num_threads > 1 (the coordinator is single-threaded).
  int num_workers = 0;
  /// Byte budget for the evaluation caches; 0 disables caching. When set,
  /// a prefix TransformCache of this size is attached to the evaluator (if
  /// it is a PipelineEvaluator without one) and full Evaluations are
  /// memoized by request identity.
  size_t cache_bytes = 0;
  /// Durable-run hooks (DESIGN.md "Durable runs and crash recovery").
  /// Non-owning, may be null. `journal` receives one fsync'd record per
  /// fresh evaluator outcome; `replay` serves recorded outcomes instead
  /// of re-evaluating until it runs dry (replayed outcomes are not
  /// re-appended — on resume they are already in the file).
  RunJournalWriter* journal = nullptr;
  RunJournalReplay* replay = nullptr;
  /// Graceful-stop request (e.g. set from a SIGINT/SIGTERM handler): when
  /// non-null and nonzero, the budget reads as exhausted, so the search
  /// stops at the next evaluation boundary with its bookkeeping intact.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

/// Services the unified framework (Algorithm 1) offers an algorithm:
/// the search space, a seeded RNG, budget-aware evaluation, and the
/// shared evaluation history. Owned by RunSearch.
///
/// Fault tolerance (see DESIGN.md "Failure semantics"): evaluations that
/// fail transiently are retried with bounded backoff; pipelines that fail
/// permanently are quarantined and never re-evaluated; every failed
/// evaluation enters the history with the penalty score flagged as failed,
/// and the search continues.
///
/// Determinism: every evaluation's seed is derived from (run seed,
/// pipeline, fraction, attempt) — never from call order — so the recorded
/// history for a given request sequence is identical at any thread count.
///
/// Durability (see DESIGN.md "Durable runs and crash recovery"): with
/// SearchOptions::journal set, every fresh evaluator outcome is appended
/// (fsync'd, CRC-protected) before the search continues; with ::replay
/// set, recorded outcomes are served instead of re-evaluating, budget and
/// retry/quarantine bookkeeping replaying identically — so a crashed run
/// re-run from its journal converges to the byte-identical history.
class SearchContext {
 public:
  SearchContext(const SearchSpace* space, EvaluatorInterface* evaluator,
                const SearchOptions& options);
  ~SearchContext();

  const SearchSpace& space() const { return *space_; }
  Rng* rng() { return &rng_; }

  /// Step 4 of Algorithm 1: evaluates `pipeline`, records it in the
  /// history, and returns its validation accuracy — or nullopt when the
  /// budget ran out (the algorithm should then return from Iterate).
  std::optional<double> Evaluate(const PipelineSpec& pipeline,
                                 double budget_fraction = 1.0);

  /// Batch form of Evaluate: submits a whole generation/rung at once so
  /// the parallel engine can use every worker, then records results in
  /// index order. Bookkeeping (budget charges, retries, quarantine, best
  /// tracking, history order) matches evaluating the span sequentially
  /// through Evaluate(); entry i is nullopt iff the budget ran out before
  /// slot i was admitted.
  std::vector<std::optional<double>> EvaluateBatch(
      std::span<const PipelineSpec> pipelines, double budget_fraction = 1.0);

  bool BudgetExhausted() const;

  const std::vector<Evaluation>& history() const { return history_; }
  long num_evaluations() const {
    return static_cast<long>(history_.size());
  }

  /// Budget consumed on the evaluation axis: partial-training evaluations
  /// (bandit algorithms) cost their budget fraction, so an evaluation-count
  /// budget behaves like the paper's wall-clock budget.
  double evaluation_cost() const { return evaluation_cost_; }

  /// Best full-budget evaluation so far (partial-budget evaluations from
  /// bandit algorithms are tracked separately and do not count as final
  /// answers unless nothing else exists).
  bool has_best() const { return best_index_ >= 0; }
  const Evaluation& best() const;

  /// Seconds spent inside Evaluate() (prep + train + overhead) — the
  /// complement of "Pick" time in the Section 5.3 decomposition. Batch
  /// evaluations contribute their wall-clock span, so parallel speedup is
  /// visible here.
  double eval_seconds() const { return eval_seconds_; }
  /// Wall-clock consumed by this run, including time restored from the
  /// resume journal (so time budgets survive a crash/resume cycle).
  double elapsed_seconds() const {
    return journal_elapsed_seconds_ + total_watch_.ElapsedSeconds();
  }

  /// Fault bookkeeping. num_failures counts evaluator attempts that
  /// returned a failure (including ones later recovered by a retry);
  /// num_retries counts retry attempts; num_quarantined counts distinct
  /// quarantined pipelines; num_quarantine_hits counts evaluations
  /// short-circuited because the pipeline was already quarantined.
  long num_failures() const { return num_failures_; }
  long num_retries() const { return num_retries_; }
  long num_quarantined() const {
    return static_cast<long>(quarantine_.size());
  }
  /// Keys of the quarantined pipelines, sorted (deterministic order).
  std::vector<std::string> quarantined_pipelines() const;
  long num_quarantine_hits() const { return num_quarantine_hits_; }
  /// History entries that did not fail (the entries best() may pick from).
  long num_successes() const { return num_successes_; }
  /// Evaluations served from the resume journal instead of the evaluator.
  long num_replayed() const { return num_replayed_; }
  /// True once the stop flag (SearchOptions::stop_flag) was observed set.
  bool interrupted() const {
    return options_.stop_flag != nullptr && *options_.stop_flag != 0;
  }
  bool IsQuarantined(const PipelineSpec& pipeline) const {
    return quarantine_.count(pipeline.Key()) > 0;
  }
  const FaultPolicy& fault_policy() const { return policy_; }
  const SearchOptions& options() const { return options_; }

  /// The caches the context created (null when cache_bytes == 0).
  CachingEvaluator* result_cache() { return result_cache_.get(); }
  TransformCache* transform_cache() { return transform_cache_.get(); }

 private:
  /// Builds the canonical request for (pipeline, fraction, attempt).
  EvalRequest MakeRequest(const PipelineSpec& pipeline,
                          double budget_fraction, int attempt) const;
  /// Runs `requests` through the pool (or inline when single-threaded)
  /// with transient-failure retry rounds; on return, `results[i]` is the
  /// final outcome of request i and `retries[i]` the retry attempts it
  /// consumed.
  void EvaluateWithRetries(std::vector<EvalRequest> requests,
                           std::vector<Evaluation>* results,
                           std::vector<int>* retries);
  /// History push + failure accounting + best-tracking for one record.
  /// `retries` is the number of retry attempts this record absorbed.
  double RecordEvaluation(Evaluation evaluation, int retries);
  /// Records a quarantine short-circuit for `pipeline` and returns the
  /// penalty score.
  double RecordQuarantineHit(const PipelineSpec& pipeline,
                             double budget_fraction, EvalFailure failure);

  const SearchSpace* space_;
  EvaluatorInterface* evaluator_;  ///< top of the decorator chain.
  SearchOptions options_;
  Budget budget_;
  Rng rng_;
  FaultPolicy policy_;
  /// Decorators owned by the context (outermost first); may be null.
  std::shared_ptr<TransformCache> transform_cache_;
  std::unique_ptr<CachingEvaluator> result_cache_;
  std::unique_ptr<ParallelEvaluator> pool_;
  /// Reusable transform buffers for the sequential (no-pool) evaluation
  /// path; the pool's workers each keep their own.
  TransformScratch scratch_;
  std::vector<Evaluation> history_;
  /// Pipeline key -> the permanent failure that quarantined it.
  std::unordered_map<std::string, EvalFailure> quarantine_;
  double evaluation_cost_ = 0.0;
  int best_index_ = -1;
  double best_key_ = -1.0;
  double eval_seconds_ = 0.0;
  long num_failures_ = 0;
  long num_retries_ = 0;
  long num_quarantine_hits_ = 0;
  long num_successes_ = 0;
  long num_replayed_ = 0;
  /// Wall-clock restored from replayed journal records; added to the live
  /// stopwatch so a resumed time-budget run continues from its recorded
  /// consumption instead of restarting the clock.
  double journal_elapsed_seconds_ = 0.0;
  Stopwatch total_watch_;
};

/// A search algorithm in the unified framework: Initialize() performs
/// Step 1 (initial pipelines), each Iterate() performs Steps 2-4 (update
/// surrogate, sample, evaluate via the context).
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Step 1. May evaluate initial pipelines through the context.
  virtual void Initialize(SearchContext* context) { (void)context; }

  /// One iteration of Steps 2-4. Must call context->Evaluate() at least
  /// once unless the budget is exhausted.
  virtual void Iterate(SearchContext* context) = 0;
};

/// Outcome of one search run.
struct SearchResult {
  std::string algorithm;
  PipelineSpec best_pipeline;
  double best_accuracy = 0.0;
  double baseline_accuracy = 0.0;  ///< no-FP accuracy.
  long num_evaluations = 0;
  /// Budget units consumed (partial-training evaluations cost their
  /// training fraction); <= the evaluation budget when one was set.
  double evaluation_cost = 0.0;
  double elapsed_seconds = 0.0;
  /// Section 5.3 decomposition. pick = elapsed - (prep + train + overhead
  /// inside Evaluate); prep/train summed over all evaluations.
  double pick_seconds = 0.0;
  double prep_seconds = 0.0;
  double train_seconds = 0.0;
  /// Fault report (see SearchContext accessors for exact semantics):
  /// failed evaluator attempts, retries performed, distinct pipelines
  /// quarantined, and evaluations short-circuited by the quarantine.
  long num_failures = 0;
  long num_retries = 0;
  long num_quarantined = 0;
  long num_quarantine_hits = 0;
  /// Keys of the quarantined pipelines, sorted; size() == num_quarantined.
  /// Lets meta-searches (two-step) that run many inner searches — each
  /// with its own quarantine map — count distinct pipelines instead of
  /// summing per-round figures.
  std::vector<std::string> quarantined_pipelines;
  /// History entries that did not fail; 0 means every evaluation failed
  /// and `best_accuracy` is only the baseline/penalty fallback.
  long num_successes = 0;
  /// Evaluation-engine report: worker threads/processes used and cache
  /// traffic (zero when the run used no cache).
  int num_threads = 1;
  int num_workers = 0;
  long result_cache_hits = 0;
  long result_cache_misses = 0;
  long transform_cache_hits = 0;
  long transform_cache_misses = 0;
  /// Durable-run report: evaluations served from the resume journal, and
  /// whether the run was stopped early by the graceful-stop flag.
  long num_replayed = 0;
  bool interrupted = false;
};

/// Drives Algorithm 1: Initialize once, then Iterate until the budget is
/// exhausted. Returns the best pipeline found (empty pipeline if the
/// algorithm never completed a successful evaluation).
SearchResult RunSearch(SearchAlgorithm* algorithm,
                       EvaluatorInterface* evaluator,
                       const SearchSpace& space,
                       const SearchOptions& options);

}  // namespace autofp

#endif  // AUTOFP_CORE_SEARCH_FRAMEWORK_H_
