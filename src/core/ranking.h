#ifndef AUTOFP_CORE_RANKING_H_
#define AUTOFP_CORE_RANKING_H_

#include <cstddef>
#include <string>
#include <vector>

namespace autofp {

/// One benchmark scenario (dataset x model x budget) with the validation
/// accuracy achieved by each algorithm (fixed algorithm order across
/// scenarios) plus the no-FP baseline.
struct ScenarioScores {
  std::string scenario;
  double baseline = 0.0;
  std::vector<double> accuracies;
};

/// Competition ranks for one scenario: the highest accuracy gets rank 1;
/// ties share the same (minimum) rank, as in the paper's Table 4.
std::vector<double> RanksWithTies(const std::vector<double>& accuracies);

/// Average rank per algorithm over the scenarios where FP "matters": the
/// best algorithm improves on the baseline by at least `min_improvement`
/// (the paper uses 0.015, i.e. 1.5%). `num_qualified` (optional) receives
/// the number of scenarios that passed the filter.
std::vector<double> AverageRanks(const std::vector<ScenarioScores>& scenarios,
                                 double min_improvement,
                                 size_t* num_qualified = nullptr);

}  // namespace autofp

#endif  // AUTOFP_CORE_RANKING_H_
