#include "core/eval_cache.h"

#include <cstdio>

namespace autofp {

CachingEvaluator::CachingEvaluator(EvaluatorInterface* inner)
    : inner_(inner) {
  AUTOFP_CHECK(inner != nullptr);
}

std::string CachingEvaluator::KeyFor(const EvalRequest& request) {
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "|f%.17g|s%llu|d%.17g",
                request.budget_fraction,
                static_cast<unsigned long long>(request.seed),
                request.deadline_seconds);
  return request.pipeline.Key() + suffix;
}

Evaluation CachingEvaluator::Evaluate(const EvalRequest& request) {
  return Evaluate(request, /*scratch=*/nullptr);
}

Evaluation CachingEvaluator::Evaluate(const EvalRequest& request,
                                      TransformScratch* scratch) {
  std::string key = KeyFor(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = cache_.find(key);
    if (found != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return found->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Evaluation evaluation = inner_->Evaluate(request, scratch);
  // Wall-clock-dependent outcomes are the only non-pure ones: a deadline
  // flake must be allowed to succeed next time.
  if (evaluation.failure != EvalFailure::kDeadlineExceeded) {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(std::move(key), evaluation);
  }
  return evaluation;
}

std::vector<Evaluation> CachingEvaluator::EvaluateAll(
    const std::vector<EvalRequest>& requests) {
  std::vector<Evaluation> results(requests.size());
  std::vector<EvalRequest> missed;
  std::vector<size_t> missed_slot;
  std::vector<std::string> missed_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < requests.size(); ++i) {
      std::string key = KeyFor(requests[i]);
      auto found = cache_.find(key);
      if (found != cache_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        results[i] = found->second;
        continue;
      }
      missed.push_back(requests[i]);
      missed_slot.push_back(i);
      missed_key.push_back(std::move(key));
    }
  }
  if (missed.empty()) return results;
  misses_.fetch_add(static_cast<long>(missed.size()),
                    std::memory_order_relaxed);
  std::vector<Evaluation> fresh = inner_->EvaluateAll(missed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t k = 0; k < fresh.size(); ++k) {
      if (fresh[k].failure != EvalFailure::kDeadlineExceeded) {
        cache_.emplace(std::move(missed_key[k]), fresh[k]);
      }
      results[missed_slot[k]] = std::move(fresh[k]);
    }
  }
  return results;
}

size_t CachingEvaluator::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void CachingEvaluator::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace autofp
