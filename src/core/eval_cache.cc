#include "core/eval_cache.h"

#include <cstdio>

namespace autofp {

CachingEvaluator::CachingEvaluator(EvaluatorInterface* inner)
    : inner_(inner) {
  AUTOFP_CHECK(inner != nullptr);
}

std::string CachingEvaluator::KeyFor(const EvalRequest& request) {
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "|f%.17g|s%llu|d%.17g",
                request.budget_fraction,
                static_cast<unsigned long long>(request.seed),
                request.deadline_seconds);
  return request.pipeline.Key() + suffix;
}

Evaluation CachingEvaluator::Evaluate(const EvalRequest& request) {
  return Evaluate(request, /*scratch=*/nullptr);
}

Evaluation CachingEvaluator::Evaluate(const EvalRequest& request,
                                      TransformScratch* scratch) {
  std::string key = KeyFor(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = cache_.find(key);
    if (found != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return found->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Evaluation evaluation = inner_->Evaluate(request, scratch);
  // Wall-clock-dependent outcomes are the only non-pure ones: a deadline
  // flake must be allowed to succeed next time.
  if (evaluation.failure != EvalFailure::kDeadlineExceeded) {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(std::move(key), evaluation);
  }
  return evaluation;
}

size_t CachingEvaluator::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void CachingEvaluator::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace autofp
