#ifndef AUTOFP_CORE_FAULT_H_
#define AUTOFP_CORE_FAULT_H_

/// Fault-tolerant evaluation: the failure taxonomy for pipeline
/// evaluations, a deterministic fault injector for robustness testing, and
/// the retry/quarantine policy applied by the search framework.
///
/// Real Auto-FP runs hit degenerate transforms, NaN/Inf propagation and
/// diverging models; sklearn pipelines *throw* in these cases. Instead of
/// recording garbage accuracies (or crashing mid-budget), every evaluation
/// carries a typed outcome, failed evaluations record a penalty score
/// flagged as failed, and the search continues. See DESIGN.md
/// ("Failure semantics").

#include <atomic>
#include <string>

#include "util/random.h"
#include "util/status.h"

namespace autofp {

/// Why a pipeline evaluation failed. kNone means success.
enum class EvalFailure : int {
  kNone = 0,
  /// The fitted pipeline produced NaN/Inf feature values.
  kNonFiniteOutput,
  /// The transform collapsed the data (empty output, or every entry
  /// identical — no information left for the downstream model).
  kDegenerateTransform,
  /// The downstream classifier produced a non-finite score.
  kModelDiverged,
  /// The per-evaluation deadline elapsed before a score was produced.
  kDeadlineExceeded,
  /// Synthetic failure injected by a FaultInjector.
  kInjected,
  /// The distributed worker holding this evaluation's lease died (or was
  /// revoked as a straggler) and every re-lease attempt was exhausted.
  /// Transient: the pipeline itself is not implicated, so the search
  /// framework's retry rounds may still evaluate it elsewhere.
  kWorkerLost,
};

/// Human-readable name ("NonFiniteOutput" etc.; "OK" for kNone).
const char* EvalFailureName(EvalFailure failure);

/// Transient failures may succeed on retry (injected faults are drawn per
/// attempt; deadlines can be timing flakes). Permanent failures are
/// deterministic properties of the pipeline and are quarantined instead.
inline bool IsTransientFailure(EvalFailure failure) {
  return failure == EvalFailure::kInjected ||
         failure == EvalFailure::kDeadlineExceeded ||
         failure == EvalFailure::kWorkerLost;
}

/// Score recorded for a failed evaluation: the worst possible accuracy, so
/// search algorithms steer away from failing pipelines without any special
/// casing. Always finite (never NaN) so best-tracking stays sound.
inline constexpr double kPenaltyAccuracy = 0.0;

/// Maps a pipeline/evaluation Status to the taxonomy: OutOfRange carries
/// non-finite output, InvalidArgument a degenerate transform; anything
/// else is treated as model divergence.
EvalFailure FailureFromStatus(const Status& status);

/// Configuration of a FaultInjector. Rates are per evaluation attempt.
struct FaultInjectorConfig {
  /// Probability an attempt fails outright with kInjected.
  double fault_rate = 0.0;
  /// Probability an attempt is slowed down (additively, by
  /// `slowdown_seconds` of simulated wall-clock). Slowdowns count against
  /// the per-evaluation deadline, so with a deadline set they surface as
  /// kDeadlineExceeded.
  double slowdown_rate = 0.0;
  double slowdown_seconds = 0.0;
  uint64_t seed = 0x5EEDFA17;
};

/// What the injector decided for one evaluation attempt.
struct InjectionDecision {
  EvalFailure failure = EvalFailure::kNone;  ///< kNone or kInjected.
  double delay_seconds = 0.0;                ///< simulated slowdown.
};

/// Deterministic, seeded fault injector. Every decision is a pure
/// function of (config, stream key): two injectors with identical configs
/// produce identical decisions for identical keys, so faulty runs are
/// exactly reproducible — including under concurrent evaluation, where
/// call *order* is nondeterministic but stream keys (request seeds) are
/// not. Thread-safe: the statistics counters are atomic.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config);

  /// Decision for the evaluation attempt identified by `stream` (usually
  /// the EvalRequest seed). Pure in the decision, counting in the stats.
  InjectionDecision DecisionFor(uint64_t stream);

  /// Draws the decision for the next attempt of a sequential stream: the
  /// decision for call index 0, 1, 2, ... in order.
  InjectionDecision Next() {
    return DecisionFor(static_cast<uint64_t>(
        next_index_.fetch_add(1, std::memory_order_relaxed)));
  }

  const FaultInjectorConfig& config() const { return config_; }
  long num_decisions() const {
    return num_decisions_.load(std::memory_order_relaxed);
  }
  long num_injected_faults() const {
    return num_injected_faults_.load(std::memory_order_relaxed);
  }
  long num_injected_slowdowns() const {
    return num_injected_slowdowns_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjectorConfig config_;
  std::atomic<long> next_index_{0};
  std::atomic<long> num_decisions_{0};
  std::atomic<long> num_injected_faults_{0};
  std::atomic<long> num_injected_slowdowns_{0};
};

/// Retry/quarantine policy applied by SearchContext around every
/// evaluation (Algorithm 1 Step 4). Transient failures are retried with
/// bounded exponential backoff; permanent failures quarantine the pipeline
/// so it is never evaluated again.
struct FaultPolicy {
  /// Maximum retry attempts for a transient failure (0 disables retries).
  int max_retries = 2;
  /// Real sleep before the first retry; each further retry multiplies it.
  /// The default is 0 (no sleeping) so searches and tests stay fast.
  double initial_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.1;
  /// Quarantine pipelines whose failure is permanent (non-transient).
  bool quarantine = true;

  /// Backoff before retry attempt `retry_index` (1-based), bounded.
  double BackoffSeconds(int retry_index) const;
};

/// Sleeps for the policy's backoff before retry `retry_index` (no-op for a
/// non-positive backoff).
void BackoffSleep(const FaultPolicy& policy, int retry_index);

}  // namespace autofp

#endif  // AUTOFP_CORE_FAULT_H_
