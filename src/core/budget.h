#ifndef AUTOFP_CORE_BUDGET_H_
#define AUTOFP_CORE_BUDGET_H_

namespace autofp {

/// Search budget: whichever limit is hit first ends the search. Negative
/// values mean "unlimited" for that axis (at least one axis must be set).
/// The paper's experiments use wall-clock budgets; the benches here default
/// to evaluation-count budgets for machine independence (see DESIGN.md).
struct Budget {
  long max_evaluations = -1;
  double max_seconds = -1.0;
  /// Per-evaluation deadline (seconds). A single evaluation that exceeds
  /// it is recorded as failed (EvalFailure::kDeadlineExceeded) with the
  /// penalty score, and the search continues. Negative = no deadline.
  double max_eval_seconds = -1.0;

  static Budget Evaluations(long count) {
    Budget budget;
    budget.max_evaluations = count;
    return budget;
  }
  static Budget Seconds(double seconds) {
    Budget budget;
    budget.max_seconds = seconds;
    return budget;
  }

  /// Builder-style: same budget with a per-evaluation deadline attached.
  Budget WithEvalDeadline(double seconds) const {
    Budget budget = *this;
    budget.max_eval_seconds = seconds;
    return budget;
  }

  bool limited() const { return max_evaluations >= 0 || max_seconds >= 0.0; }
};

}  // namespace autofp

#endif  // AUTOFP_CORE_BUDGET_H_
