#ifndef AUTOFP_CORE_PARALLEL_EVALUATOR_H_
#define AUTOFP_CORE_PARALLEL_EVALUATOR_H_

/// The parallel evaluation engine: a fixed-size thread pool that fans a
/// batch of EvalRequests out over any EvaluatorInterface and returns the
/// results in request order. Pipeline evaluations are embarrassingly
/// parallel (the paper's Section 5.3 shows Train+Prep dominate every
/// search algorithm's runtime), so population-based searches that submit a
/// whole generation at once scale with cores.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/evaluator.h"

namespace autofp {

/// Decorator running batches of evaluations on `num_threads` worker
/// threads. Determinism contract: EvaluateAll returns results indexed
/// exactly like its input, and with a request-pure inner evaluator the
/// result *values* are independent of thread count and scheduling — only
/// wall-clock changes. The inner evaluator must tolerate concurrent
/// Evaluate() calls (see EvaluatorInterface's thread-safety contract).
class ParallelEvaluator : public EvaluatorInterface {
 public:
  /// `num_threads` >= 1; 1 still runs batches on the (single) worker.
  ParallelEvaluator(EvaluatorInterface* inner, int num_threads);
  ~ParallelEvaluator() override;

  ParallelEvaluator(const ParallelEvaluator&) = delete;
  ParallelEvaluator& operator=(const ParallelEvaluator&) = delete;

  /// Single evaluations bypass the pool (no queueing latency).
  Evaluation Evaluate(const EvalRequest& request) override {
    return inner_->Evaluate(request);
  }
  Evaluation Evaluate(const EvalRequest& request,
                      TransformScratch* scratch) override {
    return inner_->Evaluate(request, scratch);
  }
  double BaselineAccuracy() override { return inner_->BaselineAccuracy(); }

  /// Evaluates every request concurrently and returns results in request
  /// order. Blocks until the whole batch is done. Safe to call from one
  /// submitting thread at a time per batch; concurrent batches simply
  /// share the workers.
  std::vector<Evaluation> EvaluateAll(
      const std::vector<EvalRequest>& requests) override;
  bool SupportsConcurrentBatches() const override { return true; }

  int num_threads() const { return static_cast<int>(workers_.size()); }
  EvaluatorInterface* inner() { return inner_; }

 private:
  /// Per-EvaluateAll completion state, shared by that batch's tasks.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining = 0;
  };
  struct Task {
    const EvalRequest* request = nullptr;
    Evaluation* result = nullptr;
    Batch* batch = nullptr;
  };

  void WorkerLoop();

  EvaluatorInterface* inner_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace autofp

#endif  // AUTOFP_CORE_PARALLEL_EVALUATOR_H_
