#ifndef AUTOFP_CORE_EVALUATOR_H_
#define AUTOFP_CORE_EVALUATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/fault.h"
#include "data/dataset.h"
#include "ml/model.h"
#include "preprocess/pipeline.h"
#include "preprocess/transform_cache.h"
#include "util/random.h"

namespace autofp {

/// Timing decomposition of one pipeline evaluation — the "Prep" and
/// "Train" components of the paper's Section 5.3 bottleneck analysis
/// ("Pick" is measured by the search runner, outside the evaluator).
struct EvalTiming {
  double prep_seconds = 0.0;   ///< pipeline fit + transform of train/valid.
  double train_seconds = 0.0;  ///< classifier training + validation scoring.
};

/// One evaluation request: everything an evaluator needs to score a
/// pipeline, carried per call so evaluators hold no mutable evaluation
/// state and decorators (fault injection, caching, thread pools) compose
/// without hidden knobs.
struct EvalRequest {
  PipelineSpec pipeline;
  /// Fraction of training rows used (bandit partial-training budgets);
  /// 1.0 = full training data.
  double budget_fraction = 1.0;
  /// Per-evaluation wall-clock deadline in seconds; <= 0 disables. An
  /// evaluation that exceeds it reports EvalFailure::kDeadlineExceeded.
  double deadline_seconds = -1.0;
  /// Seed for all evaluation-local randomness (training subsampling, fault
  /// injection). Two evaluations of identical requests produce identical
  /// results regardless of thread interleaving or call order.
  uint64_t seed = 0;

  /// Canonical seed derivation: a pure function of (root, pipeline,
  /// fraction, attempt). The search framework uses it so an evaluation's
  /// outcome depends only on what is evaluated, never on when — the basis
  /// of the multi-thread determinism guarantee and of full-result caching.
  static uint64_t DeriveSeed(uint64_t root, const PipelineSpec& pipeline,
                             double budget_fraction, int attempt);
};

/// One evaluated pipeline: the record type of Algorithm 1's history.
/// A failed evaluation carries its typed failure, a Status with detail,
/// and the penalty score (kPenaltyAccuracy) instead of silent garbage.
struct Evaluation {
  PipelineSpec pipeline;
  double accuracy = 0.0;
  /// Fraction of training rows used (bandit partial-training budgets);
  /// 1.0 = full training data.
  double budget_fraction = 1.0;
  EvalTiming timing;
  /// Typed outcome: kNone on success, otherwise why this evaluation failed
  /// (then `accuracy` holds kPenaltyAccuracy).
  EvalFailure failure = EvalFailure::kNone;
  /// Failure detail (OK on success).
  Status status;
  /// Evaluator attempts this record absorbed (> 1 after retries).
  int attempts = 1;

  bool failed() const { return failure != EvalFailure::kNone; }
};

/// Abstract pipeline evaluator: what the search framework needs from an
/// evaluation backend. The production implementation is PipelineEvaluator;
/// tests substitute synthetic reward landscapes.
///
/// Thread-safety contract: implementations used under a ParallelEvaluator
/// must tolerate concurrent Evaluate() calls. Because every request
/// carries its own fraction, deadline and seed, a correct implementation
/// needs no per-call mutable state.
class EvaluatorInterface {
 public:
  virtual ~EvaluatorInterface() = default;

  /// Evaluates one request. Must not throw or abort on degenerate
  /// pipelines: failures are reported through Evaluation::failure with the
  /// penalty score.
  virtual Evaluation Evaluate(const EvalRequest& request) = 0;

  /// Scratch-aware form: `scratch` (may be null) lends the evaluator
  /// reusable transform buffers. The caller owns them and must not lend
  /// the same buffers to concurrent evaluations — the engine keeps one
  /// per worker thread (see core/parallel_evaluator.h). The default
  /// ignores the scratch and forwards, so synthetic evaluators that do no
  /// transform work only implement the one-argument form; decorators
  /// should override this and pass the scratch through.
  virtual Evaluation Evaluate(const EvalRequest& request,
                              TransformScratch* scratch) {
    (void)scratch;
    return Evaluate(request);
  }

  /// Batch form: evaluates every request and returns results in request
  /// order. The default runs the batch sequentially through Evaluate();
  /// engines that can overlap work (thread pools, distributed workers)
  /// override it and report so via SupportsConcurrentBatches(), letting
  /// the search framework hand them whole generations at once.
  virtual std::vector<Evaluation> EvaluateAll(
      const std::vector<EvalRequest>& requests) {
    std::vector<Evaluation> results;
    results.reserve(requests.size());
    for (const EvalRequest& request : requests) {
      results.push_back(Evaluate(request));
    }
    return results;
  }

  /// True when EvaluateAll() actually overlaps evaluations (so batching
  /// through it beats the caller's own sequential loop). Decorators
  /// forward their inner evaluator's answer.
  virtual bool SupportsConcurrentBatches() const { return false; }

  /// Accuracy of the empty (no-FP) pipeline.
  virtual double BaselineAccuracy() = 0;
};

/// Evaluates pipelines per the paper's pipeline-error definition (Eq. 2):
/// fit the pipeline on the training features, transform train and valid,
/// train the downstream classifier on the transformed training set and
/// score accuracy on the transformed validation set.
///
/// Fault tolerance: non-finite or degenerate transform output and diverged
/// models are reported as typed failures (never NaN scores, never aborts);
/// an attached FaultInjector can additionally fail or slow down attempts;
/// the per-request deadline turns slow evaluations into kDeadlineExceeded
/// failures.
///
/// Thread-safety: safe for concurrent Evaluate() calls. The datasets and
/// model config are immutable after construction; subsampling and fault
/// injection are pure functions of the request seed; counters are atomic.
/// Configuration setters (global train fraction, injector, cache) must be
/// called before concurrent use begins.
class PipelineEvaluator : public EvaluatorInterface {
 public:
  PipelineEvaluator(Dataset train, Dataset valid, ModelConfig model);

  /// Data-size reduction (the paper's research opportunity 2): scale every
  /// evaluation's training subsample by `fraction` in (0, 1]. The search
  /// explores more pipelines per unit time at the cost of noisier scores.
  void set_global_train_fraction(double fraction) {
    AUTOFP_CHECK_GT(fraction, 0.0);
    AUTOFP_CHECK_LE(fraction, 1.0);
    global_train_fraction_ = fraction;
  }
  double global_train_fraction() const { return global_train_fraction_; }

  /// Attaches a deterministic fault injector; every subsequent Evaluate()
  /// attempt draws one decision from it, keyed by the request seed.
  /// Replaces any previous injector.
  void AttachFaultInjector(const FaultInjectorConfig& config);
  /// The attached injector, or nullptr.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Attaches a prefix-transform cache: fitted-pipeline-prefix outputs are
  /// memoized so evaluating "A -> B -> C" after "A -> B" only fits C. The
  /// cache may be shared between evaluators over the same dataset.
  void AttachTransformCache(std::shared_ptr<TransformCache> cache) {
    transform_cache_ = std::move(cache);
  }
  TransformCache* transform_cache() { return transform_cache_.get(); }

  /// Evaluates one request. `budget_fraction` in (0, 1] subsamples
  /// training rows before fitting (the resource axis for Hyperband/BOHB);
  /// subsampling is seeded by the request seed and keeps at least one row
  /// per class.
  Evaluation Evaluate(const EvalRequest& request) override;

  /// Scratch-aware form: on the uncached transform path the fit/transform
  /// chain runs through `*scratch` instead of freshly allocated matrices.
  Evaluation Evaluate(const EvalRequest& request,
                      TransformScratch* scratch) override;

  /// Validation accuracy with no preprocessing (the paper's no-FP line).
  /// Computed once and cached; immune to fault injection and deadlines.
  double BaselineAccuracy() override;

  const Dataset& train() const { return train_; }
  const Dataset& valid() const { return valid_; }
  const ModelConfig& model() const { return model_; }
  long num_evaluations() const {
    return num_evaluations_.load(std::memory_order_relaxed);
  }

 private:
  /// The evaluation body; `use_injector` is false for the baseline and
  /// `scratch` (may be null) backs the uncached transform path.
  Evaluation EvaluateImpl(const EvalRequest& request, bool use_injector,
                          TransformScratch* scratch);

  Dataset train_;
  Dataset valid_;
  ModelConfig model_;
  std::atomic<long> num_evaluations_{0};
  std::mutex baseline_mutex_;
  double baseline_accuracy_ = -1.0;
  double global_train_fraction_ = 1.0;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::shared_ptr<TransformCache> transform_cache_;
};

/// Decorator that applies fault injection (and simulated-slowdown deadline
/// accounting) to *any* EvaluatorInterface — used to exercise search
/// algorithms under faults on synthetic reward landscapes where no real
/// pipeline evaluation happens. Injection decisions are a pure function of
/// the request seed, so faulty runs reproduce exactly even under
/// concurrent evaluation.
class FaultInjectingEvaluator : public EvaluatorInterface {
 public:
  FaultInjectingEvaluator(EvaluatorInterface* inner,
                          const FaultInjectorConfig& config);

  Evaluation Evaluate(const EvalRequest& request) override;
  Evaluation Evaluate(const EvalRequest& request,
                      TransformScratch* scratch) override;
  double BaselineAccuracy() override { return inner_->BaselineAccuracy(); }

  FaultInjector* injector() { return &injector_; }

 private:
  EvaluatorInterface* inner_;
  FaultInjector injector_;
};

}  // namespace autofp

#endif  // AUTOFP_CORE_EVALUATOR_H_
