#ifndef AUTOFP_CORE_EVALUATOR_H_
#define AUTOFP_CORE_EVALUATOR_H_

#include <vector>

#include "data/dataset.h"
#include "ml/model.h"
#include "preprocess/pipeline.h"
#include "util/random.h"

namespace autofp {

/// Timing decomposition of one pipeline evaluation — the "Prep" and
/// "Train" components of the paper's Section 5.3 bottleneck analysis
/// ("Pick" is measured by the search runner, outside the evaluator).
struct EvalTiming {
  double prep_seconds = 0.0;   ///< pipeline fit + transform of train/valid.
  double train_seconds = 0.0;  ///< classifier training + validation scoring.
};

/// One evaluated pipeline: the record type of Algorithm 1's history.
struct Evaluation {
  PipelineSpec pipeline;
  double accuracy = 0.0;
  /// Fraction of training rows used (bandit partial-training budgets);
  /// 1.0 = full training data.
  double budget_fraction = 1.0;
  EvalTiming timing;
};

/// Abstract pipeline evaluator: what the search framework needs from an
/// evaluation backend. The production implementation is PipelineEvaluator;
/// tests substitute synthetic reward landscapes.
class EvaluatorInterface {
 public:
  virtual ~EvaluatorInterface() = default;

  /// Evaluates a pipeline at the given training-budget fraction.
  virtual Evaluation Evaluate(const PipelineSpec& pipeline,
                              double budget_fraction) = 0;

  /// Accuracy of the empty (no-FP) pipeline.
  virtual double BaselineAccuracy() = 0;
};

/// Evaluates pipelines per the paper's pipeline-error definition (Eq. 2):
/// fit the pipeline on the training features, transform train and valid,
/// train the downstream classifier on the transformed training set and
/// score accuracy on the transformed validation set.
class PipelineEvaluator : public EvaluatorInterface {
 public:
  PipelineEvaluator(Dataset train, Dataset valid, ModelConfig model);

  /// Data-size reduction (the paper's research opportunity 2): scale every
  /// evaluation's training subsample by `fraction` in (0, 1]. The search
  /// explores more pipelines per unit time at the cost of noisier scores.
  void set_global_train_fraction(double fraction) {
    AUTOFP_CHECK_GT(fraction, 0.0);
    AUTOFP_CHECK_LE(fraction, 1.0);
    global_train_fraction_ = fraction;
  }
  double global_train_fraction() const { return global_train_fraction_; }

  /// Evaluates a pipeline. `budget_fraction` in (0, 1] subsamples training
  /// rows before fitting (the resource axis for Hyperband/BOHB);
  /// subsampling is seeded deterministically per call count.
  Evaluation Evaluate(const PipelineSpec& pipeline,
                      double budget_fraction) override;
  Evaluation Evaluate(const PipelineSpec& pipeline) {
    return Evaluate(pipeline, 1.0);
  }

  /// Validation accuracy with no preprocessing (the paper's no-FP line).
  /// Computed once and cached.
  double BaselineAccuracy() override;

  const Dataset& train() const { return train_; }
  const Dataset& valid() const { return valid_; }
  const ModelConfig& model() const { return model_; }
  long num_evaluations() const { return num_evaluations_; }

 private:
  Dataset train_;
  Dataset valid_;
  ModelConfig model_;
  Rng subsample_rng_;
  long num_evaluations_ = 0;
  double baseline_accuracy_ = -1.0;
  double global_train_fraction_ = 1.0;
};

}  // namespace autofp

#endif  // AUTOFP_CORE_EVALUATOR_H_
