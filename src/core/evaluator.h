#ifndef AUTOFP_CORE_EVALUATOR_H_
#define AUTOFP_CORE_EVALUATOR_H_

#include <memory>
#include <vector>

#include "core/fault.h"
#include "data/dataset.h"
#include "ml/model.h"
#include "preprocess/pipeline.h"
#include "util/random.h"

namespace autofp {

/// Timing decomposition of one pipeline evaluation — the "Prep" and
/// "Train" components of the paper's Section 5.3 bottleneck analysis
/// ("Pick" is measured by the search runner, outside the evaluator).
struct EvalTiming {
  double prep_seconds = 0.0;   ///< pipeline fit + transform of train/valid.
  double train_seconds = 0.0;  ///< classifier training + validation scoring.
};

/// One evaluated pipeline: the record type of Algorithm 1's history.
/// A failed evaluation carries its typed failure, a Status with detail,
/// and the penalty score (kPenaltyAccuracy) instead of silent garbage.
struct Evaluation {
  PipelineSpec pipeline;
  double accuracy = 0.0;
  /// Fraction of training rows used (bandit partial-training budgets);
  /// 1.0 = full training data.
  double budget_fraction = 1.0;
  EvalTiming timing;
  /// Typed outcome: kNone on success, otherwise why this evaluation failed
  /// (then `accuracy` holds kPenaltyAccuracy).
  EvalFailure failure = EvalFailure::kNone;
  /// Failure detail (OK on success).
  Status status;
  /// Evaluator attempts this record absorbed (> 1 after retries).
  int attempts = 1;

  bool failed() const { return failure != EvalFailure::kNone; }
};

/// Abstract pipeline evaluator: what the search framework needs from an
/// evaluation backend. The production implementation is PipelineEvaluator;
/// tests substitute synthetic reward landscapes.
class EvaluatorInterface {
 public:
  virtual ~EvaluatorInterface() = default;

  /// Evaluates a pipeline at the given training-budget fraction. Must not
  /// throw or abort on degenerate pipelines: failures are reported through
  /// Evaluation::failure with the penalty score.
  virtual Evaluation Evaluate(const PipelineSpec& pipeline,
                              double budget_fraction) = 0;

  /// Accuracy of the empty (no-FP) pipeline.
  virtual double BaselineAccuracy() = 0;

  /// Per-evaluation deadline in seconds (negative disables). Backends
  /// without a notion of wall-clock may ignore it.
  virtual void SetEvalDeadline(double seconds) { (void)seconds; }
};

/// Evaluates pipelines per the paper's pipeline-error definition (Eq. 2):
/// fit the pipeline on the training features, transform train and valid,
/// train the downstream classifier on the transformed training set and
/// score accuracy on the transformed validation set.
///
/// Fault tolerance: non-finite or degenerate transform output and diverged
/// models are reported as typed failures (never NaN scores, never aborts);
/// an attached FaultInjector can additionally fail or slow down attempts;
/// a per-evaluation deadline turns slow evaluations into
/// kDeadlineExceeded failures.
class PipelineEvaluator : public EvaluatorInterface {
 public:
  PipelineEvaluator(Dataset train, Dataset valid, ModelConfig model);

  /// Data-size reduction (the paper's research opportunity 2): scale every
  /// evaluation's training subsample by `fraction` in (0, 1]. The search
  /// explores more pipelines per unit time at the cost of noisier scores.
  void set_global_train_fraction(double fraction) {
    AUTOFP_CHECK_GT(fraction, 0.0);
    AUTOFP_CHECK_LE(fraction, 1.0);
    global_train_fraction_ = fraction;
  }
  double global_train_fraction() const { return global_train_fraction_; }

  /// Attaches a deterministic fault injector; every subsequent Evaluate()
  /// attempt draws one decision from it. Replaces any previous injector.
  void AttachFaultInjector(const FaultInjectorConfig& config);
  /// The attached injector, or nullptr.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  void SetEvalDeadline(double seconds) override {
    eval_deadline_seconds_ = seconds;
  }
  double eval_deadline_seconds() const { return eval_deadline_seconds_; }

  /// Evaluates a pipeline. `budget_fraction` in (0, 1] subsamples training
  /// rows before fitting (the resource axis for Hyperband/BOHB);
  /// subsampling is seeded deterministically per call count and keeps at
  /// least one row per class.
  Evaluation Evaluate(const PipelineSpec& pipeline,
                      double budget_fraction) override;
  Evaluation Evaluate(const PipelineSpec& pipeline) {
    return Evaluate(pipeline, 1.0);
  }

  /// Validation accuracy with no preprocessing (the paper's no-FP line).
  /// Computed once and cached; immune to fault injection and deadlines.
  double BaselineAccuracy() override;

  const Dataset& train() const { return train_; }
  const Dataset& valid() const { return valid_; }
  const ModelConfig& model() const { return model_; }
  long num_evaluations() const { return num_evaluations_; }

 private:
  Dataset train_;
  Dataset valid_;
  ModelConfig model_;
  Rng subsample_rng_;
  long num_evaluations_ = 0;
  double baseline_accuracy_ = -1.0;
  double global_train_fraction_ = 1.0;
  double eval_deadline_seconds_ = -1.0;
  std::unique_ptr<FaultInjector> fault_injector_;
};

/// Decorator that applies fault injection (and simulated-slowdown deadline
/// accounting) to *any* EvaluatorInterface — used to exercise search
/// algorithms under faults on synthetic reward landscapes where no real
/// pipeline evaluation happens.
class FaultInjectingEvaluator : public EvaluatorInterface {
 public:
  FaultInjectingEvaluator(EvaluatorInterface* inner,
                          const FaultInjectorConfig& config);

  Evaluation Evaluate(const PipelineSpec& pipeline,
                      double budget_fraction) override;
  double BaselineAccuracy() override { return inner_->BaselineAccuracy(); }
  void SetEvalDeadline(double seconds) override;

  FaultInjector* injector() { return &injector_; }

 private:
  EvaluatorInterface* inner_;
  FaultInjector injector_;
  double eval_deadline_seconds_ = -1.0;
};

}  // namespace autofp

#endif  // AUTOFP_CORE_EVALUATOR_H_
