#include "core/run_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/search_framework.h"
#include "preprocess/pipeline_parse.h"
#include "util/fs.h"

namespace autofp {
namespace {

constexpr char kMagic[4] = {'A', 'F', 'P', 'J'};
// Upper bound on one record's payload; a "length" beyond it mid-file is
// corruption, not a real record (pipeline strings are tiny).
constexpr uint32_t kMaxRecordPayload = 1u << 24;

// Fixed-width append/read helpers. The format is host-endian: journals
// are machine-local crash-recovery state, not interchange files.
template <typename T>
void AppendPod(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendString(std::string* out, const std::string& value) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

// Cursor over a byte range; Read* return false on exhaustion.
struct ByteReader {
  const char* data;
  size_t size;
  size_t pos = 0;

  template <typename T>
  bool ReadPod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size - pos < sizeof(T)) return false;
    std::memcpy(value, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool ReadString(std::string* value) {
    uint32_t length = 0;
    if (!ReadPod(&length)) return false;
    if (size - pos < length) return false;
    value->assign(data + pos, length);
    pos += length;
    return true;
  }
};

std::string EncodeHeader(const JournalHeader& header) {
  std::string body;
  body.append(kMagic, sizeof(kMagic));
  AppendPod<uint32_t>(&body, header.version);
  AppendPod<uint64_t>(&body, header.options_fingerprint);
  AppendPod<uint64_t>(&body, header.dataset_fingerprint);
  AppendString(&body, header.meta);
  AppendPod<uint32_t>(&body, Crc32(body.data(), body.size()));
  return body;
}

// Writes the whole buffer, restarting on EINTR and short writes: ::write
// may land only a prefix (signal, near-full disk), and treating that as
// all-or-nothing would report an error while leaving a torn tail behind a
// still-running process.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<size_t>(written);
  }
  return true;
}

JournalReadResult ReadError(JournalError error, std::string message) {
  JournalReadResult result;
  result.error = error;
  result.status = Status::IoError(std::move(message));
  return result;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t value = i;
      for (int bit = 0; bit < 8; ++bit) {
        value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
      }
      table[i] = value;
    }
    return table;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

uint64_t Fnv1a64(const void* data, size_t size, uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t HashCombine(uint64_t h, uint64_t value) {
  return Fnv1a64(&value, sizeof(value), h);
}

uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t hash = Fnv1a64(dataset.name.data(), dataset.name.size());
  hash = HashCombine(hash, dataset.num_rows());
  hash = HashCombine(hash, dataset.num_cols());
  hash = HashCombine(hash, static_cast<uint64_t>(dataset.num_classes));
  for (size_t r = 0; r < dataset.features.rows(); ++r) {
    for (size_t c = 0; c < dataset.features.cols(); ++c) {
      hash = HashCombine(hash, std::bit_cast<uint64_t>(dataset.features(r, c)));
    }
  }
  for (int label : dataset.labels) {
    hash = HashCombine(hash, static_cast<uint64_t>(label));
  }
  return hash;
}

uint64_t SearchOptionsFingerprint(const SearchOptions& options) {
  uint64_t hash = Fnv1a64("SearchOptions", 13);
  hash = HashCombine(hash, options.seed);
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.budget.max_evaluations));
  hash = HashCombine(hash, std::bit_cast<uint64_t>(options.budget.max_seconds));
  hash = HashCombine(hash,
                     std::bit_cast<uint64_t>(options.budget.max_eval_seconds));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.fault_policy.max_retries));
  hash = HashCombine(hash,
                     static_cast<uint64_t>(options.fault_policy.quarantine));
  return hash;
}

const char* JournalErrorName(JournalError error) {
  switch (error) {
    case JournalError::kNone:
      return "OK";
    case JournalError::kIoError:
      return "IoError";
    case JournalError::kBadMagic:
      return "BadMagic";
    case JournalError::kVersionMismatch:
      return "VersionMismatch";
    case JournalError::kCorruptHeader:
      return "CorruptHeader";
    case JournalError::kCorruptRecord:
      return "CorruptRecord";
    case JournalError::kOptionsMismatch:
      return "OptionsMismatch";
    case JournalError::kDatasetMismatch:
      return "DatasetMismatch";
  }
  return "Unknown";
}

std::string EncodeJournalRecordPayload(const JournalRecord& record) {
  std::string payload;
  AppendPod<double>(&payload, record.accuracy);
  AppendPod<double>(&payload, record.budget_fraction);
  AppendPod<uint64_t>(&payload, record.seed);
  AppendPod<double>(&payload, record.elapsed_seconds);
  AppendPod<double>(&payload, record.prep_seconds);
  AppendPod<double>(&payload, record.train_seconds);
  AppendPod<int32_t>(&payload, static_cast<int32_t>(record.failure));
  AppendPod<int32_t>(&payload, record.attempts);
  AppendPod<int32_t>(&payload, record.status_code);
  AppendString(&payload, record.pipeline);
  AppendString(&payload, record.status_message);
  return payload;
}

bool DecodeJournalRecordPayload(const char* data, size_t size,
                                JournalRecord* record) {
  ByteReader reader{data, size};
  int32_t failure = 0, attempts = 0, status_code = 0;
  if (!reader.ReadPod(&record->accuracy) ||
      !reader.ReadPod(&record->budget_fraction) ||
      !reader.ReadPod(&record->seed) ||
      !reader.ReadPod(&record->elapsed_seconds) ||
      !reader.ReadPod(&record->prep_seconds) ||
      !reader.ReadPod(&record->train_seconds) || !reader.ReadPod(&failure) ||
      !reader.ReadPod(&attempts) || !reader.ReadPod(&status_code) ||
      !reader.ReadString(&record->pipeline) ||
      !reader.ReadString(&record->status_message)) {
    return false;
  }
  record->failure = static_cast<EvalFailure>(failure);
  record->attempts = attempts;
  record->status_code = status_code;
  return reader.pos == size;
}

JournalRecord MakeJournalRecord(const Evaluation& evaluation,
                                uint64_t request_seed,
                                double elapsed_seconds) {
  JournalRecord record;
  record.pipeline = evaluation.pipeline.ToString();
  record.budget_fraction = evaluation.budget_fraction;
  record.seed = request_seed;
  record.accuracy = evaluation.accuracy;
  record.failure = evaluation.failure;
  record.status_code = static_cast<int>(evaluation.status.code());
  record.status_message = evaluation.status.message();
  record.attempts = evaluation.attempts;
  record.elapsed_seconds = elapsed_seconds;
  record.prep_seconds = evaluation.timing.prep_seconds;
  record.train_seconds = evaluation.timing.train_seconds;
  return record;
}

Evaluation EvaluationFromRecord(const JournalRecord& record) {
  Evaluation evaluation;
  Result<PipelineSpec> pipeline = ParsePipelineSpec(record.pipeline);
  AUTOFP_CHECK(pipeline.ok())
      << "journal record holds unparseable pipeline '" << record.pipeline
      << "': " << pipeline.status().ToString();
  evaluation.pipeline = pipeline.value();
  evaluation.budget_fraction = record.budget_fraction;
  evaluation.accuracy = record.accuracy;
  evaluation.failure = record.failure;
  evaluation.attempts = record.attempts;
  evaluation.timing.prep_seconds = record.prep_seconds;
  evaluation.timing.train_seconds = record.train_seconds;
  if (record.status_code != static_cast<int>(StatusCode::kOk)) {
    evaluation.status = Status(static_cast<StatusCode>(record.status_code),
                               record.status_message);
  }
  return evaluation;
}

JournalReadResult ReadRunJournal(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return ReadError(JournalError::kIoError,
                     "cannot open journal '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  file.close();

  JournalReadResult result;
  ByteReader reader{bytes.data(), bytes.size()};

  // Header: magic, version, fingerprints, meta, CRC over all of it.
  char magic[4];
  if (!reader.ReadPod(&magic) || std::memcmp(magic, kMagic, 4) != 0) {
    return ReadError(JournalError::kBadMagic,
                     "'" + path + "' is not a run journal (bad magic)");
  }
  if (!reader.ReadPod(&result.header.version)) {
    return ReadError(JournalError::kCorruptHeader,
                     "journal header truncated in '" + path + "'");
  }
  if (result.header.version != kRunJournalVersion) {
    JournalReadResult mismatch;
    mismatch.header.version = result.header.version;
    mismatch.error = JournalError::kVersionMismatch;
    mismatch.status = Status::IoError(
        "journal version " + std::to_string(result.header.version) +
        " != supported " + std::to_string(kRunJournalVersion));
    return mismatch;
  }
  if (!reader.ReadPod(&result.header.options_fingerprint) ||
      !reader.ReadPod(&result.header.dataset_fingerprint) ||
      !reader.ReadString(&result.header.meta)) {
    return ReadError(JournalError::kCorruptHeader,
                     "journal header truncated in '" + path + "'");
  }
  uint32_t expected_crc = Crc32(bytes.data(), reader.pos);
  uint32_t header_crc = 0;
  if (!reader.ReadPod(&header_crc) || header_crc != expected_crc) {
    return ReadError(JournalError::kCorruptHeader,
                     "journal header checksum mismatch in '" + path + "'");
  }

  // Records: [u32 payload_len][payload][u32 crc]. Anything unreadable at
  // the very end of the file is a torn tail (the expected post-crash
  // state): dropped, counted, not an error. The same defect *before* the
  // end means mid-file corruption and rejects the journal, because record
  // boundaries cannot be trusted past it.
  while (reader.pos < bytes.size()) {
    const size_t record_start = reader.pos;
    auto torn_tail = [&]() {
      result.dropped_tail_bytes = bytes.size() - record_start;
      reader.pos = bytes.size();
    };
    uint32_t payload_length = 0;
    if (!reader.ReadPod(&payload_length)) {
      torn_tail();
      break;
    }
    if (payload_length > kMaxRecordPayload) {
      // A torn append leaves a prefix of valid bytes, so it can shorten
      // the length field (caught above) but never fill all four bytes
      // with an implausible value — that is real corruption. Classifying
      // it as a torn tail would silently drop every intact record after
      // the damage while ok() stays true, so reject the journal instead.
      JournalReadResult corrupt;
      corrupt.header = result.header;
      corrupt.error = JournalError::kCorruptRecord;
      corrupt.status = Status::IoError(
          "journal record " + std::to_string(result.records.size()) +
          " declares an implausible payload length (" +
          std::to_string(payload_length) + " bytes) in '" + path + "'");
      return corrupt;
    }
    const size_t available = bytes.size() - reader.pos;
    if (available < static_cast<size_t>(payload_length) + sizeof(uint32_t)) {
      // The declared extent runs past EOF: a record that never finished
      // being written — the expected torn tail, bounded by this one
      // record's extent.
      torn_tail();
      break;
    }
    const char* payload = bytes.data() + reader.pos;
    reader.pos += payload_length;
    uint32_t stored_crc = 0;
    reader.ReadPod(&stored_crc);  // length checked above.
    const bool at_tail = reader.pos == bytes.size();
    JournalRecord record;
    if (Crc32(payload, payload_length) != stored_crc ||
        !DecodeJournalRecordPayload(payload, payload_length, &record)) {
      if (at_tail) {
        // Torn final record (partial overwrite inside its extent).
        torn_tail();
        break;
      }
      JournalReadResult corrupt;
      corrupt.header = result.header;
      corrupt.error = JournalError::kCorruptRecord;
      corrupt.status = Status::IoError(
          "journal record " + std::to_string(result.records.size()) +
          " corrupt (CRC/layout mismatch) before end of '" + path + "'");
      return corrupt;
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

JournalError ValidateJournalHeader(const JournalHeader& header,
                                   uint64_t options_fingerprint,
                                   uint64_t dataset_fingerprint,
                                   Status* detail) {
  if (header.dataset_fingerprint != dataset_fingerprint) {
    if (detail != nullptr) {
      *detail = Status::InvalidArgument(
          "journal was recorded against a different dataset "
          "(fingerprint mismatch)");
    }
    return JournalError::kDatasetMismatch;
  }
  if (header.options_fingerprint != options_fingerprint) {
    if (detail != nullptr) {
      *detail = Status::InvalidArgument(
          "journal was recorded under different search options "
          "(seed/budget/policy fingerprint mismatch)");
    }
    return JournalError::kOptionsMismatch;
  }
  return JournalError::kNone;
}

RunJournalWriter::RunJournalWriter(int fd, std::string path,
                                   const RunJournalOptions& options)
    : fd_(fd), path_(std::move(path)), options_(options) {}

RunJournalWriter::~RunJournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<RunJournalWriter>> RunJournalWriter::Create(
    const std::string& path, uint64_t options_fingerprint,
    uint64_t dataset_fingerprint, const RunJournalOptions& options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create journal '" + path +
                           "': " + std::strerror(errno));
  }
  JournalHeader header;
  header.options_fingerprint = options_fingerprint;
  header.dataset_fingerprint = dataset_fingerprint;
  header.meta = options.meta;
  std::string bytes = EncodeHeader(header);
  if (!WriteAll(fd, bytes.data(), bytes.size())) {
    ::close(fd);
    return Status::IoError("cannot write journal header to '" + path +
                           "': " + std::strerror(errno));
  }
  if (options.fsync_each_record) {
    ::fsync(fd);
    // The header fsync above persists the file's *content*; its
    // directory entry lives in the parent directory and needs its own
    // fsync, or a machine crash (not just a process crash) right after
    // creation can lose the freshly created journal entirely.
    Status dir_synced = FsyncParentDirectory(path);
    if (!dir_synced.ok()) {
      ::close(fd);
      return dir_synced;
    }
  }
  return std::unique_ptr<RunJournalWriter>(
      new RunJournalWriter(fd, path, options));
}

Result<std::unique_ptr<RunJournalWriter>> RunJournalWriter::OpenForAppend(
    const std::string& path, const RunJournalOptions& options) {
  // Re-read to find the intact extent, then physically drop any torn tail
  // so new records never follow garbage bytes.
  JournalReadResult existing = ReadRunJournal(path);
  if (!existing.ok()) {
    return Status::IoError("cannot append to journal '" + path +
                           "': " + std::string(JournalErrorName(existing.error)) +
                           ": " + existing.status.message());
  }
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IoError("cannot open journal '" + path +
                           "' for append: " + std::strerror(errno));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::IoError("cannot seek to end of journal '" + path +
                           "': " + std::strerror(errno));
  }
  if (existing.dropped_tail_bytes > 0) {
    end -= static_cast<off_t>(existing.dropped_tail_bytes);
    if (::ftruncate(fd, end) != 0 || ::lseek(fd, end, SEEK_SET) < 0) {
      ::close(fd);
      return Status::IoError("cannot drop torn tail of journal '" + path +
                             "': " + std::strerror(errno));
    }
  }
  return std::unique_ptr<RunJournalWriter>(
      new RunJournalWriter(fd, path, options));
}

Status RunJournalWriter::Append(const JournalRecord& record) {
  std::string payload = EncodeJournalRecordPayload(record);
  std::string bytes;
  bytes.reserve(payload.size() + 2 * sizeof(uint32_t));
  AppendPod<uint32_t>(&bytes, static_cast<uint32_t>(payload.size()));
  bytes.append(payload);
  AppendPod<uint32_t>(&bytes, Crc32(payload.data(), payload.size()));
  if (!WriteAll(fd_, bytes.data(), bytes.size())) {
    return Status::IoError("journal append to '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  if (options_.fsync_each_record) ::fsync(fd_);
  ++num_appends_;
  if (options_.crash_after_appends > 0 &&
      num_appends_ == options_.crash_after_appends) {
    // Deterministic crash point: the record above is durable, everything
    // else (search state, buffers, destructors) is lost — exactly what a
    // kill -9 at this instant would leave behind.
    std::_Exit(kCrashPointExitCode);
  }
  return Status::OK();
}

RunJournalReplay::RunJournalReplay(const std::vector<JournalRecord>& records) {
  for (const JournalRecord& record : records) {
    if (record.failure == EvalFailure::kDeadlineExceeded) {
      ++dropped_deadline_;
      continue;
    }
    by_key_[SlotKey(record.pipeline, record.budget_fraction)].push_back(
        record);
    ++remaining_;
  }
}

std::string RunJournalReplay::SlotKey(const std::string& pipeline_key,
                                      double budget_fraction) {
  return pipeline_key + '#' +
         std::to_string(std::bit_cast<uint64_t>(budget_fraction));
}

std::optional<JournalRecord> RunJournalReplay::Take(
    const std::string& pipeline_key, double budget_fraction) {
  auto slot = by_key_.find(SlotKey(pipeline_key, budget_fraction));
  if (slot == by_key_.end() || slot->second.empty()) return std::nullopt;
  JournalRecord record = std::move(slot->second.front());
  slot->second.pop_front();
  --remaining_;
  return record;
}

}  // namespace autofp
