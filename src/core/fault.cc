#include "core/fault.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace autofp {

const char* EvalFailureName(EvalFailure failure) {
  switch (failure) {
    case EvalFailure::kNone:
      return "OK";
    case EvalFailure::kNonFiniteOutput:
      return "NonFiniteOutput";
    case EvalFailure::kDegenerateTransform:
      return "DegenerateTransform";
    case EvalFailure::kModelDiverged:
      return "ModelDiverged";
    case EvalFailure::kDeadlineExceeded:
      return "DeadlineExceeded";
    case EvalFailure::kInjected:
      return "Injected";
    case EvalFailure::kWorkerLost:
      return "WorkerLost";
  }
  return "Unknown";
}

EvalFailure FailureFromStatus(const Status& status) {
  if (status.ok()) return EvalFailure::kNone;
  switch (status.code()) {
    case StatusCode::kOutOfRange:
      return EvalFailure::kNonFiniteOutput;
    case StatusCode::kInvalidArgument:
      return EvalFailure::kDegenerateTransform;
    default:
      return EvalFailure::kModelDiverged;
  }
}

FaultInjector::FaultInjector(const FaultInjectorConfig& config)
    : config_(config) {
  AUTOFP_CHECK_GE(config.fault_rate, 0.0);
  AUTOFP_CHECK_LE(config.fault_rate, 1.0);
  AUTOFP_CHECK_GE(config.slowdown_rate, 0.0);
  AUTOFP_CHECK_LE(config.slowdown_rate, 1.0);
  AUTOFP_CHECK_GE(config.slowdown_seconds, 0.0);
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

InjectionDecision FaultInjector::DecisionFor(uint64_t stream) {
  num_decisions_.fetch_add(1, std::memory_order_relaxed);
  InjectionDecision decision;
  // One short seeded generator per decision keeps each decision a pure
  // function of (config seed, stream key), independent of call order.
  Rng rng(SplitMix64(config_.seed ^ SplitMix64(stream)));
  bool fault = rng.Bernoulli(config_.fault_rate);
  bool slow = rng.Bernoulli(config_.slowdown_rate);
  if (fault) {
    num_injected_faults_.fetch_add(1, std::memory_order_relaxed);
    decision.failure = EvalFailure::kInjected;
    return decision;
  }
  if (slow) {
    num_injected_slowdowns_.fetch_add(1, std::memory_order_relaxed);
    decision.delay_seconds = config_.slowdown_seconds;
  }
  return decision;
}

double FaultPolicy::BackoffSeconds(int retry_index) const {
  if (initial_backoff_seconds <= 0.0 || retry_index <= 0) return 0.0;
  double backoff = initial_backoff_seconds;
  for (int i = 1; i < retry_index; ++i) backoff *= backoff_multiplier;
  return std::min(backoff, max_backoff_seconds);
}

void BackoffSleep(const FaultPolicy& policy, int retry_index) {
  double seconds = policy.BackoffSeconds(retry_index);
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace autofp
