#include "core/search_space.h"

#include <algorithm>
#include <cmath>

namespace autofp {

SearchSpace::SearchSpace(std::vector<PreprocessorConfig> operators,
                         size_t max_pipeline_length)
    : operators_(std::move(operators)),
      max_pipeline_length_(max_pipeline_length) {
  AUTOFP_CHECK(!operators_.empty());
  AUTOFP_CHECK_GE(max_pipeline_length_, 1u);
}

SearchSpace SearchSpace::Default(size_t max_pipeline_length) {
  std::vector<PreprocessorConfig> operators;
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    operators.push_back(PreprocessorConfig::Defaults(kind));
  }
  return SearchSpace(std::move(operators), max_pipeline_length);
}

double SearchSpace::TotalPipelines() const {
  double total = 0.0;
  double level = 1.0;
  for (size_t len = 1; len <= max_pipeline_length_; ++len) {
    level *= static_cast<double>(operators_.size());
    total += level;
    if (total > 1e18) return 1e18;
  }
  return total;
}

PipelineSpec SearchSpace::SampleUniform(Rng* rng) const {
  size_t length =
      1 + rng->UniformIndex(max_pipeline_length_);
  PipelineSpec pipeline;
  pipeline.steps.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    pipeline.steps.push_back(operators_[rng->UniformIndex(operators_.size())]);
  }
  return pipeline;
}

PipelineSpec SearchSpace::Mutate(const PipelineSpec& pipeline,
                                 Rng* rng) const {
  PipelineSpec child = pipeline;
  if (child.steps.empty()) return SampleUniform(rng);
  enum { kReplace, kInsert, kDelete };
  std::vector<int> moves = {kReplace};
  if (child.steps.size() < max_pipeline_length_) moves.push_back(kInsert);
  if (child.steps.size() > 1) moves.push_back(kDelete);
  int move = moves[rng->UniformIndex(moves.size())];
  switch (move) {
    case kReplace: {
      size_t position = rng->UniformIndex(child.steps.size());
      child.steps[position] = operators_[rng->UniformIndex(operators_.size())];
      break;
    }
    case kInsert: {
      size_t position = rng->UniformIndex(child.steps.size() + 1);
      child.steps.insert(
          child.steps.begin() + position,
          operators_[rng->UniformIndex(operators_.size())]);
      break;
    }
    case kDelete: {
      size_t position = rng->UniformIndex(child.steps.size());
      child.steps.erase(child.steps.begin() + position);
      break;
    }
  }
  return child;
}

std::vector<int> SearchSpace::Encode(const PipelineSpec& pipeline) const {
  std::vector<int> encoding;
  encoding.reserve(pipeline.steps.size());
  for (const PreprocessorConfig& step : pipeline.steps) {
    auto it = std::find(operators_.begin(), operators_.end(), step);
    AUTOFP_CHECK(it != operators_.end())
        << "pipeline step '" << step.ToString() << "' not in space";
    encoding.push_back(static_cast<int>(it - operators_.begin()));
  }
  return encoding;
}

PipelineSpec SearchSpace::Decode(const std::vector<int>& encoding) const {
  PipelineSpec pipeline;
  pipeline.steps.reserve(encoding.size());
  for (int index : encoding) {
    AUTOFP_CHECK_GE(index, 0);
    AUTOFP_CHECK_LT(static_cast<size_t>(index), operators_.size());
    pipeline.steps.push_back(operators_[index]);
  }
  return pipeline;
}

std::vector<double> SearchSpace::EncodePadded(const PipelineSpec& pipeline,
                                              double pad_value) const {
  std::vector<int> encoding = Encode(pipeline);
  std::vector<double> padded(max_pipeline_length_, pad_value);
  for (size_t i = 0; i < encoding.size() && i < padded.size(); ++i) {
    padded[i] = static_cast<double>(encoding[i]);
  }
  return padded;
}

ParameterSpace ParameterSpace::LowCardinality() {
  ParameterSpace space;
  space.binarizer_thresholds = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  space.norms = {NormKind::kL1, NormKind::kL2, NormKind::kMax};
  space.standard_with_mean = {true, false};
  space.power_standardize = {true, false};
  space.quantile_n_quantiles = {10, 100, 200, 500, 1000, 1200, 1500, 2000};
  space.quantile_output_distributions = {OutputDistribution::kUniform,
                                         OutputDistribution::kNormal};
  return space;
}

ParameterSpace ParameterSpace::HighCardinality() {
  ParameterSpace space = LowCardinality();
  space.binarizer_thresholds.clear();
  for (int i = 0; i <= 20; ++i) {
    space.binarizer_thresholds.push_back(0.05 * i);
  }
  space.quantile_n_quantiles.clear();
  for (int q = 10; q <= 2000; ++q) {
    space.quantile_n_quantiles.push_back(q);
  }
  return space;
}

size_t ParameterSpace::OneStepOperatorCount() const {
  return binarizer_thresholds.size() + /*MaxAbs*/ 1 + /*MinMax*/ 1 +
         norms.size() + power_standardize.size() +
         quantile_n_quantiles.size() * quantile_output_distributions.size() +
         standard_with_mean.size();
}

std::vector<PreprocessorConfig> ParameterSpace::SampleAssignment(
    Rng* rng) const {
  std::vector<PreprocessorConfig> assignment;
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    PreprocessorConfig config = PreprocessorConfig::Defaults(kind);
    switch (kind) {
      case PreprocessorKind::kBinarizer:
        config.threshold =
            binarizer_thresholds[rng->UniformIndex(
                binarizer_thresholds.size())];
        break;
      case PreprocessorKind::kNormalizer:
        config.norm = norms[rng->UniformIndex(norms.size())];
        break;
      case PreprocessorKind::kStandardScaler:
        config.with_mean =
            standard_with_mean[rng->UniformIndex(standard_with_mean.size())];
        break;
      case PreprocessorKind::kPowerTransformer:
        config.standardize =
            power_standardize[rng->UniformIndex(power_standardize.size())];
        break;
      case PreprocessorKind::kQuantileTransformer:
        config.n_quantiles = quantile_n_quantiles[rng->UniformIndex(
            quantile_n_quantiles.size())];
        config.output_distribution =
            quantile_output_distributions[rng->UniformIndex(
                quantile_output_distributions.size())];
        break;
      default:
        break;
    }
    assignment.push_back(config);
  }
  return assignment;
}

SearchSpace OneStepSpace(const ParameterSpace& parameters,
                         size_t max_pipeline_length) {
  std::vector<PreprocessorConfig> operators;
  for (double threshold : parameters.binarizer_thresholds) {
    PreprocessorConfig config =
        PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
    config.threshold = threshold;
    operators.push_back(config);
  }
  operators.push_back(
      PreprocessorConfig::Defaults(PreprocessorKind::kMaxAbsScaler));
  operators.push_back(
      PreprocessorConfig::Defaults(PreprocessorKind::kMinMaxScaler));
  for (NormKind norm : parameters.norms) {
    PreprocessorConfig config =
        PreprocessorConfig::Defaults(PreprocessorKind::kNormalizer);
    config.norm = norm;
    operators.push_back(config);
  }
  for (bool with_mean : parameters.standard_with_mean) {
    PreprocessorConfig config =
        PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler);
    config.with_mean = with_mean;
    operators.push_back(config);
  }
  for (bool standardize : parameters.power_standardize) {
    PreprocessorConfig config =
        PreprocessorConfig::Defaults(PreprocessorKind::kPowerTransformer);
    config.standardize = standardize;
    operators.push_back(config);
  }
  for (int n_quantiles : parameters.quantile_n_quantiles) {
    for (OutputDistribution dist :
         parameters.quantile_output_distributions) {
      PreprocessorConfig config =
          PreprocessorConfig::Defaults(PreprocessorKind::kQuantileTransformer);
      config.n_quantiles = n_quantiles;
      config.output_distribution = dist;
      operators.push_back(config);
    }
  }
  return SearchSpace(std::move(operators), max_pipeline_length);
}

SearchSpace FixedAssignmentSpace(
    const std::vector<PreprocessorConfig>& assignment,
    size_t max_pipeline_length) {
  return SearchSpace(assignment, max_pipeline_length);
}

}  // namespace autofp
