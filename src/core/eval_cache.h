#ifndef AUTOFP_CORE_EVAL_CACHE_H_
#define AUTOFP_CORE_EVAL_CACHE_H_

/// Full-result evaluation cache: search algorithms (evolutionary
/// populations especially) re-propose identical pipelines constantly, and
/// with request-pure evaluators the whole Evaluation is a function of the
/// request — so it can be served from memory instead of re-fitted.

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/evaluator.h"

namespace autofp {

/// Decorator memoizing complete Evaluations by request identity
/// (pipeline key, budget fraction, seed, deadline). Sound because request
/// seeds make evaluation a pure function of the request: two identical
/// requests produce identical Evaluations regardless of call order or
/// thread interleaving.
///
/// Deadline failures are never cached (they depend on wall-clock, not on
/// the request); every other outcome — success, injected fault, permanent
/// failure — is deterministic and cacheable. A cache hit returns the
/// original record verbatim, including its timing, so histories stay
/// byte-identical whether or not the work was re-done.
///
/// Thread-safe: concurrent misses on the same key may compute the result
/// twice, but both computations are identical and the second insert is a
/// no-op, so correctness never depends on winning the race.
class CachingEvaluator : public EvaluatorInterface {
 public:
  explicit CachingEvaluator(EvaluatorInterface* inner);

  Evaluation Evaluate(const EvalRequest& request) override;
  /// On a miss, lends `scratch` to the inner evaluator.
  Evaluation Evaluate(const EvalRequest& request,
                      TransformScratch* scratch) override;
  /// Serves hits from the cache and forwards the misses as one sub-batch
  /// to the inner evaluator, so batch engines (thread pool, distributed
  /// workers) under the cache still see whole batches.
  std::vector<Evaluation> EvaluateAll(
      const std::vector<EvalRequest>& requests) override;
  bool SupportsConcurrentBatches() const override {
    return inner_->SupportsConcurrentBatches();
  }
  double BaselineAccuracy() override { return inner_->BaselineAccuracy(); }

  long hits() const { return hits_.load(std::memory_order_relaxed); }
  long misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  void Clear();

  EvaluatorInterface* inner() { return inner_; }

 private:
  static std::string KeyFor(const EvalRequest& request);

  EvaluatorInterface* inner_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Evaluation> cache_;
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
};

}  // namespace autofp

#endif  // AUTOFP_CORE_EVAL_CACHE_H_
