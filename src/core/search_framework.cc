#include "core/search_framework.h"

#include <algorithm>

namespace autofp {

SearchContext::SearchContext(const SearchSpace* space,
                             EvaluatorInterface* evaluator,
                             const Budget& budget, uint64_t seed)
    : space_(space), evaluator_(evaluator), budget_(budget), rng_(seed) {
  AUTOFP_CHECK(space != nullptr);
  AUTOFP_CHECK(evaluator != nullptr);
  AUTOFP_CHECK(budget.limited()) << "unlimited budget would never terminate";
}

bool SearchContext::BudgetExhausted() const {
  if (budget_.max_evaluations >= 0 &&
      evaluation_cost_ >= static_cast<double>(budget_.max_evaluations)) {
    return true;
  }
  if (budget_.max_seconds >= 0.0 &&
      total_watch_.ElapsedSeconds() >= budget_.max_seconds) {
    return true;
  }
  return false;
}

std::optional<double> SearchContext::Evaluate(const PipelineSpec& pipeline,
                                              double budget_fraction) {
  if (BudgetExhausted()) return std::nullopt;
  Stopwatch watch;
  Evaluation evaluation = evaluator_->Evaluate(pipeline, budget_fraction);
  eval_seconds_ += watch.ElapsedSeconds();
  evaluation_cost_ += budget_fraction;
  history_.push_back(evaluation);
  // Prefer full-budget evaluations as final answers; a partial-budget
  // result is only kept while no full-budget result exists.
  bool is_full = evaluation.budget_fraction >= 1.0;
  bool best_is_full =
      best_index_ >= 0 && history_[best_index_].budget_fraction >= 1.0;
  bool better;
  if (best_index_ < 0) {
    better = true;
  } else if (is_full != best_is_full) {
    better = is_full;
  } else {
    better = evaluation.accuracy > best_key_;
  }
  if (better) {
    best_index_ = static_cast<int>(history_.size() - 1);
    best_key_ = evaluation.accuracy;
  }
  return evaluation.accuracy;
}

const Evaluation& SearchContext::best() const {
  AUTOFP_CHECK(has_best()) << "no evaluations recorded";
  return history_[best_index_];
}

SearchResult RunSearch(SearchAlgorithm* algorithm,
                       EvaluatorInterface* evaluator,
                       const SearchSpace& space, const Budget& budget,
                       uint64_t seed) {
  AUTOFP_CHECK(algorithm != nullptr);
  SearchContext context(&space, evaluator, budget, seed);
  algorithm->Initialize(&context);
  // Guard against algorithms that stop making progress before the budget
  // is exhausted (would otherwise spin forever under time budgets).
  int idle_iterations = 0;
  while (!context.BudgetExhausted() && idle_iterations < 3) {
    long before = context.num_evaluations();
    algorithm->Iterate(&context);
    idle_iterations = context.num_evaluations() == before
                          ? idle_iterations + 1
                          : 0;
  }

  SearchResult result;
  result.algorithm = algorithm->name();
  result.elapsed_seconds = context.elapsed_seconds();
  result.num_evaluations = context.num_evaluations();
  result.evaluation_cost = context.evaluation_cost();
  result.baseline_accuracy = evaluator->BaselineAccuracy();
  if (context.has_best()) {
    result.best_pipeline = context.best().pipeline;
    result.best_accuracy = context.best().accuracy;
  } else {
    result.best_accuracy = result.baseline_accuracy;
  }
  for (const Evaluation& evaluation : context.history()) {
    result.prep_seconds += evaluation.timing.prep_seconds;
    result.train_seconds += evaluation.timing.train_seconds;
  }
  result.pick_seconds = std::max(
      0.0, result.elapsed_seconds - context.eval_seconds());
  return result;
}

}  // namespace autofp
