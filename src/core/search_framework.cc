#include "core/search_framework.h"

#include <algorithm>
#include <cmath>

namespace autofp {

SearchContext::SearchContext(const SearchSpace* space,
                             EvaluatorInterface* evaluator,
                             const Budget& budget, uint64_t seed,
                             const FaultPolicy& policy)
    : space_(space),
      evaluator_(evaluator),
      budget_(budget),
      rng_(seed),
      policy_(policy) {
  AUTOFP_CHECK(space != nullptr);
  AUTOFP_CHECK(evaluator != nullptr);
  AUTOFP_CHECK(budget.limited()) << "unlimited budget would never terminate";
  if (budget.max_eval_seconds > 0.0) {
    evaluator_->SetEvalDeadline(budget.max_eval_seconds);
  }
}

bool SearchContext::BudgetExhausted() const {
  if (budget_.max_evaluations >= 0 &&
      evaluation_cost_ >= static_cast<double>(budget_.max_evaluations)) {
    return true;
  }
  if (budget_.max_seconds >= 0.0 &&
      total_watch_.ElapsedSeconds() >= budget_.max_seconds) {
    return true;
  }
  return false;
}

std::optional<double> SearchContext::Evaluate(const PipelineSpec& pipeline,
                                              double budget_fraction) {
  if (BudgetExhausted()) return std::nullopt;

  // Quarantined pipelines failed permanently before: short-circuit with
  // the penalty score instead of wasting evaluator work. The budget is
  // still charged so algorithms that keep re-proposing a quarantined
  // pipeline cannot loop forever.
  auto quarantined = quarantine_.find(pipeline.Key());
  if (quarantined != quarantine_.end()) {
    ++num_quarantine_hits_;
    evaluation_cost_ += budget_fraction;
    Evaluation evaluation;
    evaluation.pipeline = pipeline;
    evaluation.budget_fraction = budget_fraction;
    evaluation.failure = quarantined->second;
    evaluation.status = Status::Internal("pipeline quarantined");
    evaluation.accuracy = kPenaltyAccuracy;
    evaluation.attempts = 0;
    history_.push_back(std::move(evaluation));
    return kPenaltyAccuracy;
  }

  Stopwatch watch;
  Evaluation evaluation = evaluator_->Evaluate(pipeline, budget_fraction);
  int attempts = 1;
  // Transient failures (injected faults, deadline flakes) are retried with
  // bounded backoff; permanent ones (non-finite output, degenerate
  // transform, diverged model) are deterministic and retried never.
  while (evaluation.failed() && IsTransientFailure(evaluation.failure) &&
         attempts <= policy_.max_retries && !BudgetExhausted()) {
    ++num_failures_;
    ++num_retries_;
    BackoffSleep(policy_, attempts);
    evaluation = evaluator_->Evaluate(pipeline, budget_fraction);
    ++attempts;
  }
  eval_seconds_ += watch.ElapsedSeconds();
  evaluation_cost_ += budget_fraction;  // one logical evaluation, charged once.
  evaluation.attempts = attempts;

  if (evaluation.failed()) {
    ++num_failures_;
    evaluation.accuracy = kPenaltyAccuracy;  // never record garbage scores.
    if (policy_.quarantine && !IsTransientFailure(evaluation.failure)) {
      quarantine_.emplace(pipeline.Key(), evaluation.failure);
    }
  }
  history_.push_back(evaluation);

  // Best-tracking considers only successful, finite scores: a failed or
  // NaN accuracy must never compare its way past best_key_ (NaN poisons
  // every subsequent comparison).
  bool eligible =
      !evaluation.failed() && std::isfinite(evaluation.accuracy);
  if (eligible) {
    // Prefer full-budget evaluations as final answers; a partial-budget
    // result is only kept while no full-budget result exists.
    bool is_full = evaluation.budget_fraction >= 1.0;
    bool best_is_full =
        best_index_ >= 0 && history_[best_index_].budget_fraction >= 1.0;
    bool better;
    if (best_index_ < 0) {
      better = true;
    } else if (is_full != best_is_full) {
      better = is_full;
    } else {
      better = evaluation.accuracy > best_key_;
    }
    if (better) {
      best_index_ = static_cast<int>(history_.size() - 1);
      best_key_ = evaluation.accuracy;
    }
  }
  return evaluation.accuracy;
}

const Evaluation& SearchContext::best() const {
  AUTOFP_CHECK(has_best()) << "no evaluations recorded";
  return history_[best_index_];
}

SearchResult RunSearch(SearchAlgorithm* algorithm,
                       EvaluatorInterface* evaluator,
                       const SearchSpace& space, const Budget& budget,
                       uint64_t seed, const FaultPolicy& policy) {
  AUTOFP_CHECK(algorithm != nullptr);
  SearchContext context(&space, evaluator, budget, seed, policy);
  algorithm->Initialize(&context);
  // Guard against algorithms that stop making progress before the budget
  // is exhausted (would otherwise spin forever under time budgets).
  int idle_iterations = 0;
  while (!context.BudgetExhausted() && idle_iterations < 3) {
    long before = context.num_evaluations();
    algorithm->Iterate(&context);
    idle_iterations = context.num_evaluations() == before
                          ? idle_iterations + 1
                          : 0;
  }

  SearchResult result;
  result.algorithm = algorithm->name();
  result.elapsed_seconds = context.elapsed_seconds();
  result.num_evaluations = context.num_evaluations();
  result.evaluation_cost = context.evaluation_cost();
  result.baseline_accuracy = evaluator->BaselineAccuracy();
  result.num_failures = context.num_failures();
  result.num_retries = context.num_retries();
  result.num_quarantined = context.num_quarantined();
  result.num_quarantine_hits = context.num_quarantine_hits();
  if (context.has_best()) {
    result.best_pipeline = context.best().pipeline;
    result.best_accuracy = context.best().accuracy;
  } else {
    result.best_accuracy = result.baseline_accuracy;
  }
  for (const Evaluation& evaluation : context.history()) {
    result.prep_seconds += evaluation.timing.prep_seconds;
    result.train_seconds += evaluation.timing.train_seconds;
  }
  result.pick_seconds = std::max(
      0.0, result.elapsed_seconds - context.eval_seconds());
  return result;
}

}  // namespace autofp
