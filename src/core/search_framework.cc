#include "core/search_framework.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/run_journal.h"

namespace autofp {

SearchContext::SearchContext(const SearchSpace* space,
                             EvaluatorInterface* evaluator,
                             const SearchOptions& options)
    : space_(space),
      evaluator_(evaluator),
      options_(options),
      budget_(options.budget),
      rng_(options.seed),
      policy_(options.fault_policy) {
  AUTOFP_CHECK(space != nullptr);
  AUTOFP_CHECK(evaluator != nullptr);
  AUTOFP_CHECK(budget_.limited()) << "unlimited budget would never terminate";
  AUTOFP_CHECK_GE(options.num_threads, 1);
  AUTOFP_CHECK(options.num_workers <= 0 || options.num_threads == 1)
      << "distributed workers and in-process evaluation threads are "
         "mutually exclusive (the coordinator submits from one thread)";

  // Decorator chain: user evaluator -> result cache -> thread pool. The
  // per-request deadline rides in each EvalRequest, so no decorator needs
  // mutable configuration.
  EvaluatorInterface* top = evaluator;
  if (options.cache_bytes > 0) {
    transform_cache_ = std::make_shared<TransformCache>(options.cache_bytes);
    auto* pipeline_evaluator = dynamic_cast<PipelineEvaluator*>(evaluator);
    if (pipeline_evaluator != nullptr &&
        pipeline_evaluator->transform_cache() == nullptr) {
      pipeline_evaluator->AttachTransformCache(transform_cache_);
    }
    result_cache_ = std::make_unique<CachingEvaluator>(top);
    top = result_cache_.get();
  }
  if (options.num_threads > 1) {
    pool_ = std::make_unique<ParallelEvaluator>(top, options.num_threads);
    top = pool_.get();
  }
  evaluator_ = top;
}

SearchContext::~SearchContext() = default;

bool SearchContext::BudgetExhausted() const {
  if (interrupted()) return true;  // graceful stop at evaluation boundary.
  if (budget_.max_evaluations >= 0 &&
      evaluation_cost_ >= static_cast<double>(budget_.max_evaluations)) {
    return true;
  }
  if (budget_.max_seconds >= 0.0 && elapsed_seconds() >= budget_.max_seconds) {
    return true;
  }
  return false;
}

EvalRequest SearchContext::MakeRequest(const PipelineSpec& pipeline,
                                       double budget_fraction,
                                       int attempt) const {
  EvalRequest request;
  request.pipeline = pipeline;
  request.budget_fraction = budget_fraction;
  request.deadline_seconds = budget_.max_eval_seconds;
  request.seed =
      EvalRequest::DeriveSeed(options_.seed, pipeline, budget_fraction, attempt);
  return request;
}

void SearchContext::EvaluateWithRetries(std::vector<EvalRequest> requests,
                                        std::vector<Evaluation>* results,
                                        std::vector<int>* retries) {
  const size_t count = requests.size();
  results->resize(count);
  retries->assign(count, 0);
  if (count == 0) return;

  std::vector<size_t> active(count);
  for (size_t i = 0; i < count; ++i) active[i] = i;
  int attempt = 1;
  while (!active.empty()) {
    std::vector<EvalRequest> round;
    round.reserve(active.size());
    for (size_t index : active) round.push_back(requests[index]);
    std::vector<Evaluation> round_results;
    if (evaluator_->SupportsConcurrentBatches()) {
      // Concurrent engine at the top of the chain (thread pool, caching
      // over a pool, or a distributed coordinator): hand it the whole
      // round at once.
      round_results = evaluator_->EvaluateAll(round);
    } else {
      round_results.reserve(round.size());
      for (const EvalRequest& request : round) {
        round_results.push_back(evaluator_->Evaluate(request, &scratch_));
      }
    }

    // Transient failures (injected faults, deadline flakes) retry with a
    // re-derived attempt seed; permanent ones are deterministic and final.
    std::vector<size_t> to_retry;
    for (size_t k = 0; k < active.size(); ++k) {
      (*results)[active[k]] = std::move(round_results[k]);
      const Evaluation& evaluation = (*results)[active[k]];
      if (evaluation.failed() && IsTransientFailure(evaluation.failure) &&
          attempt <= policy_.max_retries) {
        to_retry.push_back(active[k]);
      }
    }
    if (to_retry.empty()) break;
    BackoffSleep(policy_, attempt);
    ++attempt;
    for (size_t index : to_retry) {
      ++(*retries)[index];
      requests[index].seed = EvalRequest::DeriveSeed(
          options_.seed, requests[index].pipeline,
          requests[index].budget_fraction, attempt);
    }
    active = std::move(to_retry);
  }
}

double SearchContext::RecordEvaluation(Evaluation evaluation, int retries) {
  // Every retried attempt had failed first; the final attempt adds one
  // more failure if it also failed.
  num_failures_ += retries;
  num_retries_ += retries;
  evaluation_cost_ += evaluation.budget_fraction;
  evaluation.attempts = 1 + retries;

  if (evaluation.failed()) {
    ++num_failures_;
    evaluation.accuracy = kPenaltyAccuracy;  // never record garbage scores.
    if (policy_.quarantine && !IsTransientFailure(evaluation.failure)) {
      quarantine_.emplace(evaluation.pipeline.Key(), evaluation.failure);
    }
  }
  history_.push_back(std::move(evaluation));
  const Evaluation& recorded = history_.back();
  if (!recorded.failed()) ++num_successes_;

  // Best-tracking considers only successful, finite scores: a failed or
  // NaN accuracy must never compare its way past best_key_ (NaN poisons
  // every subsequent comparison).
  bool eligible = !recorded.failed() && std::isfinite(recorded.accuracy);
  if (eligible) {
    // Prefer full-budget evaluations as final answers; a partial-budget
    // result is only kept while no full-budget result exists.
    bool is_full = recorded.budget_fraction >= 1.0;
    bool best_is_full =
        best_index_ >= 0 && history_[best_index_].budget_fraction >= 1.0;
    bool better;
    if (best_index_ < 0) {
      better = true;
    } else if (is_full != best_is_full) {
      better = is_full;
    } else {
      better = recorded.accuracy > best_key_;
    }
    if (better) {
      best_index_ = static_cast<int>(history_.size() - 1);
      best_key_ = recorded.accuracy;
    }
  }
  return recorded.accuracy;
}

double SearchContext::RecordQuarantineHit(const PipelineSpec& pipeline,
                                          double budget_fraction,
                                          EvalFailure failure) {
  // Quarantined pipelines failed permanently before: short-circuit with
  // the penalty score instead of wasting evaluator work. The budget is
  // still charged so algorithms that keep re-proposing a quarantined
  // pipeline cannot loop forever.
  ++num_quarantine_hits_;
  evaluation_cost_ += budget_fraction;
  Evaluation evaluation;
  evaluation.pipeline = pipeline;
  evaluation.budget_fraction = budget_fraction;
  evaluation.failure = failure;
  evaluation.status = Status::Internal("pipeline quarantined");
  evaluation.accuracy = kPenaltyAccuracy;
  evaluation.attempts = 0;
  history_.push_back(std::move(evaluation));
  return kPenaltyAccuracy;
}

std::optional<double> SearchContext::Evaluate(const PipelineSpec& pipeline,
                                              double budget_fraction) {
  return EvaluateBatch(std::span<const PipelineSpec>(&pipeline, 1),
                       budget_fraction)
      .front();
}

std::vector<std::optional<double>> SearchContext::EvaluateBatch(
    std::span<const PipelineSpec> pipelines, double budget_fraction) {
  std::vector<std::optional<double>> out(pipelines.size());
  if (pipelines.empty()) return out;

  // Phase 1 — admission, replaying the sequential budget check in index
  // order. Quarantine hits and real evaluations both charge
  // `budget_fraction`, so admission depends only on how many slots fit.
  // Distinct keys are evaluated once; duplicates reuse the result (with a
  // request-pure evaluator a re-run would be byte-identical).
  enum class Slot { kSkipped, kQuarantineHit, kEvaluate };
  const size_t count = pipelines.size();
  std::vector<Slot> slots(count, Slot::kSkipped);
  std::vector<EvalFailure> hit_failure(count, EvalFailure::kNone);
  std::vector<size_t> request_index(count, 0);
  std::unordered_map<std::string, size_t> key_to_request;
  std::vector<EvalRequest> requests;
  double projected_cost = evaluation_cost_;
  for (size_t i = 0; i < count; ++i) {
    bool cost_exhausted =
        budget_.max_evaluations >= 0 &&
        projected_cost >= static_cast<double>(budget_.max_evaluations);
    bool time_exhausted = budget_.max_seconds >= 0.0 &&
                          elapsed_seconds() >= budget_.max_seconds;
    if (cost_exhausted || time_exhausted || interrupted()) {
      continue;  // stays kSkipped.
    }
    projected_cost += budget_fraction;
    auto quarantined = quarantine_.find(pipelines[i].Key());
    if (quarantined != quarantine_.end()) {
      slots[i] = Slot::kQuarantineHit;
      hit_failure[i] = quarantined->second;
      continue;
    }
    slots[i] = Slot::kEvaluate;
    auto [entry, inserted] =
        key_to_request.emplace(pipelines[i].Key(), requests.size());
    if (inserted) requests.push_back(MakeRequest(pipelines[i], budget_fraction, 1));
    request_index[i] = entry->second;
  }

  // Phase 2 — serve recorded outcomes from the resume journal, then
  // evaluate the remaining distinct keys concurrently with retry rounds.
  // Replay is keyed by request identity and FIFO per key, so the
  // deterministic re-run consumes exactly the recorded sequence no matter
  // where batch boundaries fall relative to the crash point.
  Stopwatch watch;
  std::vector<Evaluation> results(requests.size());
  std::vector<int> retries(requests.size(), 0);
  std::vector<EvalRequest> live;
  std::vector<size_t> live_slot;
  for (size_t r = 0; r < requests.size(); ++r) {
    if (options_.replay != nullptr) {
      std::optional<JournalRecord> record =
          options_.replay->Take(requests[r].pipeline.Key(), budget_fraction);
      if (record.has_value()) {
        AUTOFP_CHECK(record->seed == requests[r].seed)
            << "journal record for '" << record->pipeline
            << "' carries a different request seed — the journal was "
               "recorded under options this run does not reproduce";
        results[r] = EvaluationFromRecord(*record);
        retries[r] = record->attempts - 1;
        journal_elapsed_seconds_ += record->elapsed_seconds;
        eval_seconds_ += record->elapsed_seconds;
        ++num_replayed_;
        continue;
      }
    }
    live.push_back(requests[r]);
    live_slot.push_back(r);
  }
  if (!live.empty()) {
    // First-attempt seeds are the requests' identity in the journal;
    // EvaluateWithRetries re-derives seeds per retry attempt.
    std::vector<uint64_t> live_seeds;
    live_seeds.reserve(live.size());
    for (const EvalRequest& request : live) live_seeds.push_back(request.seed);
    std::vector<Evaluation> live_results;
    std::vector<int> live_retries;
    const size_t live_count = live.size();  // `live` is consumed below.
    EvaluateWithRetries(std::move(live), &live_results, &live_retries);
    double live_elapsed = watch.ElapsedSeconds();
    eval_seconds_ += live_elapsed;
    // Journal every fresh outcome (durable before the search moves on).
    // The batch's wall-clock is apportioned evenly — it only matters for
    // restoring time-budget consumption on resume.
    double elapsed_share = live_elapsed / static_cast<double>(live_count);
    for (size_t k = 0; k < live_results.size(); ++k) {
      live_results[k].attempts = 1 + live_retries[k];
      if (options_.journal != nullptr) {
        Status appended = options_.journal->Append(MakeJournalRecord(
            live_results[k], live_seeds[k], elapsed_share));
        AUTOFP_CHECK(appended.ok())
            << "run journal append failed: " << appended.ToString();
      }
      results[live_slot[k]] = std::move(live_results[k]);
      retries[live_slot[k]] = live_retries[k];
    }
  }

  // Phase 3 — record in index order, replaying sequential bookkeeping:
  // the first occurrence of a key records the computed result (and may
  // quarantine it); later occurrences either hit that fresh quarantine or
  // record an identical copy with the same retry accounting.
  std::vector<bool> recorded_before(results.size(), false);
  for (size_t i = 0; i < count; ++i) {
    switch (slots[i]) {
      case Slot::kSkipped:
        break;
      case Slot::kQuarantineHit:
        out[i] =
            RecordQuarantineHit(pipelines[i], budget_fraction, hit_failure[i]);
        break;
      case Slot::kEvaluate: {
        const size_t r = request_index[i];
        auto quarantined = quarantine_.find(pipelines[i].Key());
        if (recorded_before[r] && quarantined != quarantine_.end()) {
          out[i] = RecordQuarantineHit(pipelines[i], budget_fraction,
                                       quarantined->second);
          break;
        }
        recorded_before[r] = true;
        out[i] = RecordEvaluation(results[r], retries[r]);
        break;
      }
    }
  }
  return out;
}

const Evaluation& SearchContext::best() const {
  AUTOFP_CHECK(has_best()) << "no evaluations recorded";
  return history_[best_index_];
}

std::vector<std::string> SearchContext::quarantined_pipelines() const {
  std::vector<std::string> keys;
  keys.reserve(quarantine_.size());
  for (const auto& [key, failure] : quarantine_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

SearchResult RunSearch(SearchAlgorithm* algorithm,
                       EvaluatorInterface* evaluator,
                       const SearchSpace& space,
                       const SearchOptions& options) {
  AUTOFP_CHECK(algorithm != nullptr);
  SearchContext context(&space, evaluator, options);
  algorithm->Initialize(&context);
  // Guard against algorithms that stop making progress before the budget
  // is exhausted (would otherwise spin forever under time budgets).
  int idle_iterations = 0;
  while (!context.BudgetExhausted() && idle_iterations < 3) {
    long before = context.num_evaluations();
    algorithm->Iterate(&context);
    idle_iterations = context.num_evaluations() == before
                          ? idle_iterations + 1
                          : 0;
  }

  SearchResult result;
  result.algorithm = algorithm->name();
  result.elapsed_seconds = context.elapsed_seconds();
  result.num_evaluations = context.num_evaluations();
  result.evaluation_cost = context.evaluation_cost();
  result.baseline_accuracy = evaluator->BaselineAccuracy();
  result.num_failures = context.num_failures();
  result.num_retries = context.num_retries();
  result.num_quarantined = context.num_quarantined();
  result.quarantined_pipelines = context.quarantined_pipelines();
  result.num_quarantine_hits = context.num_quarantine_hits();
  result.num_successes = context.num_successes();
  result.num_replayed = context.num_replayed();
  result.interrupted = context.interrupted();
  result.num_threads = options.num_threads;
  result.num_workers = options.num_workers;
  if (context.result_cache() != nullptr) {
    result.result_cache_hits = context.result_cache()->hits();
    result.result_cache_misses = context.result_cache()->misses();
  }
  TransformCache* transform_cache = context.transform_cache();
  if (transform_cache == nullptr) {
    // The caller may have attached its own prefix cache to the evaluator.
    auto* pipeline_evaluator = dynamic_cast<PipelineEvaluator*>(evaluator);
    if (pipeline_evaluator != nullptr) {
      transform_cache = pipeline_evaluator->transform_cache();
    }
  }
  if (transform_cache != nullptr) {
    TransformCache::Stats stats = transform_cache->stats();
    result.transform_cache_hits = stats.hits;
    result.transform_cache_misses = stats.misses;
  }
  if (context.has_best()) {
    result.best_pipeline = context.best().pipeline;
    result.best_accuracy = context.best().accuracy;
  } else {
    result.best_accuracy = result.baseline_accuracy;
  }
  for (const Evaluation& evaluation : context.history()) {
    result.prep_seconds += evaluation.timing.prep_seconds;
    result.train_seconds += evaluation.timing.train_seconds;
  }
  result.pick_seconds = std::max(
      0.0, result.elapsed_seconds - context.eval_seconds());
  return result;
}

}  // namespace autofp
