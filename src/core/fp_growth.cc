#include "core/fp_growth.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "util/logging.h"

namespace autofp {

namespace {

struct FpNode {
  int item = -1;
  size_t count = 0;
  FpNode* parent = nullptr;
  std::map<int, std::unique_ptr<FpNode>> children;
};

/// FP-tree with header links per item.
struct FpTree {
  FpNode root;
  std::map<int, std::vector<FpNode*>> header;

  /// Inserts an (ordered) transaction with multiplicity `count`.
  void Insert(const std::vector<int>& items, size_t count) {
    FpNode* node = &root;
    for (int item : items) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        header[item].push_back(child.get());
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += count;
      node = it->second.get();
    }
  }
};

void Mine(const FpTree& tree, size_t min_support,
          const std::vector<int>& suffix,
          std::vector<FrequentItemset>* output) {
  // Items in this (conditional) tree with their supports.
  for (const auto& [item, nodes] : tree.header) {
    size_t support = 0;
    for (const FpNode* node : nodes) support += node->count;
    if (support < min_support) continue;

    FrequentItemset itemset;
    itemset.items = suffix;
    itemset.items.push_back(item);
    std::sort(itemset.items.begin(), itemset.items.end());
    itemset.support = support;
    output->push_back(itemset);

    // Conditional pattern base -> conditional tree.
    FpTree conditional;
    for (const FpNode* node : nodes) {
      std::vector<int> path;
      for (const FpNode* walk = node->parent; walk != nullptr && walk->item >= 0;
           walk = walk->parent) {
        path.push_back(walk->item);
      }
      std::reverse(path.begin(), path.end());
      if (!path.empty()) conditional.Insert(path, node->count);
    }
    // Prune infrequent items from the conditional tree by support count;
    // Mine() re-checks supports, so simply recurse.
    std::vector<int> new_suffix = suffix;
    new_suffix.push_back(item);
    Mine(conditional, min_support, new_suffix, output);
  }
}

}  // namespace

std::vector<FrequentItemset> FpGrowth(
    const std::vector<std::vector<int>>& transactions, size_t min_support) {
  AUTOFP_CHECK_GE(min_support, 1u);
  // Global item supports (set semantics per transaction).
  std::map<int, size_t> supports;
  std::vector<std::vector<int>> cleaned;
  cleaned.reserve(transactions.size());
  for (const std::vector<int>& transaction : transactions) {
    std::set<int> unique(transaction.begin(), transaction.end());
    cleaned.emplace_back(unique.begin(), unique.end());
    for (int item : unique) supports[item] += 1;
  }
  // Order items by descending support (ties by id) and drop infrequent.
  auto item_order = [&](int a, int b) {
    if (supports[a] != supports[b]) return supports[a] > supports[b];
    return a < b;
  };
  FpTree tree;
  for (std::vector<int>& transaction : cleaned) {
    std::vector<int> filtered;
    for (int item : transaction) {
      if (supports[item] >= min_support) filtered.push_back(item);
    }
    std::sort(filtered.begin(), filtered.end(), item_order);
    if (!filtered.empty()) tree.Insert(filtered, 1);
  }
  std::vector<FrequentItemset> output;
  Mine(tree, min_support, {}, &output);
  std::sort(output.begin(), output.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.items.size() != b.items.size()) {
                return a.items.size() > b.items.size();
              }
              return a.items < b.items;
            });
  return output;
}

}  // namespace autofp
