#ifndef AUTOFP_NN_PARAM_H_
#define AUTOFP_NN_PARAM_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace autofp {

/// Hyperparameters of the Adam optimizer (defaults match Kingma & Ba).
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// A flat parameter array with its gradient and Adam moment estimates.
/// All neural components in the library (MLP classifier, Progressive-NAS
/// surrogates, ENAS controller, REINFORCE policy) are built from these.
struct Param {
  std::vector<double> value;
  std::vector<double> grad;
  std::vector<double> m;  ///< Adam first moment.
  std::vector<double> v;  ///< Adam second moment.

  void Resize(size_t n) {
    value.assign(n, 0.0);
    grad.assign(n, 0.0);
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }

  size_t size() const { return value.size(); }

  void ZeroGrad() { std::fill(grad.begin(), grad.end(), 0.0); }

  /// Glorot-uniform initialization for a (fan_out x fan_in) weight block.
  void InitGlorot(size_t fan_in, size_t fan_out, Rng* rng) {
    double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (double& w : value) w = rng->Uniform(-limit, limit);
  }

  /// One Adam update using the stored gradient; `step` is the 1-based
  /// global update counter used for bias correction.
  void AdamStep(const AdamConfig& config, long step) {
    AUTOFP_CHECK_GE(step, 1);
    double bias1 = 1.0 - std::pow(config.beta1, static_cast<double>(step));
    double bias2 = 1.0 - std::pow(config.beta2, static_cast<double>(step));
    for (size_t i = 0; i < value.size(); ++i) {
      m[i] = config.beta1 * m[i] + (1.0 - config.beta1) * grad[i];
      v[i] = config.beta2 * v[i] + (1.0 - config.beta2) * grad[i] * grad[i];
      double m_hat = m[i] / bias1;
      double v_hat = v[i] / bias2;
      value[i] -=
          config.learning_rate * m_hat / (std::sqrt(v_hat) + config.epsilon);
    }
  }
};

}  // namespace autofp

#endif  // AUTOFP_NN_PARAM_H_
