#ifndef AUTOFP_NN_LSTM_H_
#define AUTOFP_NN_LSTM_H_

#include <cstddef>
#include <vector>

#include "nn/param.h"
#include "util/random.h"

namespace autofp {

/// Architecture of a token-sequence LSTM: token embedding -> single LSTM
/// layer -> linear head. Losses are applied by the caller (MSE for the
/// Progressive-NAS surrogate, REINFORCE log-prob for the ENAS controller).
struct LstmNetConfig {
  size_t vocab_size = 0;   ///< number of distinct input tokens.
  size_t embed_dim = 16;
  size_t hidden_dim = 32;
  size_t output_dim = 1;
};

/// Single-layer LSTM over token sequences with manual BPTT and Adam.
class LstmNet {
 public:
  LstmNet(const LstmNetConfig& config, Rng* rng);

  /// Runs the full sequence; returns one output vector (output_dim) per
  /// timestep. Caches all intermediate state for Backward().
  std::vector<std::vector<double>> Forward(const std::vector<int>& tokens);

  /// Backpropagates through time given dLoss/dOutput at each step (same
  /// shape as Forward's return). Accumulates gradients.
  void Backward(const std::vector<int>& tokens,
                const std::vector<std::vector<double>>& grad_outputs);

  void ZeroGrads();
  void Step(const AdamConfig& adam);

  size_t num_parameters() const;

  const LstmNetConfig& config() const { return config_; }

 private:
  struct StepCache {
    std::vector<double> x;       ///< embedded input.
    std::vector<double> gates;   ///< [i f g o] pre-nonlinearity outputs
                                 ///  stored post-nonlinearity (4H).
    std::vector<double> c;       ///< cell state after this step.
    std::vector<double> tanh_c;  ///< tanh(c).
    std::vector<double> h;       ///< hidden state after this step.
  };

  LstmNetConfig config_;
  Param embed_;    ///< vocab x embed_dim.
  Param w_input_;  ///< 4H x embed_dim.
  Param w_hidden_; ///< 4H x H.
  Param bias_;     ///< 4H.
  Param w_out_;    ///< output_dim x H.
  Param b_out_;    ///< output_dim.
  std::vector<StepCache> caches_;
  long adam_step_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_NN_LSTM_H_
