#include "nn/lstm.h"

#include "util/simd.h"

#include <cmath>

namespace autofp {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

LstmNet::LstmNet(const LstmNetConfig& config, Rng* rng) : config_(config) {
  AUTOFP_CHECK_GT(config.vocab_size, 0u);
  AUTOFP_CHECK_GT(config.hidden_dim, 0u);
  const size_t h = config.hidden_dim;
  const size_t e = config.embed_dim;
  embed_.Resize(config.vocab_size * e);
  embed_.InitGlorot(e, config.vocab_size, rng);
  w_input_.Resize(4 * h * e);
  w_input_.InitGlorot(e, 4 * h, rng);
  w_hidden_.Resize(4 * h * h);
  w_hidden_.InitGlorot(h, 4 * h, rng);
  bias_.Resize(4 * h);
  // Forget-gate bias init to 1 stabilizes early training.
  for (size_t i = h; i < 2 * h; ++i) bias_.value[i] = 1.0;
  w_out_.Resize(config.output_dim * h);
  w_out_.InitGlorot(h, config.output_dim, rng);
  b_out_.Resize(config.output_dim);
}

std::vector<std::vector<double>> LstmNet::Forward(
    const std::vector<int>& tokens) {
  const size_t h = config_.hidden_dim;
  const size_t e = config_.embed_dim;
  caches_.clear();
  caches_.reserve(tokens.size());
  std::vector<std::vector<double>> outputs;
  outputs.reserve(tokens.size());
  std::vector<double> h_prev(h, 0.0), c_prev(h, 0.0);
  for (int token : tokens) {
    AUTOFP_CHECK_GE(token, 0);
    AUTOFP_CHECK_LT(static_cast<size_t>(token), config_.vocab_size);
    StepCache cache;
    cache.x.assign(embed_.value.begin() + token * e,
                   embed_.value.begin() + (token + 1) * e);
    // Gate pre-activations: z = W x + U h_prev + b, order [i f g o].
    std::vector<double> z(4 * h);
    for (size_t g = 0; g < 4 * h; ++g) {
      const double* wi = w_input_.value.data() + g * e;
      const double* wh = w_hidden_.value.data() + g * h;
      z[g] = bias_.value[g] + simd::Dot(wi, cache.x.data(), e) +
             simd::Dot(wh, h_prev.data(), h);
    }
    cache.gates.resize(4 * h);
    cache.c.resize(h);
    cache.tanh_c.resize(h);
    cache.h.resize(h);
    for (size_t i = 0; i < h; ++i) {
      double gi = Sigmoid(z[i]);
      double gf = Sigmoid(z[h + i]);
      double gg = std::tanh(z[2 * h + i]);
      double go = Sigmoid(z[3 * h + i]);
      cache.gates[i] = gi;
      cache.gates[h + i] = gf;
      cache.gates[2 * h + i] = gg;
      cache.gates[3 * h + i] = go;
      cache.c[i] = gf * c_prev[i] + gi * gg;
      cache.tanh_c[i] = std::tanh(cache.c[i]);
      cache.h[i] = go * cache.tanh_c[i];
    }
    std::vector<double> y(config_.output_dim);
    for (size_t o = 0; o < config_.output_dim; ++o) {
      const double* w = w_out_.value.data() + o * h;
      y[o] = b_out_.value[o] + simd::Dot(w, cache.h.data(), h);
    }
    h_prev = cache.h;
    c_prev = cache.c;
    caches_.push_back(std::move(cache));
    outputs.push_back(std::move(y));
  }
  return outputs;
}

void LstmNet::Backward(const std::vector<int>& tokens,
                       const std::vector<std::vector<double>>& grad_outputs) {
  AUTOFP_CHECK_EQ(tokens.size(), caches_.size())
      << "Backward without matching Forward";
  AUTOFP_CHECK_EQ(grad_outputs.size(), caches_.size());
  const size_t h = config_.hidden_dim;
  const size_t e = config_.embed_dim;
  std::vector<double> dh_next(h, 0.0), dc_next(h, 0.0);
  for (size_t t = tokens.size(); t-- > 0;) {
    const StepCache& cache = caches_[t];
    std::vector<double> zeros;
    if (t == 0) zeros.assign(h, 0.0);
    const std::vector<double>& h_prev = t > 0 ? caches_[t - 1].h : zeros;
    const std::vector<double>& c_prev = t > 0 ? caches_[t - 1].c : zeros;
    // Output head.
    std::vector<double> dh = dh_next;
    const std::vector<double>& dy = grad_outputs[t];
    AUTOFP_CHECK_EQ(dy.size(), config_.output_dim);
    for (size_t o = 0; o < config_.output_dim; ++o) {
      if (dy[o] == 0.0) continue;
      double* wg = w_out_.grad.data() + o * h;
      const double* w = w_out_.value.data() + o * h;
      simd::Axpy(dy[o], cache.h.data(), wg, h);
      simd::Axpy(dy[o], w, dh.data(), h);
      b_out_.grad[o] += dy[o];
    }
    // Cell / gate gradients.
    std::vector<double> dz(4 * h);
    std::vector<double> dc(h);
    for (size_t i = 0; i < h; ++i) {
      double gi = cache.gates[i];
      double gf = cache.gates[h + i];
      double gg = cache.gates[2 * h + i];
      double go = cache.gates[3 * h + i];
      dc[i] = dh[i] * go * (1.0 - cache.tanh_c[i] * cache.tanh_c[i]) +
              dc_next[i];
      double d_go = dh[i] * cache.tanh_c[i];
      double d_gi = dc[i] * gg;
      double d_gg = dc[i] * gi;
      double d_gf = dc[i] * c_prev[i];
      dz[i] = d_gi * gi * (1.0 - gi);
      dz[h + i] = d_gf * gf * (1.0 - gf);
      dz[2 * h + i] = d_gg * (1.0 - gg * gg);
      dz[3 * h + i] = d_go * go * (1.0 - go);
    }
    // Parameter and input gradients.
    std::vector<double> dx(e, 0.0);
    std::vector<double> dh_prev(h, 0.0);
    for (size_t g = 0; g < 4 * h; ++g) {
      if (dz[g] == 0.0) continue;
      double* wig = w_input_.grad.data() + g * e;
      double* whg = w_hidden_.grad.data() + g * h;
      const double* wi = w_input_.value.data() + g * e;
      const double* wh = w_hidden_.value.data() + g * h;
      simd::Axpy(dz[g], cache.x.data(), wig, e);
      simd::Axpy(dz[g], wi, dx.data(), e);
      simd::Axpy(dz[g], h_prev.data(), whg, h);
      simd::Axpy(dz[g], wh, dh_prev.data(), h);
      bias_.grad[g] += dz[g];
    }
    double* eg = embed_.grad.data() + tokens[t] * e;
    simd::Axpy(1.0, dx.data(), eg, e);
    // Carry to t-1.
    dh_next = std::move(dh_prev);
    for (size_t i = 0; i < h; ++i) {
      dc_next[i] = dc[i] * cache.gates[h + i];
    }
  }
}

void LstmNet::ZeroGrads() {
  embed_.ZeroGrad();
  w_input_.ZeroGrad();
  w_hidden_.ZeroGrad();
  bias_.ZeroGrad();
  w_out_.ZeroGrad();
  b_out_.ZeroGrad();
}

void LstmNet::Step(const AdamConfig& adam) {
  ++adam_step_;
  embed_.AdamStep(adam, adam_step_);
  w_input_.AdamStep(adam, adam_step_);
  w_hidden_.AdamStep(adam, adam_step_);
  bias_.AdamStep(adam, adam_step_);
  w_out_.AdamStep(adam, adam_step_);
  b_out_.AdamStep(adam, adam_step_);
}

size_t LstmNet::num_parameters() const {
  return embed_.size() + w_input_.size() + w_hidden_.size() + bias_.size() +
         w_out_.size() + b_out_.size();
}

}  // namespace autofp
