#include "nn/mlp_net.h"

#include "util/serialize.h"
#include "util/simd.h"

#include <algorithm>

namespace autofp {

MlpNet::MlpNet(const MlpNetConfig& config, Rng* rng) : config_(config) {
  AUTOFP_CHECK_GT(config.input_dim, 0u);
  AUTOFP_CHECK_GT(config.output_dim, 0u);
  std::vector<size_t> dims;
  dims.push_back(config.input_dim);
  for (size_t h : config.hidden_dims) dims.push_back(h);
  dims.push_back(config.output_dim);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    Layer layer;
    layer.in_dim = dims[i];
    layer.out_dim = dims[i + 1];
    layer.weights.Resize(layer.in_dim * layer.out_dim);
    layer.weights.InitGlorot(layer.in_dim, layer.out_dim, rng);
    layer.bias.Resize(layer.out_dim);
    layers_.push_back(std::move(layer));
  }
}

Matrix MlpNet::Forward(const Matrix& inputs) {
  AUTOFP_CHECK_EQ(inputs.cols(), config_.input_dim);
  activations_.clear();
  activations_.push_back(inputs);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const Matrix& in = activations_.back();
    Matrix out(in.rows(), layer.out_dim);
    const bool is_last = (l + 1 == layers_.size());
    for (size_t r = 0; r < in.rows(); ++r) {
      const double* in_row = in.RowPtr(r);
      double* out_row = out.RowPtr(r);
      for (size_t o = 0; o < layer.out_dim; ++o) {
        const double* w = layer.weights.value.data() + o * layer.in_dim;
        const double sum =
            layer.bias.value[o] + simd::Dot(w, in_row, layer.in_dim);
        out_row[o] = is_last ? sum : std::max(sum, 0.0);
      }
    }
    activations_.push_back(std::move(out));
  }
  return activations_.back();
}

Matrix MlpNet::Infer(const Matrix& inputs) const {
  AUTOFP_CHECK_EQ(inputs.cols(), config_.input_dim);
  Matrix current = inputs;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Matrix out(current.rows(), layer.out_dim);
    const bool is_last = (l + 1 == layers_.size());
    for (size_t r = 0; r < current.rows(); ++r) {
      const double* in_row = current.RowPtr(r);
      double* out_row = out.RowPtr(r);
      for (size_t o = 0; o < layer.out_dim; ++o) {
        const double* w = layer.weights.value.data() + o * layer.in_dim;
        const double sum =
            layer.bias.value[o] + simd::Dot(w, in_row, layer.in_dim);
        out_row[o] = is_last ? sum : std::max(sum, 0.0);
      }
    }
    current = std::move(out);
  }
  return current;
}

void MlpNet::Backward(const Matrix& grad_outputs) {
  AUTOFP_CHECK_EQ(activations_.size(), layers_.size() + 1)
      << "Backward without matching Forward";
  AUTOFP_CHECK_EQ(grad_outputs.rows(), activations_.back().rows());
  AUTOFP_CHECK_EQ(grad_outputs.cols(), config_.output_dim);
  Matrix grad = grad_outputs;
  for (size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    const Matrix& in = activations_[l];
    const Matrix& out = activations_[l + 1];
    const bool is_last = (l + 1 == layers_.size());
    // ReLU gate: zero gradient where the activation was clipped.
    if (!is_last) {
      for (size_t r = 0; r < grad.rows(); ++r) {
        double* g = grad.RowPtr(r);
        const double* a = out.RowPtr(r);
        for (size_t o = 0; o < layer.out_dim; ++o) {
          if (a[o] <= 0.0) g[o] = 0.0;
        }
      }
    }
    // Parameter gradients.
    for (size_t r = 0; r < grad.rows(); ++r) {
      const double* g = grad.RowPtr(r);
      const double* in_row = in.RowPtr(r);
      for (size_t o = 0; o < layer.out_dim; ++o) {
        if (g[o] == 0.0) continue;
        double* wg = layer.weights.grad.data() + o * layer.in_dim;
        simd::Axpy(g[o], in_row, wg, layer.in_dim);
        layer.bias.grad[o] += g[o];
      }
    }
    // Input gradient for the next (earlier) layer.
    if (l > 0) {
      Matrix grad_in(grad.rows(), layer.in_dim, 0.0);
      for (size_t r = 0; r < grad.rows(); ++r) {
        const double* g = grad.RowPtr(r);
        double* gi = grad_in.RowPtr(r);
        for (size_t o = 0; o < layer.out_dim; ++o) {
          if (g[o] == 0.0) continue;
          const double* w = layer.weights.value.data() + o * layer.in_dim;
          simd::Axpy(g[o], w, gi, layer.in_dim);
        }
      }
      grad = std::move(grad_in);
    }
  }
}

void MlpNet::ZeroGrads() {
  for (Layer& layer : layers_) {
    layer.weights.ZeroGrad();
    layer.bias.ZeroGrad();
  }
}

void MlpNet::Step(const AdamConfig& adam) {
  ++adam_step_;
  for (Layer& layer : layers_) {
    layer.weights.AdamStep(adam, adam_step_);
    layer.bias.AdamStep(adam, adam_step_);
  }
}

size_t MlpNet::num_parameters() const {
  size_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.weights.size() + layer.bias.size();
  }
  return total;
}

void MlpNet::SaveState(std::ostream& out) const {
  WritePod<uint64_t>(out, layers_.size());
  for (const Layer& layer : layers_) {
    WriteVec(out, layer.weights.value);
    WriteVec(out, layer.bias.value);
  }
}

Status MlpNet::LoadState(std::istream& in) {
  const Status malformed =
      Status::InvalidArgument("MlpNet: malformed state blob");
  uint64_t num_layers = 0;
  if (!ReadPod(in, &num_layers) || num_layers != layers_.size()) {
    return malformed;
  }
  for (Layer& layer : layers_) {
    std::vector<double> weights, bias;
    if (!ReadVec(in, &weights) || weights.size() != layer.weights.size() ||
        !ReadVec(in, &bias) || bias.size() != layer.bias.size()) {
      return malformed;
    }
    layer.weights.value = std::move(weights);
    layer.bias.value = std::move(bias);
    layer.weights.ZeroGrad();
    layer.bias.ZeroGrad();
  }
  adam_step_ = 0;
  return Status::OK();
}

}  // namespace autofp
