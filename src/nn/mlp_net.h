#ifndef AUTOFP_NN_MLP_NET_H_
#define AUTOFP_NN_MLP_NET_H_

#include <cstddef>
#include <vector>

#include "nn/param.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/random.h"

namespace autofp {

/// Architecture of a fully-connected net: ReLU on hidden layers, identity
/// on the output layer (losses are applied by the caller, so the same net
/// serves softmax classification and MSE regression).
struct MlpNetConfig {
  size_t input_dim = 0;
  std::vector<size_t> hidden_dims = {64};
  size_t output_dim = 1;
};

/// Minimal feed-forward network with manual backprop and Adam. Used by the
/// downstream MLP classifier and by the Progressive-NAS MLP surrogate.
class MlpNet {
 public:
  MlpNet(const MlpNetConfig& config, Rng* rng);

  /// Batch forward pass; returns (batch x output_dim) raw outputs.
  /// Caches activations for a subsequent Backward().
  Matrix Forward(const Matrix& inputs);

  /// Inference-only forward pass: no caching, usable on const nets.
  Matrix Infer(const Matrix& inputs) const;

  /// Accumulates parameter gradients for dLoss/dOutput `grad_outputs`
  /// (same shape as the last Forward's return value). Must be called after
  /// Forward on the same inputs.
  void Backward(const Matrix& grad_outputs);

  void ZeroGrads();

  /// Applies one Adam update to every parameter block.
  void Step(const AdamConfig& adam);

  size_t num_parameters() const;

  /// Serializes the parameter values (weights and biases; optimizer
  /// moments are training-only state and are not persisted). Encoding per
  /// util/serialize.h.
  void SaveState(std::ostream& out) const;
  /// Restores parameter values written by SaveState into a net built with
  /// the same MlpNetConfig; shape mismatches are InvalidArgument.
  Status LoadState(std::istream& in);

  const MlpNetConfig& config() const { return config_; }

 private:
  struct Layer {
    Param weights;  ///< out_dim x in_dim, row-major.
    Param bias;     ///< out_dim.
    size_t in_dim = 0;
    size_t out_dim = 0;
  };

  MlpNetConfig config_;
  std::vector<Layer> layers_;
  /// Forward caches: activations_[0] is the input, activations_[i] the
  /// post-ReLU output of layer i-1 (post-identity for the last layer).
  std::vector<Matrix> activations_;
  long adam_step_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_NN_MLP_NET_H_
