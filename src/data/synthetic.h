#ifndef AUTOFP_DATA_SYNTHETIC_H_
#define AUTOFP_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace autofp {

/// Generator families. Each family is designed so that a *different*
/// preprocessor (or none) is the right answer, mirroring the heterogeneity
/// of the paper's 45 real datasets (see DESIGN.md, Substitutions).
enum class SyntheticFamily {
  /// Gaussian class blobs whose features live on wildly different scales
  /// (10^-3 .. 10^4). Scalers (Standard/MinMax/MaxAbs) help LR and MLP.
  kScaledBlobs,
  /// Blobs pushed through exp(): log-normal, heavily right-skewed features.
  /// PowerTransformer / QuantileTransformer help.
  kSkewed,
  /// Blobs contaminated with heavy-tailed outliers (Student-t, df ~ 1.5).
  /// StandardScaler is hurt by outliers; QuantileTransformer is robust.
  kHeavyTailed,
  /// Class is encoded in the *direction* of each row vector, while row
  /// magnitudes vary log-normally. Normalizer (row-wise unit norm) helps.
  kDirectional,
  /// Class is a (noisy) parity/majority function of feature *signs*;
  /// magnitudes are pure noise. Binarizer helps.
  kThresholdCoded,
  /// Concentric rings / XOR structure: nonlinear boundary. Tree and MLP
  /// models shine; preprocessing matters less. Exercises the "FP can hurt"
  /// regime (Binarizer destroys the radius information).
  kNonlinearRings,
  /// Few informative features among many noise features; used to populate
  /// the high-dimensional bucket of the paper's Table 5.
  kSparseHighDim,
};

/// Full recipe for one synthetic dataset.
struct SyntheticSpec {
  std::string name;
  SyntheticFamily family = SyntheticFamily::kScaledBlobs;
  size_t rows = 1000;
  size_t cols = 10;
  int num_classes = 2;
  uint64_t seed = 0;
  /// Fraction of labels flipped uniformly at random (irreducible error).
  double label_noise = 0.05;
  /// Class-separation knob; larger = easier problem.
  double separation = 2.0;
  /// If > 0, class priors decay geometrically by this factor (imbalance).
  double imbalance = 0.0;
};

/// Generates a dataset deterministically from the spec.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// Human-readable family name (for reports).
std::string FamilyName(SyntheticFamily family);

}  // namespace autofp

#endif  // AUTOFP_DATA_SYNTHETIC_H_
