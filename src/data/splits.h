#ifndef AUTOFP_DATA_SPLITS_H_
#define AUTOFP_DATA_SPLITS_H_

#include <vector>

#include "data/dataset.h"
#include "util/random.h"

namespace autofp {

/// A train/validation split of a dataset.
struct TrainValidSplit {
  Dataset train;
  Dataset valid;
};

/// Shuffles rows and splits with `train_fraction` going to train (the paper
/// uses 80:20). Guarantees at least one row on each side when possible.
TrainValidSplit SplitTrainValid(const Dataset& dataset, double train_fraction,
                                Rng* rng);

/// Stratified variant: splits each class independently so class
/// proportions are (approximately) preserved on both sides. Useful for
/// heavily imbalanced data, where a plain shuffle can leave a class
/// entirely out of the validation set.
TrainValidSplit StratifiedSplitTrainValid(const Dataset& dataset,
                                          double train_fraction, Rng* rng);

/// Index folds for k-fold cross-validation (shuffled, near-equal sizes).
std::vector<std::vector<size_t>> KFoldIndices(size_t num_rows, size_t k,
                                              Rng* rng);

/// Uniformly subsamples `fraction` of the rows (at least one row). Used to
/// map Hyperband/BOHB resource budgets to partial training data.
Dataset SubsampleRows(const Dataset& dataset, double fraction, Rng* rng);

/// Stratified variant of SubsampleRows: keeps at least one row of every
/// class present in `dataset`, so tiny budget fractions on small datasets
/// can never yield an empty or single-class training subsample.
Dataset SubsampleRowsStratified(const Dataset& dataset, double fraction,
                                Rng* rng);

}  // namespace autofp

#endif  // AUTOFP_DATA_SPLITS_H_
