#ifndef AUTOFP_DATA_BENCHMARK_SUITE_H_
#define AUTOFP_DATA_BENCHMARK_SUITE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/status.h"

namespace autofp {

/// The deterministic synthetic analogue of the paper's 45-dataset benchmark
/// (see DESIGN.md, Substitutions). Dataset names echo the paper's naming;
/// families and size/dimensionality spread mirror Figure 5 / Table 9:
/// rows 240–40k, columns 4–600, binary and multi-class up to 10 classes,
/// and a mix of generator families so no single preprocessor dominates.
std::vector<SyntheticSpec> BenchmarkSuiteSpecs();

/// A small fast subset (7 datasets) used by unit tests and quick benches.
std::vector<SyntheticSpec> MiniSuiteSpecs();

/// The four datasets used by the paper's Figure 2 / Table 2 motivation
/// experiments (heart, forex, pd, wine analogues).
std::vector<SyntheticSpec> MotivationSuiteSpecs();

/// Generates the dataset for a named suite entry.
/// Returns NotFound for unknown names.
Result<Dataset> GetSuiteDataset(const std::string& name);

/// Looks up a spec by name across all suites.
Result<SyntheticSpec> GetSuiteSpec(const std::string& name);

}  // namespace autofp

#endif  // AUTOFP_DATA_BENCHMARK_SUITE_H_
