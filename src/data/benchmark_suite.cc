#include "data/benchmark_suite.h"

namespace autofp {

namespace {

SyntheticSpec Spec(const std::string& name, SyntheticFamily family,
                   size_t rows, size_t cols, int classes, uint64_t seed,
                   double separation = 2.0, double noise = 0.05,
                   double imbalance = 0.0) {
  SyntheticSpec spec;
  spec.name = name;
  spec.family = family;
  spec.rows = rows;
  spec.cols = cols;
  spec.num_classes = classes;
  spec.seed = seed;
  spec.separation = separation;
  spec.label_noise = noise;
  spec.imbalance = imbalance;
  return spec;
}

}  // namespace

std::vector<SyntheticSpec> MotivationSuiteSpecs() {
  using F = SyntheticFamily;
  // Analogues of the paper's heart (242x13), forex (35kx10 — scaled down),
  // pd (604x753 — scaled down), wine (5197x11, 7 classes).
  return {
      Spec("heart_syn", F::kScaledBlobs, 242, 13, 2, 11, 1.2, 0.10),
      Spec("forex_syn", F::kThresholdCoded, 2400, 10, 2, 12, 2.5, 0.15),
      Spec("pd_syn", F::kSkewed, 600, 120, 2, 13, 0.9, 0.05),
      Spec("wine_syn", F::kHeavyTailed, 2000, 11, 7, 14, 1.0, 0.15),
  };
}

std::vector<SyntheticSpec> MiniSuiteSpecs() {
  using F = SyntheticFamily;
  return {
      Spec("blood_syn", F::kScaledBlobs, 598, 4, 2, 21, 1.5, 0.12),
      Spec("vehicle_syn", F::kDirectional, 676, 18, 4, 22, 3.0, 0.08),
      Spec("phoneme_syn", F::kNonlinearRings, 1000, 5, 2, 23, 2.0, 0.08),
      Spec("kc1_syn", F::kSkewed, 1687, 21, 2, 24, 1.0, 0.10),
      Spec("ionosphere_syn", F::kThresholdCoded, 280, 34, 2, 25, 3.0, 0.06),
      Spec("thyroid_syn", F::kHeavyTailed, 1200, 26, 5, 26, 1.5, 0.08, 0.6),
      Spec("madeline_syn", F::kSparseHighDim, 800, 120, 2, 27, 2.0, 0.10),
  };
}

std::vector<SyntheticSpec> BenchmarkSuiteSpecs() {
  using F = SyntheticFamily;
  std::vector<SyntheticSpec> specs = MotivationSuiteSpecs();
  std::vector<SyntheticSpec> mini = MiniSuiteSpecs();
  specs.insert(specs.end(), mini.begin(), mini.end());
  // Additional entries extending the size/dimension/class spread.
  std::vector<SyntheticSpec> extra = {
      // Small, low-dimensional.
      Spec("australian_syn", F::kScaledBlobs, 552, 14, 2, 41, 1.8, 0.10),
      Spec("wilt_syn", F::kHeavyTailed, 1200, 5, 2, 42, 2.0, 0.05, 0.4),
      Spec("page_syn", F::kSkewed, 1500, 10, 5, 43, 1.5, 0.05, 0.5),
      Spec("mobile_syn", F::kDirectional, 1600, 20, 4, 44, 2.5, 0.05),
      // Medium.
      Spec("spambase_syn", F::kSkewed, 3680, 57, 2, 45, 1.2, 0.07),
      Spec("sylvine_syn", F::kThresholdCoded, 4099, 20, 2, 46, 3.5, 0.08),
      Spec("robot_syn", F::kNonlinearRings, 4364, 24, 4, 47, 2.0, 0.05),
      Spec("eeg_syn", F::kDirectional, 6000, 14, 2, 48, 2.0, 0.12),
      Spec("gesture_syn", F::kNonlinearRings, 4000, 32, 5, 49, 1.5, 0.10),
      // Large (scaled down from the paper's 30k-460k rows).
      Spec("electricity_syn", F::kScaledBlobs, 12000, 8, 2, 50, 1.5, 0.10),
      Spec("jannis_syn", F::kHeavyTailed, 10000, 54, 4, 51, 1.0, 0.15, 0.5),
      Spec("higgs_syn", F::kSkewed, 16000, 28, 2, 52, 0.8, 0.20),
      // High-dimensional (cols > 100, the paper's Table 5 bucket).
      Spec("jasmine_syn", F::kSparseHighDim, 2387, 144, 2, 53, 2.5, 0.08),
      Spec("christine_syn", F::kSparseHighDim, 1500, 400, 2, 54, 2.0, 0.10),
      Spec("har_syn", F::kDirectional, 2000, 260, 6, 55, 3.0, 0.05),
      Spec("isolet_syn", F::kScaledBlobs, 480, 600, 2, 56, 1.5, 0.05),
      Spec("helena_syn", F::kHeavyTailed, 5000, 27, 10, 57, 1.2, 0.15, 0.7),
  };
  specs.insert(specs.end(), extra.begin(), extra.end());
  return specs;
}

Result<SyntheticSpec> GetSuiteSpec(const std::string& name) {
  for (const SyntheticSpec& spec : BenchmarkSuiteSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no suite dataset named '" + name + "'");
}

Result<Dataset> GetSuiteDataset(const std::string& name) {
  Result<SyntheticSpec> spec = GetSuiteSpec(name);
  if (!spec.ok()) return spec.status();
  return GenerateSynthetic(spec.value());
}

}  // namespace autofp
