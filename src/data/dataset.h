#ifndef AUTOFP_DATA_DATASET_H_
#define AUTOFP_DATA_DATASET_H_

#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// A tabular classification dataset: a dense numeric feature matrix plus
/// integer class labels in [0, num_classes).
struct Dataset {
  std::string name;
  Matrix features;          ///< rows = samples, cols = features.
  std::vector<int> labels;  ///< one label per row.
  int num_classes = 0;

  size_t num_rows() const { return features.rows(); }
  size_t num_cols() const { return features.cols(); }

  /// Approximate in-memory size in MB (8 bytes per cell), the size metric
  /// used by the paper's Figure 5 / Table 5 bucketing.
  double SizeMb() const {
    return static_cast<double>(num_rows() * num_cols() * 8) / 1e6;
  }

  /// Per-class sample counts (length num_classes).
  std::vector<double> ClassCounts() const;

  /// Returns the dataset restricted to the given row indices.
  Dataset SelectRows(const std::vector<size_t>& indices) const;

  /// Validates internal consistency (label range, row counts).
  Status Validate() const;
};

/// Loads a dataset from CSV where the last column is the class label
/// (arbitrary numeric labels are densified to 0..k-1).
Result<Dataset> LoadCsvDataset(const std::string& path, bool has_header,
                               const std::string& name);

/// Builds a dataset from a parsed matrix whose last column is the label.
Result<Dataset> DatasetFromMatrix(const Matrix& table, const std::string& name);

}  // namespace autofp

#endif  // AUTOFP_DATA_DATASET_H_
