#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace autofp {

namespace {

/// Samples one class label according to (possibly imbalanced) priors.
std::vector<double> ClassPriors(const SyntheticSpec& spec) {
  std::vector<double> priors(spec.num_classes, 1.0);
  if (spec.imbalance > 0.0) {
    double weight = 1.0;
    for (int k = 0; k < spec.num_classes; ++k) {
      priors[k] = weight;
      weight *= spec.imbalance;
    }
  }
  return priors;
}

/// Heavy-tailed deviate: Student-t-like via normal divided by a small
/// uniform, clipped to keep values finite but extreme.
double HeavyTail(Rng* rng) {
  double value = rng->Gaussian() / std::max(rng->Uniform(0.02, 1.0), 0.02);
  return std::clamp(value, -500.0, 500.0);
}

void FlipLabels(const SyntheticSpec& spec, Rng* rng, std::vector<int>* labels) {
  if (spec.label_noise <= 0.0 || spec.num_classes < 2) return;
  for (int& label : *labels) {
    if (rng->Bernoulli(spec.label_noise)) {
      int other = rng->UniformInt(0, spec.num_classes - 2);
      if (other >= label) ++other;
      label = other;
    }
  }
}

Dataset MakeScaledBlobs(const SyntheticSpec& spec, Rng* rng,
                        bool high_dim_sparse) {
  Dataset out;
  out.features = Matrix(spec.rows, spec.cols);
  out.labels.resize(spec.rows);
  out.num_classes = spec.num_classes;

  size_t informative =
      high_dim_sparse ? std::max<size_t>(3, spec.cols / 20) : spec.cols;
  informative = std::min(informative, spec.cols);

  // Per-class means over the informative features.
  std::vector<std::vector<double>> means(spec.num_classes,
                                         std::vector<double>(informative));
  for (int k = 0; k < spec.num_classes; ++k) {
    for (size_t j = 0; j < informative; ++j) {
      means[k][j] = rng->Gaussian(0.0, spec.separation);
    }
  }
  // Heterogeneous per-feature scales spanning seven decades: the regime in
  // which scaling preprocessors matter for LR/MLP.
  std::vector<double> scales(spec.cols);
  std::vector<double> shifts(spec.cols);
  for (size_t j = 0; j < spec.cols; ++j) {
    scales[j] = std::pow(10.0, rng->Uniform(-3.0, 4.0));
    shifts[j] = rng->Gaussian(0.0, 2.0) * scales[j];
  }

  std::vector<double> priors = ClassPriors(spec);
  for (size_t r = 0; r < spec.rows; ++r) {
    int label = static_cast<int>(rng->Categorical(priors));
    out.labels[r] = label;
    for (size_t j = 0; j < spec.cols; ++j) {
      double base = (j < informative) ? means[label][j] + rng->Gaussian()
                                      : rng->Gaussian();
      out.features(r, j) = base * scales[j] + shifts[j];
    }
  }
  FlipLabels(spec, rng, &out.labels);
  return out;
}

Dataset MakeSkewed(const SyntheticSpec& spec, Rng* rng) {
  Dataset out;
  out.features = Matrix(spec.rows, spec.cols);
  out.labels.resize(spec.rows);
  out.num_classes = spec.num_classes;
  std::vector<std::vector<double>> means(spec.num_classes,
                                         std::vector<double>(spec.cols));
  for (int k = 0; k < spec.num_classes; ++k) {
    for (size_t j = 0; j < spec.cols; ++j) {
      means[k][j] = rng->Gaussian(0.0, spec.separation * 0.5);
    }
  }
  std::vector<double> priors = ClassPriors(spec);
  for (size_t r = 0; r < spec.rows; ++r) {
    int label = static_cast<int>(rng->Categorical(priors));
    out.labels[r] = label;
    for (size_t j = 0; j < spec.cols; ++j) {
      double latent = means[label][j] + rng->Gaussian();
      // exp() produces log-normal features: strong right skew that
      // PowerTransformer/QuantileTransformer undo.
      out.features(r, j) = std::exp(std::clamp(latent, -8.0, 8.0));
    }
  }
  FlipLabels(spec, rng, &out.labels);
  return out;
}

Dataset MakeHeavyTailed(const SyntheticSpec& spec, Rng* rng) {
  Dataset out = MakeScaledBlobs(spec, rng, /*high_dim_sparse=*/false);
  // Contaminate 5% of the cells with extreme outliers. StandardScaler's
  // mean/std are dragged by these; quantile-based transforms are not.
  for (size_t r = 0; r < out.num_rows(); ++r) {
    for (size_t c = 0; c < out.num_cols(); ++c) {
      if (rng->Bernoulli(0.05)) {
        out.features(r, c) += HeavyTail(rng) * std::abs(out.features(r, c)) +
                              HeavyTail(rng);
      }
    }
  }
  return out;
}

Dataset MakeDirectional(const SyntheticSpec& spec, Rng* rng) {
  Dataset out;
  out.features = Matrix(spec.rows, spec.cols);
  out.labels.resize(spec.rows);
  out.num_classes = spec.num_classes;
  // One unit direction per class.
  std::vector<std::vector<double>> directions(spec.num_classes,
                                              std::vector<double>(spec.cols));
  for (int k = 0; k < spec.num_classes; ++k) {
    double norm = 0.0;
    for (size_t j = 0; j < spec.cols; ++j) {
      directions[k][j] = rng->Gaussian();
      norm += directions[k][j] * directions[k][j];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (size_t j = 0; j < spec.cols; ++j) directions[k][j] /= norm;
  }
  std::vector<double> priors = ClassPriors(spec);
  double angular_noise = 1.0 / std::max(spec.separation, 0.1);
  for (size_t r = 0; r < spec.rows; ++r) {
    int label = static_cast<int>(rng->Categorical(priors));
    out.labels[r] = label;
    // Magnitude is pure nuisance, varying over 4 decades.
    double magnitude = std::exp(rng->Gaussian(0.0, 2.0));
    for (size_t j = 0; j < spec.cols; ++j) {
      double component =
          directions[label][j] + angular_noise * rng->Gaussian();
      out.features(r, j) = magnitude * component;
    }
  }
  FlipLabels(spec, rng, &out.labels);
  return out;
}

Dataset MakeThresholdCoded(const SyntheticSpec& spec, Rng* rng) {
  Dataset out;
  out.features = Matrix(spec.rows, spec.cols);
  out.labels.resize(spec.rows);
  out.num_classes = spec.num_classes;
  size_t informative = std::min<size_t>(spec.cols, 6);
  // Fixed sign pattern per class: feature j "wants" sign pattern[k][j].
  std::vector<std::vector<int>> pattern(spec.num_classes,
                                        std::vector<int>(informative));
  for (int k = 0; k < spec.num_classes; ++k) {
    for (size_t j = 0; j < informative; ++j) {
      pattern[k][j] = rng->Bernoulli(0.5) ? 1 : -1;
    }
  }
  double fidelity = std::min(0.45, 0.1 * spec.separation);  // 0.5+fidelity
  std::vector<double> priors = ClassPriors(spec);
  for (size_t r = 0; r < spec.rows; ++r) {
    int label = static_cast<int>(rng->Categorical(priors));
    out.labels[r] = label;
    for (size_t j = 0; j < spec.cols; ++j) {
      double magnitude = std::exp(rng->Gaussian(0.0, 1.5));
      int sign;
      if (j < informative) {
        bool agree = rng->Bernoulli(0.5 + fidelity);
        sign = agree ? pattern[label][j] : -pattern[label][j];
      } else {
        sign = rng->Bernoulli(0.5) ? 1 : -1;
      }
      // Magnitude is noise; only the sign carries signal, so Binarizer
      // (threshold 0) is the ideal preprocessor here.
      out.features(r, j) = sign * magnitude;
    }
  }
  FlipLabels(spec, rng, &out.labels);
  return out;
}

Dataset MakeNonlinearRings(const SyntheticSpec& spec, Rng* rng) {
  Dataset out;
  out.features = Matrix(spec.rows, spec.cols);
  out.labels.resize(spec.rows);
  out.num_classes = spec.num_classes;
  AUTOFP_CHECK_GE(spec.cols, 2u);
  std::vector<double> priors = ClassPriors(spec);
  double ring_noise = 0.4 / std::max(spec.separation, 0.1);
  for (size_t r = 0; r < spec.rows; ++r) {
    int label = static_cast<int>(rng->Categorical(priors));
    out.labels[r] = label;
    double radius = 1.0 + label + rng->Gaussian(0.0, ring_noise);
    double angle = rng->Uniform(0.0, 2.0 * M_PI);
    out.features(r, 0) = radius * std::cos(angle);
    out.features(r, 1) = radius * std::sin(angle);
    for (size_t j = 2; j < spec.cols; ++j) {
      out.features(r, j) = rng->Gaussian();
    }
  }
  FlipLabels(spec, rng, &out.labels);
  return out;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  AUTOFP_CHECK_GE(spec.rows, 4u);
  AUTOFP_CHECK_GE(spec.cols, 1u);
  AUTOFP_CHECK_GE(spec.num_classes, 2);
  Rng rng(spec.seed);
  Dataset out;
  switch (spec.family) {
    case SyntheticFamily::kScaledBlobs:
      out = MakeScaledBlobs(spec, &rng, false);
      break;
    case SyntheticFamily::kSkewed:
      out = MakeSkewed(spec, &rng);
      break;
    case SyntheticFamily::kHeavyTailed:
      out = MakeHeavyTailed(spec, &rng);
      break;
    case SyntheticFamily::kDirectional:
      out = MakeDirectional(spec, &rng);
      break;
    case SyntheticFamily::kThresholdCoded:
      out = MakeThresholdCoded(spec, &rng);
      break;
    case SyntheticFamily::kNonlinearRings:
      out = MakeNonlinearRings(spec, &rng);
      break;
    case SyntheticFamily::kSparseHighDim:
      out = MakeScaledBlobs(spec, &rng, true);
      break;
  }
  out.name = spec.name;
  // Ensure every class has at least one sample so downstream stratified
  // logic never sees an empty class; re-label a few rows if needed.
  std::vector<double> counts = out.ClassCounts();
  size_t cursor = 0;
  for (int k = 0; k < out.num_classes; ++k) {
    if (counts[k] > 0.0) continue;
    while (cursor < out.labels.size() &&
           counts[out.labels[cursor]] <= 1.0) {
      ++cursor;
    }
    if (cursor >= out.labels.size()) break;
    counts[out.labels[cursor]] -= 1.0;
    out.labels[cursor] = k;
    counts[k] += 1.0;
  }
  return out;
}

std::string FamilyName(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kScaledBlobs:
      return "scaled_blobs";
    case SyntheticFamily::kSkewed:
      return "skewed";
    case SyntheticFamily::kHeavyTailed:
      return "heavy_tailed";
    case SyntheticFamily::kDirectional:
      return "directional";
    case SyntheticFamily::kThresholdCoded:
      return "threshold_coded";
    case SyntheticFamily::kNonlinearRings:
      return "nonlinear_rings";
    case SyntheticFamily::kSparseHighDim:
      return "sparse_high_dim";
  }
  return "unknown";
}

}  // namespace autofp
