#include "data/dataset.h"

#include <algorithm>
#include <map>

#include "util/csv.h"

namespace autofp {

std::vector<double> Dataset::ClassCounts() const {
  std::vector<double> counts(num_classes, 0.0);
  for (int label : labels) {
    AUTOFP_CHECK_GE(label, 0);
    AUTOFP_CHECK_LT(label, num_classes);
    counts[label] += 1.0;
  }
  return counts;
}

Dataset Dataset::SelectRows(const std::vector<size_t>& indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.features = features.SelectRows(indices);
  out.labels.reserve(indices.size());
  for (size_t idx : indices) {
    AUTOFP_CHECK_LT(idx, labels.size());
    out.labels.push_back(labels[idx]);
  }
  return out;
}

Status Dataset::Validate() const {
  if (features.rows() != labels.size()) {
    return Status::InvalidArgument("row count " +
                                   std::to_string(features.rows()) +
                                   " != label count " +
                                   std::to_string(labels.size()));
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes, got " +
                                   std::to_string(num_classes));
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("label " + std::to_string(label) +
                                     " out of range [0, " +
                                     std::to_string(num_classes) + ")");
    }
  }
  return Status::OK();
}

Result<Dataset> DatasetFromMatrix(const Matrix& table,
                                  const std::string& name) {
  if (table.cols() < 2) {
    return Status::InvalidArgument(
        "need at least one feature column plus a label column");
  }
  Dataset out;
  out.name = name;
  size_t feature_cols = table.cols() - 1;
  out.features = Matrix(table.rows(), feature_cols);
  // Densify labels: arbitrary numeric values -> 0..k-1 in sorted order.
  std::map<double, int> label_ids;
  std::vector<double> raw_labels(table.rows());
  for (size_t r = 0; r < table.rows(); ++r) {
    for (size_t c = 0; c < feature_cols; ++c) {
      out.features(r, c) = table(r, c);
    }
    raw_labels[r] = table(r, feature_cols);
    label_ids[raw_labels[r]] = 0;
  }
  int next_id = 0;
  for (auto& [value, id] : label_ids) id = next_id++;
  out.labels.reserve(table.rows());
  for (double raw : raw_labels) out.labels.push_back(label_ids[raw]);
  out.num_classes = next_id;
  Status status = out.Validate();
  if (!status.ok()) return status;
  return out;
}

Result<Dataset> LoadCsvDataset(const std::string& path, bool has_header,
                               const std::string& name) {
  Result<CsvTable> table = ReadCsv(path, has_header);
  if (!table.ok()) return table.status();
  return DatasetFromMatrix(table.value().values, name);
}

}  // namespace autofp
