#include "data/splits.h"

#include <algorithm>

namespace autofp {

TrainValidSplit SplitTrainValid(const Dataset& dataset, double train_fraction,
                                Rng* rng) {
  AUTOFP_CHECK_GT(train_fraction, 0.0);
  AUTOFP_CHECK_LT(train_fraction, 1.0);
  AUTOFP_CHECK_GE(dataset.num_rows(), 2u);
  std::vector<size_t> perm = rng->Permutation(dataset.num_rows());
  size_t train_size = static_cast<size_t>(
      train_fraction * static_cast<double>(dataset.num_rows()));
  train_size = std::clamp(train_size, size_t{1}, dataset.num_rows() - 1);
  std::vector<size_t> train_idx(perm.begin(), perm.begin() + train_size);
  std::vector<size_t> valid_idx(perm.begin() + train_size, perm.end());
  TrainValidSplit split;
  split.train = dataset.SelectRows(train_idx);
  split.valid = dataset.SelectRows(valid_idx);
  return split;
}

TrainValidSplit StratifiedSplitTrainValid(const Dataset& dataset,
                                          double train_fraction, Rng* rng) {
  AUTOFP_CHECK_GT(train_fraction, 0.0);
  AUTOFP_CHECK_LT(train_fraction, 1.0);
  AUTOFP_CHECK_GE(dataset.num_rows(), 2u);
  // Rows grouped by class, then each group split independently.
  std::vector<std::vector<size_t>> by_class(dataset.num_classes);
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    by_class[dataset.labels[r]].push_back(r);
  }
  std::vector<size_t> train_idx, valid_idx;
  for (std::vector<size_t>& rows : by_class) {
    if (rows.empty()) continue;
    rng->Shuffle(&rows);
    size_t train_size = static_cast<size_t>(
        train_fraction * static_cast<double>(rows.size()));
    // Classes with >= 2 rows contribute to both sides.
    if (rows.size() >= 2) {
      train_size = std::clamp(train_size, size_t{1}, rows.size() - 1);
    } else {
      train_size = 1;  // singleton classes go to train.
    }
    train_idx.insert(train_idx.end(), rows.begin(),
                     rows.begin() + train_size);
    valid_idx.insert(valid_idx.end(), rows.begin() + train_size, rows.end());
  }
  AUTOFP_CHECK(!train_idx.empty());
  AUTOFP_CHECK(!valid_idx.empty())
      << "stratified split needs at least one class with 2+ rows";
  // Shuffle the merged sides so row order carries no class signal.
  rng->Shuffle(&train_idx);
  rng->Shuffle(&valid_idx);
  TrainValidSplit split;
  split.train = dataset.SelectRows(train_idx);
  split.valid = dataset.SelectRows(valid_idx);
  return split;
}

std::vector<std::vector<size_t>> KFoldIndices(size_t num_rows, size_t k,
                                              Rng* rng) {
  AUTOFP_CHECK_GE(k, 2u);
  AUTOFP_CHECK_GE(num_rows, k);
  std::vector<size_t> perm = rng->Permutation(num_rows);
  std::vector<std::vector<size_t>> folds(k);
  for (size_t i = 0; i < num_rows; ++i) folds[i % k].push_back(perm[i]);
  return folds;
}

Dataset SubsampleRows(const Dataset& dataset, double fraction, Rng* rng) {
  AUTOFP_CHECK_GT(fraction, 0.0);
  AUTOFP_CHECK_LE(fraction, 1.0);
  size_t target = static_cast<size_t>(
      fraction * static_cast<double>(dataset.num_rows()));
  target = std::clamp(target, size_t{1}, dataset.num_rows());
  if (target == dataset.num_rows()) return dataset;
  std::vector<size_t> indices =
      rng->SampleWithoutReplacement(dataset.num_rows(), target);
  return dataset.SelectRows(indices);
}

Dataset SubsampleRowsStratified(const Dataset& dataset, double fraction,
                                Rng* rng) {
  AUTOFP_CHECK_GT(fraction, 0.0);
  AUTOFP_CHECK_LE(fraction, 1.0);
  if (fraction >= 1.0) return dataset;
  std::vector<std::vector<size_t>> by_class(dataset.num_classes);
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    by_class[dataset.labels[r]].push_back(r);
  }
  std::vector<size_t> indices;
  for (std::vector<size_t>& rows : by_class) {
    if (rows.empty()) continue;
    size_t target = static_cast<size_t>(
        fraction * static_cast<double>(rows.size()));
    target = std::clamp(target, size_t{1}, rows.size());
    rng->Shuffle(&rows);
    indices.insert(indices.end(), rows.begin(), rows.begin() + target);
  }
  // Shuffle the merged sample so row order carries no class signal.
  rng->Shuffle(&indices);
  return dataset.SelectRows(indices);
}

}  // namespace autofp
