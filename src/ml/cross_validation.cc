#include "ml/cross_validation.h"

#include "data/splits.h"
#include "ml/metrics.h"

namespace autofp {

double CrossValidationAccuracy(const Classifier& prototype,
                               const Dataset& dataset, size_t folds,
                               uint64_t seed) {
  AUTOFP_CHECK_GE(folds, 2u);
  Rng rng(seed);
  std::vector<std::vector<size_t>> fold_indices =
      KFoldIndices(dataset.num_rows(), folds, &rng);
  double total_accuracy = 0.0;
  for (size_t f = 0; f < folds; ++f) {
    std::vector<size_t> train_indices;
    for (size_t g = 0; g < folds; ++g) {
      if (g == f) continue;
      train_indices.insert(train_indices.end(), fold_indices[g].begin(),
                           fold_indices[g].end());
    }
    Dataset train = dataset.SelectRows(train_indices);
    Dataset valid = dataset.SelectRows(fold_indices[f]);
    std::unique_ptr<Classifier> model = prototype.Clone();
    model->Train(train.features, train.labels, dataset.num_classes);
    total_accuracy += EvaluateAccuracy(*model, valid.features, valid.labels);
  }
  return total_accuracy / static_cast<double>(folds);
}

}  // namespace autofp
