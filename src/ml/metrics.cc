#include "ml/metrics.h"

#include "util/logging.h"

namespace autofp {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  AUTOFP_CHECK_EQ(predictions.size(), labels.size());
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double EvaluateAccuracy(const Classifier& model, const Matrix& features,
                        const std::vector<int>& labels) {
  return Accuracy(model.PredictBatch(features), labels);
}

}  // namespace autofp
