#ifndef AUTOFP_ML_KNN_H_
#define AUTOFP_ML_KNN_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace autofp {

/// Brute-force k-nearest-neighbours classifier (Euclidean distance,
/// majority vote with nearest-first tie-break). Used by the Landmark1NN
/// meta-feature and available for experimentation.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k) : k_(k) { AUTOFP_CHECK_GE(k, 1); }
  KnnClassifier() : KnnClassifier(1) {}

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;
  int Predict(const double* row, size_t cols) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<KnnClassifier>(k_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  int k_;
  int num_classes_ = 0;
  Matrix train_features_;
  std::vector<int> train_labels_;
};

}  // namespace autofp

#endif  // AUTOFP_ML_KNN_H_
