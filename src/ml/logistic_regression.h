#ifndef AUTOFP_ML_LOGISTIC_REGRESSION_H_
#define AUTOFP_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/model.h"
#include "nn/param.h"

namespace autofp {

/// Multinomial (softmax) logistic regression with L2 regularization,
/// trained by full-batch Adam. Like scikit-learn's LogisticRegression it is
/// a linear model and therefore sensitive to feature scale — the property
/// the paper's feature-preprocessing study turns on.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(const ModelConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == ModelKind::kLogisticRegression);
  }

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;
  int Predict(const double* row, size_t cols) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LogisticRegression>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  /// Per-class decision scores for one row (exposed for tests).
  std::vector<double> DecisionFunction(const double* row, size_t cols) const;

 private:
  ModelConfig config_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  /// weights_[k * (d+1) + j]: weight of feature j for class k; index d is
  /// the intercept.
  std::vector<double> weights_;
};

}  // namespace autofp

#endif  // AUTOFP_ML_LOGISTIC_REGRESSION_H_
