#include "ml/lda.h"

#include "util/serialize.h"

#include <cmath>
#include <vector>

namespace autofp {

namespace {

/// In-place Cholesky factorization of a symmetric positive-definite matrix
/// (lower triangle). Returns false if a non-positive pivot appears.
bool Cholesky(std::vector<double>* a, size_t d) {
  std::vector<double>& m = *a;
  for (size_t j = 0; j < d; ++j) {
    double diag = m[j * d + j];
    for (size_t k = 0; k < j; ++k) diag -= m[j * d + k] * m[j * d + k];
    if (diag <= 0.0) return false;
    diag = std::sqrt(diag);
    m[j * d + j] = diag;
    for (size_t i = j + 1; i < d; ++i) {
      double sum = m[i * d + j];
      for (size_t k = 0; k < j; ++k) sum -= m[i * d + k] * m[j * d + k];
      m[i * d + j] = sum / diag;
    }
  }
  return true;
}

/// Solves L L^T x = b given the Cholesky factor L (lower triangle of `l`).
std::vector<double> CholeskySolve(const std::vector<double>& l, size_t d,
                                  const std::vector<double>& b) {
  std::vector<double> y(d);
  for (size_t i = 0; i < d; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l[i * d + k] * y[k];
    y[i] = sum / l[i * d + i];
  }
  std::vector<double> x(d);
  for (size_t i = d; i-- > 0;) {
    double sum = y[i];
    for (size_t k = i + 1; k < d; ++k) sum -= l[k * d + i] * x[k];
    x[i] = sum / l[i * d + i];
  }
  return x;
}

}  // namespace

void LdaClassifier::Train(const Matrix& features,
                          const std::vector<int>& labels, int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GT(features.rows(), 0u);
  num_classes_ = num_classes;
  num_features_ = features.cols();
  const size_t d = num_features_;
  const size_t n = features.rows();

  std::vector<double> counts(num_classes, 0.0);
  std::vector<double> means(static_cast<size_t>(num_classes) * d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    counts[labels[r]] += 1.0;
    const double* row = features.RowPtr(r);
    double* mean = means.data() + static_cast<size_t>(labels[r]) * d;
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    double* mean = means.data() + static_cast<size_t>(k) * d;
    if (counts[k] > 0.0) {
      for (size_t j = 0; j < d; ++j) mean[j] /= counts[k];
    }
  }

  // Pooled within-class covariance.
  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (size_t r = 0; r < n; ++r) {
    const double* row = features.RowPtr(r);
    const double* mean = means.data() + static_cast<size_t>(labels[r]) * d;
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - mean[j];
    for (size_t i = 0; i < d; ++i) {
      if (centered[i] == 0.0) continue;
      double ci = centered[i];
      double* cov_row = cov.data() + i * d;
      for (size_t j = 0; j <= i; ++j) cov_row[j] += ci * centered[j];
    }
  }
  double trace = 0.0;
  for (size_t i = 0; i < d; ++i) trace += cov[i * d + i];
  double mean_variance = trace / (static_cast<double>(n) *
                                  std::max<double>(1.0, static_cast<double>(d)));
  double shrink = ridge_ * std::max(mean_variance, 1e-12) *
                  static_cast<double>(n);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) cov[j * d + i] = cov[i * d + j];
    cov[i * d + i] += shrink + 1e-10;
  }

  // Factor once; increase ridge until positive definite.
  std::vector<double> factor = cov;
  double extra = shrink > 0.0 ? shrink : 1e-8;
  while (!Cholesky(&factor, d)) {
    factor = cov;
    for (size_t i = 0; i < d; ++i) factor[i * d + i] += extra;
    extra *= 10.0;
  }

  weights_.assign(static_cast<size_t>(num_classes) * d, 0.0);
  biases_.assign(num_classes, -1e18);
  for (int k = 0; k < num_classes; ++k) {
    if (counts[k] <= 0.0) continue;
    std::vector<double> mu(means.begin() + static_cast<size_t>(k) * d,
                           means.begin() + static_cast<size_t>(k + 1) * d);
    // Scale covariance back to per-sample units for the discriminant.
    std::vector<double> rhs(d);
    for (size_t j = 0; j < d; ++j) rhs[j] = mu[j] * static_cast<double>(n);
    std::vector<double> w = CholeskySolve(factor, d, rhs);
    double quad = 0.0;
    for (size_t j = 0; j < d; ++j) quad += w[j] * mu[j];
    double* weight = weights_.data() + static_cast<size_t>(k) * d;
    for (size_t j = 0; j < d; ++j) weight[j] = w[j];
    biases_[k] = -0.5 * quad + std::log(counts[k] / static_cast<double>(n));
  }
}

int LdaClassifier::Predict(const double* row, size_t cols) const {
  AUTOFP_CHECK_GT(num_classes_, 0) << "Predict before Train";
  AUTOFP_CHECK_EQ(cols, num_features_);
  double best_score = -1e300;
  int best_class = 0;
  for (int k = 0; k < num_classes_; ++k) {
    const double* weight = weights_.data() + static_cast<size_t>(k) * cols;
    double score = biases_[k];
    for (size_t j = 0; j < cols; ++j) score += weight[j] * row[j];
    if (score > best_score) {
      best_score = score;
      best_class = k;
    }
  }
  return best_class;
}

void LdaClassifier::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(!weights_.empty()) << "SaveState before Train";
  WritePod<int32_t>(out, num_classes_);
  WritePod<uint64_t>(out, num_features_);
  WriteVec(out, weights_);
  WriteVec(out, biases_);
}

Status LdaClassifier::LoadState(std::istream& in) {
  int32_t classes = 0;
  uint64_t features = 0;
  std::vector<double> weights, biases;
  if (!ReadPod(in, &classes) || classes < 2 || !ReadPod(in, &features) ||
      !ReadVec(in, &weights) || !ReadVec(in, &biases) ||
      weights.size() != static_cast<size_t>(classes) * features ||
      biases.size() != static_cast<size_t>(classes)) {
    return Status::InvalidArgument("LdaClassifier: malformed state blob");
  }
  num_classes_ = classes;
  num_features_ = features;
  weights_ = std::move(weights);
  biases_ = std::move(biases);
  return Status::OK();
}

}  // namespace autofp
