#ifndef AUTOFP_ML_MLP_CLASSIFIER_H_
#define AUTOFP_ML_MLP_CLASSIFIER_H_

#include <memory>
#include <optional>
#include <vector>

#include "ml/model.h"
#include "nn/mlp_net.h"

namespace autofp {

/// One-hidden-layer ReLU network trained with minibatch Adam on softmax
/// cross-entropy — the analogue of scikit-learn's MLPClassifier with
/// default-ish settings. Like the real thing, it is highly sensitive to
/// feature scaling (unscaled features saturate/blow up early training).
class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(const ModelConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == ModelKind::kMlp);
  }

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;
  int Predict(const double* row, size_t cols) const override;
  std::vector<int> PredictBatch(const Matrix& features) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<MlpClassifier>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  ModelConfig config_;
  int num_classes_ = 0;
  std::optional<MlpNet> net_;
};

}  // namespace autofp

#endif  // AUTOFP_ML_MLP_CLASSIFIER_H_
