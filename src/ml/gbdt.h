#ifndef AUTOFP_ML_GBDT_H_
#define AUTOFP_ML_GBDT_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace autofp {

/// Gradient-boosted decision trees in the XGBoost style: second-order
/// (gradient/hessian) boosting of histogram-split regression trees, with
/// L2-regularized leaf weights. Binary problems use a single sigmoid logit
/// per round; multi-class trains one tree per class per round (softmax).
/// Tree-based and therefore largely invariant to monotone feature scaling —
/// the contrast the paper's XGB results rely on.
class GbdtClassifier : public Classifier {
 public:
  explicit GbdtClassifier(const ModelConfig& config) : config_(config) {
    AUTOFP_CHECK(config.kind == ModelKind::kXgboost);
  }

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;
  int Predict(const double* row, size_t cols) const override;
  std::vector<int> PredictBatch(const Matrix& features) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GbdtClassifier>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  /// Raw additive scores (1 logit for binary, k for multi-class).
  std::vector<double> RawScores(const double* row, size_t cols) const;

  size_t num_trees() const { return trees_.size(); }

 private:
  struct TreeNode {
    int feature = -1;        ///< -1 = leaf.
    double threshold = 0.0;  ///< go left if value <= threshold.
    int left = -1;
    int right = -1;
    double weight = 0.0;     ///< leaf output.
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    double Predict(const double* row) const;
  };

  /// Builds one regression tree on (grad, hess) using the per-feature bin
  /// edges in bins_; returns the tree and updates `scores` in place.
  Tree BuildTree(const Matrix& features,
                 const std::vector<std::vector<uint16_t>>& binned,
                 const std::vector<double>& grad,
                 const std::vector<double>& hess);

  ModelConfig config_;
  int num_classes_ = 0;
  int num_outputs_ = 0;  ///< 1 for binary, num_classes otherwise.
  size_t num_features_ = 0;
  double base_score_ = 0.0;
  /// trees_[round * num_outputs_ + output].
  std::vector<Tree> trees_;
  /// bins_[feature] = ascending bin upper edges (histogram split points).
  std::vector<std::vector<double>> bins_;
  /// Interleaved [g, h] split histogram, reused across features and
  /// nodes by BuildTree (training-only scratch).
  std::vector<double> hist_;
};

}  // namespace autofp

#endif  // AUTOFP_ML_GBDT_H_
