#include "ml/model.h"

#include <sstream>

#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/mlp_classifier.h"
#include "util/logging.h"

namespace autofp {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLogisticRegression:
      return "LR";
    case ModelKind::kXgboost:
      return "XGB";
    case ModelKind::kMlp:
      return "MLP";
  }
  return "?";
}

std::string ModelConfig::ToString() const {
  std::ostringstream out;
  out << ModelKindName(kind);
  switch (kind) {
    case ModelKind::kLogisticRegression:
      out << "(l2=" << lr_l2 << ", epochs=" << lr_epochs
          << ", step=" << lr_step << ")";
      break;
    case ModelKind::kXgboost:
      out << "(rounds=" << xgb_rounds << ", depth=" << xgb_max_depth
          << ", eta=" << xgb_eta << ")";
      break;
    case ModelKind::kMlp:
      out << "(hidden=" << mlp_hidden << ", epochs=" << mlp_epochs
          << ", step=" << mlp_step << ")";
      break;
  }
  return out.str();
}

std::vector<int> Classifier::PredictBatch(const Matrix& features) const {
  std::vector<int> predictions(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    predictions[r] = Predict(features.RowPtr(r), features.cols());
  }
  return predictions;
}

std::unique_ptr<Classifier> MakeClassifier(const ModelConfig& config) {
  switch (config.kind) {
    case ModelKind::kLogisticRegression:
      return std::make_unique<LogisticRegression>(config);
    case ModelKind::kXgboost:
      return std::make_unique<GbdtClassifier>(config);
    case ModelKind::kMlp:
      return std::make_unique<MlpClassifier>(config);
  }
  AUTOFP_CHECK(false) << "unknown model kind";
  return nullptr;
}

}  // namespace autofp
