#ifndef AUTOFP_ML_CROSS_VALIDATION_H_
#define AUTOFP_ML_CROSS_VALIDATION_H_

#include "data/dataset.h"
#include "ml/model.h"
#include "util/random.h"

namespace autofp {

/// Mean k-fold cross-validation accuracy of an (untrained) classifier
/// prototype on a dataset. `prototype` is cloned per fold. Folds are
/// shuffled deterministically from `seed`.
double CrossValidationAccuracy(const Classifier& prototype,
                               const Dataset& dataset, size_t folds,
                               uint64_t seed);

}  // namespace autofp

#endif  // AUTOFP_ML_CROSS_VALIDATION_H_
