#ifndef AUTOFP_ML_MODEL_H_
#define AUTOFP_ML_MODEL_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// The three downstream model families the paper evaluates (Section 5.1).
enum class ModelKind : int {
  kLogisticRegression = 0,
  kXgboost = 1,  ///< gradient-boosted trees, XGBoost-style.
  kMlp = 2,
};

/// Human-readable short name ("LR", "XGB", "MLP").
std::string ModelKindName(ModelKind kind);

/// Hyperparameters for every model family. Only the fields of the selected
/// `kind` are read. Defaults approximate the scikit-learn / XGBoost defaults
/// the paper uses, scaled to this library's training loops. These fields
/// are also the search space of the HPO comparison in Section 7.
struct ModelConfig {
  ModelKind kind = ModelKind::kLogisticRegression;

  // Logistic regression.
  double lr_l2 = 1e-4;    ///< L2 penalty strength (1/C-style).
  int lr_epochs = 60;     ///< full-batch Adam epochs.
  double lr_step = 0.1;   ///< Adam learning rate.

  // Gradient-boosted trees.
  int xgb_rounds = 30;
  int xgb_max_depth = 4;
  double xgb_eta = 0.3;
  double xgb_lambda = 1.0;     ///< L2 on leaf weights.
  int xgb_max_bins = 32;
  double xgb_min_child_weight = 1.0;

  // MLP.
  int mlp_hidden = 32;
  int mlp_epochs = 30;
  double mlp_step = 1e-3;  ///< Adam learning rate.
  int mlp_batch = 64;

  /// Deterministic training seed (models with stochastic init/shuffling).
  uint64_t seed = 7;

  static ModelConfig Defaults(ModelKind kind) {
    ModelConfig config;
    config.kind = kind;
    return config;
  }

  std::string ToString() const;
};

/// A trainable multi-class classifier over dense features.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains from scratch on (features, labels) with labels in
  /// [0, num_classes). Retraining discards previous state.
  virtual void Train(const Matrix& features, const std::vector<int>& labels,
                     int num_classes) = 0;

  /// Predicts the class of a single row (length = training columns).
  virtual int Predict(const double* row, size_t cols) const = 0;

  /// Batch prediction (default loops over Predict).
  virtual std::vector<int> PredictBatch(const Matrix& features) const;

  /// Fresh untrained instance with identical hyperparameters.
  virtual std::unique_ptr<Classifier> Clone() const = 0;

  /// Serializes the trained state (weights, trees, layers — NOT the
  /// hyperparameters, which travel separately as the ModelConfig) to
  /// `out`. Must be called on a trained instance. The encoding is the
  /// host-endian field-by-field format of util/serialize.h, framed and
  /// CRC-protected by the artifact layer (src/serve/artifact.h).
  virtual void SaveState(std::ostream& out) const = 0;

  /// Restores the state written by SaveState on an instance built with
  /// the same hyperparameters, leaving it trained. Returns
  /// InvalidArgument on malformed or truncated bytes — never crashes.
  virtual Status LoadState(std::istream& in) = 0;
};

/// Instantiates the classifier described by `config`.
std::unique_ptr<Classifier> MakeClassifier(const ModelConfig& config);

}  // namespace autofp

#endif  // AUTOFP_ML_MODEL_H_
