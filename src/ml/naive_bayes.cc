#include "ml/naive_bayes.h"

#include "util/serialize.h"

#include <algorithm>
#include <cmath>

namespace autofp {

void GaussianNaiveBayes::Train(const Matrix& features,
                               const std::vector<int>& labels,
                               int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GT(features.rows(), 0u);
  num_classes_ = num_classes;
  num_features_ = features.cols();
  const size_t d = num_features_;
  std::vector<double> counts(num_classes, 0.0);
  means_.assign(static_cast<size_t>(num_classes) * d, 0.0);
  variances_.assign(static_cast<size_t>(num_classes) * d, 0.0);
  for (size_t r = 0; r < features.rows(); ++r) {
    int k = labels[r];
    counts[k] += 1.0;
    const double* row = features.RowPtr(r);
    double* mean = means_.data() + static_cast<size_t>(k) * d;
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (int k = 0; k < num_classes; ++k) {
    double* mean = means_.data() + static_cast<size_t>(k) * d;
    if (counts[k] > 0.0) {
      for (size_t j = 0; j < d; ++j) mean[j] /= counts[k];
    }
  }
  double max_variance = 0.0;
  for (size_t r = 0; r < features.rows(); ++r) {
    int k = labels[r];
    const double* row = features.RowPtr(r);
    const double* mean = means_.data() + static_cast<size_t>(k) * d;
    double* var = variances_.data() + static_cast<size_t>(k) * d;
    for (size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean[j];
      var[j] += delta * delta;
    }
  }
  for (int k = 0; k < num_classes; ++k) {
    double* var = variances_.data() + static_cast<size_t>(k) * d;
    for (size_t j = 0; j < d; ++j) {
      if (counts[k] > 0.0) var[j] /= counts[k];
      max_variance = std::max(max_variance, var[j]);
    }
  }
  // Variance smoothing as in scikit-learn (1e-9 * max feature variance).
  double smoothing = std::max(1e-9 * max_variance, 1e-12);
  for (double& var : variances_) var += smoothing;

  log_priors_.assign(num_classes, -1e18);
  const double n = static_cast<double>(features.rows());
  for (int k = 0; k < num_classes; ++k) {
    if (counts[k] > 0.0) log_priors_[k] = std::log(counts[k] / n);
  }
}

int GaussianNaiveBayes::Predict(const double* row, size_t cols) const {
  AUTOFP_CHECK_GT(num_classes_, 0) << "Predict before Train";
  AUTOFP_CHECK_EQ(cols, num_features_);
  const size_t d = num_features_;
  double best_score = -1e300;
  int best_class = 0;
  for (int k = 0; k < num_classes_; ++k) {
    const double* mean = means_.data() + static_cast<size_t>(k) * d;
    const double* var = variances_.data() + static_cast<size_t>(k) * d;
    double score = log_priors_[k];
    for (size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean[j];
      score -= 0.5 * (std::log(2.0 * M_PI * var[j]) + delta * delta / var[j]);
    }
    if (score > best_score) {
      best_score = score;
      best_class = k;
    }
  }
  return best_class;
}

void GaussianNaiveBayes::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(!means_.empty()) << "SaveState before Train";
  WritePod<int32_t>(out, num_classes_);
  WritePod<uint64_t>(out, num_features_);
  WriteVec(out, log_priors_);
  WriteVec(out, means_);
  WriteVec(out, variances_);
}

Status GaussianNaiveBayes::LoadState(std::istream& in) {
  int32_t classes = 0;
  uint64_t features = 0;
  std::vector<double> log_priors, means, variances;
  if (!ReadPod(in, &classes) || classes < 2 || !ReadPod(in, &features) ||
      !ReadVec(in, &log_priors) || !ReadVec(in, &means) ||
      !ReadVec(in, &variances) ||
      log_priors.size() != static_cast<size_t>(classes) ||
      means.size() != static_cast<size_t>(classes) * features ||
      variances.size() != means.size()) {
    return Status::InvalidArgument("GaussianNaiveBayes: malformed state blob");
  }
  num_classes_ = classes;
  num_features_ = features;
  log_priors_ = std::move(log_priors);
  means_ = std::move(means);
  variances_ = std::move(variances);
  return Status::OK();
}

}  // namespace autofp
