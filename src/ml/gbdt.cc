#include "ml/gbdt.h"

#include "util/serialize.h"
#include "util/simd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace autofp {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

double GbdtClassifier::Tree::Predict(const double* row) const {
  int index = 0;
  while (nodes[index].feature >= 0) {
    index = row[nodes[index].feature] <= nodes[index].threshold
                ? nodes[index].left
                : nodes[index].right;
  }
  return nodes[index].weight;
}

GbdtClassifier::Tree GbdtClassifier::BuildTree(
    const Matrix& features, const std::vector<std::vector<uint16_t>>& binned,
    const std::vector<double>& grad, const std::vector<double>& hess) {
  Tree tree;
  const double lambda = config_.xgb_lambda;
  const double eta = config_.xgb_eta;
  const size_t num_features = binned.size();

  struct WorkItem {
    std::vector<size_t> rows;
    int depth;
    int node_index;
  };

  auto leaf_weight = [&](double g, double h) {
    return -eta * g / (h + lambda);
  };

  // Root.
  std::vector<size_t> all_rows(grad.size());
  std::iota(all_rows.begin(), all_rows.end(), size_t{0});
  tree.nodes.emplace_back();
  std::vector<WorkItem> stack;
  stack.push_back({std::move(all_rows), 0, 0});

  while (!stack.empty()) {
    WorkItem item = std::move(stack.back());
    stack.pop_back();
    double g_total = 0.0, h_total = 0.0;
    for (size_t row : item.rows) {
      g_total += grad[row];
      h_total += hess[row];
    }
    TreeNode& node = tree.nodes[item.node_index];
    node.weight = leaf_weight(g_total, h_total);
    if (item.depth >= config_.xgb_max_depth || item.rows.size() < 2) continue;

    // Best histogram split across features. The (g, h) histogram is one
    // interleaved buffer reused across features and nodes: a bin's pair
    // shares a cache line, the zero-fill is vectorized, and the
    // per-feature allocations of the old two-array form are gone. The
    // accumulation order per bin is unchanged, so the resulting trees
    // are identical.
    double best_gain = 1e-10;
    int best_feature = -1;
    int best_bin = -1;
    const double parent_score = g_total * g_total / (h_total + lambda);
    for (size_t f = 0; f < num_features; ++f) {
      const size_t num_bins = bins_[f].size() + 1;
      if (num_bins < 2) continue;
      if (hist_.size() < 2 * num_bins) hist_.resize(2 * num_bins);
      simd::Fill(hist_.data(), 0.0, 2 * num_bins);
      const std::vector<uint16_t>& feature_bins = binned[f];
      for (size_t row : item.rows) {
        double* pair = hist_.data() + 2 * feature_bins[row];
        pair[0] += grad[row];
        pair[1] += hess[row];
      }
      double g_left = 0.0, h_left = 0.0;
      for (size_t b = 0; b + 1 < num_bins; ++b) {
        g_left += hist_[2 * b];
        h_left += hist_[2 * b + 1];
        double h_right = h_total - h_left;
        if (h_left < config_.xgb_min_child_weight ||
            h_right < config_.xgb_min_child_weight) {
          continue;
        }
        double g_right = g_total - g_left;
        double gain = g_left * g_left / (h_left + lambda) +
                      g_right * g_right / (h_right + lambda) - parent_score;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_bin = static_cast<int>(b);
        }
      }
    }
    if (best_feature < 0) continue;

    node.feature = best_feature;
    node.threshold = bins_[best_feature][best_bin];
    std::vector<size_t> left_rows, right_rows;
    const std::vector<uint16_t>& feature_bins = binned[best_feature];
    for (size_t row : item.rows) {
      if (feature_bins[row] <= static_cast<uint16_t>(best_bin)) {
        left_rows.push_back(row);
      } else {
        right_rows.push_back(row);
      }
    }
    item.rows.clear();
    item.rows.shrink_to_fit();
    tree.nodes.emplace_back();
    int left_index = static_cast<int>(tree.nodes.size() - 1);
    tree.nodes.emplace_back();
    int right_index = static_cast<int>(tree.nodes.size() - 1);
    tree.nodes[item.node_index].left = left_index;
    tree.nodes[item.node_index].right = right_index;
    stack.push_back({std::move(left_rows), item.depth + 1, left_index});
    stack.push_back({std::move(right_rows), item.depth + 1, right_index});
  }
  (void)features;
  return tree;
}

void GbdtClassifier::Train(const Matrix& features,
                           const std::vector<int>& labels, int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GE(num_classes, 2);
  num_classes_ = num_classes;
  num_outputs_ = num_classes == 2 ? 1 : num_classes;
  num_features_ = features.cols();
  trees_.clear();
  const size_t n = features.rows();

  // Quantile histogram bins per feature (computed once on training data).
  bins_.assign(num_features_, {});
  std::vector<std::vector<uint16_t>> binned(
      num_features_, std::vector<uint16_t>(n, 0));
  const int max_bins = std::max(config_.xgb_max_bins, 2);
  for (size_t f = 0; f < num_features_; ++f) {
    std::vector<double> column = features.Column(f);
    std::vector<double> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<double>& edges = bins_[f];
    if (static_cast<int>(sorted.size()) <= max_bins) {
      // One bin per distinct value; edge = value (left-inclusive).
      edges.assign(sorted.begin(), sorted.end() - (sorted.empty() ? 0 : 1));
    } else {
      for (int b = 1; b < max_bins; ++b) {
        size_t pos = sorted.size() * static_cast<size_t>(b) /
                     static_cast<size_t>(max_bins);
        edges.push_back(sorted[pos]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
    for (size_t r = 0; r < n; ++r) {
      // bin index = count of edges strictly below the value, so that
      // "bin <= b" at training time is exactly "value <= edges[b]" — the
      // predicate Tree::Predict applies to raw feature values.
      binned[f][r] = static_cast<uint16_t>(
          simd::LowerBoundIndex(edges.data(), edges.size(), column[r]));
    }
  }

  std::vector<double> scores(n * num_outputs_, 0.0);
  std::vector<double> grad(n), hess(n);
  for (int round = 0; round < config_.xgb_rounds; ++round) {
    if (num_outputs_ == 1) {
      for (size_t i = 0; i < n; ++i) {
        double p = Sigmoid(scores[i]);
        grad[i] = p - (labels[i] == 1 ? 1.0 : 0.0);
        hess[i] = std::max(p * (1.0 - p), 1e-6);
      }
      Tree tree = BuildTree(features, binned, grad, hess);
      for (size_t i = 0; i < n; ++i) {
        // Tree routing on binned data must match value routing; use the
        // original features for consistency with prediction time.
        scores[i] += tree.Predict(features.RowPtr(i));
      }
      trees_.push_back(std::move(tree));
    } else {
      // Softmax probabilities for this round.
      std::vector<double> probs(n * num_outputs_);
      for (size_t i = 0; i < n; ++i) {
        const double* s = scores.data() + i * num_outputs_;
        double max_score = *std::max_element(s, s + num_outputs_);
        double denom = 0.0;
        for (int k = 0; k < num_outputs_; ++k) {
          probs[i * num_outputs_ + k] =
              std::exp(std::clamp(s[k] - max_score, -500.0, 0.0));
          denom += probs[i * num_outputs_ + k];
        }
        for (int k = 0; k < num_outputs_; ++k) {
          probs[i * num_outputs_ + k] /= denom;
        }
      }
      for (int k = 0; k < num_outputs_; ++k) {
        for (size_t i = 0; i < n; ++i) {
          double p = probs[i * num_outputs_ + k];
          grad[i] = p - (labels[i] == k ? 1.0 : 0.0);
          hess[i] = std::max(p * (1.0 - p), 1e-6);
        }
        Tree tree = BuildTree(features, binned, grad, hess);
        for (size_t i = 0; i < n; ++i) {
          scores[i * num_outputs_ + k] += tree.Predict(features.RowPtr(i));
        }
        trees_.push_back(std::move(tree));
      }
    }
  }
}

std::vector<double> GbdtClassifier::RawScores(const double* row,
                                              size_t cols) const {
  AUTOFP_CHECK_EQ(cols, num_features_);
  std::vector<double> scores(num_outputs_, 0.0);
  for (size_t t = 0; t < trees_.size(); ++t) {
    scores[t % num_outputs_] += trees_[t].Predict(row);
  }
  return scores;
}

int GbdtClassifier::Predict(const double* row, size_t cols) const {
  AUTOFP_CHECK(!trees_.empty()) << "Predict before Train";
  std::vector<double> scores = RawScores(row, cols);
  if (num_outputs_ == 1) return scores[0] > 0.0 ? 1 : 0;
  return static_cast<int>(std::max_element(scores.begin(), scores.end()) -
                          scores.begin());
}

std::vector<int> GbdtClassifier::PredictBatch(const Matrix& features) const {
  AUTOFP_CHECK(!trees_.empty()) << "Predict before Train";
  AUTOFP_CHECK_EQ(features.cols(), num_features_);
  // Batch path: one scores buffer reused across every row instead of the
  // per-row vector the default Predict loop would allocate (the delta is
  // measured by bench_micro_models' BM_ModelPredictBatch).
  std::vector<int> predictions(features.rows());
  std::vector<double> scores(num_outputs_);
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.RowPtr(r);
    std::fill(scores.begin(), scores.end(), 0.0);
    for (size_t t = 0; t < trees_.size(); ++t) {
      scores[t % num_outputs_] += trees_[t].Predict(row);
    }
    predictions[r] =
        num_outputs_ == 1
            ? (scores[0] > 0.0 ? 1 : 0)
            : static_cast<int>(
                  std::max_element(scores.begin(), scores.end()) -
                  scores.begin());
  }
  return predictions;
}

void GbdtClassifier::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(!trees_.empty()) << "SaveState before Train";
  WritePod<int32_t>(out, num_classes_);
  WritePod<int32_t>(out, num_outputs_);
  WritePod<uint64_t>(out, num_features_);
  WritePod<double>(out, base_score_);
  WritePod<uint64_t>(out, trees_.size());
  // Nodes are written field-by-field: raw struct bytes would leak
  // indeterminate padding into the artifact's CRC-stable byte stream.
  for (const Tree& tree : trees_) {
    WritePod<uint64_t>(out, tree.nodes.size());
    for (const TreeNode& node : tree.nodes) {
      WritePod<int32_t>(out, node.feature);
      WritePod<double>(out, node.threshold);
      WritePod<int32_t>(out, node.left);
      WritePod<int32_t>(out, node.right);
      WritePod<double>(out, node.weight);
    }
  }
}

Status GbdtClassifier::LoadState(std::istream& in) {
  const Status malformed =
      Status::InvalidArgument("GbdtClassifier: malformed state blob");
  int32_t classes = 0, outputs = 0;
  uint64_t features = 0, num_trees = 0;
  double base_score = 0.0;
  if (!ReadPod(in, &classes) || classes < 2 || !ReadPod(in, &outputs) ||
      outputs < 1 || !ReadPod(in, &features) || !ReadPod(in, &base_score) ||
      !ReadPod(in, &num_trees) || num_trees == 0 ||
      num_trees > kMaxSerializedElements) {
    return malformed;
  }
  std::vector<Tree> trees(num_trees);
  for (Tree& tree : trees) {
    uint64_t num_nodes = 0;
    if (!ReadPod(in, &num_nodes) || num_nodes > kMaxSerializedElements) {
      return malformed;
    }
    tree.nodes.resize(num_nodes);
    for (TreeNode& node : tree.nodes) {
      if (!ReadPod(in, &node.feature) || !ReadPod(in, &node.threshold) ||
          !ReadPod(in, &node.left) || !ReadPod(in, &node.right) ||
          !ReadPod(in, &node.weight)) {
        return malformed;
      }
    }
  }
  num_classes_ = classes;
  num_outputs_ = outputs;
  num_features_ = features;
  base_score_ = base_score;
  trees_ = std::move(trees);
  bins_.clear();  // training-only state, not part of the artifact.
  return Status::OK();
}

}  // namespace autofp
