#include "ml/mlp_classifier.h"

#include "util/serialize.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace autofp {

void MlpClassifier::Train(const Matrix& features,
                          const std::vector<int>& labels, int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GE(num_classes, 2);
  num_classes_ = num_classes;
  Rng rng(config_.seed);

  MlpNetConfig net_config;
  net_config.input_dim = features.cols();
  net_config.hidden_dims = {static_cast<size_t>(config_.mlp_hidden)};
  net_config.output_dim = static_cast<size_t>(num_classes);
  net_.emplace(net_config, &rng);

  AdamConfig adam;
  adam.learning_rate = config_.mlp_step;
  const size_t n = features.rows();
  const size_t batch_size =
      std::min<size_t>(static_cast<size_t>(config_.mlp_batch), n);
  // Reused across every minibatch: one gather buffer instead of an
  // allocation per step.
  Matrix inputs;
  std::vector<size_t> batch;
  for (int epoch = 0; epoch < config_.mlp_epochs; ++epoch) {
    std::vector<size_t> order = rng.Permutation(n);
    for (size_t start = 0; start < n; start += batch_size) {
      size_t end = std::min(start + batch_size, n);
      batch.assign(order.begin() + start, order.begin() + end);
      features.SelectRowsInto(batch, &inputs);
      Matrix logits = net_->Forward(inputs);
      // Softmax cross-entropy gradient: probs - onehot, averaged over batch.
      Matrix grad(logits.rows(), logits.cols());
      const double inv_batch = 1.0 / static_cast<double>(batch.size());
      for (size_t r = 0; r < logits.rows(); ++r) {
        const double* z = logits.RowPtr(r);
        double* g = grad.RowPtr(r);
        double max_logit = *std::max_element(z, z + num_classes);
        double denom = 0.0;
        for (int k = 0; k < num_classes; ++k) {
          g[k] = std::exp(std::clamp(z[k] - max_logit, -500.0, 0.0));
          denom += g[k];
        }
        int label = labels[batch[r]];
        for (int k = 0; k < num_classes; ++k) {
          g[k] = (g[k] / denom - (k == label ? 1.0 : 0.0)) * inv_batch;
        }
      }
      net_->ZeroGrads();
      net_->Backward(grad);
      net_->Step(adam);
    }
  }
}

std::vector<int> MlpClassifier::PredictBatch(const Matrix& features) const {
  AUTOFP_CHECK(net_.has_value()) << "Predict before Train";
  Matrix logits = net_->Infer(features);
  std::vector<int> predictions(features.rows());
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* z = logits.RowPtr(r);
    predictions[r] = static_cast<int>(
        std::max_element(z, z + num_classes_) - z);
  }
  return predictions;
}

int MlpClassifier::Predict(const double* row, size_t cols) const {
  Matrix single(1, cols);
  for (size_t c = 0; c < cols; ++c) single(0, c) = row[c];
  return PredictBatch(single)[0];
}

void MlpClassifier::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(net_.has_value()) << "SaveState before Train";
  WritePod<int32_t>(out, num_classes_);
  const MlpNetConfig& net_config = net_->config();
  WritePod<uint64_t>(out, net_config.input_dim);
  WritePod<uint64_t>(out, net_config.hidden_dims.size());
  for (size_t h : net_config.hidden_dims) WritePod<uint64_t>(out, h);
  WritePod<uint64_t>(out, net_config.output_dim);
  net_->SaveState(out);
}

Status MlpClassifier::LoadState(std::istream& in) {
  const Status malformed =
      Status::InvalidArgument("MlpClassifier: malformed state blob");
  int32_t classes = 0;
  MlpNetConfig net_config;
  uint64_t num_hidden = 0;
  if (!ReadPod(in, &classes) || classes < 2 ||
      !ReadPod(in, &net_config.input_dim) || net_config.input_dim == 0 ||
      !ReadPod(in, &num_hidden) || num_hidden > 64) {
    return malformed;
  }
  net_config.hidden_dims.resize(num_hidden);
  for (uint64_t i = 0; i < num_hidden; ++i) {
    if (!ReadPod(in, &net_config.hidden_dims[i])) return malformed;
  }
  if (!ReadPod(in, &net_config.output_dim) ||
      net_config.output_dim != static_cast<size_t>(classes)) {
    return malformed;
  }
  Rng rng(config_.seed);  // init values are overwritten by LoadState below.
  MlpNet net(net_config, &rng);
  Status loaded = net.LoadState(in);
  if (!loaded.ok()) return loaded;
  num_classes_ = classes;
  net_.emplace(std::move(net));
  return Status::OK();
}

}  // namespace autofp
