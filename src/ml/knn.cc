#include "ml/knn.h"

#include "util/serialize.h"

#include <algorithm>

namespace autofp {

void KnnClassifier::Train(const Matrix& features,
                          const std::vector<int>& labels, int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GT(features.rows(), 0u);
  train_features_ = features;
  train_labels_ = labels;
  num_classes_ = num_classes;
}

int KnnClassifier::Predict(const double* row, size_t cols) const {
  AUTOFP_CHECK(!train_labels_.empty()) << "Predict before Train";
  AUTOFP_CHECK_EQ(cols, train_features_.cols());
  const size_t n = train_features_.rows();
  const size_t k = std::min<size_t>(static_cast<size_t>(k_), n);
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, int>> distances(n);
  for (size_t i = 0; i < n; ++i) {
    const double* train_row = train_features_.RowPtr(i);
    double dist = 0.0;
    for (size_t c = 0; c < cols; ++c) {
      double d = row[c] - train_row[c];
      dist += d * d;
    }
    distances[i] = {dist, train_labels_[i]};
  }
  std::partial_sort(distances.begin(), distances.begin() + k,
                    distances.end());
  std::vector<int> votes(num_classes_, 0);
  for (size_t i = 0; i < k; ++i) votes[distances[i].second] += 1;
  // Majority vote; ties broken by the nearest neighbour among tied classes.
  int best_votes = *std::max_element(votes.begin(), votes.end());
  for (size_t i = 0; i < k; ++i) {
    if (votes[distances[i].second] == best_votes) {
      return distances[i].second;
    }
  }
  return distances[0].second;
}

void KnnClassifier::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(!train_labels_.empty()) << "SaveState before Train";
  WritePod<int32_t>(out, num_classes_);
  WriteMatrix(out, train_features_);
  WriteVec(out, train_labels_);
}

Status KnnClassifier::LoadState(std::istream& in) {
  int32_t classes = 0;
  Matrix features;
  std::vector<int> labels;
  if (!ReadPod(in, &classes) || classes < 2 || !ReadMatrix(in, &features) ||
      !ReadVec(in, &labels) || labels.size() != features.rows()) {
    return Status::InvalidArgument("KnnClassifier: malformed state blob");
  }
  num_classes_ = classes;
  train_features_ = std::move(features);
  train_labels_ = std::move(labels);
  return Status::OK();
}

}  // namespace autofp
