#include "ml/logistic_regression.h"

#include "util/serialize.h"
#include "util/simd.h"

#include <algorithm>
#include <cmath>

namespace autofp {

void LogisticRegression::Train(const Matrix& features,
                               const std::vector<int>& labels,
                               int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GE(num_classes, 2);
  num_classes_ = num_classes;
  num_features_ = features.cols();
  const size_t d = num_features_;
  const size_t n = features.rows();
  const size_t stride = d + 1;
  Param params;
  params.Resize(static_cast<size_t>(num_classes) * stride);

  AdamConfig adam;
  adam.learning_rate = config_.lr_step;
  std::vector<double> logits(num_classes);
  std::vector<double> probs(num_classes);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int epoch = 0; epoch < config_.lr_epochs; ++epoch) {
    params.ZeroGrad();
    for (size_t r = 0; r < n; ++r) {
      const double* row = features.RowPtr(r);
      double max_logit = -1e300;
      for (int k = 0; k < num_classes; ++k) {
        const double* w = params.value.data() + k * stride;
        const double sum = w[d] + simd::Dot(w, row, d);
        logits[k] = sum;
        if (sum > max_logit) max_logit = sum;
      }
      double denom = 0.0;
      for (int k = 0; k < num_classes; ++k) {
        probs[k] = std::exp(std::clamp(logits[k] - max_logit, -500.0, 0.0));
        denom += probs[k];
      }
      for (int k = 0; k < num_classes; ++k) {
        double residual = probs[k] / denom - (labels[r] == k ? 1.0 : 0.0);
        residual *= inv_n;
        if (residual == 0.0) continue;
        double* g = params.grad.data() + k * stride;
        simd::Axpy(residual, row, g, d);
        g[d] += residual;
      }
    }
    // L2 regularization on weights (not intercepts).
    if (config_.lr_l2 > 0.0) {
      for (int k = 0; k < num_classes; ++k) {
        double* g = params.grad.data() + k * stride;
        const double* w = params.value.data() + k * stride;
        simd::Axpy(config_.lr_l2, w, g, d);
      }
    }
    params.AdamStep(adam, epoch + 1);
  }
  weights_ = std::move(params.value);
}

std::vector<double> LogisticRegression::DecisionFunction(const double* row,
                                                         size_t cols) const {
  AUTOFP_CHECK_EQ(cols, num_features_);
  AUTOFP_CHECK_GT(num_classes_, 0) << "Predict before Train";
  const size_t stride = num_features_ + 1;
  std::vector<double> scores(num_classes_);
  for (int k = 0; k < num_classes_; ++k) {
    const double* w = weights_.data() + k * stride;
    scores[k] = w[num_features_] + simd::Dot(w, row, num_features_);
  }
  return scores;
}

int LogisticRegression::Predict(const double* row, size_t cols) const {
  std::vector<double> scores = DecisionFunction(row, cols);
  return static_cast<int>(std::max_element(scores.begin(), scores.end()) -
                          scores.begin());
}

void LogisticRegression::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(!weights_.empty()) << "SaveState before Train";
  WritePod<int32_t>(out, num_classes_);
  WritePod<uint64_t>(out, num_features_);
  WriteVec(out, weights_);
}

Status LogisticRegression::LoadState(std::istream& in) {
  int32_t classes = 0;
  uint64_t features = 0;
  std::vector<double> weights;
  if (!ReadPod(in, &classes) || classes < 2 || !ReadPod(in, &features) ||
      !ReadVec(in, &weights) ||
      weights.size() != static_cast<size_t>(classes) * (features + 1)) {
    return Status::InvalidArgument("LogisticRegression: malformed state blob");
  }
  num_classes_ = classes;
  num_features_ = features;
  weights_ = std::move(weights);
  return Status::OK();
}

}  // namespace autofp
