#include "ml/decision_tree.h"

#include "util/serialize.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

namespace autofp {

namespace {

/// Candidate feature columns for a split: all of them, or a random subset
/// of size max_features when in random-forest mode.
std::vector<size_t> CandidateFeatures(size_t num_cols, int max_features,
                                      Rng* rng) {
  if (max_features <= 0 ||
      static_cast<size_t>(max_features) >= num_cols || rng == nullptr) {
    std::vector<size_t> all(num_cols);
    std::iota(all.begin(), all.end(), size_t{0});
    return all;
  }
  return rng->SampleWithoutReplacement(num_cols,
                                       static_cast<size_t>(max_features));
}

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double score = -std::numeric_limits<double>::infinity();
  bool valid() const { return feature >= 0; }
};

}  // namespace

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

void DecisionTreeClassifier::Train(const Matrix& features,
                                   const std::vector<int>& labels,
                                   int num_classes) {
  AUTOFP_CHECK_EQ(features.rows(), labels.size());
  AUTOFP_CHECK_GT(features.rows(), 0u);
  nodes_.clear();
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  Build(features, labels, num_classes, &rows, 0, nullptr);
}

void DecisionTreeClassifier::TrainOnRows(const Matrix& features,
                                         const std::vector<int>& labels,
                                         int num_classes,
                                         const std::vector<size_t>& rows,
                                         Rng* rng) {
  AUTOFP_CHECK(!rows.empty());
  nodes_.clear();
  std::vector<size_t> mutable_rows = rows;
  Build(features, labels, num_classes, &mutable_rows, 0, rng);
}

int DecisionTreeClassifier::Build(const Matrix& features,
                                  const std::vector<int>& labels,
                                  int num_classes, std::vector<size_t>* rows,
                                  int depth, Rng* rng) {
  const size_t n = rows->size();
  std::vector<double> counts(num_classes, 0.0);
  for (size_t row : *rows) counts[labels[row]] += 1.0;
  int majority = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  auto make_leaf = [&]() {
    Node leaf;
    leaf.label = majority;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  bool pure = counts[majority] == static_cast<double>(n);
  if (pure || n < config_.min_samples_split ||
      (config_.max_depth >= 0 && depth >= config_.max_depth)) {
    return make_leaf();
  }

  // Parent gini (unnormalized weighted form is enough for comparing gains).
  auto gini_sum = [&](const std::vector<double>& c, double total) {
    if (total <= 0.0) return 0.0;
    double sum_sq = 0.0;
    for (double v : c) sum_sq += v * v;
    return total - sum_sq / total;  // total * gini.
  };
  double parent_impurity = gini_sum(counts, static_cast<double>(n));

  SplitCandidate best;
  std::vector<std::pair<double, int>> sorted(n);
  std::vector<double> left_counts(num_classes);
  for (size_t feature : CandidateFeatures(features.cols(),
                                          config_.max_features, rng)) {
    for (size_t i = 0; i < n; ++i) {
      sorted[i] = {features((*rows)[i], feature), labels[(*rows)[i]]};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;
    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_total = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_counts[sorted[i].second] += 1.0;
      left_total += 1.0;
      if (sorted[i].first == sorted[i + 1].first) continue;
      if (left_total < config_.min_samples_leaf ||
          n - left_total < config_.min_samples_leaf) {
        continue;
      }
      std::vector<double> right_counts(num_classes);
      for (int k = 0; k < num_classes; ++k) {
        right_counts[k] = counts[k] - left_counts[k];
      }
      double impurity = gini_sum(left_counts, left_total) +
                        gini_sum(right_counts,
                                 static_cast<double>(n) - left_total);
      double gain = parent_impurity - impurity;
      if (gain > best.score) {
        best.score = gain;
        best.feature = static_cast<int>(feature);
        best.threshold = (sorted[i].first + sorted[i + 1].first) / 2.0;
      }
    }
  }

  if (!best.valid() || best.score <= 1e-12) return make_leaf();

  std::vector<size_t> left_rows, right_rows;
  for (size_t row : *rows) {
    if (features(row, best.feature) <= best.threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();
  rows->clear();
  rows->shrink_to_fit();

  Node node;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.label = majority;
  nodes_.push_back(node);
  int index = static_cast<int>(nodes_.size() - 1);
  int left = Build(features, labels, num_classes, &left_rows, depth + 1, rng);
  int right =
      Build(features, labels, num_classes, &right_rows, depth + 1, rng);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

int DecisionTreeClassifier::Predict(const double* row, size_t cols) const {
  AUTOFP_CHECK(!nodes_.empty()) << "Predict before Train";
  // Root is always node 0 (Build pushes parents before children only for
  // leaves; the first node created by the outer call is the root when the
  // tree is a single leaf, otherwise the root split node is created first).
  int index = 0;
  while (nodes_[index].feature >= 0) {
    size_t feature = static_cast<size_t>(nodes_[index].feature);
    AUTOFP_CHECK_LT(feature, cols);
    index = row[feature] <= nodes_[index].threshold ? nodes_[index].left
                                                    : nodes_[index].right;
  }
  return nodes_[index].label;
}

int DecisionTreeClassifier::depth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> walk = [&](int index) -> int {
    if (nodes_[index].feature < 0) return 0;
    return 1 + std::max(walk(nodes_[index].left), walk(nodes_[index].right));
  };
  return walk(0);
}

// ---------------------------------------------------------------------------
// Regressor
// ---------------------------------------------------------------------------

void DecisionTreeRegressor::Train(const Matrix& features,
                                  const std::vector<double>& targets) {
  AUTOFP_CHECK_EQ(features.rows(), targets.size());
  AUTOFP_CHECK_GT(features.rows(), 0u);
  nodes_.clear();
  std::vector<size_t> rows(features.rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  Build(features, targets, &rows, 0, nullptr);
}

void DecisionTreeRegressor::TrainOnRows(const Matrix& features,
                                        const std::vector<double>& targets,
                                        const std::vector<size_t>& rows,
                                        Rng* rng) {
  AUTOFP_CHECK(!rows.empty());
  nodes_.clear();
  std::vector<size_t> mutable_rows = rows;
  Build(features, targets, &mutable_rows, 0, rng);
}

int DecisionTreeRegressor::Build(const Matrix& features,
                                 const std::vector<double>& targets,
                                 std::vector<size_t>* rows, int depth,
                                 Rng* rng) {
  const size_t n = rows->size();
  double sum = 0.0, sum_sq = 0.0;
  for (size_t row : *rows) {
    sum += targets[row];
    sum_sq += targets[row] * targets[row];
  }
  double mean = sum / static_cast<double>(n);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size() - 1);
  };

  double sse = sum_sq - sum * sum / static_cast<double>(n);
  if (sse <= 1e-12 || n < config_.min_samples_split ||
      (config_.max_depth >= 0 && depth >= config_.max_depth)) {
    return make_leaf();
  }

  SplitCandidate best;
  std::vector<std::pair<double, double>> sorted(n);
  for (size_t feature : CandidateFeatures(features.cols(),
                                          config_.max_features, rng)) {
    for (size_t i = 0; i < n; ++i) {
      sorted[i] = {features((*rows)[i], feature), targets[(*rows)[i]]};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += sorted[i].second;
      if (sorted[i].first == sorted[i + 1].first) continue;
      double left_n = static_cast<double>(i + 1);
      double right_n = static_cast<double>(n) - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf) {
        continue;
      }
      double right_sum = sum - left_sum;
      // Maximizing sum of squared child means weighted by size minimizes
      // total SSE.
      double score =
          left_sum * left_sum / left_n + right_sum * right_sum / right_n;
      if (score > best.score) {
        best.score = score;
        best.feature = static_cast<int>(feature);
        best.threshold = (sorted[i].first + sorted[i + 1].first) / 2.0;
      }
    }
  }

  if (!best.valid()) return make_leaf();
  double gain = best.score - sum * sum / static_cast<double>(n);
  if (gain <= 1e-12) return make_leaf();

  std::vector<size_t> left_rows, right_rows;
  for (size_t row : *rows) {
    if (features(row, best.feature) <= best.threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();
  rows->clear();
  rows->shrink_to_fit();

  Node node;
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.value = mean;
  nodes_.push_back(node);
  int index = static_cast<int>(nodes_.size() - 1);
  int left = Build(features, targets, &left_rows, depth + 1, rng);
  int right = Build(features, targets, &right_rows, depth + 1, rng);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

double DecisionTreeRegressor::Predict(const double* row, size_t cols) const {
  AUTOFP_CHECK(!nodes_.empty()) << "Predict before Train";
  int index = 0;
  while (nodes_[index].feature >= 0) {
    size_t feature = static_cast<size_t>(nodes_[index].feature);
    AUTOFP_CHECK_LT(feature, cols);
    index = row[feature] <= nodes_[index].threshold ? nodes_[index].left
                                                    : nodes_[index].right;
  }
  return nodes_[index].value;
}

void DecisionTreeClassifier::SaveState(std::ostream& out) const {
  AUTOFP_CHECK(!nodes_.empty()) << "SaveState before Train";
  WritePod<uint64_t>(out, nodes_.size());
  for (const Node& node : nodes_) {
    WritePod<int32_t>(out, node.feature);
    WritePod<double>(out, node.threshold);
    WritePod<int32_t>(out, node.left);
    WritePod<int32_t>(out, node.right);
    WritePod<int32_t>(out, node.label);
  }
}

Status DecisionTreeClassifier::LoadState(std::istream& in) {
  uint64_t num_nodes = 0;
  if (!ReadPod(in, &num_nodes) || num_nodes == 0 ||
      num_nodes > kMaxSerializedElements) {
    return Status::InvalidArgument(
        "DecisionTreeClassifier: malformed state blob");
  }
  std::vector<Node> nodes(num_nodes);
  for (Node& node : nodes) {
    if (!ReadPod(in, &node.feature) || !ReadPod(in, &node.threshold) ||
        !ReadPod(in, &node.left) || !ReadPod(in, &node.right) ||
        !ReadPod(in, &node.label)) {
      return Status::InvalidArgument(
          "DecisionTreeClassifier: malformed state blob");
    }
  }
  nodes_ = std::move(nodes);
  return Status::OK();
}

}  // namespace autofp
