#ifndef AUTOFP_ML_LDA_H_
#define AUTOFP_ML_LDA_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace autofp {

/// Linear discriminant analysis with a ridge-regularized pooled covariance
/// solved by Cholesky factorization. Used by the LandmarkLDA meta-feature.
class LdaClassifier : public Classifier {
 public:
  explicit LdaClassifier(double ridge) : ridge_(ridge) {
    AUTOFP_CHECK_GE(ridge, 0.0);
  }
  LdaClassifier() : LdaClassifier(1e-4) {}

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;
  int Predict(const double* row, size_t cols) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<LdaClassifier>(ridge_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  double ridge_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  /// Discriminant k scores x via w_k . x + b_k.
  std::vector<double> weights_;  ///< class-major [k * d + j].
  std::vector<double> biases_;   ///< per class.
};

}  // namespace autofp

#endif  // AUTOFP_ML_LDA_H_
