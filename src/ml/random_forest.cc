#include "ml/random_forest.h"

#include <cmath>

#include "util/stats.h"

namespace autofp {

void RandomForestRegressor::Train(const Matrix& features,
                                  const std::vector<double>& targets) {
  AUTOFP_CHECK_EQ(features.rows(), targets.size());
  AUTOFP_CHECK_GT(features.rows(), 0u);
  trees_.clear();
  Rng rng(config_.seed);
  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features <= 0) {
    tree_config.max_features = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(features.cols()))));
  }
  const size_t n = features.rows();
  for (int t = 0; t < config_.num_trees; ++t) {
    std::vector<size_t> bootstrap(n);
    for (size_t i = 0; i < n; ++i) bootstrap[i] = rng.UniformIndex(n);
    DecisionTreeRegressor tree(tree_config);
    Rng tree_rng = rng.Fork();
    tree.TrainOnRows(features, targets, bootstrap, &tree_rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::Predict(const double* row, size_t cols) const {
  return PredictWithUncertainty(row, cols).mean;
}

RandomForestRegressor::Prediction
RandomForestRegressor::PredictWithUncertainty(const double* row,
                                              size_t cols) const {
  AUTOFP_CHECK(trained()) << "Predict before Train";
  std::vector<double> outputs;
  outputs.reserve(trees_.size());
  for (const DecisionTreeRegressor& tree : trees_) {
    outputs.push_back(tree.Predict(row, cols));
  }
  Prediction prediction;
  MeanStd stats = ComputeMeanStd(outputs);
  prediction.mean = stats.mean;
  prediction.stddev = stats.stddev;
  return prediction;
}

}  // namespace autofp
