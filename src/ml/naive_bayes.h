#ifndef AUTOFP_ML_NAIVE_BAYES_H_
#define AUTOFP_ML_NAIVE_BAYES_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace autofp {

/// Gaussian naive Bayes: per-class, per-feature Gaussian likelihoods with
/// variance smoothing. Used by the LandmarkNaiveBayes meta-feature.
class GaussianNaiveBayes : public Classifier {
 public:
  GaussianNaiveBayes() = default;

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;
  int Predict(const double* row, size_t cols) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GaussianNaiveBayes>();
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  int num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> log_priors_;  ///< per class.
  std::vector<double> means_;       ///< class-major [k * d + j].
  std::vector<double> variances_;   ///< class-major [k * d + j].
};

}  // namespace autofp

#endif  // AUTOFP_ML_NAIVE_BAYES_H_
