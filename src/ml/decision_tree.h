#ifndef AUTOFP_ML_DECISION_TREE_H_
#define AUTOFP_ML_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "ml/model.h"
#include "util/random.h"

namespace autofp {

/// Shared CART growth limits.
struct TreeConfig {
  int max_depth = -1;             ///< -1 = unlimited.
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  /// If > 0, consider only this many randomly chosen features per split
  /// (random-forest mode). Requires an Rng at train time.
  int max_features = -1;
};

/// Binary CART decision tree, gini impurity. Used by the Table 1
/// meta-rule experiment, the landmarking meta-features and tests.
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(const TreeConfig& config)
      : config_(config) {}
  DecisionTreeClassifier() : DecisionTreeClassifier(TreeConfig{}) {}

  void Train(const Matrix& features, const std::vector<int>& labels,
             int num_classes) override;

  /// Random-forest variant: trains on the given row subset considering
  /// `config.max_features` random features per split.
  void TrainOnRows(const Matrix& features, const std::vector<int>& labels,
                   int num_classes, const std::vector<size_t>& rows,
                   Rng* rng);

  int Predict(const double* row, size_t cols) const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DecisionTreeClassifier>(config_);
  }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves.
    double threshold = 0.0;  ///< go left if value <= threshold.
    int left = -1;
    int right = -1;
    int label = 0;           ///< majority class (leaves).
  };

  int Build(const Matrix& features, const std::vector<int>& labels,
            int num_classes, std::vector<size_t>* rows, int depth, Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

/// CART regression tree (variance reduction). The base learner of the
/// random-forest surrogate used by SMAC.
class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(const TreeConfig& config)
      : config_(config) {}
  DecisionTreeRegressor() : DecisionTreeRegressor(TreeConfig{}) {}

  void Train(const Matrix& features, const std::vector<double>& targets);

  /// Random-forest variant (row subset + per-split feature subsampling).
  void TrainOnRows(const Matrix& features, const std::vector<double>& targets,
                   const std::vector<size_t>& rows, Rng* rng);

  double Predict(const double* row, size_t cols) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  ///< mean target (leaves).
  };

  int Build(const Matrix& features, const std::vector<double>& targets,
            std::vector<size_t>* rows, int depth, Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace autofp

#endif  // AUTOFP_ML_DECISION_TREE_H_
