#ifndef AUTOFP_ML_RANDOM_FOREST_H_
#define AUTOFP_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "util/random.h"

namespace autofp {

/// Bagged random-forest regressor: bootstrap rows + per-split feature
/// subsampling. The surrogate model SMAC fits over pipeline encodings
/// (Section 4.1.2); per-tree predictions expose the ensemble variance the
/// expected-improvement acquisition needs.
class RandomForestRegressor {
 public:
  struct Config {
    int num_trees = 20;
    TreeConfig tree;  ///< tree.max_features <= 0 means ceil(sqrt(d)).
    uint64_t seed = 13;
  };

  explicit RandomForestRegressor(const Config& config) : config_(config) {}
  RandomForestRegressor() : RandomForestRegressor(Config{}) {}

  void Train(const Matrix& features, const std::vector<double>& targets);

  /// Ensemble mean prediction.
  double Predict(const double* row, size_t cols) const;

  /// Mean and standard deviation across trees (for acquisition functions).
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Prediction PredictWithUncertainty(const double* row, size_t cols) const;

  bool trained() const { return !trees_.empty(); }

 private:
  Config config_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace autofp

#endif  // AUTOFP_ML_RANDOM_FOREST_H_
