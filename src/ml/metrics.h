#ifndef AUTOFP_ML_METRICS_H_
#define AUTOFP_ML_METRICS_H_

#include <vector>

#include "ml/model.h"
#include "util/matrix.h"

namespace autofp {

/// Fraction of matching predictions; 0 for empty input.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

/// Predicts with `model` and scores against `labels`.
double EvaluateAccuracy(const Classifier& model, const Matrix& features,
                        const std::vector<int>& labels);

}  // namespace autofp

#endif  // AUTOFP_ML_METRICS_H_
