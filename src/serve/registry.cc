#include "serve/registry.h"

#include <utility>

namespace autofp {

Status ArtifactRegistry::Swap(const std::string& path) {
  // Load outside the lock: reading and validating an artifact is the slow
  // part, and Acquire() must never block behind disk I/O.
  Predictor::LoadResult loaded = Predictor::Load(path, options_);
  if (!loaded.ok()) return loaded.status();
  std::shared_ptr<const Predictor> fresh(loaded.TakePredictor());
  std::lock_guard<std::mutex> lock(mutex_);
  current_ = std::move(fresh);  // the swap: one pointer exchange.
  path_ = path;
  ++generation_;
  return Status::OK();
}

Status ArtifactRegistry::Reload() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = path_;
  }
  if (path.empty()) {
    return Status::NotFound("nothing loaded yet, so nothing to reload");
  }
  return Swap(path);
}

std::shared_ptr<const Predictor> ArtifactRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

RegistryInfo ArtifactRegistry::Info() const {
  std::shared_ptr<const Predictor> live;
  RegistryInfo info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live = current_;
    info.generation = generation_;
    info.path = path_;
  }
  if (live != nullptr) {
    info.pipeline = live->spec().ToString();
    info.model = ModelKindName(live->model_config().kind);
  }
  return info;
}

}  // namespace autofp
