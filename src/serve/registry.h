#ifndef AUTOFP_SERVE_REGISTRY_H_
#define AUTOFP_SERVE_REGISTRY_H_

/// The hot-swap artifact registry (see DESIGN.md "Network serving"): the
/// single mutable cell between artifact files on disk and live serving
/// traffic. `Acquire()` hands out `shared_ptr<const Predictor>` — the
/// Predictor is immutable after load (PRs 4-5), so a request path that
/// acquired a predictor can keep scoring through it for as long as it
/// likes while `Swap()` publishes a replacement with one pointer
/// exchange. Old predictors die when their last in-flight batch drops the
/// reference; there is no drain barrier and no torn state by
/// construction.

#include <memory>
#include <mutex>
#include <string>

#include "serve/predictor.h"
#include "util/status.h"

namespace autofp {

/// Snapshot of what the registry currently serves.
struct RegistryInfo {
  long generation = 0;   ///< swaps that have succeeded so far.
  std::string path;      ///< artifact file behind the live predictor.
  std::string pipeline;  ///< live pipeline spec ("" when empty).
  std::string model;     ///< live model kind name ("" when empty).
};

/// Thread-safe. All predictors are built with the options fixed at
/// construction (worker threads are a deployment property, not an
/// artifact property).
class ArtifactRegistry {
 public:
  explicit ArtifactRegistry(Predictor::Options options = {})
      : options_(options) {}

  /// Loads `path` through the full artifact corruption taxonomy and, on
  /// success, atomically publishes the new predictor. On failure the
  /// previously published predictor keeps serving untouched and the
  /// load's typed status is returned (message embeds the ArtifactError
  /// name). Safe to call concurrently with Acquire() and itself.
  Status Swap(const std::string& path);

  /// Re-loads the artifact file behind the live predictor (the SIGHUP
  /// path). Fails with NotFound when nothing was ever loaded.
  Status Reload();

  /// The live predictor, or nullptr when nothing has been loaded yet.
  /// The returned reference stays valid (and immutable) across any
  /// number of concurrent swaps.
  std::shared_ptr<const Predictor> Acquire() const;

  RegistryInfo Info() const;

 private:
  const Predictor::Options options_;
  mutable std::mutex mutex_;
  std::shared_ptr<const Predictor> current_;
  std::string path_;
  long generation_ = 0;
};

}  // namespace autofp

#endif  // AUTOFP_SERVE_REGISTRY_H_
