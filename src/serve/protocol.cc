#include "serve/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/run_journal.h"  // Crc32

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace autofp {

namespace {

template <typename T>
void AppendPod(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPodAt(const std::string& bytes, size_t* pos, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kPredictCsv:
    case FrameType::kPredictDense:
    case FrameType::kSwap:
    case FrameType::kStats:
    case FrameType::kPing:
    case FrameType::kPredictions:
    case FrameType::kError:
    case FrameType::kSwapped:
    case FrameType::kStatsReport:
    case FrameType::kPong:
      return true;
  }
  return false;
}

/// CRC over the frame content after the magic: type, payload_len, payload.
uint32_t FrameCrc(uint8_t type, uint32_t payload_len,
                  const char* payload) {
  uint32_t crc = Crc32(&type, sizeof(type));
  crc = Crc32(&payload_len, sizeof(payload_len), crc);
  return Crc32(payload, payload_len, crc);
}

}  // namespace

const char* ServeErrorName(ServeError error) {
  switch (error) {
    case ServeError::kNone:
      return "OK";
    case ServeError::kBadMagic:
      return "BadMagic";
    case ServeError::kFrameTooLarge:
      return "FrameTooLarge";
    case ServeError::kBadCrc:
      return "BadCrc";
    case ServeError::kTruncated:
      return "Truncated";
    case ServeError::kBadType:
      return "BadType";
    case ServeError::kMalformedBody:
      return "MalformedBody";
    case ServeError::kSchemaMismatch:
      return "SchemaMismatch";
    case ServeError::kPredictFailed:
      return "PredictFailed";
    case ServeError::kBusy:
      return "Busy";
    case ServeError::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool IsConnectionFatal(ServeError error) {
  switch (error) {
    case ServeError::kBadMagic:
    case ServeError::kFrameTooLarge:
    case ServeError::kBadCrc:
    case ServeError::kTruncated:
      return true;
    default:
      return false;
  }
}

// --- Frame encoding ---------------------------------------------------------

void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  AUTOFP_CHECK_LE(payload.size(), kMaxFramePayload);
  const uint8_t type_byte = static_cast<uint8_t>(type);
  const uint32_t payload_len = static_cast<uint32_t>(payload.size());
  out->reserve(out->size() + payload.size() + 13);
  AppendPod(out, kFrameMagic);
  AppendPod(out, type_byte);
  AppendPod(out, payload_len);
  out->append(payload);
  AppendPod(out, FrameCrc(type_byte, payload_len, payload.data()));
}

void EncodePredictCsv(const std::string& csv_rows, std::string* out) {
  EncodeFrame(FrameType::kPredictCsv, csv_rows, out);
}

void EncodePredictDense(const Matrix& rows, std::string* out) {
  std::string payload;
  payload.reserve(8 + rows.rows() * rows.cols() * sizeof(double));
  AppendPod(&payload, static_cast<uint32_t>(rows.rows()));
  AppendPod(&payload, static_cast<uint32_t>(rows.cols()));
  payload.append(reinterpret_cast<const char*>(rows.Raw()),
                 rows.size() * sizeof(double));
  EncodeFrame(FrameType::kPredictDense, payload, out);
}

void EncodeSwap(const std::string& artifact_path, std::string* out) {
  EncodeFrame(FrameType::kSwap, artifact_path, out);
}

void EncodeStats(std::string* out) {
  EncodeFrame(FrameType::kStats, std::string(), out);
}

void EncodePing(std::string* out) {
  EncodeFrame(FrameType::kPing, std::string(), out);
}

void EncodeResponse(const ServeResponse& response, std::string* out) {
  switch (response.type) {
    case FrameType::kError: {
      std::string payload;
      AppendPod(&payload, static_cast<uint16_t>(response.error));
      payload.append(response.message);
      EncodeFrame(FrameType::kError, payload, out);
      return;
    }
    case FrameType::kPredictions: {
      std::string payload;
      payload.reserve(4 + response.predictions.size() * sizeof(int32_t));
      AppendPod(&payload,
                static_cast<uint32_t>(response.predictions.size()));
      payload.append(
          reinterpret_cast<const char*>(response.predictions.data()),
          response.predictions.size() * sizeof(int32_t));
      EncodeFrame(FrameType::kPredictions, payload, out);
      return;
    }
    case FrameType::kSwapped:
    case FrameType::kStatsReport:
      EncodeFrame(response.type, response.message, out);
      return;
    default:
      EncodeFrame(FrameType::kPong, std::string(), out);
      return;
  }
}

bool DecodeResponseFrame(const Frame& frame, ServeResponse* response) {
  *response = ServeResponse();
  response->type = frame.frame_type();
  switch (frame.frame_type()) {
    case FrameType::kPredictions: {
      size_t pos = 0;
      uint32_t count = 0;
      if (!ReadPodAt(frame.payload, &pos, &count)) return false;
      if (frame.payload.size() - pos != count * sizeof(int32_t)) return false;
      response->predictions.resize(count);
      std::memcpy(response->predictions.data(), frame.payload.data() + pos,
                  count * sizeof(int32_t));
      return true;
    }
    case FrameType::kError: {
      size_t pos = 0;
      uint16_t code = 0;
      if (!ReadPodAt(frame.payload, &pos, &code)) return false;
      response->error = static_cast<ServeError>(code);
      if (response->error == ServeError::kNone) return false;
      response->message = frame.payload.substr(pos);
      return true;
    }
    case FrameType::kSwapped:
    case FrameType::kStatsReport:
      response->message = frame.payload;
      return true;
    case FrameType::kPong:
      return frame.payload.empty();
    default:
      return false;
  }
}

// --- Incremental frame decoding ---------------------------------------------

void FrameDecoder::Feed(const char* data, size_t size) {
  if (bad_) return;
  // Compact the consumed prefix before it grows without bound.
  if (pos_ > 0 && (pos_ == buffer_.size() || pos_ > (64u << 10))) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Outcome FrameDecoder::Next(Frame* frame, ServeError* error,
                                         std::string* detail) {
  *error = ServeError::kNone;
  detail->clear();
  if (bad_) {
    *error = ServeError::kBadMagic;
    *detail = "stream already desynced";
    return Outcome::kBad;
  }
  const size_t available = buffer_.size() - pos_;
  // Fixed header: magic u32 | type u8 | payload_len u32.
  if (available < 9) return Outcome::kNeedMore;
  size_t pos = pos_;
  uint32_t magic = 0;
  uint8_t type = 0;
  uint32_t payload_len = 0;
  ReadPodAt(buffer_, &pos, &magic);
  ReadPodAt(buffer_, &pos, &type);
  ReadPodAt(buffer_, &pos, &payload_len);
  if (magic != kFrameMagic) {
    bad_ = true;
    *error = ServeError::kBadMagic;
    *detail = "frame does not start with the protocol magic";
    return Outcome::kBad;
  }
  if (payload_len > kMaxFramePayload) {
    bad_ = true;
    *error = ServeError::kFrameTooLarge;
    *detail = "declared payload of " + std::to_string(payload_len) +
              " bytes exceeds the " + std::to_string(kMaxFramePayload) +
              "-byte frame bound";
    return Outcome::kBad;
  }
  if (available < 9 + static_cast<size_t>(payload_len) + 4) {
    return Outcome::kNeedMore;
  }
  const char* payload = buffer_.data() + pos;
  pos += payload_len;
  uint32_t stored_crc = 0;
  ReadPodAt(buffer_, &pos, &stored_crc);
  if (stored_crc != FrameCrc(type, payload_len, payload)) {
    bad_ = true;
    *error = ServeError::kBadCrc;
    *detail = "frame CRC mismatch";
    return Outcome::kBad;
  }
  frame->type = type;
  frame->payload.assign(payload, payload_len);
  pos_ = pos;
  return Outcome::kFrame;
}

// --- Payload parsing and execution ------------------------------------------

bool ParseCsvRow(const std::string& line, std::vector<double>* cells,
                 std::string* reason) {
  cells->clear();
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    std::string cell = line.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    // Trim surrounding whitespace so "1.0, 2.0" parses.
    size_t first = cell.find_first_not_of(" \t\r");
    size_t last = cell.find_last_not_of(" \t\r");
    if (first == std::string::npos) {
      *reason = "empty cell";
      return false;
    }
    cell = cell.substr(first, last - first + 1);
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() + cell.size() || errno == ERANGE) {
      *reason = "non-numeric cell '" + cell + "'";
      return false;
    }
    cells->push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool ParseCsvRows(const std::string& text, Matrix* rows,
                  std::string* reason) {
  std::vector<std::vector<double>> parsed;
  size_t width = 0;
  size_t start = 0;
  long line_number = 0;
  while (start <= text.size()) {
    size_t newline = text.find('\n', start);
    const size_t end = newline == std::string::npos ? text.size() : newline;
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      if (newline == std::string::npos) break;
      continue;
    }
    std::vector<double> cells;
    std::string cell_reason;
    if (!ParseCsvRow(line, &cells, &cell_reason)) {
      *reason = "row " + std::to_string(line_number) + ": " + cell_reason;
      return false;
    }
    if (parsed.empty()) {
      width = cells.size();
    } else if (cells.size() != width) {
      *reason = "row " + std::to_string(line_number) + ": has " +
                std::to_string(cells.size()) + " columns, previous rows " +
                std::to_string(width);
      return false;
    }
    parsed.push_back(std::move(cells));
    if (newline == std::string::npos) break;
  }
  if (parsed.empty()) {
    *reason = "no data rows";
    return false;
  }
  rows->Resize(parsed.size(), width);
  for (size_t r = 0; r < parsed.size(); ++r) {
    std::copy(parsed[r].begin(), parsed[r].end(), rows->RowPtr(r));
  }
  return true;
}

bool FitRowsToSchema(Matrix* rows, uint64_t input_cols, std::string* reason) {
  if (rows->cols() == input_cols) return true;
  if (rows->cols() == input_cols + 1) {
    // Drop the trailing training-label column (`autofp --apply` dumps).
    Matrix narrowed(rows->rows(), input_cols);
    for (size_t r = 0; r < rows->rows(); ++r) {
      const double* src = rows->RowPtr(r);
      std::copy(src, src + input_cols, narrowed.RowPtr(r));
    }
    *rows = std::move(narrowed);
    return true;
  }
  *reason = "expected " + std::to_string(input_cols) + " columns, got " +
            std::to_string(rows->cols());
  return false;
}

ServeError ParseRequestFrame(const Frame& frame, ServeRequest* request,
                             std::string* detail) {
  detail->clear();
  if (!IsKnownFrameType(frame.type) ||
      static_cast<uint8_t>(frame.type) >= 64) {
    *detail =
        "unknown request type " + std::to_string(int{frame.type});
    return ServeError::kBadType;
  }
  request->type = frame.frame_type();
  request->rows = Matrix();
  request->text.clear();
  switch (request->type) {
    case FrameType::kPredictCsv: {
      std::string reason;
      if (!ParseCsvRows(frame.payload, &request->rows, &reason)) {
        *detail = reason;
        return ServeError::kMalformedBody;
      }
      return ServeError::kNone;
    }
    case FrameType::kPredictDense: {
      size_t pos = 0;
      uint32_t rows = 0, cols = 0;
      if (!ReadPodAt(frame.payload, &pos, &rows) ||
          !ReadPodAt(frame.payload, &pos, &cols)) {
        *detail = "dense block shorter than its 8-byte header";
        return ServeError::kMalformedBody;
      }
      if (rows == 0 || cols == 0) {
        *detail = "dense block declares an empty matrix";
        return ServeError::kMalformedBody;
      }
      const uint64_t cells = uint64_t{rows} * cols;
      if (cells * sizeof(double) != frame.payload.size() - pos) {
        *detail = "dense block declares " + std::to_string(rows) + "x" +
                  std::to_string(cols) + " but carries " +
                  std::to_string(frame.payload.size() - pos) +
                  " payload bytes";
        return ServeError::kMalformedBody;
      }
      request->rows.Resize(rows, cols);
      std::memcpy(request->rows.MutableRaw(), frame.payload.data() + pos,
                  cells * sizeof(double));
      return ServeError::kNone;
    }
    case FrameType::kSwap:
      if (frame.payload.empty()) {
        *detail = "swap frame carries no artifact path";
        return ServeError::kMalformedBody;
      }
      request->text = frame.payload;
      return ServeError::kNone;
    case FrameType::kStats:
    case FrameType::kPing:
      return ServeError::kNone;
    default:
      *detail = "frame type " + std::to_string(int{frame.type}) +
                " is a response, not a request";
      return ServeError::kBadType;
  }
}

ServeResponse ExecutePredictRows(const Predictor& predictor,
                                 const Matrix& rows, size_t shard_rows) {
  Result<std::vector<int>> predictions =
      predictor.PredictSharded(rows, shard_rows);
  if (!predictions.ok()) {
    const ServeError error =
        predictions.status().code() == StatusCode::kInvalidArgument
            ? ServeError::kSchemaMismatch
            : ServeError::kPredictFailed;
    return ServeResponse::Error(error, predictions.status().message());
  }
  ServeResponse response;
  response.type = FrameType::kPredictions;
  response.predictions.assign(predictions.value().begin(),
                              predictions.value().end());
  return response;
}

ServeResponse ExecuteRequest(const Predictor* predictor,
                             const ServeRequest& request, size_t shard_rows) {
  if (request.type == FrameType::kPing) {
    return ServeResponse();
  }
  if (predictor == nullptr) {
    return ServeResponse::Error(ServeError::kUnavailable,
                                "no artifact loaded");
  }
  switch (request.type) {
    case FrameType::kPredictCsv:
    case FrameType::kPredictDense: {
      Matrix rows = request.rows;
      std::string reason;
      if (!FitRowsToSchema(&rows, predictor->schema().input_cols, &reason)) {
        return ServeResponse::Error(ServeError::kSchemaMismatch, reason);
      }
      return ExecutePredictRows(*predictor, rows, shard_rows);
    }
    case FrameType::kStats: {
      ServeResponse response;
      response.type = FrameType::kStatsReport;
      response.message = FormatServeStats(predictor->stats());
      return response;
    }
    case FrameType::kSwap:
      return ServeResponse::Error(
          ServeError::kUnavailable,
          "this serving surface has no artifact registry to swap against");
    default:
      return ServeResponse::Error(ServeError::kBadType,
                                  "unsupported request type");
  }
}

std::string FormatServeStats(const ServeStats& stats) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "batches=%ld\nrows=%ld\nrows_per_sec=%.0f\np50_ms=%.3f\n"
                "p95_ms=%.3f\np99_ms=%.3f\n",
                stats.batches, stats.rows, stats.rows_per_second,
                stats.p50_ms, stats.p95_ms, stats.p99_ms);
  return line;
}

// --- Blocking client --------------------------------------------------------

BlockingFrameClient::~BlockingFrameClient() { Close(); }

void BlockingFrameClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

Status BlockingFrameClient::Connect(const std::string& host, int port,
                                    double timeout_seconds) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  struct timeval timeout;
  timeout.tv_sec = static_cast<long>(timeout_seconds);
  timeout.tv_usec =
      static_cast<long>((timeout_seconds - timeout.tv_sec) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status = Status::IoError("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    Close();
    return status;
  }
  return Status::OK();
}

Status BlockingFrameClient::SendBytes(const std::string& bytes) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status BlockingFrameClient::RecvFrame(Frame* frame) {
  if (fd_ < 0) return Status::Internal("client is not connected");
  ServeError error = ServeError::kNone;
  std::string detail;
  char chunk[16384];
  for (;;) {
    switch (decoder_.Next(frame, &error, &detail)) {
      case FrameDecoder::Outcome::kFrame:
        return Status::OK();
      case FrameDecoder::Outcome::kBad:
        return Status::InvalidArgument(std::string(ServeErrorName(error)) +
                                       ": " + detail);
      case FrameDecoder::Outcome::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError(decoder_.HasPartialFrame()
                                 ? "connection closed mid-frame"
                                 : "connection closed");
    }
    decoder_.Feed(chunk, static_cast<size_t>(n));
  }
}

Status BlockingFrameClient::RoundTrip(const std::string& request_bytes,
                                      ServeResponse* response) {
  Status sent = SendBytes(request_bytes);
  if (!sent.ok()) return sent;
  Frame frame;
  Status received = RecvFrame(&frame);
  if (!received.ok()) return received;
  if (!DecodeResponseFrame(frame, response)) {
    return Status::InvalidArgument("peer sent an unparseable response frame");
  }
  return Status::OK();
}

}  // namespace autofp
