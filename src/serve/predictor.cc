#include "serve/predictor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/timer.h"

namespace autofp {

void LatencyRecorder::Record(double seconds, long rows) {
  const int bucket = BucketIndex(seconds);
  std::lock_guard<std::mutex> lock(mutex_);
  counts_[bucket] += 1;
  batches_ += 1;
  rows_ += rows;
  busy_seconds_ += seconds;
}

int LatencyRecorder::BucketIndex(double seconds) {
  if (!(seconds > 1e-6)) return 0;
  const int bucket =
      static_cast<int>(std::log(seconds / 1e-6) / std::log(kGrowth));
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double LatencyRecorder::BucketValueMs(int bucket) {
  // Geometric midpoint of the bucket, in milliseconds.
  return 1e-3 * std::pow(kGrowth, bucket + 0.5);
}

ServeStats LatencyRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeStats stats;
  stats.batches = batches_;
  stats.rows = rows_;
  stats.busy_seconds = busy_seconds_;
  stats.rows_per_second =
      busy_seconds_ > 0.0 ? static_cast<double>(rows_) / busy_seconds_ : 0.0;
  if (batches_ == 0) return stats;
  auto percentile = [this](double fraction) {
    const long target = static_cast<long>(
        std::ceil(fraction * static_cast<double>(batches_)));
    long seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += counts_[b];
      if (seen >= target) return BucketValueMs(b);
    }
    return BucketValueMs(kNumBuckets - 1);
  };
  stats.p50_ms = percentile(0.50);
  stats.p95_ms = percentile(0.95);
  stats.p99_ms = percentile(0.99);
  return stats;
}

Predictor::LoadResult Predictor::Load(const std::string& path,
                                      const Options& options) {
  ArtifactReadResult read = ReadArtifact(path);
  if (!read.ok()) {
    // Fold the taxonomy name into the message so the single Status is
    // self-contained for callers that never look at artifact_error().
    Status status(read.status.code(),
                  std::string("[") + ArtifactErrorName(read.error) + "] " +
                      read.status.message());
    return LoadResult(read.error, std::move(status), nullptr);
  }
  return LoadResult(ArtifactError::kNone, Status::OK(),
                    FromArtifact(std::move(read.artifact), options));
}

std::unique_ptr<Predictor> Predictor::FromArtifact(LoadedArtifact artifact,
                                                   const Options& options) {
  return std::unique_ptr<Predictor>(
      new Predictor(std::move(artifact), options));
}

Predictor::Predictor(LoadedArtifact artifact, const Options& options)
    : schema_(std::move(artifact.schema)),
      pipeline_(FittedPipeline::FromFittedSteps(
          std::move(artifact.spec), std::move(artifact.fitted_steps))),
      model_config_(artifact.model_config),
      model_(std::move(artifact.model)),
      reference_stats_(std::move(artifact.reference_stats)) {
  AUTOFP_CHECK(model_ != nullptr);
  const int num_workers = std::max(options.num_threads, 1) - 1;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Predictor::~Predictor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Predictor::WorkerLoop() {
  // Per-worker shard scratch, reused across every task this worker runs:
  // after the first few shards it has seen the largest shard shape and
  // scoring stops allocating.
  Matrix scratch;
  for (;;) {
    std::function<void(Matrix*)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(&scratch);
  }
}

Status Predictor::ValidateSchema(const Matrix& rows) const {
  if (rows.cols() != schema_.input_cols) {
    return Status::InvalidArgument(
        "serving rows have " + std::to_string(rows.cols()) +
        " columns, artifact schema expects " +
        std::to_string(schema_.input_cols) + " (dataset '" +
        schema_.dataset_name + "')");
  }
  return Status::OK();
}

void Predictor::ScoreRange(const Matrix& rows, size_t begin, size_t end,
                           std::vector<int>* predictions,
                           Matrix* scratch) const {
  Stopwatch watch;
  // Copy the shard into the reusable scratch and run the whole transform
  // chain through it in place — no per-shard or per-stage allocation once
  // the scratch has grown to the largest shard.
  scratch->Resize(end - begin, rows.cols());
  for (size_t r = begin; r < end; ++r) {
    const double* src = rows.RowPtr(r);
    std::copy(src, src + rows.cols(), scratch->RowPtr(r - begin));
  }
  if (ChooseWorkingLayout(pipeline_.spec(), end - begin) ==
      Matrix::Layout::kColMajor) {
    // Large shard: run the chain through a column-major stage (the data
    // plane's layout policy), transposing back for the model. One stage
    // buffer per worker thread, reused like the shard scratch.
    static thread_local Matrix stage;
    stage.AssignWithLayout(*scratch, Matrix::Layout::kColMajor);
    pipeline_.TransformInPlace(stage);
    scratch->AssignWithLayout(stage, Matrix::Layout::kRowMajor);
  } else {
    pipeline_.TransformInPlace(*scratch);
  }
  std::vector<int> shard_predictions = model_->PredictBatch(*scratch);
  std::copy(shard_predictions.begin(), shard_predictions.end(),
            predictions->begin() + static_cast<long>(begin));
  latency_.Record(watch.ElapsedSeconds(), static_cast<long>(end - begin));
}

Result<std::vector<int>> Predictor::Predict(const Matrix& rows) const {
  Status valid = ValidateSchema(rows);
  if (!valid.ok()) return valid;
  std::vector<int> predictions(rows.rows());
  if (rows.rows() > 0) {
    Matrix scratch;
    ScoreRange(rows, 0, rows.rows(), &predictions, &scratch);
  }
  return predictions;
}

Result<std::vector<int>> Predictor::PredictSharded(const Matrix& rows,
                                                   size_t batch_rows) const {
  Status valid = ValidateSchema(rows);
  if (!valid.ok()) return valid;
  if (batch_rows == 0) batch_rows = 1;
  std::vector<int> predictions(rows.rows());
  if (rows.rows() == 0) return predictions;
  if (workers_.empty() || rows.rows() <= batch_rows) {
    Matrix scratch;
    ScoreRange(rows, 0, rows.rows(), &predictions, &scratch);
    return predictions;
  }

  // Per-call barrier (the parallel_evaluator pattern): enqueue one task
  // per shard, help is not needed — the caller blocks until the last
  // shard signals completion.
  struct Barrier {
    std::mutex mutex;
    std::condition_variable done;
    size_t remaining = 0;
  } barrier;
  barrier.remaining = (rows.rows() + batch_rows - 1) / batch_rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t begin = 0; begin < rows.rows(); begin += batch_rows) {
      const size_t end = std::min(begin + batch_rows, rows.rows());
      queue_.emplace_back([this, &rows, begin, end, &predictions,
                           &barrier](Matrix* scratch) {
        ScoreRange(rows, begin, end, &predictions, scratch);
        std::lock_guard<std::mutex> barrier_lock(barrier.mutex);
        if (--barrier.remaining == 0) barrier.done.notify_one();
      });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(barrier.mutex);
  barrier.done.wait(lock, [&barrier] { return barrier.remaining == 0; });
  return predictions;
}

}  // namespace autofp
