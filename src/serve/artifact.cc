#include "serve/artifact.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "core/run_journal.h"  // Crc32, Fnv1a64, HashCombine, DatasetFingerprint
#include "preprocess/pipeline_parse.h"
#include "util/fs.h"
#include "util/serialize.h"

namespace autofp {
namespace {

constexpr char kMagic[4] = {'A', 'F', 'P', 'A'};

// Section ids. Exactly one of each is required.
constexpr uint32_t kSchemaSection = 1;
constexpr uint32_t kPipelineSection = 2;
constexpr uint32_t kModelSection = 3;
constexpr uint32_t kStatsSection = 4;

// Upper bound on one section's payload; a declared length beyond it is
// corruption, not data (even a KNN model storing its training matrix
// stays far below this).
constexpr uint32_t kMaxSectionPayload = 1u << 30;

std::string EncodeSection(uint32_t id, const std::string& payload) {
  std::string out;
  AUTOFP_CHECK_LE(payload.size(), kMaxSectionPayload);
  const uint32_t length = static_cast<uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&id), sizeof(id));
  out.append(reinterpret_cast<const char*>(&length), sizeof(length));
  out.append(payload);
  const uint32_t crc = Crc32(out.data(), out.size());
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

void EncodeModelConfig(std::ostream& out, const ModelConfig& config) {
  WritePod<int32_t>(out, static_cast<int32_t>(config.kind));
  WritePod<double>(out, config.lr_l2);
  WritePod<int32_t>(out, config.lr_epochs);
  WritePod<double>(out, config.lr_step);
  WritePod<int32_t>(out, config.xgb_rounds);
  WritePod<int32_t>(out, config.xgb_max_depth);
  WritePod<double>(out, config.xgb_eta);
  WritePod<double>(out, config.xgb_lambda);
  WritePod<int32_t>(out, config.xgb_max_bins);
  WritePod<double>(out, config.xgb_min_child_weight);
  WritePod<int32_t>(out, config.mlp_hidden);
  WritePod<int32_t>(out, config.mlp_epochs);
  WritePod<double>(out, config.mlp_step);
  WritePod<int32_t>(out, config.mlp_batch);
  WritePod<uint64_t>(out, config.seed);
}

bool DecodeModelConfig(std::istream& in, ModelConfig* config) {
  int32_t kind = 0;
  if (!ReadPod(in, &kind) || kind < 0 || kind > 2) return false;
  config->kind = static_cast<ModelKind>(kind);
  return ReadPod(in, &config->lr_l2) && ReadPod(in, &config->lr_epochs) &&
         ReadPod(in, &config->lr_step) && ReadPod(in, &config->xgb_rounds) &&
         ReadPod(in, &config->xgb_max_depth) &&
         ReadPod(in, &config->xgb_eta) && ReadPod(in, &config->xgb_lambda) &&
         ReadPod(in, &config->xgb_max_bins) &&
         ReadPod(in, &config->xgb_min_child_weight) &&
         ReadPod(in, &config->mlp_hidden) &&
         ReadPod(in, &config->mlp_epochs) && ReadPod(in, &config->mlp_step) &&
         ReadPod(in, &config->mlp_batch) && ReadPod(in, &config->seed);
}

ArtifactReadResult Fail(ArtifactError error, std::string message) {
  ArtifactReadResult result;
  result.error = error;
  result.status = Status(error == ArtifactError::kIoError
                             ? StatusCode::kIoError
                             : StatusCode::kInvalidArgument,
                         std::move(message));
  return result;
}

}  // namespace

const char* ArtifactErrorName(ArtifactError error) {
  switch (error) {
    case ArtifactError::kNone:
      return "OK";
    case ArtifactError::kIoError:
      return "IoError";
    case ArtifactError::kBadMagic:
      return "BadMagic";
    case ArtifactError::kVersionMismatch:
      return "VersionMismatch";
    case ArtifactError::kCorruptHeader:
      return "CorruptHeader";
    case ArtifactError::kTruncated:
      return "Truncated";
    case ArtifactError::kCorruptSection:
      return "CorruptSection";
    case ArtifactError::kMalformedSection:
      return "MalformedSection";
    case ArtifactError::kMissingSection:
      return "MissingSection";
    case ArtifactError::kSchemaMismatch:
      return "SchemaMismatch";
    case ArtifactError::kBadState:
      return "BadState";
  }
  return "?";
}

ReferenceStats ComputeReferenceStats(const Matrix& features) {
  ReferenceStats stats;
  const size_t cols = features.cols();
  if (cols == 0) return stats;
  stats.mean.assign(cols, 0.0);
  stats.m2.assign(cols, 0.0);
  stats.min.assign(cols, std::numeric_limits<double>::infinity());
  stats.max.assign(cols, -std::numeric_limits<double>::infinity());
  for (size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.RowPtr(r);
    const double n = static_cast<double>(++stats.rows);
    for (size_t c = 0; c < cols; ++c) {
      const double value = row[c];
      const double delta = value - stats.mean[c];
      stats.mean[c] += delta / n;
      stats.m2[c] += delta * (value - stats.mean[c]);
      if (value < stats.min[c]) stats.min[c] = value;
      if (value > stats.max[c]) stats.max[c] = value;
    }
  }
  if (stats.rows == 0) {
    stats.min.assign(cols, 0.0);
    stats.max.assign(cols, 0.0);
  }
  return stats;
}

uint64_t SchemaFingerprint(const ArtifactSchema& schema) {
  uint64_t hash = Fnv1a64("afp-schema", 10);
  hash = HashCombine(hash, schema.input_cols);
  hash = HashCombine(hash, static_cast<uint64_t>(schema.num_classes));
  hash = HashCombine(hash, schema.transformed_cols);
  return hash;
}

Status WriteArtifact(const std::string& path, const ArtifactSchema& schema,
                     const FittedPipeline& pipeline,
                     const ModelConfig& model_config, const Classifier& model,
                     const ReferenceStats& reference_stats,
                     const ArtifactWriteOptions& options) {
  if (!reference_stats.empty() &&
      (reference_stats.cols() != schema.input_cols ||
       reference_stats.m2.size() != reference_stats.cols() ||
       reference_stats.min.size() != reference_stats.cols() ||
       reference_stats.max.size() != reference_stats.cols())) {
    return Status::InvalidArgument(
        "reference stats column count disagrees with the schema");
  }
  const uint64_t schema_fp = SchemaFingerprint(schema);
  const uint64_t section_fp = options.override_section_fingerprint != 0
                                  ? options.override_section_fingerprint
                                  : schema_fp;

  std::ostringstream schema_payload(std::ios::binary);
  WriteString(schema_payload, schema.dataset_name);
  WritePod<uint64_t>(schema_payload, schema.input_cols);
  WritePod<int32_t>(schema_payload, schema.num_classes);
  WritePod<uint64_t>(schema_payload, schema.transformed_cols);
  WritePod<uint64_t>(schema_payload, schema.dataset_fingerprint);
  WritePod<uint64_t>(schema_payload, schema_fp);

  std::ostringstream pipeline_payload(std::ios::binary);
  WritePod<uint64_t>(pipeline_payload, section_fp);
  WriteString(pipeline_payload, pipeline.spec().ToString());
  WritePod<uint32_t>(pipeline_payload,
                     static_cast<uint32_t>(pipeline.steps().size()));
  for (const std::unique_ptr<Preprocessor>& step : pipeline.steps()) {
    std::ostringstream blob(std::ios::binary);
    step->SaveState(blob);
    WriteString(pipeline_payload, blob.str());
  }

  std::ostringstream model_payload(std::ios::binary);
  WritePod<uint64_t>(model_payload, section_fp);
  EncodeModelConfig(model_payload, model_config);
  {
    std::ostringstream blob(std::ios::binary);
    model.SaveState(blob);
    WriteString(model_payload, blob.str());
  }

  std::ostringstream stats_payload(std::ios::binary);
  WritePod<uint64_t>(stats_payload, section_fp);
  WritePod<uint64_t>(stats_payload, reference_stats.rows);
  WriteVec(stats_payload, reference_stats.mean);
  WriteVec(stats_payload, reference_stats.m2);
  WriteVec(stats_payload, reference_stats.min);
  WriteVec(stats_payload, reference_stats.max);

  std::string preamble;
  preamble.append(kMagic, sizeof(kMagic));
  const uint32_t version = kArtifactVersion;
  const uint32_t num_sections = 4;
  preamble.append(reinterpret_cast<const char*>(&version), sizeof(version));
  preamble.append(reinterpret_cast<const char*>(&num_sections),
                  sizeof(num_sections));
  const uint32_t preamble_crc = Crc32(preamble.data(), preamble.size());
  preamble.append(reinterpret_cast<const char*>(&preamble_crc),
                  sizeof(preamble_crc));

  // Atomic + durable: a crash mid-export must leave either no artifact
  // or the complete previous one — a registry watching `path` (SIGHUP
  // reload, SWAP) must never load a torn file. rename + parent-dir fsync
  // give the same existence guarantee the run journal gets on Create.
  std::string bytes = std::move(preamble);
  bytes += EncodeSection(kSchemaSection, schema_payload.str());
  bytes += EncodeSection(kPipelineSection, pipeline_payload.str());
  bytes += EncodeSection(kModelSection, model_payload.str());
  bytes += EncodeSection(kStatsSection, stats_payload.str());
  return WriteFileAtomic(path, bytes);
}

ArtifactReadResult ReadArtifact(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) {
    return Fail(ArtifactError::kIoError, "cannot open artifact: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (file.bad()) {
    return Fail(ArtifactError::kIoError, "cannot read artifact: " + path);
  }

  // Preamble: magic, version, section count, CRC.
  const size_t kPreambleSize = sizeof(kMagic) + 3 * sizeof(uint32_t);
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Fail(ArtifactError::kBadMagic,
                "not an Auto-FP artifact (bad magic): " + path);
  }
  if (bytes.size() < kPreambleSize) {
    return Fail(ArtifactError::kTruncated,
                "artifact truncated inside the preamble: " + path);
  }
  uint32_t version = 0, num_sections = 0, preamble_crc = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  std::memcpy(&num_sections, bytes.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(num_sections));
  std::memcpy(&preamble_crc,
              bytes.data() + sizeof(kMagic) + 2 * sizeof(uint32_t),
              sizeof(preamble_crc));
  if (version != kArtifactVersion) {
    return Fail(ArtifactError::kVersionMismatch,
                "artifact version " + std::to_string(version) +
                    ", this build reads version " +
                    std::to_string(kArtifactVersion));
  }
  if (Crc32(bytes.data(), kPreambleSize - sizeof(uint32_t)) != preamble_crc) {
    return Fail(ArtifactError::kCorruptHeader,
                "artifact preamble checksum mismatch: " + path);
  }

  // Sections.
  struct Section {
    uint32_t id = 0;
    std::string payload;
  };
  std::vector<Section> sections;
  size_t pos = kPreambleSize;
  for (uint32_t s = 0; s < num_sections; ++s) {
    if (bytes.size() - pos < 2 * sizeof(uint32_t)) {
      return Fail(ArtifactError::kTruncated,
                  "artifact ends inside section " + std::to_string(s) +
                      "'s frame header");
    }
    uint32_t id = 0, length = 0;
    std::memcpy(&id, bytes.data() + pos, sizeof(id));
    std::memcpy(&length, bytes.data() + pos + sizeof(uint32_t),
                sizeof(length));
    if (length > kMaxSectionPayload) {
      return Fail(ArtifactError::kMalformedSection,
                  "section " + std::to_string(s) +
                      " declares an implausible payload length");
    }
    if (bytes.size() - pos - 2 * sizeof(uint32_t) <
        static_cast<size_t>(length) + sizeof(uint32_t)) {
      return Fail(ArtifactError::kTruncated,
                  "artifact ends inside section " + std::to_string(s));
    }
    const size_t frame_size = 2 * sizeof(uint32_t) + length;
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + pos + frame_size,
                sizeof(stored_crc));
    if (Crc32(bytes.data() + pos, frame_size) != stored_crc) {
      return Fail(ArtifactError::kCorruptSection,
                  "section " + std::to_string(s) + " (id " +
                      std::to_string(id) + ") checksum mismatch");
    }
    Section section;
    section.id = id;
    section.payload.assign(bytes.data() + pos + 2 * sizeof(uint32_t), length);
    sections.push_back(std::move(section));
    pos += frame_size + sizeof(uint32_t);
  }
  if (pos != bytes.size()) {
    return Fail(ArtifactError::kMalformedSection,
                std::to_string(bytes.size() - pos) +
                    " trailing bytes after the last section");
  }
  auto find_section = [&sections](uint32_t id) -> const std::string* {
    const std::string* found = nullptr;
    for (const Section& section : sections) {
      if (section.id != id) continue;
      if (found != nullptr) return nullptr;  // duplicate
      found = &section.payload;
    }
    return found;
  };

  ArtifactReadResult result;
  LoadedArtifact& artifact = result.artifact;

  // Schema section.
  const std::string* schema_payload = find_section(kSchemaSection);
  if (schema_payload == nullptr) {
    return Fail(ArtifactError::kMissingSection,
                "schema section missing or duplicated");
  }
  uint64_t stored_schema_fp = 0;
  {
    std::istringstream in(*schema_payload, std::ios::binary);
    int32_t num_classes = 0;
    if (!ReadString(in, &artifact.schema.dataset_name) ||
        !ReadPod(in, &artifact.schema.input_cols) ||
        !ReadPod(in, &num_classes) || num_classes < 2 ||
        !ReadPod(in, &artifact.schema.transformed_cols) ||
        !ReadPod(in, &artifact.schema.dataset_fingerprint) ||
        !ReadPod(in, &stored_schema_fp) || in.peek() != EOF) {
      return Fail(ArtifactError::kMalformedSection,
                  "schema section does not parse");
    }
    artifact.schema.num_classes = num_classes;
  }
  const uint64_t schema_fp = SchemaFingerprint(artifact.schema);
  if (stored_schema_fp != schema_fp) {
    return Fail(ArtifactError::kSchemaMismatch,
                "schema section fingerprint disagrees with its own fields");
  }

  // Pipeline section.
  const std::string* pipeline_payload = find_section(kPipelineSection);
  if (pipeline_payload == nullptr) {
    return Fail(ArtifactError::kMissingSection,
                "pipeline section missing or duplicated");
  }
  {
    std::istringstream in(*pipeline_payload, std::ios::binary);
    uint64_t section_fp = 0;
    std::string spec_text;
    uint32_t num_steps = 0;
    if (!ReadPod(in, &section_fp) || !ReadString(in, &spec_text) ||
        !ReadPod(in, &num_steps)) {
      return Fail(ArtifactError::kMalformedSection,
                  "pipeline section does not parse");
    }
    if (section_fp != schema_fp) {
      return Fail(ArtifactError::kSchemaMismatch,
                  "pipeline section was written for a different schema "
                  "(fingerprint mismatch)");
    }
    Result<PipelineSpec> spec = ParsePipelineSpec(spec_text);
    if (!spec.ok() || spec.value().steps.size() != num_steps) {
      return Fail(ArtifactError::kMalformedSection,
                  "pipeline section spec '" + spec_text + "' does not parse");
    }
    artifact.spec = std::move(spec).value();
    for (uint32_t i = 0; i < num_steps; ++i) {
      std::string blob;
      if (!ReadString(in, &blob)) {
        return Fail(ArtifactError::kMalformedSection,
                    "pipeline section is missing step " + std::to_string(i) +
                        "'s state blob");
      }
      std::unique_ptr<Preprocessor> step =
          MakePreprocessor(artifact.spec.steps[i]);
      std::istringstream blob_in(blob, std::ios::binary);
      Status loaded = step->LoadState(blob_in);
      if (loaded.ok() && blob_in.peek() != EOF) {
        loaded = Status::InvalidArgument(step->name() +
                                         ": trailing bytes in state blob");
      }
      if (!loaded.ok()) {
        result = Fail(ArtifactError::kBadState, loaded.message());
        return result;
      }
      artifact.fitted_steps.push_back(std::move(step));
    }
    if (in.peek() != EOF) {
      return Fail(ArtifactError::kMalformedSection,
                  "trailing bytes in the pipeline section");
    }
  }

  // Model section.
  const std::string* model_payload = find_section(kModelSection);
  if (model_payload == nullptr) {
    return Fail(ArtifactError::kMissingSection,
                "model section missing or duplicated");
  }
  {
    std::istringstream in(*model_payload, std::ios::binary);
    uint64_t section_fp = 0;
    std::string blob;
    if (!ReadPod(in, &section_fp)) {
      return Fail(ArtifactError::kMalformedSection,
                  "model section does not parse");
    }
    if (section_fp != schema_fp) {
      return Fail(ArtifactError::kSchemaMismatch,
                  "model section was written for a different schema "
                  "(fingerprint mismatch)");
    }
    if (!DecodeModelConfig(in, &artifact.model_config) ||
        !ReadString(in, &blob) || in.peek() != EOF) {
      return Fail(ArtifactError::kMalformedSection,
                  "model section does not parse");
    }
    artifact.model = MakeClassifier(artifact.model_config);
    std::istringstream blob_in(blob, std::ios::binary);
    Status loaded = artifact.model->LoadState(blob_in);
    if (loaded.ok() && blob_in.peek() != EOF) {
      loaded = Status::InvalidArgument(
          "model state blob carries trailing bytes");
    }
    if (!loaded.ok()) {
      return Fail(ArtifactError::kBadState, loaded.message());
    }
  }

  // Reference-stats section.
  const std::string* stats_payload = find_section(kStatsSection);
  if (stats_payload == nullptr) {
    return Fail(ArtifactError::kMissingSection,
                "reference-stats section missing or duplicated");
  }
  {
    std::istringstream in(*stats_payload, std::ios::binary);
    uint64_t section_fp = 0;
    ReferenceStats& stats = artifact.reference_stats;
    if (!ReadPod(in, &section_fp)) {
      return Fail(ArtifactError::kMalformedSection,
                  "reference-stats section does not parse");
    }
    if (section_fp != schema_fp) {
      return Fail(ArtifactError::kSchemaMismatch,
                  "reference-stats section was written for a different "
                  "schema (fingerprint mismatch)");
    }
    if (!ReadPod(in, &stats.rows) || !ReadVec(in, &stats.mean) ||
        !ReadVec(in, &stats.m2) || !ReadVec(in, &stats.min) ||
        !ReadVec(in, &stats.max) || in.peek() != EOF ||
        stats.m2.size() != stats.mean.size() ||
        stats.min.size() != stats.mean.size() ||
        stats.max.size() != stats.mean.size() ||
        (!stats.empty() && stats.cols() != artifact.schema.input_cols)) {
      return Fail(ArtifactError::kMalformedSection,
                  "reference-stats section does not parse");
    }
  }
  return result;
}

Result<ArtifactSchema> ExportArtifact(const std::string& path,
                                      const Dataset& data,
                                      const PipelineSpec& spec,
                                      const ModelConfig& model_config) {
  Status valid = data.Validate();
  if (!valid.ok()) return valid;
  FittedPipeline pipeline = FittedPipeline::Fit(spec, data.features);
  Matrix transformed = pipeline.Transform(data.features);
  for (size_t i = 0; i < transformed.size(); ++i) {
    const double value = transformed.Raw()[i];
    if (!std::isfinite(value)) {
      return Status::OutOfRange(
          "pipeline '" + spec.ToString() +
          "' produced non-finite output on the export data; refusing to "
          "train and ship a model on it");
    }
  }
  std::unique_ptr<Classifier> model = MakeClassifier(model_config);
  model->Train(transformed, data.labels, data.num_classes);

  ArtifactSchema schema;
  schema.dataset_name = data.name;
  schema.input_cols = data.num_cols();
  schema.num_classes = data.num_classes;
  schema.transformed_cols = transformed.cols();
  schema.dataset_fingerprint = DatasetFingerprint(data);
  // The drift baseline is computed on the *input* features (pre-pipeline):
  // the serve loop compares raw serving rows against it.
  Status written = WriteArtifact(path, schema, pipeline, model_config, *model,
                                 ComputeReferenceStats(data.features));
  if (!written.ok()) return written;
  return schema;
}

}  // namespace autofp
