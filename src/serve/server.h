#ifndef AUTOFP_SERVE_SERVER_H_
#define AUTOFP_SERVE_SERVER_H_

/// The concurrent serving front end (see DESIGN.md "Network serving").
/// Two threads turn socket bytes into PredictSharded calls:
///
///   I/O thread    epoll (poll(2) fallback / opt-in) over the listen
///                 socket and every connection; decodes frames
///                 (serve/protocol.h), applies admission control, and
///                 flushes response bytes. Never blocks on scoring.
///   batch thread  pops parsed requests FIFO, coalesces pending predict
///                 requests into one matrix (bounded by max_batch_rows,
///                 waiting at most max_delay_us for stragglers), scores
///                 the whole micro-batch with ONE Acquire()'d predictor
///                 through PredictSharded, and splits the answers back
///                 per request.
///
/// Because every response in a micro-batch comes from exactly one
/// registry acquisition, a SWAP landing under live traffic can only
/// produce whole-batch old-artifact or whole-batch new-artifact answers —
/// never a torn mix. Responses flow strictly FIFO per connection
/// (admission rejections included), so pipelined clients stay in sync.
/// Past `max_queue_rows` pending rows the server sheds load with a typed
/// BUSY response instead of queueing without bound.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/registry.h"
#include "util/status.h"

namespace autofp {

/// Post-scoring tap on the batch thread: called once per successfully
/// scored micro-batch with the batch's input rows, the predictions, and
/// the predictor that produced them (the one Acquire() covering the whole
/// batch). Implementations run synchronously on the batch thread — keep
/// them cheap (the streaming drift monitor is O(rows * cols) counter
/// updates) and do not block. Defined here, implemented by src/stream/'s
/// StreamController, so the serve layer never depends on the stream
/// layer.
class ServeBatchObserver {
 public:
  virtual ~ServeBatchObserver() = default;
  virtual void OnBatchScored(const Matrix& rows,
                             const std::vector<int>& predictions,
                             const Predictor& predictor) = 0;
};

struct ServerOptions {
  /// Bind address. Port 0 binds an ephemeral port (read it back with
  /// port() after Start()).
  std::string host = "127.0.0.1";
  int port = 0;
  /// Micro-batcher: coalesce pending predict requests up to this many
  /// rows per PredictSharded call...
  size_t max_batch_rows = 2048;
  /// ...waiting at most this long for more requests once one is pending.
  /// 0 scores whatever is queued immediately.
  long max_delay_us = 200;
  /// Admission control: when the pending-row queue already holds this
  /// many rows, further predict requests get a BUSY response. A single
  /// request larger than the bound is always shed.
  size_t max_queue_rows = 1u << 16;
  /// Shard size handed to PredictSharded for each micro-batch.
  size_t shard_rows = 256;
  /// Listen backlog.
  int backlog = 128;
  /// Force the portable poll(2) event loop even where epoll is available
  /// (the fallback is always used on non-Linux builds).
  bool use_poll = false;
  /// Optional post-scoring tap (non-owning; must outlive the server).
  ServeBatchObserver* batch_observer = nullptr;
};

/// Monotonic counters over the server's lifetime.
struct ServerCounters {
  long connections_accepted = 0;
  long frames_received = 0;
  long predict_requests = 0;
  long predict_rows = 0;
  long micro_batches = 0;    ///< PredictSharded calls issued.
  long coalesced_requests = 0;  ///< predict requests that shared a batch.
  long busy_shed = 0;        ///< requests rejected by admission control.
  long protocol_errors = 0;  ///< malformed frames (fatal and non-fatal).
  long swaps = 0;            ///< SWAP/reload requests that succeeded.
  /// Connections the peer closed — EOF on read, or EPIPE/ECONNRESET on
  /// write (a client that vanished without reading its responses). A
  /// typed, counted connection close: with SIGPIPE ignored process-wide
  /// it can never kill the server, and it is not a protocol error.
  long peer_disconnects = 0;
};

class ServeSocketServer {
 public:
  /// `registry` must outlive the server; it is shared with whoever else
  /// wants to swap artifacts (SIGHUP handler, background re-search, ...).
  ServeSocketServer(ArtifactRegistry* registry, ServerOptions options);
  ~ServeSocketServer();
  ServeSocketServer(const ServeSocketServer&) = delete;
  ServeSocketServer& operator=(const ServeSocketServer&) = delete;

  /// Binds, listens, and spawns the I/O + batch threads.
  Status Start();

  /// Graceful drain: stop accepting, answer everything already queued,
  /// flush, close. Idempotent.
  void Stop();

  /// The bound port (after Start()).
  int port() const { return port_; }

  /// Queues a reload of the registry's current artifact (the SIGHUP
  /// path). Processed by the batch thread in queue order; the outcome is
  /// reported to stderr. Safe from signal-adjacent contexts (not
  /// async-signal-safe itself — call it from the main loop, not the
  /// handler).
  void RequestReload();

  ServerCounters counters() const;

 private:
  struct Connection;
  struct Pending;
  class Poller;

  void IoLoop();
  void BatchLoop();

  // --- I/O-thread helpers (own connections_). ---
  void AcceptNew();
  void HandleReadable(int fd);
  void HandleWritable(int fd);
  void CloseConnection(int fd);
  /// Parses every complete frame buffered on `conn`, enqueueing work.
  void DrainDecoder(Connection* conn);
  /// Queues `response` for `conn` in FIFO order with its requests.
  void EnqueueResolved(Connection* conn, ServeResponse response);
  void FlushConnection(Connection* conn);
  void UpdateInterest(Connection* conn);
  /// Moves completed responses from outgoing_ into connection buffers.
  void DrainOutgoing();
  void WakeIo();

  // --- Batch-thread helpers. ---
  /// Scores one micro-batch (requests all share a column count).
  void ExecuteBatch(std::vector<Pending> batch);
  void ExecuteAdmin(const Pending& item);
  /// Hands encoded response bytes back to the I/O thread.
  void PostResponse(uint64_t conn_id, const ServeResponse& response);

  ArtifactRegistry* const registry_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: batch thread -> I/O thread.
  int port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // I/O-thread state (no lock: touched only by the I/O thread after
  // Start()).
  std::unique_ptr<Poller> poller_;
  std::map<int, Connection> connections_;  ///< keyed by fd.
  uint64_t next_conn_id_ = 1;

  // Shared queues.
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Pending> pending_;
  size_t pending_rows_ = 0;
  bool batcher_done_ = false;
  struct Outgoing {
    uint64_t conn_id;
    std::string bytes;
  };
  std::deque<Outgoing> outgoing_;

  mutable std::mutex counters_mutex_;
  ServerCounters counters_;

  /// Batch-thread-only concat scratch; reused so steady-state coalescing
  /// stops allocating.
  Matrix batch_scratch_;

  std::thread io_thread_;
  std::thread batch_thread_;
};

}  // namespace autofp

#endif  // AUTOFP_SERVE_SERVER_H_
