#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace autofp {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl O_NONBLOCK: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool IsPredictType(FrameType type) {
  return type == FrameType::kPredictCsv || type == FrameType::kPredictDense;
}

}  // namespace

// --- Connection and queue item ----------------------------------------------

struct ServeSocketServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  FrameDecoder decoder;
  std::string outbuf;
  size_t outbuf_sent = 0;
  /// Requests queued whose responses have not yet reached outbuf.
  long inflight = 0;
  /// A connection-fatal protocol error happened: stop reading, flush the
  /// error response, then close.
  bool closing = false;
};

struct ServeSocketServer::Pending {
  /// 0 routes the outcome to the server log instead of a socket (the
  /// internal SIGHUP-reload path).
  uint64_t conn_id = 0;
  ServeRequest request;
  size_t rows = 0;  ///< cached request.rows.rows() for queue accounting.
  /// When true the response was decided at admission (BUSY, malformed
  /// frame, schema mismatch); it rides the queue so responses stay FIFO
  /// per connection, but costs the batcher nothing.
  bool resolved = false;
  ServeResponse ready;
};

// --- Poller: epoll where available, poll(2) as the portable fallback --------

class ServeSocketServer::Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
  };

  explicit Poller(bool use_poll) : use_poll_(use_poll) {
#ifdef __linux__
    if (!use_poll_) {
      epoll_fd_ = ::epoll_create1(0);
      // Fall back to poll(2) if the kernel refuses an epoll instance.
      if (epoll_fd_ < 0) use_poll_ = true;
    }
#else
    use_poll_ = true;
#endif
  }

  ~Poller() {
#ifdef __linux__
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  }

  void Add(int fd, bool read, bool write) {
    if (use_poll_) {
      interest_[fd] = Mask(read, write);
      return;
    }
#ifdef __linux__
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EpollMask(read, write);
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
#endif
  }

  void Update(int fd, bool read, bool write) {
    if (use_poll_) {
      interest_[fd] = Mask(read, write);
      return;
    }
#ifdef __linux__
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EpollMask(read, write);
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
#endif
  }

  void Remove(int fd) {
    if (use_poll_) {
      interest_.erase(fd);
      return;
    }
#ifdef __linux__
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  }

  void Wait(int timeout_ms, std::vector<Event>* events) {
    events->clear();
    if (use_poll_) {
      pollfds_.clear();
      for (const auto& [fd, mask] : interest_) {
        pollfds_.push_back({fd, mask, 0});
      }
      const int ready =
          ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
      if (ready <= 0) return;
      for (const struct pollfd& p : pollfds_) {
        if (p.revents == 0) continue;
        Event event;
        event.fd = p.fd;
        // Errors and hangups surface as readable: the next read() reports
        // the close/error and the connection is torn down there.
        event.readable =
            (p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0;
        event.writable = (p.revents & POLLOUT) != 0;
        events->push_back(event);
      }
      return;
    }
#ifdef __linux__
    struct epoll_event raw[64];
    const int ready = ::epoll_wait(epoll_fd_, raw, 64, timeout_ms);
    for (int i = 0; i < ready; ++i) {
      Event event;
      event.fd = raw[i].data.fd;
      event.readable =
          (raw[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
      event.writable = (raw[i].events & EPOLLOUT) != 0;
      events->push_back(event);
    }
#endif
  }

 private:
  static short Mask(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }
#ifdef __linux__
  static uint32_t EpollMask(bool read, bool write) {
    return (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
  }
  int epoll_fd_ = -1;
#endif

  bool use_poll_;
  std::map<int, short> interest_;     // poll mode
  std::vector<struct pollfd> pollfds_;  // poll mode scratch
};

// --- Lifecycle --------------------------------------------------------------

ServeSocketServer::ServeSocketServer(ArtifactRegistry* registry,
                                     ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  AUTOFP_CHECK(registry_ != nullptr);
}

ServeSocketServer::~ServeSocketServer() { Stop(); }

Status ServeSocketServer::Start() {
  AUTOFP_CHECK(!started_) << "Start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  auto fail = [this](std::string message) {
    Status status = Status::IoError(std::move(message));
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return status;
  };
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return fail("not an IPv4 bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + options_.host + ":" +
                std::to_string(options_.port) + ": " + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    return fail(std::string("getsockname: ") + std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  Status nonblocking = SetNonBlocking(listen_fd_);
  if (!nonblocking.ok()) return fail(nonblocking.message());
  if (::pipe(wake_fds_) != 0) {
    return fail(std::string("pipe: ") + std::strerror(errno));
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  poller_ = std::make_unique<Poller>(options_.use_poll);
  poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
  poller_->Add(wake_fds_[0], /*read=*/true, /*write=*/false);

  stop_.store(false);
  batcher_done_ = false;
  io_thread_ = std::thread([this] { IoLoop(); });
  batch_thread_ = std::thread([this] { BatchLoop(); });
  started_ = true;
  return Status::OK();
}

void ServeSocketServer::Stop() {
  if (!started_) return;
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_available_.notify_all();
  WakeIo();
  batch_thread_.join();
  WakeIo();  // batcher_done_ is now visible; make sure the I/O loop looks.
  io_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  poller_.reset();
  started_ = false;
}

void ServeSocketServer::RequestReload() {
  Pending reload;
  reload.conn_id = 0;
  reload.request.type = FrameType::kSwap;
  reload.request.text.clear();  // empty path = reload current
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(reload));
  }
  work_available_.notify_one();
}

ServerCounters ServeSocketServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void ServeSocketServer::WakeIo() {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
}

// --- I/O thread -------------------------------------------------------------

void ServeSocketServer::IoLoop() {
  std::vector<Poller::Event> events;
  bool listen_closed = false;
  std::chrono::steady_clock::time_point stop_deadline{};
  for (;;) {
    const bool stopping = stop_.load();
    poller_->Wait(stopping ? 10 : 100, &events);
    for (const Poller::Event& event : events) {
      if (event.fd == wake_fds_[0]) {
        char sink[256];
        while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (event.fd == listen_fd_) {
        if (!listen_closed) AcceptNew();
        continue;
      }
      if (event.readable) HandleReadable(event.fd);
      // The connection may have been closed by the read path.
      if (event.writable && connections_.count(event.fd) > 0) {
        HandleWritable(event.fd);
      }
    }
    DrainOutgoing();
    if (!stopping) continue;

    // Graceful drain: stop accepting, let the batcher answer everything
    // queued, flush every connection, then leave (with a grace bound so a
    // peer that never reads cannot wedge Stop()).
    if (!listen_closed) {
      poller_->Remove(listen_fd_);
      listen_closed = true;
      stop_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
    }
    bool flushed = true;
    for (const auto& [fd, conn] : connections_) {
      if (conn.inflight > 0 || conn.outbuf_sent < conn.outbuf.size()) {
        flushed = false;
        break;
      }
    }
    bool queues_empty;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queues_empty = batcher_done_ && outgoing_.empty();
    }
    if ((queues_empty && flushed) ||
        std::chrono::steady_clock::now() >= stop_deadline) {
      break;
    }
  }
  std::vector<int> open_fds;
  open_fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open_fds.push_back(fd);
  for (int fd : open_fds) CloseConnection(fd);
}

void ServeSocketServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: poll again.
    }
    SetNonBlocking(fd);
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd = fd;
    connections_.emplace(fd, std::move(conn));
    poller_->Add(fd, /*read=*/true, /*write=*/false);
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.connections_accepted;
    }
  }
}

void ServeSocketServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  poller_->Remove(fd);
  ::close(fd);
  connections_.erase(it);
}

void ServeSocketServer::HandleReadable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection* conn = &it->second;
  if (conn->closing) return;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->decoder.Feed(chunk, static_cast<size_t>(n));
      DrainDecoder(conn);
      if (conn->closing) break;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    }
    // Peer closed (or hard error). A close mid-frame is a typed protocol
    // error; there is no one left to answer, so it is only counted.
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      if (n == 0 && conn->decoder.HasPartialFrame()) {
        ++counters_.protocol_errors;
      }
      ++counters_.peer_disconnects;
    }
    CloseConnection(fd);
    return;
  }
  UpdateInterest(conn);
}

void ServeSocketServer::DrainDecoder(Connection* conn) {
  Frame frame;
  ServeError error = ServeError::kNone;
  std::string detail;
  while (!conn->closing) {
    const FrameDecoder::Outcome outcome =
        conn->decoder.Next(&frame, &error, &detail);
    if (outcome == FrameDecoder::Outcome::kNeedMore) return;
    if (outcome == FrameDecoder::Outcome::kBad) {
      // The stream is desynced: answer the typed error, then close once
      // every earlier in-flight response has flushed.
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.protocol_errors;
      }
      EnqueueResolved(conn, ServeResponse::Error(error, detail));
      conn->closing = true;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.frames_received;
    }
    Pending item;
    item.conn_id = conn->id;
    const ServeError parse_error =
        ParseRequestFrame(frame, &item.request, &detail);
    if (parse_error != ServeError::kNone) {
      // Well-framed but unusable: typed error, connection keeps going.
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.protocol_errors;
      }
      EnqueueResolved(conn, ServeResponse::Error(parse_error, detail));
      continue;
    }
    if (!IsPredictType(item.request.type)) {
      // Admin frames ride the same FIFO so swap/stats interleave cleanly
      // with predictions.
      ++conn->inflight;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.push_back(std::move(item));
      }
      work_available_.notify_one();
      continue;
    }
    // Predict admission: fit the rows to the live schema, then apply the
    // queue-depth bound.
    std::shared_ptr<const Predictor> live = registry_->Acquire();
    if (live == nullptr) {
      EnqueueResolved(conn, ServeResponse::Error(ServeError::kUnavailable,
                                                 "no artifact loaded"));
      continue;
    }
    std::string reason;
    if (!FitRowsToSchema(&item.request.rows, live->schema().input_cols,
                         &reason)) {
      EnqueueResolved(
          conn, ServeResponse::Error(ServeError::kSchemaMismatch, reason));
      continue;
    }
    item.rows = item.request.rows.rows();
    bool admitted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      admitted = pending_rows_ + item.rows <= options_.max_queue_rows;
      if (admitted) {
        pending_rows_ += item.rows;
        pending_.push_back(std::move(item));
      }
    }
    if (!admitted) {
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.busy_shed;
      }
      EnqueueResolved(
          conn,
          ServeResponse::Error(
              ServeError::kBusy,
              "pending queue is past its " +
                  std::to_string(options_.max_queue_rows) + "-row bound"));
      continue;
    }
    ++conn->inflight;
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.predict_requests;
      counters_.predict_rows += static_cast<long>(item.rows);
    }
    work_available_.notify_one();
  }
}

void ServeSocketServer::EnqueueResolved(Connection* conn,
                                        ServeResponse response) {
  // Pre-resolved answers still ride the pending queue: responses must
  // leave in request order even when some were decided at admission.
  Pending item;
  item.conn_id = conn->id;
  item.resolved = true;
  item.ready = std::move(response);
  ++conn->inflight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(std::move(item));
  }
  work_available_.notify_one();
}

void ServeSocketServer::HandleWritable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  FlushConnection(&it->second);
}

void ServeSocketServer::FlushConnection(Connection* conn) {
  while (conn->outbuf_sent < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->outbuf_sent,
               conn->outbuf.size() - conn->outbuf_sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EPIPE/ECONNRESET: the client went away without reading its
      // responses. MSG_NOSIGNAL (plus the process-wide SIGPIPE ignore)
      // turns that into a typed, counted close instead of a signal.
      if (errno == EPIPE || errno == ECONNRESET) {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.peer_disconnects;
      }
      CloseConnection(conn->fd);
      return;
    }
    conn->outbuf_sent += static_cast<size_t>(n);
  }
  if (conn->outbuf_sent == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outbuf_sent = 0;
    if (conn->closing && conn->inflight == 0) {
      CloseConnection(conn->fd);
      return;
    }
  }
  UpdateInterest(conn);
}

void ServeSocketServer::UpdateInterest(Connection* conn) {
  poller_->Update(conn->fd, /*read=*/!conn->closing,
                  /*write=*/conn->outbuf_sent < conn->outbuf.size());
}

void ServeSocketServer::DrainOutgoing() {
  std::deque<Outgoing> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready.swap(outgoing_);
  }
  for (Outgoing& out : ready) {
    // Find the connection by id; it may have closed while the batch ran.
    Connection* conn = nullptr;
    for (auto& [fd, candidate] : connections_) {
      if (candidate.id == out.conn_id) {
        conn = &candidate;
        break;
      }
    }
    if (conn == nullptr) continue;
    conn->outbuf.append(out.bytes);
    --conn->inflight;
    FlushConnection(conn);
  }
}

// --- Batch thread -----------------------------------------------------------

void ServeSocketServer::BatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return stop_.load() || !pending_.empty(); });
      if (pending_.empty()) break;  // stop_ and fully drained

      Pending first = std::move(pending_.front());
      pending_.pop_front();
      pending_rows_ -= first.rows;
      if (first.resolved || !IsPredictType(first.request.type)) {
        lock.unlock();
        if (first.resolved) {
          PostResponse(first.conn_id, first.ready);
        } else {
          ExecuteAdmin(first);
        }
        continue;
      }

      // Micro-batch window: take further same-width predicts off the
      // front until the row bound fills, waiting at most max_delay_us
      // for stragglers once one request is in hand.
      size_t batch_rows = first.rows;
      const size_t cols = first.request.rows.cols();
      batch.push_back(std::move(first));
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.max_delay_us);
      while (batch_rows < options_.max_batch_rows) {
        if (!pending_.empty()) {
          Pending& front = pending_.front();
          if (front.resolved || !IsPredictType(front.request.type) ||
              front.request.rows.cols() != cols) {
            break;
          }
          batch_rows += front.rows;
          pending_rows_ -= front.rows;
          batch.push_back(std::move(front));
          pending_.pop_front();
          continue;
        }
        if (stop_.load()) break;  // draining: don't wait for stragglers
        if (work_available_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
    ExecuteBatch(std::move(batch));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batcher_done_ = true;
  }
  WakeIo();
}

void ServeSocketServer::ExecuteBatch(std::vector<Pending> batch) {
  // One registry acquisition covers the whole micro-batch: every answer
  // below comes from exactly one artifact, so a concurrent swap can never
  // produce a torn mix within or across the batch's responses.
  std::shared_ptr<const Predictor> predictor = registry_->Acquire();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.micro_batches;
    if (batch.size() > 1) {
      counters_.coalesced_requests += static_cast<long>(batch.size());
    }
  }
  if (predictor == nullptr) {
    for (const Pending& item : batch) {
      PostResponse(item.conn_id,
                   ServeResponse::Error(ServeError::kUnavailable,
                                        "no artifact loaded"));
    }
    return;
  }
  const Matrix* rows = &batch[0].request.rows;
  if (batch.size() > 1) {
    size_t total_rows = 0;
    for (const Pending& item : batch) total_rows += item.rows;
    batch_scratch_.Resize(total_rows, batch[0].request.rows.cols());
    size_t at = 0;
    for (const Pending& item : batch) {
      const Matrix& part = item.request.rows;
      std::copy(part.Raw(), part.Raw() + part.size(),
                batch_scratch_.RowPtr(at));
      at += item.rows;
    }
    rows = &batch_scratch_;
  }
  ServeResponse scored =
      ExecutePredictRows(*predictor, *rows, options_.shard_rows);
  if (scored.ok() && options_.batch_observer != nullptr) {
    // Batch-thread-synchronous tap: rows/predictions are borrowed for the
    // duration of the call only (rows may alias the reusable scratch).
    options_.batch_observer->OnBatchScored(*rows, scored.predictions,
                                           *predictor);
  }
  if (!scored.ok()) {
    // The whole batch shares one width, so a schema failure (e.g. a swap
    // changed the input width between admission and scoring) applies to
    // every request in it.
    for (const Pending& item : batch) {
      PostResponse(item.conn_id, scored);
    }
    return;
  }
  size_t at = 0;
  for (const Pending& item : batch) {
    ServeResponse part;
    part.type = FrameType::kPredictions;
    part.predictions.assign(scored.predictions.begin() + at,
                            scored.predictions.begin() + at + item.rows);
    at += item.rows;
    PostResponse(item.conn_id, part);
  }
}

void ServeSocketServer::ExecuteAdmin(const Pending& item) {
  switch (item.request.type) {
    case FrameType::kSwap: {
      const Status swapped = item.request.text.empty()
                                 ? registry_->Reload()
                                 : registry_->Swap(item.request.text);
      if (swapped.ok()) {
        {
          std::lock_guard<std::mutex> lock(counters_mutex_);
          ++counters_.swaps;
        }
        const RegistryInfo info = registry_->Info();
        ServeResponse response;
        response.type = FrameType::kSwapped;
        response.message = "swapped generation=" +
                           std::to_string(info.generation) + " pipeline=[" +
                           info.pipeline + "] model=" + info.model +
                           " path=" + info.path;
        if (item.conn_id == 0) {
          std::fprintf(stderr, "reload: %s\n", response.message.c_str());
        } else {
          PostResponse(item.conn_id, response);
        }
        return;
      }
      if (item.conn_id == 0) {
        std::fprintf(stderr, "reload failed: %s\n",
                     swapped.ToString().c_str());
        return;
      }
      PostResponse(item.conn_id,
                   ServeResponse::Error(ServeError::kUnavailable,
                                        swapped.message()));
      return;
    }
    case FrameType::kStats: {
      const RegistryInfo info = registry_->Info();
      const ServerCounters counts = counters();
      std::shared_ptr<const Predictor> live = registry_->Acquire();
      std::string report;
      report += "generation=" + std::to_string(info.generation) + "\n";
      report += "artifact=" + info.path + "\n";
      report += "pipeline=[" + info.pipeline + "]\n";
      report += "model=" + info.model + "\n";
      if (live != nullptr) report += FormatServeStats(live->stats());
      report +=
          "connections_accepted=" + std::to_string(counts.connections_accepted) +
          "\nframes_received=" + std::to_string(counts.frames_received) +
          "\npredict_requests=" + std::to_string(counts.predict_requests) +
          "\npredict_rows=" + std::to_string(counts.predict_rows) +
          "\nmicro_batches=" + std::to_string(counts.micro_batches) +
          "\ncoalesced_requests=" + std::to_string(counts.coalesced_requests) +
          "\nbusy_shed=" + std::to_string(counts.busy_shed) +
          "\nprotocol_errors=" + std::to_string(counts.protocol_errors) +
          "\nswaps=" + std::to_string(counts.swaps) + "\n";
      ServeResponse response;
      response.type = FrameType::kStatsReport;
      response.message = std::move(report);
      PostResponse(item.conn_id, response);
      return;
    }
    case FrameType::kPing: {
      PostResponse(item.conn_id, ServeResponse());
      return;
    }
    default:
      PostResponse(item.conn_id,
                   ServeResponse::Error(ServeError::kBadType,
                                        "unsupported admin request"));
      return;
  }
}

void ServeSocketServer::PostResponse(uint64_t conn_id,
                                     const ServeResponse& response) {
  Outgoing out;
  out.conn_id = conn_id;
  EncodeResponse(response, &out.bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outgoing_.push_back(std::move(out));
  }
  WakeIo();
}

}  // namespace autofp
