#ifndef AUTOFP_SERVE_PROTOCOL_H_
#define AUTOFP_SERVE_PROTOCOL_H_

/// The serving wire protocol (see DESIGN.md "Network serving") — one typed
/// request/response surface shared by the stdin serve loop, the socket
/// front end (serve/server.h), and the load-generator client. A stream is
/// a sequence of length-prefixed binary frames:
///
///   u32 magic "AFPN" | u8 type | u32 payload_len | payload
///     | u32 crc32(type, payload_len, payload)
///
/// (host-endian, like the artifact format: the protocol serves
/// machine-local deployments, not interchange). Predict payloads carry
/// either UTF-8 CSV rows or packed-float row blocks; admin frames carry
/// SWAP/STATS/PING. Every way a frame can be malformed is a typed
/// ServeError, never UB or a desynced silent misread: errors that poison
/// the framing itself (bad magic, oversized length, bad CRC, truncation)
/// are connection-fatal, while a well-framed but unparseable body gets an
/// error response and the connection keeps going.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/predictor.h"
#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// First four bytes of every frame.
inline constexpr uint32_t kFrameMagic = 0x4E504641;  // "AFPN" little-endian.

/// Upper bound on one frame's payload. A declared length beyond it is
/// corruption or abuse — reading it would only manufacture a giant
/// allocation (same policy as util/serialize.h).
inline constexpr uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

/// Frame types. Requests are < 64, responses >= 64; unknown values are a
/// typed kBadType error, not a desync (the frame length is still trusted
/// once magic and CRC check out).
enum class FrameType : uint8_t {
  // Requests.
  kPredictCsv = 1,    ///< payload: UTF-8 CSV rows, one row per '\n' line.
  kPredictDense = 2,  ///< payload: u32 rows | u32 cols | rows*cols f64.
  kSwap = 3,          ///< admin: payload = artifact path to hot-swap in.
  kStats = 4,         ///< admin: empty payload; answers kStatsReport.
  kPing = 5,          ///< empty payload; answers kPong.
  // Responses.
  kPredictions = 64,  ///< payload: u32 count | count * i32 class ids.
  kError = 65,        ///< payload: u16 ServeError code | detail text.
  kSwapped = 66,      ///< payload: human-readable swap summary.
  kStatsReport = 67,  ///< payload: "key=value" lines.
  kPong = 68,         ///< empty payload.
};

/// The serving error taxonomy — every failure any serve surface (stdin
/// loop, socket server, client) can report. Wire code values are fixed:
/// they travel inside kError frames.
enum class ServeError : uint16_t {
  kNone = 0,
  /// The stream does not start a frame with kFrameMagic (desync).
  kBadMagic = 1,
  /// A frame declares a payload larger than kMaxFramePayload (desync).
  kFrameTooLarge = 2,
  /// A frame's CRC does not match its content (desync).
  kBadCrc = 3,
  /// The peer closed the connection mid-frame.
  kTruncated = 4,
  /// A well-framed frame carries an unknown type byte.
  kBadType = 5,
  /// A well-framed payload does not parse (bad CSV cell, short dense
  /// block, ragged rows, empty predict).
  kMalformedBody = 6,
  /// Parsed rows do not match the artifact schema's column count.
  kSchemaMismatch = 7,
  /// The predictor rejected the batch for a non-schema reason.
  kPredictFailed = 8,
  /// Admission control shed the request: the server's pending-row queue
  /// is past its bound. Back off and retry.
  kBusy = 9,
  /// No artifact is loaded, or a SWAP could not load its artifact.
  kUnavailable = 10,
};

/// Human-readable name ("BadCrc" etc.; "OK" for kNone).
const char* ServeErrorName(ServeError error);

/// True for errors that poison the framing itself: after one of these the
/// byte stream cannot be trusted and the connection must close (after a
/// best-effort error response).
bool IsConnectionFatal(ServeError error);

/// One decoded frame: the raw type byte (kept raw so unknown types stay
/// representable) and its payload bytes.
struct Frame {
  uint8_t type = 0;
  std::string payload;

  FrameType frame_type() const { return static_cast<FrameType>(type); }
};

/// A parsed request, the unit every serve surface executes.
struct ServeRequest {
  FrameType type = FrameType::kPing;
  Matrix rows;       ///< predict requests: one sample per row.
  std::string text;  ///< kSwap: artifact path.
};

/// A typed answer: either predictions, an error, or admin payloads.
/// Exactly one frame encodes it (EncodeResponse); `type` names which.
struct ServeResponse {
  FrameType type = FrameType::kPong;
  ServeError error = ServeError::kNone;  ///< kNone unless type == kError.
  std::vector<int32_t> predictions;  ///< kPredictions payload.
  std::string message;  ///< error detail / swap summary / stats text.

  bool ok() const { return error == ServeError::kNone; }

  static ServeResponse Error(ServeError error, std::string detail) {
    ServeResponse response;
    response.type = FrameType::kError;
    response.error = error;
    response.message = std::move(detail);
    return response;
  }
};

// --- Frame encoding (client and server sides) ------------------------------

/// Appends one complete frame (magic/type/len/payload/crc) to `*out`.
void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out);

/// Request encoders (the client surface).
void EncodePredictCsv(const std::string& csv_rows, std::string* out);
void EncodePredictDense(const Matrix& rows, std::string* out);
void EncodeSwap(const std::string& artifact_path, std::string* out);
void EncodeStats(std::string* out);
void EncodePing(std::string* out);

/// Encodes `response` as its response frame (kPredictions, kError,
/// kSwapped, kStatsReport or kPong, picked from the response content).
void EncodeResponse(const ServeResponse& response, std::string* out);

/// Decodes a response frame back into a ServeResponse (the client side of
/// EncodeResponse). Returns false if the frame is not a well-formed
/// response frame.
bool DecodeResponseFrame(const Frame& frame, ServeResponse* response);

// --- Incremental frame decoding --------------------------------------------

/// Reassembles frames from an arbitrarily chunked byte stream (reads may
/// split a frame at any offset). Feed() bytes as they arrive, then call
/// Next() until it stops returning kFrame. After kBad the stream is
/// desynced and the decoder refuses further progress.
class FrameDecoder {
 public:
  enum class Outcome {
    kFrame,     ///< *frame was filled with one complete frame.
    kNeedMore,  ///< the buffered bytes end mid-frame; Feed() more.
    kBad,       ///< framing error; *error / *detail say which.
  };

  void Feed(const char* data, size_t size);

  Outcome Next(Frame* frame, ServeError* error, std::string* detail);

  /// True when buffered bytes end mid-frame — a peer that closes now
  /// truncated a frame.
  bool HasPartialFrame() const { return pos_ < buffer_.size() && !bad_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;   ///< consumed prefix of buffer_.
  bool bad_ = false;
};

// --- Payload parsing and execution (server and stdin-loop surface) ----------

/// Parses one CSV line into cells. Returns false (with a reason) on an
/// empty or non-numeric cell.
bool ParseCsvRow(const std::string& line, std::vector<double>* cells,
                 std::string* reason);

/// Parses newline-delimited CSV rows into a matrix. All rows must agree on
/// width; blank lines are skipped. Returns false with a reason on any bad
/// cell, ragged width, or zero data rows.
bool ParseCsvRows(const std::string& text, Matrix* rows, std::string* reason);

/// Fits parsed rows to an artifact schema: rows may carry one trailing
/// extra column (the training label convention of `autofp --apply` dumps),
/// which is dropped. Returns false with a reason when the width cannot be
/// made to match.
bool FitRowsToSchema(Matrix* rows, uint64_t input_cols, std::string* reason);

/// Parses a well-framed request frame into a typed ServeRequest. Returns
/// kNone on success; kBadType / kMalformedBody (with detail) otherwise.
/// Never desyncs: the caller keeps the connection either way.
ServeError ParseRequestFrame(const Frame& frame, ServeRequest* request,
                             std::string* detail);

/// Scores rows through `predictor` and maps failures into the taxonomy
/// (schema guard -> kSchemaMismatch, anything else -> kPredictFailed).
ServeResponse ExecutePredictRows(const Predictor& predictor,
                                 const Matrix& rows, size_t shard_rows);

/// Executes one request against a predictor — the shared core of the
/// stdin loop and the socket server's single-request path. Handles
/// predict (schema fit + score), kStats (predictor latency report) and
/// kPing; kSwap is rejected as kUnavailable (swapping needs a registry —
/// see serve/server.h). `predictor == nullptr` answers kUnavailable.
ServeResponse ExecuteRequest(const Predictor* predictor,
                             const ServeRequest& request, size_t shard_rows);

/// "key=value" line block for a stats report.
std::string FormatServeStats(const ServeStats& stats);

// --- Blocking client --------------------------------------------------------

/// A minimal blocking-socket frame client: the transport under the load
/// generator, the e2e checks, and the network bench. Not thread-safe; use
/// one per connection.
class BlockingFrameClient {
 public:
  BlockingFrameClient() = default;
  ~BlockingFrameClient();
  BlockingFrameClient(const BlockingFrameClient&) = delete;
  BlockingFrameClient& operator=(const BlockingFrameClient&) = delete;

  /// Connects to host:port with TCP_NODELAY; `timeout_seconds` bounds
  /// every subsequent send/receive.
  Status Connect(const std::string& host, int port,
                 double timeout_seconds = 10.0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Writes pre-encoded frame bytes (EncodeFrame/Encode* output).
  Status SendBytes(const std::string& bytes);

  /// Reads until one complete frame arrives.
  Status RecvFrame(Frame* frame);

  /// SendBytes + RecvFrame + DecodeResponseFrame in one round trip.
  Status RoundTrip(const std::string& request_bytes, ServeResponse* response);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace autofp

#endif  // AUTOFP_SERVE_PROTOCOL_H_
