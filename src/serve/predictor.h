#ifndef AUTOFP_SERVE_PREDICTOR_H_
#define AUTOFP_SERVE_PREDICTOR_H_

/// The inference runtime (see DESIGN.md "Artifacts and serving"): loads a
/// pipeline artifact into an immutable Predictor that applies
/// `transform -> predict` to row batches, optionally sharded over a fixed
/// worker pool (the parallel_evaluator pattern: tasks are enqueued, a
/// per-call barrier waits, results land in input order). Every serving
/// row is validated against the artifact schema with a typed error —
/// nothing downstream of the schema guard ever sees a misshapen row —
/// and every scored batch feeds a latency histogram (count, rows/sec,
/// p50/p95/p99).

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ml/model.h"
#include "preprocess/pipeline.h"
#include "serve/artifact.h"
#include "util/matrix.h"
#include "util/status.h"

namespace autofp {

/// Snapshot of the serving-latency histogram. Percentiles are over
/// per-batch latencies (the unit a caller waits on); rows_per_second is
/// total rows over summed batch time.
struct ServeStats {
  long batches = 0;
  long rows = 0;
  double busy_seconds = 0.0;
  double rows_per_second = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Thread-safe log-bucketed latency histogram (fixed memory, so a
/// long-running serve loop never grows it).
class LatencyRecorder {
 public:
  void Record(double seconds, long rows);
  ServeStats Snapshot() const;

 private:
  /// Bucket i covers [1us * kGrowth^i, 1us * kGrowth^(i+1)); ~15% relative
  /// error, spanning 1us..~1e3 s.
  static constexpr int kNumBuckets = 160;
  static constexpr double kGrowth = 1.15;
  static int BucketIndex(double seconds);
  static double BucketValueMs(int bucket);

  mutable std::mutex mutex_;
  std::array<long, kNumBuckets> counts_{};
  long batches_ = 0;
  long rows_ = 0;
  double busy_seconds_ = 0.0;
};

/// An immutable, thread-safe serving unit: fitted pipeline + trained
/// model + the schema they were exported with. All scoring methods are
/// const and safe to call concurrently; the only mutable state (latency
/// histogram, task queue) is internally synchronized.
/// Options for assembling a Predictor.
struct PredictorOptions {
  /// Worker threads for sharded scoring; 1 scores inline on the caller.
  int num_threads = 1;
};

class Predictor {
 public:
  using Options = PredictorOptions;

  /// Typed outcome of loading an artifact into a predictor: one Status
  /// carries success/failure (its message embeds the taxonomy name, so
  /// `status().ToString()` is self-contained), and `artifact_error()`
  /// names which corruption-taxonomy case fired for callers that branch
  /// on it.
  class LoadResult {
   public:
    LoadResult(ArtifactError artifact_error, Status status,
               std::unique_ptr<Predictor> predictor)
        : artifact_error_(artifact_error),
          status_(std::move(status)),
          predictor_(std::move(predictor)) {
      AUTOFP_CHECK((predictor_ != nullptr) == status_.ok());
    }

    bool ok() const { return status_.ok(); }
    const Status& status() const { return status_; }

    /// Which ArtifactError case failed the load; kNone on success.
    ArtifactError artifact_error() const { return artifact_error_; }

    /// The loaded predictor; ok() must hold.
    const Predictor& predictor() const {
      AUTOFP_CHECK(ok()) << status_.ToString();
      return *predictor_;
    }

    /// Moves the loaded predictor out; ok() must hold.
    std::unique_ptr<Predictor> TakePredictor() {
      AUTOFP_CHECK(ok()) << status_.ToString();
      return std::move(predictor_);
    }

   private:
    ArtifactError artifact_error_;
    Status status_;
    std::unique_ptr<Predictor> predictor_;
  };

  /// Reads `path` (full corruption taxonomy applies) and assembles the
  /// predictor.
  static LoadResult Load(const std::string& path,
                         const Options& options = Options());

  /// Assembles a predictor from an already-loaded artifact.
  static std::unique_ptr<Predictor> FromArtifact(
      LoadedArtifact artifact, const Options& options = Options());

  ~Predictor();
  Predictor(const Predictor&) = delete;
  Predictor& operator=(const Predictor&) = delete;

  /// Scores one batch: schema-validates `rows` (typed InvalidArgument if
  /// the column count differs from the artifact schema — never UB), then
  /// transform + predict. Returns one class id per row.
  Result<std::vector<int>> Predict(const Matrix& rows) const;

  /// Sharded scoring: splits `rows` into shards of `batch_rows` and
  /// scores them concurrently on the worker pool (inline when the pool
  /// has one thread). Results are in row order and identical to
  /// Predict()'s at any thread count.
  Result<std::vector<int>> PredictSharded(const Matrix& rows,
                                          size_t batch_rows) const;

  const ArtifactSchema& schema() const { return schema_; }
  const PipelineSpec& spec() const { return pipeline_.spec(); }
  const ModelConfig& model_config() const { return model_config_; }
  /// Drift baseline stamped at export time (empty = none recorded; drift
  /// monitoring is then unavailable for this artifact).
  const ReferenceStats& reference_stats() const { return reference_stats_; }
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Latency histogram over every batch scored so far.
  ServeStats stats() const { return latency_.Snapshot(); }

 private:
  Predictor(LoadedArtifact artifact, const Options& options);

  /// Schema guard shared by both scoring paths.
  Status ValidateSchema(const Matrix& rows) const;
  /// Transform+predict rows [begin, end) of `rows` into predictions
  /// [begin, end), recording the shard's latency. The shard is copied
  /// into `*scratch` and transformed there in place — each worker (and
  /// each inline call) brings its own buffer, so the steady state
  /// allocates nothing per shard.
  void ScoreRange(const Matrix& rows, size_t begin, size_t end,
                  std::vector<int>* predictions, Matrix* scratch) const;
  void WorkerLoop();

  ArtifactSchema schema_;
  FittedPipeline pipeline_;
  ModelConfig model_config_;
  std::unique_ptr<Classifier> model_;
  ReferenceStats reference_stats_;
  mutable LatencyRecorder latency_;

  // Fixed worker pool (parallel_evaluator pattern). The queue holds
  // closures invoked with the worker's reusable shard scratch; each
  // PredictSharded call carries its own barrier.
  mutable std::mutex mutex_;
  mutable std::condition_variable work_available_;
  mutable std::deque<std::function<void(Matrix*)>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace autofp

#endif  // AUTOFP_SERVE_PREDICTOR_H_
