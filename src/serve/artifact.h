#ifndef AUTOFP_SERVE_ARTIFACT_H_
#define AUTOFP_SERVE_ARTIFACT_H_

/// Versioned pipeline artifacts (see DESIGN.md "Artifacts and serving").
/// An artifact is the deployable unit of Auto-FP: one file capturing the
/// fitted state of a searched preprocessing pipeline plus the trained
/// state of its downstream model, so `transform -> predict` can be served
/// long after the search process exited. The format follows the
/// run_journal conventions: magic + version up front, CRC-32 over every
/// section, FNV-1a fingerprints tying the sections to one schema. A
/// reader never guesses: every corruption case (truncated file, flipped
/// byte, foreign version, mismatched sections) is a typed ArtifactError,
/// never UB or a crash.
///
/// File layout (host-endian; artifacts are machine-local deployment
/// state, not interchange files):
///
///   magic "AFPA" | u32 version | u32 num_sections | u32 preamble_crc
///   repeated num_sections times:
///     u32 section_id | u32 payload_len | payload | u32 crc(id,len,payload)
///
/// with exactly one section each of:
///   kSchemaSection   dataset name/shape/classes + fingerprints
///   kPipelineSection pipeline spec string + per-step SaveState blobs
///   kModelSection    ModelConfig + the trained model's SaveState blob
///   kStatsSection    per-column reference moments of the export features
///                    (the drift monitor's baseline — see src/stream/)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/model.h"
#include "preprocess/pipeline.h"
#include "util/status.h"

namespace autofp {

/// Artifact format version; bumped on any layout change. Readers reject
/// other versions with kVersionMismatch — there is no cross-version
/// migration (re-export from the search instead; see DESIGN.md).
/// Version 2 added the reference-stats section (streaming drift baseline).
inline constexpr uint32_t kArtifactVersion = 2;

/// Why an artifact could not be read/validated. kNone means success.
enum class ArtifactError : int {
  kNone = 0,
  /// The file could not be opened or read (or written, for the writer).
  kIoError,
  /// The file does not start with the artifact magic.
  kBadMagic,
  /// The file is an artifact of a different format version.
  kVersionMismatch,
  /// The preamble checksum does not match its content.
  kCorruptHeader,
  /// The file ends before a declared section does.
  kTruncated,
  /// A section's CRC does not match its content (e.g. a flipped byte).
  kCorruptSection,
  /// A section's CRC is intact but its payload does not parse, a section
  /// is duplicated, or the file carries trailing bytes.
  kMalformedSection,
  /// A required section is absent.
  kMissingSection,
  /// The pipeline/model sections' schema fingerprints disagree with the
  /// schema section (an artifact stitched from mismatched halves).
  kSchemaMismatch,
  /// A preprocessor/model state blob was rejected by LoadState.
  kBadState,
};

/// Human-readable name ("CorruptSection" etc.; "OK" for kNone).
const char* ArtifactErrorName(ArtifactError error);

/// What the served model expects of its input — the schema every serving
/// row is validated against before it touches a preprocessor.
struct ArtifactSchema {
  std::string dataset_name;
  /// Feature columns a serving row must have (label column excluded).
  uint64_t input_cols = 0;
  int num_classes = 0;
  /// Model input width after the pipeline (== input_cols for the paper's
  /// seven column-preserving preprocessors; kept explicit so the format
  /// survives future column-changing steps).
  uint64_t transformed_cols = 0;
  /// DatasetFingerprint of the training data (informational: identifies
  /// what the artifact was fitted on; serving data is never checked
  /// against it).
  uint64_t dataset_fingerprint = 0;
};

/// FNV-1a fingerprint of the schema fields every section must agree on
/// (input_cols, num_classes, transformed_cols).
uint64_t SchemaFingerprint(const ArtifactSchema& schema);

/// Per-column reference moments of the features the artifact was exported
/// on, in Welford form (count, mean, sum of squared deviations, min, max)
/// so a streaming accumulator can resume from — or be compared against —
/// them exactly (src/stream/moments.h converts both ways). An empty value
/// (no columns) means "no stats recorded"; drift monitoring is then
/// unavailable for the artifact.
struct ReferenceStats {
  uint64_t rows = 0;
  /// Parallel per-column vectors, all of length input_cols (or all empty).
  std::vector<double> mean;
  std::vector<double> m2;  ///< sum of squared deviations from the mean.
  std::vector<double> min;
  std::vector<double> max;

  size_t cols() const { return mean.size(); }
  bool empty() const { return mean.empty(); }
  /// Population variance of column c (0 for fewer than 1 row).
  double Variance(size_t c) const {
    return rows > 0 ? m2[c] / static_cast<double>(rows) : 0.0;
  }
};

/// One exact pass over `features` (Welford's update per column), producing
/// the stats ExportArtifact stamps into the kStatsSection.
ReferenceStats ComputeReferenceStats(const Matrix& features);

/// Writer knobs. The fingerprint override exists only so tests can
/// manufacture the kSchemaMismatch corruption case with valid CRCs.
struct ArtifactWriteOptions {
  /// When nonzero, stamped into the pipeline/model sections instead of
  /// the real SchemaFingerprint (test hook for the corruption taxonomy).
  uint64_t override_section_fingerprint = 0;
};

/// Serializes (schema, fitted pipeline, model config, trained model,
/// reference stats) to `path`, overwriting it. The pipeline must be fitted
/// and the model trained; both are only read. `reference_stats` must be
/// empty or have exactly schema.input_cols columns.
Status WriteArtifact(const std::string& path, const ArtifactSchema& schema,
                     const FittedPipeline& pipeline,
                     const ModelConfig& model_config, const Classifier& model,
                     const ReferenceStats& reference_stats = {},
                     const ArtifactWriteOptions& options = {});

/// A fully deserialized artifact: fitted steps and trained model ready to
/// assemble into a Predictor (serve/predictor.h).
struct LoadedArtifact {
  ArtifactSchema schema;
  PipelineSpec spec;
  /// Fitted preprocessors, one per spec step, in application order.
  std::vector<std::unique_ptr<Preprocessor>> fitted_steps;
  ModelConfig model_config;
  std::unique_ptr<Classifier> model;
  /// Drift baseline from the kStatsSection (empty = none recorded).
  ReferenceStats reference_stats;
};

/// Outcome of reading an artifact. On success (`ok()`), `artifact` holds
/// the deserialized pipeline and model; otherwise `error` says which
/// corruption-taxonomy case fired and `status` carries detail.
struct ArtifactReadResult {
  ArtifactError error = ArtifactError::kNone;
  Status status;  ///< detail message; OK iff error == kNone.
  LoadedArtifact artifact;

  bool ok() const { return error == ArtifactError::kNone; }
};

/// Reads and validates `path` through the full corruption taxonomy.
ArtifactReadResult ReadArtifact(const std::string& path);

/// End-to-end export (the CLI's --export-artifact body): fits `spec` on
/// all of `data`, trains `model_config`'s classifier on the transformed
/// features, and writes the artifact. Returns the schema it stamped, or
/// OutOfRange/InvalidArgument when the pipeline output is non-finite (a
/// model trained on it would be garbage).
Result<ArtifactSchema> ExportArtifact(const std::string& path,
                                      const Dataset& data,
                                      const PipelineSpec& spec,
                                      const ModelConfig& model_config);

}  // namespace autofp

#endif  // AUTOFP_SERVE_ARTIFACT_H_
