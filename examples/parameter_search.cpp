/// Parameter search (Section 6): runs the One-step and Two-step extensions
/// on both extended search spaces and reports which wins where — the
/// qualitative content of the paper's Figures 8 and 9.
///
///   ./build/examples/parameter_search [dataset_name] [budget]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/auto_fp.h"
#include "search/two_step.h"

int main(int argc, char** argv) {
  using namespace autofp;
  std::string dataset_name = argc > 1 ? argv[1] : "ionosphere_syn";
  long budget = argc > 2 ? std::atol(argv[2]) : 150;

  Result<Dataset> dataset = GetSuiteDataset(dataset_name);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Rng rng(3);
  TrainValidSplit split = SplitTrainValid(dataset.value(), 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);

  struct SpaceCase {
    const char* label;
    ParameterSpace parameters;
  };
  SpaceCase cases[] = {
      {"low-cardinality (Table 6)", ParameterSpace::LowCardinality()},
      {"high-cardinality (Table 7)", ParameterSpace::HighCardinality()},
  };
  for (const SpaceCase& c : cases) {
    std::printf("\n=== %s: %zu One-step operators ===\n", c.label,
                c.parameters.OneStepOperatorCount());
    PipelineEvaluator one_eval(split.train, split.valid, model);
    SearchResult one = RunOneStep("PBT", &one_eval, c.parameters, {Budget::Evaluations(budget), 11});
    TwoStepConfig two_config;
    two_config.algorithm = "PBT";
    two_config.inner_budget = Budget::Evaluations(budget / 5);
    PipelineEvaluator two_eval(split.train, split.valid, model);
    SearchResult two = RunTwoStep(two_config, &two_eval, c.parameters, {Budget::Evaluations(budget), 11});
    std::printf("no-FP baseline : %.4f\n", one.baseline_accuracy);
    std::printf("One-step (PBT) : %.4f  %s\n", one.best_accuracy,
                one.best_pipeline.ToString().c_str());
    std::printf("Two-step (PBT) : %.4f  %s\n", two.best_accuracy,
                two.best_pipeline.ToString().c_str());
    std::printf("winner         : %s\n",
                one.best_accuracy >= two.best_accuracy ? "One-step"
                                                       : "Two-step");
  }
  return 0;
}
