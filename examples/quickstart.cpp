/// Quickstart: search for the best feature-preprocessing pipeline for one
/// dataset with the paper's top-ranked algorithm (PBT), then compare it to
/// the no-FP baseline.
///
///   ./build/examples/quickstart [dataset_name] [budget_evaluations]
///
/// Dataset names come from the built-in benchmark suite (default
/// "heart_syn"); see bench_fig5_dataset_stats for the full list.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/auto_fp.h"
#include "search/registry.h"

int main(int argc, char** argv) {
  using namespace autofp;
  std::string dataset_name = argc > 1 ? argv[1] : "heart_syn";
  long budget = argc > 2 ? std::atol(argv[2]) : 200;

  Result<Dataset> dataset = GetSuiteDataset(dataset_name);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset %s: %zu rows x %zu cols, %d classes\n",
              dataset_name.c_str(), dataset.value().num_rows(),
              dataset.value().num_cols(), dataset.value().num_classes);

  // 80:20 train/validation split, as in the paper.
  Rng rng(1);
  TrainValidSplit split = SplitTrainValid(dataset.value(), 0.8, &rng);

  // Downstream model: logistic regression (the paper's most common model).
  PipelineEvaluator evaluator(
      split.train, split.valid,
      ModelConfig::Defaults(ModelKind::kLogisticRegression));

  // The default Auto-FP search space: 7 preprocessors, pipelines up to
  // length 7 (~1M candidate pipelines).
  SearchSpace space = SearchSpace::Default();
  std::printf("search space: %zu operators, max length %zu (%.0f pipelines)\n",
              space.num_operators(), space.max_pipeline_length(),
              space.TotalPipelines());

  Result<std::unique_ptr<SearchAlgorithm>> pbt = MakeSearchAlgorithm("PBT");
  SearchResult result = RunSearch(pbt.value().get(), &evaluator, space, {Budget::Evaluations(budget), /*seed=*/42});

  std::printf("\nno-FP baseline accuracy : %.4f\n", result.baseline_accuracy);
  std::printf("best pipeline accuracy  : %.4f (%+.2f%%)\n",
              result.best_accuracy,
              100.0 * (result.best_accuracy - result.baseline_accuracy));
  std::printf("best pipeline           : %s\n",
              result.best_pipeline.ToString().c_str());
  std::printf("evaluations             : %ld in %.2fs "
              "(pick %.2fs, prep %.2fs, train %.2fs)\n",
              result.num_evaluations, result.elapsed_seconds,
              result.pick_seconds, result.prep_seconds,
              result.train_seconds);
  return 0;
}
