/// Auto-FP in an AutoML context (Section 7): compares Auto-FP (PBT over the
/// full 7-preprocessor space) against a TPOT-style FP module (GP over 5
/// preprocessors) and against hyperparameter optimization with no FP,
/// under the same budget — the per-dataset content of Figures 10/11.
///
///   ./build/examples/automl_context [dataset_name] [model] [budget]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "automl/hpo.h"
#include "automl/tpot_fp.h"
#include "core/auto_fp.h"
#include "search/registry.h"

namespace {

autofp::ModelKind ParseModel(const std::string& name) {
  if (name == "XGB") return autofp::ModelKind::kXgboost;
  if (name == "MLP") return autofp::ModelKind::kMlp;
  return autofp::ModelKind::kLogisticRegression;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autofp;
  std::string dataset_name = argc > 1 ? argv[1] : "blood_syn";
  ModelKind model_kind = ParseModel(argc > 2 ? argv[2] : "LR");
  long budget = argc > 3 ? std::atol(argv[3]) : 120;

  Result<Dataset> dataset = GetSuiteDataset(dataset_name);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Rng rng(5);
  TrainValidSplit split = SplitTrainValid(dataset.value(), 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(model_kind);

  // Auto-FP: PBT over the full default space.
  PipelineEvaluator autofp_eval(split.train, split.valid, model);
  auto pbt = MakeSearchAlgorithm("PBT");
  SearchResult auto_fp = RunSearch(pbt.value().get(), &autofp_eval, SearchSpace::Default(), {Budget::Evaluations(budget), 21});

  // TPOT-FP: genetic programming over the 5-preprocessor module.
  PipelineEvaluator tpot_eval(split.train, split.valid, model);
  SearchResult tpot_fp = RunTpotFp(TpotFpConfig{}, &tpot_eval,
                                   Budget::Evaluations(budget), 21);

  // HPO: tune the model's hyperparameters, no preprocessing at all.
  HpoResult hpo = RunHpoSearch(model_kind, split.train, split.valid,
                               Budget::Evaluations(budget), 21);

  std::printf("%s, %s, budget=%ld evaluations\n", dataset_name.c_str(),
              ModelKindName(model_kind).c_str(), budget);
  std::printf("no-FP baseline      : %.4f\n", auto_fp.baseline_accuracy);
  std::printf("Auto-FP (PBT)       : %.4f  %s\n", auto_fp.best_accuracy,
              auto_fp.best_pipeline.ToString().c_str());
  std::printf("TPOT-FP (GP, 5 ops) : %.4f  %s\n", tpot_fp.best_accuracy,
              tpot_fp.best_pipeline.ToString().c_str());
  std::printf("HPO (no FP)         : %.4f  %s\n", hpo.best_accuracy,
              hpo.best_config.ToString().c_str());
  return 0;
}
