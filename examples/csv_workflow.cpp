/// End-to-end CSV workflow: export a dataset to CSV (stand-in for a user's
/// own file), load it back through the library's CSV path, inspect its
/// meta-features, and search a preprocessing pipeline for it — the exact
/// flow a downstream user follows with real data.
///
///   ./build/examples/csv_workflow [output_dir]

#include <cstdio>
#include <string>

#include "core/auto_fp.h"
#include "metafeatures/metafeatures.h"
#include "search/registry.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace autofp;
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  std::string path = dir + "/autofp_example.csv";

  // 1. Export a suite dataset as a plain CSV (features..., label).
  Dataset original = GetSuiteDataset("vehicle_syn").value();
  Matrix table(original.num_rows(), original.num_cols() + 1);
  std::vector<std::string> header;
  for (size_t c = 0; c < original.num_cols(); ++c) {
    header.push_back("f" + std::to_string(c));
    for (size_t r = 0; r < original.num_rows(); ++r) {
      table(r, c) = original.features(r, c);
    }
  }
  header.push_back("label");
  for (size_t r = 0; r < original.num_rows(); ++r) {
    table(r, original.num_cols()) = original.labels[r];
  }
  Status written = WriteCsv(path, header, table);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", path.c_str(), original.num_rows());

  // 2. Load it back the way a user would load their own file.
  Result<Dataset> loaded = LoadCsvDataset(path, /*has_header=*/true, "mycsv");
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %zu cols, %d classes\n",
              loaded.value().num_rows(), loaded.value().num_cols(),
              loaded.value().num_classes);

  // 3. Inspect a few meta-features (Table 10).
  MetaFeatures mf = ComputeMetaFeatures(loaded.value());
  std::printf("meta-features: skewness_mean=%.2f  class_entropy=%.2f  "
              "landmark_1nn=%.2f  landmark_lda=%.2f\n",
              mf.skewness_mean, mf.class_entropy, mf.landmark_1nn,
              mf.landmark_lda);

  // 4. Search a pipeline for it.
  Rng rng(9);
  TrainValidSplit split = SplitTrainValid(loaded.value(), 0.8, &rng);
  PipelineEvaluator evaluator(
      split.train, split.valid,
      ModelConfig::Defaults(ModelKind::kLogisticRegression));
  auto tevo = MakeSearchAlgorithm("TEVO_H").value();
  SearchResult result = RunSearch(tevo.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(150), 9});
  std::printf("\nno-FP baseline : %.4f\n", result.baseline_accuracy);
  std::printf("best accuracy  : %.4f\n", result.best_accuracy);
  std::printf("best pipeline  : %s\n",
              result.best_pipeline.ToString().c_str());
  std::remove(path.c_str());
  return 0;
}
