/// Compares all 15 search algorithms on one dataset x model scenario under
/// the same evaluation budget — a single-scenario slice of the paper's
/// Table 4 experiment.
///
///   ./build/examples/search_comparison [dataset_name] [model] [budget]
///
/// model is one of LR, XGB, MLP.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/auto_fp.h"
#include "search/registry.h"

namespace {

autofp::ModelKind ParseModel(const std::string& name) {
  if (name == "XGB") return autofp::ModelKind::kXgboost;
  if (name == "MLP") return autofp::ModelKind::kMlp;
  return autofp::ModelKind::kLogisticRegression;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autofp;
  std::string dataset_name = argc > 1 ? argv[1] : "vehicle_syn";
  ModelKind model_kind = ParseModel(argc > 2 ? argv[2] : "LR");
  long budget = argc > 3 ? std::atol(argv[3]) : 120;

  Result<Dataset> dataset = GetSuiteDataset(dataset_name);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Rng rng(7);
  TrainValidSplit split = SplitTrainValid(dataset.value(), 0.8, &rng);
  SearchSpace space = SearchSpace::Default();

  struct Row {
    std::string name;
    double accuracy;
    long evaluations;
    std::string pipeline;
  };
  std::vector<Row> rows;
  double baseline = 0.0;
  for (const std::string& name : AllSearchAlgorithmNames()) {
    PipelineEvaluator evaluator(split.train, split.valid,
                                ModelConfig::Defaults(model_kind));
    auto algorithm = MakeSearchAlgorithm(name);
    SearchResult result = RunSearch(algorithm.value().get(), &evaluator, space, {Budget::Evaluations(budget), 99});
    baseline = result.baseline_accuracy;
    rows.push_back({name, result.best_accuracy, result.num_evaluations,
                    result.best_pipeline.ToString()});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s, %s, budget=%ld evaluations (no-FP baseline %.4f)\n",
              dataset_name.c_str(),
              ModelKindName(model_kind).c_str(), budget, baseline);
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.accuracy > b.accuracy; });
  std::printf("%-11s %-8s %-6s %s\n", "algorithm", "val acc", "evals",
              "best pipeline");
  for (const Row& row : rows) {
    std::printf("%-11s %.4f   %-6ld %s\n", row.name.c_str(), row.accuracy,
                row.evaluations, row.pipeline.c_str());
  }
  return 0;
}
