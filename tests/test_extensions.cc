#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "search/pbt.h"

namespace autofp {
namespace {

TrainValidSplit MakeSplit(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "ext2";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 300;
  spec.cols = 5;
  spec.num_classes = 2;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  return SplitTrainValid(data, 0.8, &rng);
}

ModelConfig FastLr() {
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 25;
  return model;
}

TEST(WarmStart, SeededPipelinesAreEvaluatedFirst) {
  TrainValidSplit split = MakeSplit(101);
  PipelineEvaluator evaluator(split.train, split.valid, FastLr());
  SearchSpace space = SearchSpace::Default();
  Pbt::Config config;
  config.population_size = 4;
  config.initial_population = {
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler}),
      PipelineSpec::FromKinds({PreprocessorKind::kBinarizer}),
  };
  Pbt pbt(config);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(10), 1});
  pbt.Initialize(&context);
  ASSERT_GE(context.history().size(), 2u);
  EXPECT_TRUE(context.history()[0].pipeline ==
              config.initial_population[0]);
  EXPECT_TRUE(context.history()[1].pipeline ==
              config.initial_population[1]);
  // Remaining members padded with random samples.
  EXPECT_EQ(context.history().size(), 4u);
}

TEST(WarmStart, MatchesColdStartBudgetConsumption) {
  TrainValidSplit split = MakeSplit(102);
  SearchSpace space = SearchSpace::Default();
  Pbt::Config config;
  config.initial_population = {
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler})};
  PipelineEvaluator warm_eval(split.train, split.valid, FastLr());
  Pbt warm(config);
  SearchResult warm_result = RunSearch(&warm, &warm_eval, space, {Budget::Evaluations(30), 5});
  EXPECT_EQ(warm_result.num_evaluations, 30);
  EXPECT_GE(warm_result.best_accuracy, warm_result.baseline_accuracy - 0.05);
}

TEST(GlobalTrainFraction, ReducesEffectiveTrainingData) {
  TrainValidSplit split = MakeSplit(103);
  PipelineEvaluator evaluator(split.train, split.valid, FastLr());
  evaluator.set_global_train_fraction(0.3);
  EXPECT_DOUBLE_EQ(evaluator.global_train_fraction(), 0.3);
  Evaluation evaluation = evaluator.Evaluate(EvalRequest{});
  // Accuracy remains valid; the search still functions end to end.
  EXPECT_GE(evaluation.accuracy, 0.0);
  EXPECT_LE(evaluation.accuracy, 1.0);
}

TEST(GlobalTrainFraction, ComposesWithBanditFraction) {
  TrainValidSplit split = MakeSplit(104);
  PipelineEvaluator evaluator(split.train, split.valid, FastLr());
  evaluator.set_global_train_fraction(0.5);
  // 0.5 global x 0.5 bandit = 25% of training rows; must still train.
  EvalRequest request;
  request.budget_fraction = 0.5;
  Evaluation evaluation = evaluator.Evaluate(request);
  EXPECT_GE(evaluation.accuracy, 0.0);
  EXPECT_LE(evaluation.accuracy, 1.0);
}

TEST(GlobalTrainFraction, FullFractionIdenticalToDefault) {
  TrainValidSplit split = MakeSplit(105);
  PipelineEvaluator with_knob(split.train, split.valid, FastLr());
  with_knob.set_global_train_fraction(1.0);
  PipelineEvaluator plain(split.train, split.valid, FastLr());
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds({PreprocessorKind::kMinMaxScaler});
  EXPECT_DOUBLE_EQ(with_knob.Evaluate(request).accuracy,
                   plain.Evaluate(request).accuracy);
}

TEST(GlobalTrainFractionDeath, RejectsOutOfRange) {
  TrainValidSplit split = MakeSplit(106);
  PipelineEvaluator evaluator(split.train, split.valid, FastLr());
  EXPECT_DEATH(evaluator.set_global_train_fraction(0.0), "CHECK failed");
  EXPECT_DEATH(evaluator.set_global_train_fraction(1.5), "CHECK failed");
}

}  // namespace
}  // namespace autofp
