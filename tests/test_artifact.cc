/// Tests of the artifact subsystem (src/serve/artifact.h): preprocessor
/// and classifier state round-trips, whole-artifact write/read, and the
/// corruption taxonomy — every way a file can be damaged (truncation at
/// any offset, a flipped byte, a foreign version, stitched-together
/// sections) must surface as a typed ArtifactError, never a crash.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmark_suite.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/lda.h"
#include "ml/naive_bayes.h"
#include "serve/artifact.h"
#include "util/serialize.h"

namespace autofp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Dataset TestData() {
  Result<Dataset> data = GetSuiteDataset("blood_syn");
  AUTOFP_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// Exports a small but real artifact (2-step pipeline, LR) to `name`.
std::string WriteTestArtifact(const std::string& name) {
  std::string path = TempPath(name);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler});
  Result<ArtifactSchema> exported = ExportArtifact(
      path, TestData(), spec,
      ModelConfig::Defaults(ModelKind::kLogisticRegression));
  EXPECT_TRUE(exported.ok()) << exported.status().ToString();
  return path;
}

// ---------------------------------------------------------------------------
// Preprocessor state round-trips.

TEST(PreprocessorState, RoundTripAllSevenKinds) {
  Dataset data = TestData();
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    PreprocessorConfig config = PreprocessorConfig::Defaults(kind);
    std::unique_ptr<Preprocessor> fitted = MakePreprocessor(config);
    fitted->Fit(data.features);
    Matrix expected = fitted->Transform(data.features);

    std::ostringstream out(std::ios::binary);
    fitted->SaveState(out);

    std::unique_ptr<Preprocessor> loaded = MakePreprocessor(config);
    std::istringstream in(out.str(), std::ios::binary);
    Status status = loaded->LoadState(in);
    ASSERT_TRUE(status.ok()) << KindName(kind) << ": " << status.ToString();
    EXPECT_EQ(in.peek(), EOF) << KindName(kind) << " left trailing bytes";
    // Bit-identical: the fitted state (means, quantiles, lambdas, ...) is
    // doubles all the way down, so the transform must match exactly.
    EXPECT_TRUE(loaded->Transform(data.features) == expected)
        << KindName(kind) << " transform changed across save/load";
  }
}

TEST(PreprocessorState, StatefulLoadRejectsGarbage) {
  // Stateless kinds (Binarizer, Normalizer) read nothing, so only the
  // stateful five can reject bytes; truncated and oversized blobs must
  // both come back as InvalidArgument, not a crash.
  for (PreprocessorKind kind :
       {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
        PreprocessorKind::kMaxAbsScaler, PreprocessorKind::kPowerTransformer,
        PreprocessorKind::kQuantileTransformer}) {
    std::unique_ptr<Preprocessor> loaded = MakePreprocessor(kind);
    std::istringstream truncated(std::string("\x03\x00", 2),
                                 std::ios::binary);
    EXPECT_FALSE(loaded->LoadState(truncated).ok()) << KindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Classifier state round-trips (the three paper models plus the
// auxiliary classifiers used by landmarking meta-features).

void ExpectClassifierRoundTrip(const Classifier& trained,
                               std::unique_ptr<Classifier> fresh,
                               const Matrix& features, const char* label) {
  std::vector<int> expected = trained.PredictBatch(features);
  std::ostringstream out(std::ios::binary);
  trained.SaveState(out);
  std::istringstream in(out.str(), std::ios::binary);
  Status status = fresh->LoadState(in);
  ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
  EXPECT_EQ(in.peek(), EOF) << label << " left trailing bytes";
  EXPECT_EQ(fresh->PredictBatch(features), expected) << label;
}

TEST(ClassifierState, RoundTripPaperModels) {
  Dataset data = TestData();
  for (ModelKind kind : {ModelKind::kLogisticRegression, ModelKind::kXgboost,
                         ModelKind::kMlp}) {
    ModelConfig config = ModelConfig::Defaults(kind);
    std::unique_ptr<Classifier> model = MakeClassifier(config);
    model->Train(data.features, data.labels, data.num_classes);
    ExpectClassifierRoundTrip(*model, MakeClassifier(config), data.features,
                              ModelKindName(kind).c_str());
  }
}

TEST(ClassifierState, RoundTripAuxiliaryModels) {
  Dataset data = TestData();
  auto round_trip = [&](Classifier* model, const char* label) {
    model->Train(data.features, data.labels, data.num_classes);
    ExpectClassifierRoundTrip(*model, model->Clone(), data.features, label);
  };
  DecisionTreeClassifier tree{TreeConfig{}};
  round_trip(&tree, "DecisionTree");
  KnnClassifier knn(5);
  round_trip(&knn, "KNN");
  LdaClassifier lda(1e-3);
  round_trip(&lda, "LDA");
  GaussianNaiveBayes nb;
  round_trip(&nb, "NaiveBayes");
}

TEST(ClassifierState, LoadRejectsGarbage) {
  for (ModelKind kind : {ModelKind::kLogisticRegression, ModelKind::kXgboost,
                         ModelKind::kMlp}) {
    std::unique_ptr<Classifier> model =
        MakeClassifier(ModelConfig::Defaults(kind));
    std::istringstream truncated(std::string("\x01\x00\x00", 3),
                                 std::ios::binary);
    EXPECT_FALSE(model->LoadState(truncated).ok()) << ModelKindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Whole-artifact round-trip.

TEST(Artifact, WriteReadRoundTrip) {
  std::string path = WriteTestArtifact("artifact_roundtrip.afpa");
  ArtifactReadResult read = ReadArtifact(path);
  ASSERT_TRUE(read.ok()) << ArtifactErrorName(read.error) << ": "
                         << read.status.ToString();
  const Dataset data = TestData();
  EXPECT_EQ(read.artifact.schema.dataset_name, data.name);
  EXPECT_EQ(read.artifact.schema.input_cols, data.num_cols());
  EXPECT_EQ(read.artifact.schema.num_classes, data.num_classes);
  EXPECT_EQ(read.artifact.schema.transformed_cols, data.num_cols());
  EXPECT_EQ(read.artifact.spec.ToString(),
            "StandardScaler -> MinMaxScaler");
  ASSERT_EQ(read.artifact.fitted_steps.size(), 2u);
  EXPECT_EQ(read.artifact.model_config.kind,
            ModelKind::kLogisticRegression);
  ASSERT_NE(read.artifact.model, nullptr);
}

TEST(Artifact, ExportStampsReferenceStatsThatRoundTrip) {
  std::string path = WriteTestArtifact("artifact_stats.afpa");
  ArtifactReadResult read = ReadArtifact(path);
  ASSERT_TRUE(read.ok()) << read.status.ToString();

  const Dataset data = TestData();
  const ReferenceStats expected = ComputeReferenceStats(data.features);
  const ReferenceStats& loaded = read.artifact.reference_stats;
  ASSERT_EQ(loaded.cols(), data.num_cols());
  EXPECT_EQ(loaded.rows, data.num_rows());
  for (size_t c = 0; c < loaded.cols(); ++c) {
    // The section stores the raw doubles, so the round trip is bit-exact.
    EXPECT_EQ(loaded.mean[c], expected.mean[c]) << "col " << c;
    EXPECT_EQ(loaded.m2[c], expected.m2[c]) << "col " << c;
    EXPECT_EQ(loaded.min[c], expected.min[c]) << "col " << c;
    EXPECT_EQ(loaded.max[c], expected.max[c]) << "col " << c;
  }
}

TEST(Artifact, WriteRejectsStatsWithWrongColumnCount) {
  const Dataset data = TestData();
  FittedPipeline pipeline = FittedPipeline::Fit(
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler}),
      data.features);
  Matrix transformed = pipeline.Transform(data.features);
  ModelConfig config = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  std::unique_ptr<Classifier> model = MakeClassifier(config);
  model->Train(transformed, data.labels, data.num_classes);
  ArtifactSchema schema;
  schema.dataset_name = data.name;
  schema.input_cols = data.num_cols();
  schema.num_classes = data.num_classes;
  schema.transformed_cols = transformed.cols();

  ReferenceStats wrong;  // one column short of the schema.
  wrong.rows = data.num_rows();
  wrong.mean.assign(data.num_cols() - 1, 0.0);
  wrong.m2.assign(data.num_cols() - 1, 0.0);
  wrong.min.assign(data.num_cols() - 1, 0.0);
  wrong.max.assign(data.num_cols() - 1, 0.0);
  Status written = WriteArtifact(TempPath("artifact_bad_stats.afpa"), schema,
                                 pipeline, config, *model, wrong);
  EXPECT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kInvalidArgument);
}

TEST(Artifact, ExportRefusesNonFinitePipelineOutput) {
  Dataset data = TestData();
  // Poison the first column with values PowerTransformer overflows on.
  for (size_t r = 0; r < data.features.rows(); ++r) {
    data.features(r, 0) = r == 0 ? 1e300 : -1e300;
  }
  PipelineSpec spec =
      PipelineSpec::FromKinds({PreprocessorKind::kPowerTransformer});
  Result<ArtifactSchema> exported = ExportArtifact(
      TempPath("artifact_nonfinite.afpa"), data, spec,
      ModelConfig::Defaults(ModelKind::kLogisticRegression));
  // Either the transform overflowed (OutOfRange) or stayed finite — but
  // it must never write a model trained on NaNs silently. Accept both
  // outcomes, require a typed status on failure.
  if (!exported.ok()) {
    EXPECT_EQ(exported.status().code(), StatusCode::kOutOfRange)
        << exported.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Corruption taxonomy. Every damaged file yields the matching typed
// error; none of them may crash the reader.

TEST(ArtifactCorruption, MissingFile) {
  ArtifactReadResult read = ReadArtifact(TempPath("does_not_exist.afpa"));
  EXPECT_EQ(read.error, ArtifactError::kIoError);
}

TEST(ArtifactCorruption, BadMagic) {
  std::string path = WriteTestArtifact("artifact_badmagic.afpa");
  std::string bytes = ReadFileBytes(path);
  bytes[0] ^= 0x5A;
  WriteFileBytes(path, bytes);
  EXPECT_EQ(ReadArtifact(path).error, ArtifactError::kBadMagic);
}

TEST(ArtifactCorruption, VersionBump) {
  std::string path = WriteTestArtifact("artifact_version.afpa");
  std::string bytes = ReadFileBytes(path);
  bytes[4] = static_cast<char>(bytes[4] + 1);  // u32 version, little byte.
  WriteFileBytes(path, bytes);
  ArtifactReadResult read = ReadArtifact(path);
  EXPECT_EQ(read.error, ArtifactError::kVersionMismatch);
  EXPECT_NE(read.status.message().find("version"), std::string::npos);
}

TEST(ArtifactCorruption, CorruptPreamble) {
  std::string path = WriteTestArtifact("artifact_preamble.afpa");
  std::string bytes = ReadFileBytes(path);
  bytes[8] ^= 0x01;  // section count: CRC'd but not otherwise validated.
  WriteFileBytes(path, bytes);
  EXPECT_EQ(ReadArtifact(path).error, ArtifactError::kCorruptHeader);
}

TEST(ArtifactCorruption, TruncationAtEveryRegion) {
  std::string path = WriteTestArtifact("artifact_truncated.afpa");
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  // Cut points spanning magic, preamble, frame headers, payloads, and the
  // final CRC. Below the magic the file reads as "not an artifact";
  // everywhere else as truncation.
  for (size_t cut : {size_t{0}, size_t{2}, size_t{5}, size_t{12}, size_t{17},
                     size_t{30}, bytes.size() / 2, bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, cut));
    ArtifactReadResult read = ReadArtifact(path);
    EXPECT_FALSE(read.ok()) << "cut at " << cut;
    EXPECT_EQ(read.error, cut < 4 ? ArtifactError::kBadMagic
                                  : ArtifactError::kTruncated)
        << "cut at " << cut << " gave " << ArtifactErrorName(read.error);
  }
}

TEST(ArtifactCorruption, FlippedByteInEverySection) {
  std::string path = WriteTestArtifact("artifact_flipped.afpa");
  const std::string bytes = ReadFileBytes(path);
  // Offsets chosen inside the three payload regions and the trailing
  // section CRC; any single flipped bit must trip that section's CRC.
  for (size_t offset : {size_t{30}, bytes.size() / 2, bytes.size() - 2}) {
    std::string damaged = bytes;
    damaged[offset] ^= 0x10;
    WriteFileBytes(path, damaged);
    ArtifactReadResult read = ReadArtifact(path);
    EXPECT_EQ(read.error, ArtifactError::kCorruptSection)
        << "flip at " << offset << " gave " << ArtifactErrorName(read.error);
  }
}

TEST(ArtifactCorruption, TrailingBytes) {
  std::string path = WriteTestArtifact("artifact_trailing.afpa");
  WriteFileBytes(path, ReadFileBytes(path) + "extra");
  EXPECT_EQ(ReadArtifact(path).error, ArtifactError::kMalformedSection);
}

TEST(ArtifactCorruption, SchemaFingerprintMismatch) {
  // An artifact stitched from mismatched halves: the pipeline/model
  // sections carry a foreign schema fingerprint but intact CRCs, so only
  // the fingerprint cross-check can catch it.
  Dataset data = TestData();
  PipelineSpec spec =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
  FittedPipeline pipeline = FittedPipeline::Fit(spec, data.features);
  Matrix transformed = pipeline.Transform(data.features);
  ModelConfig config = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  std::unique_ptr<Classifier> model = MakeClassifier(config);
  model->Train(transformed, data.labels, data.num_classes);
  ArtifactSchema schema;
  schema.dataset_name = data.name;
  schema.input_cols = data.num_cols();
  schema.num_classes = data.num_classes;
  schema.transformed_cols = transformed.cols();

  std::string path = TempPath("artifact_stitched.afpa");
  ArtifactWriteOptions options;
  options.override_section_fingerprint = 0xDEADBEEFu;
  ASSERT_TRUE(
      WriteArtifact(path, schema, pipeline, config, *model, {}, options).ok());
  ArtifactReadResult read = ReadArtifact(path);
  EXPECT_EQ(read.error, ArtifactError::kSchemaMismatch);
  EXPECT_NE(read.status.message().find("fingerprint"), std::string::npos);
}

TEST(ArtifactCorruption, NeverCrashesOnRandomDamage) {
  // Deterministic fuzz sweep: flip one byte at every offset in turn.
  // Any typed error is acceptable; crashing or reporting success with a
  // damaged payload is not (success is allowed only when the flip landed
  // in a CRC-covered-but-unused region — there is none in this format).
  std::string path = WriteTestArtifact("artifact_fuzz.afpa");
  const std::string bytes = ReadFileBytes(path);
  const size_t stride = bytes.size() / 97 + 1;
  for (size_t offset = 0; offset < bytes.size(); offset += stride) {
    std::string damaged = bytes;
    damaged[offset] ^= 0x40;
    WriteFileBytes(path, damaged);
    ArtifactReadResult read = ReadArtifact(path);
    EXPECT_FALSE(read.ok()) << "flip at " << offset << " went unnoticed";
  }
}

}  // namespace
}  // namespace autofp
