/// Tests of the distributed-search stack (src/dist/): the wire codec's
/// round trips and rejection of malformed frames, the lease table's
/// (id, generation) staleness discipline, the shared-dataset hand-off
/// file's corruption taxonomy, and the DistributedEvaluator end to end
/// over real forked workers (InProcessWorkerSpawner) — including the
/// headline robustness property: worker crashes, stragglers and
/// fingerprint mismatches cost wall-clock, never results.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/run_journal.h"
#include "data/benchmark_suite.h"
#include "dist/coordinator.h"
#include "dist/lease.h"
#include "dist/shared_dataset.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "serve/protocol.h"

namespace autofp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

PipelineSpec SpecOf(std::vector<PreprocessorKind> kinds) {
  return PipelineSpec::FromKinds(kinds);
}

/// Decodes exactly one frame out of `bytes` and checks nothing trails it.
Frame DecodeOneFrame(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  ServeError error = ServeError::kNone;
  std::string detail;
  AUTOFP_CHECK(decoder.Next(&frame, &error, &detail) ==
               FrameDecoder::Outcome::kFrame)
      << detail;
  AUTOFP_CHECK(decoder.Next(&frame, &error, &detail) !=
               FrameDecoder::Outcome::kFrame);
  return frame;
}

// --- Wire codec -------------------------------------------------------------

TEST(DistWire, HelloRoundTrip) {
  DistHello hello;
  hello.pid = 4242;
  hello.worker_index = 3;
  hello.dataset_fingerprint = 0xDEADBEEFCAFEF00Dull;
  std::string bytes;
  EncodeHelloFrame(hello, &bytes);
  Frame frame = DecodeOneFrame(bytes);
  EXPECT_EQ(frame.type, static_cast<uint8_t>(DistFrameType::kHello));
  DistHello decoded;
  ASSERT_TRUE(DecodeHelloFrame(frame, &decoded));
  EXPECT_EQ(decoded.pid, hello.pid);
  EXPECT_EQ(decoded.worker_index, hello.worker_index);
  EXPECT_EQ(decoded.dataset_fingerprint, hello.dataset_fingerprint);
}

TEST(DistWire, LeaseRoundTripCarriesFullRequests) {
  DistLease lease;
  lease.lease_id = 7;
  lease.generation = 19;
  lease.deadline_seconds = 2.5;
  EvalRequest first;
  first.pipeline = SpecOf({PreprocessorKind::kStandardScaler,
                           PreprocessorKind::kBinarizer});
  first.budget_fraction = 0.25;
  first.deadline_seconds = 1.5;
  first.seed = 0x1234567890ABCDEFull;
  EvalRequest second;
  second.pipeline = SpecOf({});  // the empty pipeline must survive too
  second.budget_fraction = 1.0;
  second.deadline_seconds = -1.0;
  second.seed = 99;
  lease.requests = {first, second};

  std::string bytes;
  EncodeLeaseFrame(lease, &bytes);
  Frame frame = DecodeOneFrame(bytes);
  DistLease decoded;
  ASSERT_TRUE(DecodeLeaseFrame(frame, &decoded));
  EXPECT_EQ(decoded.lease_id, 7u);
  EXPECT_EQ(decoded.generation, 19u);
  EXPECT_DOUBLE_EQ(decoded.deadline_seconds, 2.5);
  ASSERT_EQ(decoded.requests.size(), 2u);
  EXPECT_EQ(decoded.requests[0].pipeline.ToString(),
            first.pipeline.ToString());
  EXPECT_DOUBLE_EQ(decoded.requests[0].budget_fraction, 0.25);
  EXPECT_DOUBLE_EQ(decoded.requests[0].deadline_seconds, 1.5);
  EXPECT_EQ(decoded.requests[0].seed, first.seed);
  EXPECT_TRUE(decoded.requests[1].pipeline.empty());
  EXPECT_EQ(decoded.requests[1].seed, 99u);
}

TEST(DistWire, ResultRoundTripIsJournalGrade) {
  DistResult result;
  result.lease_id = 11;
  result.generation = 23;
  result.offset = 2;
  result.record.pipeline = SpecOf({PreprocessorKind::kMinMaxScaler}).ToString();
  result.record.budget_fraction = 0.5;
  result.record.seed = 77;
  result.record.accuracy = kPenaltyAccuracy;
  result.record.failure = EvalFailure::kNonFiniteOutput;
  result.record.status_code = static_cast<int>(StatusCode::kOutOfRange);
  result.record.status_message = "rigged non-finite";
  result.record.attempts = 2;
  result.record.elapsed_seconds = 0.125;
  result.record.prep_seconds = 0.0625;
  result.record.train_seconds = 0.03125;

  std::string bytes;
  EncodeResultFrame(result, &bytes);
  Frame frame = DecodeOneFrame(bytes);
  DistResult decoded;
  ASSERT_TRUE(DecodeResultFrame(frame, &decoded));
  EXPECT_EQ(decoded.lease_id, 11u);
  EXPECT_EQ(decoded.generation, 23u);
  EXPECT_EQ(decoded.offset, 2u);
  // The payload is the journal's own record codec: the outcome that
  // crossed the pipe re-journals byte-identically.
  EXPECT_EQ(EncodeJournalRecordPayload(decoded.record),
            EncodeJournalRecordPayload(result.record));
  Evaluation evaluation = EvaluationFromRecord(decoded.record);
  EXPECT_EQ(evaluation.failure, EvalFailure::kNonFiniteOutput);
  EXPECT_EQ(evaluation.status.code(), StatusCode::kOutOfRange);
}

TEST(DistWire, LeaseDoneRoundTripAndTypeConfusionRejected) {
  DistLeaseDone done;
  done.lease_id = 5;
  done.generation = 6;
  std::string bytes;
  EncodeLeaseDoneFrame(done, &bytes);
  Frame frame = DecodeOneFrame(bytes);
  DistLeaseDone decoded;
  ASSERT_TRUE(DecodeLeaseDoneFrame(frame, &decoded));
  EXPECT_EQ(decoded.lease_id, 5u);
  EXPECT_EQ(decoded.generation, 6u);

  // Decoders refuse frames of the wrong type and short payloads.
  DistHello hello;
  EXPECT_FALSE(DecodeHelloFrame(frame, &hello));
  frame.payload.resize(frame.payload.size() / 2);
  EXPECT_FALSE(DecodeLeaseDoneFrame(frame, &decoded));
}

TEST(DistWire, CorruptedBytesDesyncTheDecoder) {
  DistHello hello;
  hello.pid = 1;
  std::string bytes;
  EncodeHelloFrame(hello, &bytes);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload/CRC bit
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  ServeError error = ServeError::kNone;
  std::string detail;
  EXPECT_EQ(decoder.Next(&frame, &error, &detail),
            FrameDecoder::Outcome::kBad);
}

// --- Lease table ------------------------------------------------------------

TEST(LeaseTable, IssueAcceptRelease) {
  LeaseTable table;
  const Lease& lease = table.Issue({4, 9, 2}, /*worker_index=*/1,
                                   /*deadline=*/10.0, /*batch_attempts=*/1);
  const uint64_t id = lease.id;
  const uint64_t generation = lease.generation;
  EXPECT_EQ(table.active(), 1u);
  EXPECT_EQ(table.leases_issued(), 1u);

  // Results resolve offsets to the round slots they answer.
  EXPECT_EQ(table.AcceptResult(id, generation, 1), std::optional<size_t>(9));
  EXPECT_EQ(table.AcceptResult(id, generation, 0), std::optional<size_t>(4));
  // Duplicates and out-of-range offsets are stale, not fatal.
  EXPECT_EQ(table.AcceptResult(id, generation, 1), std::nullopt);
  EXPECT_EQ(table.AcceptResult(id, generation, 3), std::nullopt);
  ASSERT_NE(table.Find(id), nullptr);
  EXPECT_EQ(table.Find(id)->RemainingSlots(), std::vector<size_t>{2});
  EXPECT_FALSE(table.Find(id)->AllDone());
  EXPECT_EQ(table.AcceptResult(id, generation, 2), std::optional<size_t>(2));
  EXPECT_TRUE(table.Find(id)->AllDone());

  // Release with a stale generation is refused; the real one removes it.
  EXPECT_EQ(table.Release(id, generation + 1), std::nullopt);
  std::optional<Lease> released = table.Release(id, generation);
  ASSERT_TRUE(released.has_value());
  EXPECT_TRUE(released->AllDone());
  EXPECT_EQ(table.active(), 0u);
}

TEST(LeaseTable, RevokedStragglersCannotDoubleCount) {
  LeaseTable table;
  const Lease& first = table.Issue({0, 1}, 0, 1.0, 1);
  const uint64_t first_id = first.id;
  const uint64_t first_generation = first.generation;

  // Deadline passes; the coordinator revokes and re-leases the remainder.
  EXPECT_EQ(table.ExpiredLeases(2.0), std::vector<uint64_t>{first_id});
  std::optional<Lease> revoked = table.Revoke(first_id);
  ASSERT_TRUE(revoked.has_value());
  const Lease& second = table.Issue(revoked->RemainingSlots(), 1, 5.0, 2);
  EXPECT_GT(second.generation, first_generation);
  EXPECT_EQ(second.batch_attempts, 2);

  // The straggler answers late under its old stamp: discarded, both for
  // results and for LEASE_DONE.
  EXPECT_EQ(table.AcceptResult(first_id, first_generation, 0), std::nullopt);
  EXPECT_EQ(table.Release(first_id, first_generation), std::nullopt);
  // The re-lease's answers land normally.
  EXPECT_EQ(table.AcceptResult(second.id, second.generation, 0),
            std::optional<size_t>(0));
}

TEST(LeaseTable, NextDeadlineTracksTheEarliestLease) {
  LeaseTable table;
  EXPECT_EQ(table.NextDeadline(), std::nullopt);
  table.Issue({0}, 0, 7.0, 1);
  const Lease& early = table.Issue({1}, 1, 3.0, 1);
  EXPECT_EQ(table.NextDeadline(), std::optional<double>(3.0));
  table.Revoke(early.id);
  EXPECT_EQ(table.NextDeadline(), std::optional<double>(7.0));
  EXPECT_TRUE(table.ExpiredLeases(5.0).empty());
}

// --- Shared dataset ---------------------------------------------------------

TEST(SharedDataset, RoundTripPreservesEverything) {
  Result<Dataset> loaded = GetSuiteDataset("blood_syn");
  ASSERT_TRUE(loaded.ok());
  const Dataset& data = loaded.value();
  const std::string path = TempPath("shared_roundtrip.ds");
  ASSERT_TRUE(WriteSharedDataset(path, data).ok());

  Result<Dataset> mapped = MapSharedDataset(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const Dataset& copy = mapped.value();
  EXPECT_EQ(copy.name, data.name);
  EXPECT_EQ(copy.num_classes, data.num_classes);
  EXPECT_EQ(copy.labels, data.labels);
  ASSERT_EQ(copy.features.rows(), data.features.rows());
  ASSERT_EQ(copy.features.cols(), data.features.cols());
  EXPECT_TRUE(copy.features == data.features);
  // The mapped dataset is a zero-copy view into the mapping, with the
  // feature block cache-line aligned by the v2 file padding.
  EXPECT_TRUE(copy.features.borrowed());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(copy.features.Raw()) % 64, 0u);
  EXPECT_EQ(DatasetFingerprint(copy), DatasetFingerprint(data));
  std::remove(path.c_str());
}

TEST(SharedDataset, CorruptionAndTruncationAreTypedErrors) {
  Result<Dataset> loaded = GetSuiteDataset("blood_syn");
  ASSERT_TRUE(loaded.ok());
  const std::string path = TempPath("shared_corrupt.ds");
  ASSERT_TRUE(WriteSharedDataset(path, loaded.value()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Flipped feature bit: the CRC catches it.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  const std::string flipped_path = TempPath("shared_flipped.ds");
  { std::ofstream out(flipped_path, std::ios::binary); out << flipped; }
  EXPECT_FALSE(MapSharedDataset(flipped_path).ok());

  // Truncation: typed error, not a short dataset.
  const std::string truncated_path = TempPath("shared_truncated.ds");
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out << bytes.substr(0, bytes.size() / 3);
  }
  EXPECT_FALSE(MapSharedDataset(truncated_path).ok());

  // Not our file at all.
  const std::string foreign_path = TempPath("shared_foreign.ds");
  { std::ofstream out(foreign_path, std::ios::binary); out << "hello"; }
  EXPECT_FALSE(MapSharedDataset(foreign_path).ok());
  EXPECT_FALSE(MapSharedDataset(TempPath("shared_missing.ds")).ok());

  std::remove(path.c_str());
  std::remove(flipped_path.c_str());
  std::remove(truncated_path.c_str());
  std::remove(foreign_path.c_str());
}

// --- DistributedEvaluator over forked workers -------------------------------

constexpr uint64_t kTestFingerprint = 0xF00DF00DF00DF00Dull;

/// Deterministic synthetic landscape: accuracy is a pure function of the
/// request (pipeline text + seed + fraction), so coordinator-merged
/// results are comparable against a local sequential pass bit for bit.
class SyntheticEvaluator : public EvaluatorInterface {
 public:
  using EvaluatorInterface::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    Evaluation evaluation;
    evaluation.pipeline = request.pipeline;
    evaluation.budget_fraction = request.budget_fraction;
    const std::string text = request.pipeline.ToString();
    uint64_t hash = Fnv1a64(text.data(), text.size());
    hash = HashCombine(hash, request.seed);
    if (hash % 7 == 0) {  // a deterministic sprinkling of typed failures
      evaluation.failure = EvalFailure::kNonFiniteOutput;
      evaluation.status = Status::OutOfRange("synthetic failure");
      evaluation.accuracy = kPenaltyAccuracy;
      return evaluation;
    }
    evaluation.accuracy =
        static_cast<double>(hash % 10000) / 10000.0 * request.budget_fraction;
    return evaluation;
  }
  double BaselineAccuracy() override { return 0.25; }
};

std::vector<EvalRequest> MakeRequests(size_t count) {
  const PreprocessorKind kinds[] = {
      PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
      PreprocessorKind::kBinarizer, PreprocessorKind::kNormalizer};
  std::vector<EvalRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    EvalRequest request;
    std::vector<PreprocessorKind> steps;
    for (size_t depth = 0; depth <= i % 3; ++depth) {
      steps.push_back(kinds[(i + depth) % 4]);
    }
    request.pipeline = SpecOf(steps);
    request.budget_fraction = (i % 2 == 0) ? 1.0 : 0.5;
    request.seed = EvalRequest::DeriveSeed(42, request.pipeline,
                                           request.budget_fraction, 0);
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Canonical comparison form of an outcome list.
std::string Canonical(const std::vector<Evaluation>& evaluations) {
  std::string out;
  for (const Evaluation& evaluation : evaluations) {
    JournalRecord record = MakeJournalRecord(evaluation, 0, 0.0);
    record.elapsed_seconds = 0.0;  // timing legitimately differs
    record.prep_seconds = 0.0;
    record.train_seconds = 0.0;
    out += record.pipeline;
    out += '|';
    out += EncodeJournalRecordPayload(record);
    out += '\n';
  }
  return out;
}

/// A coordinator over forked synthetic workers with the given hooks.
struct DistHarness {
  explicit DistHarness(DistOptions options, WorkerHooks hooks = {}) {
    options.expected_dataset_fingerprint = kTestFingerprint;
    evaluator = std::make_unique<DistributedEvaluator>(
        &local, InProcessWorkerSpawner([hooks](int fd, int worker_index) {
          SyntheticEvaluator worker_local;
          return RunDistWorker(fd, worker_index, kTestFingerprint,
                               &worker_local, hooks);
        }),
        options);
  }
  SyntheticEvaluator local;
  std::unique_ptr<DistributedEvaluator> evaluator;
};

TEST(DistributedEvaluator, MatchesLocalSequentialResultsInOrder) {
  SyntheticEvaluator reference;
  const std::vector<EvalRequest> requests = MakeRequests(23);
  const std::vector<Evaluation> want = reference.EvaluateAll(requests);

  DistOptions options;
  options.num_workers = 3;
  options.lease_size = 4;
  DistHarness harness(options);
  const std::vector<Evaluation> got = harness.evaluator->EvaluateAll(requests);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(Canonical(got), Canonical(want));
  EXPECT_EQ(harness.evaluator->stats().worker_crashes, 0);
  EXPECT_EQ(harness.evaluator->stats().local_fallback_evals, 0);
  EXPECT_GE(harness.evaluator->stats().leases_issued, 6l);

  // A second batch reuses the same fleet.
  const std::vector<Evaluation> again =
      harness.evaluator->EvaluateAll(requests);
  EXPECT_EQ(Canonical(again), Canonical(want));
  harness.evaluator->Shutdown();
  EXPECT_EQ(harness.evaluator->live_workers(), 0);
}

TEST(DistributedEvaluator, WorkerCrashesCostNothingButTime) {
  SyntheticEvaluator reference;
  const std::vector<EvalRequest> requests = MakeRequests(17);
  const std::vector<Evaluation> want = reference.EvaluateAll(requests);

  DistOptions options;
  options.num_workers = 2;
  options.lease_size = 3;
  WorkerHooks hooks;
  hooks.crash_after_results = 2;  // every worker dies after two results
  DistHarness harness(options, hooks);
  const std::vector<Evaluation> got = harness.evaluator->EvaluateAll(requests);
  EXPECT_EQ(Canonical(got), Canonical(want));
  EXPECT_GE(harness.evaluator->stats().worker_crashes, 1);
  // Crashed leases were re-leased or locally resolved, never dropped.
  const DistStats& stats = harness.evaluator->stats();
  EXPECT_GE(stats.re_leases + stats.local_fallback_evals, 1);
  EXPECT_EQ(stats.worker_lost_evals, 0);
}

TEST(DistributedEvaluator, StragglersAreRevokedAndWorkIsRecovered) {
  SyntheticEvaluator reference;
  const std::vector<EvalRequest> requests = MakeRequests(6);
  const std::vector<Evaluation> want = reference.EvaluateAll(requests);

  DistOptions options;
  options.num_workers = 2;
  options.lease_size = 3;
  options.lease_deadline_seconds = 0.3;
  options.max_lease_attempts = 2;
  WorkerHooks hooks;
  hooks.stall_after_results = 0;  // stall before the first result
  hooks.stall_seconds = 30.0;     // far past the lease deadline
  DistHarness harness(options, hooks);
  const std::vector<Evaluation> got = harness.evaluator->EvaluateAll(requests);
  // Every worker (and every respawn) stalls, so the answers come from
  // revocation + local fallback — still identical.
  EXPECT_EQ(Canonical(got), Canonical(want));
  EXPECT_GE(harness.evaluator->stats().straggler_revocations, 1);
  EXPECT_GE(harness.evaluator->stats().local_fallback_evals, 1);
}

TEST(DistributedEvaluator, FingerprintMismatchedWorkersAreRefused) {
  SyntheticEvaluator reference;
  SyntheticEvaluator local;
  const std::vector<EvalRequest> requests = MakeRequests(5);
  const std::vector<Evaluation> want = reference.EvaluateAll(requests);

  DistOptions options;
  options.num_workers = 2;
  options.expected_dataset_fingerprint = kTestFingerprint;
  DistributedEvaluator evaluator(
      &local, InProcessWorkerSpawner([](int fd, int worker_index) {
        SyntheticEvaluator worker_local;
        // The worker mapped the wrong data: HELLO carries the truth.
        return RunDistWorker(fd, worker_index, kTestFingerprint ^ 1,
                             &worker_local, WorkerHooks{});
      }),
      options);
  const std::vector<Evaluation> got = evaluator.EvaluateAll(requests);
  EXPECT_EQ(Canonical(got), Canonical(want));
  EXPECT_GE(evaluator.stats().hello_rejects, 1);
  // No mismatched worker ever held a lease.
  EXPECT_EQ(evaluator.stats().leases_issued, 0);
  EXPECT_EQ(evaluator.stats().local_fallback_evals,
            static_cast<long>(requests.size()));
}

TEST(DistributedEvaluator, NoWorkersAndNoFallbackReportsWorkerLost) {
  SyntheticEvaluator local;
  DistOptions options;
  options.num_workers = 2;
  options.allow_local_fallback = false;
  DistributedEvaluator evaluator(
      &local,
      [](int, int) -> Result<pid_t> {
        return Status::Internal("spawner rigged to fail");
      },
      options);
  const std::vector<EvalRequest> requests = MakeRequests(4);
  const std::vector<Evaluation> got = evaluator.EvaluateAll(requests);
  ASSERT_EQ(got.size(), requests.size());
  for (const Evaluation& evaluation : got) {
    EXPECT_EQ(evaluation.failure, EvalFailure::kWorkerLost);
    EXPECT_TRUE(IsTransientFailure(evaluation.failure));
    EXPECT_DOUBLE_EQ(evaluation.accuracy, kPenaltyAccuracy);
  }
  EXPECT_EQ(evaluator.stats().worker_lost_evals,
            static_cast<long>(requests.size()));
}

TEST(DistributedEvaluator, SingleEvaluateDelegatesToTheFleet) {
  SyntheticEvaluator reference;
  DistOptions options;
  options.num_workers = 1;
  DistHarness harness(options);
  EvalRequest request = MakeRequests(1)[0];
  Evaluation want = reference.Evaluate(request);
  Evaluation got = harness.evaluator->Evaluate(request);
  EXPECT_EQ(Canonical({got}), Canonical({want}));
  EXPECT_DOUBLE_EQ(harness.evaluator->BaselineAccuracy(), 0.25);
  EXPECT_TRUE(harness.evaluator->SupportsConcurrentBatches());
}

}  // namespace
}  // namespace autofp
